//! Runs a real YCSB workload against the in-process LCM-protected KVS
//! and reports wall-clock throughput — the live (non-simulated)
//! counterpart of the paper's evaluation setup.
//!
//! Run with: `cargo run --release --example ycsb_run [workload] [ops]`
//! where `workload` is one of a/b/c/d/e/f (default a) and `ops` the
//! operation count (default 20000).

use std::sync::Arc;
use std::time::Instant;

use lcm::core::admin::AdminHandle;
use lcm::core::server::LcmServer;
use lcm::core::stability::Quorum;
use lcm::core::types::ClientId;
use lcm::kvs::client::KvsClient;
use lcm::kvs::ops::KvOp;
use lcm::kvs::store::KvStore;
use lcm::storage::MemoryStorage;
use lcm::tee::world::TeeWorld;
use lcm::workload::{CoreWorkload, WorkloadOp, WorkloadPreset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn to_kv(op: WorkloadOp) -> KvOp {
    match op {
        WorkloadOp::Read(k) => KvOp::Get(k),
        WorkloadOp::Update(k, v) | WorkloadOp::Insert(k, v) => KvOp::Put(k, v),
        // Read-modify-write maps to the write half here; the read half
        // was already counted by the generator's mix.
        WorkloadOp::ReadModifyWrite(k, v) => KvOp::Put(k, v),
        WorkloadOp::Scan(start, limit) => KvOp::Scan { start, limit },
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let preset = match args.get(1).map(|s| s.as_str()).unwrap_or("a") {
        "a" => WorkloadPreset::A,
        "b" => WorkloadPreset::B,
        "c" => WorkloadPreset::C,
        "d" => WorkloadPreset::D,
        "e" => WorkloadPreset::E,
        "f" => WorkloadPreset::F,
        other => return Err(format!("unknown workload {other:?} (use a-f)").into()),
    };
    let total_ops: usize = args
        .get(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(20_000);
    let n_clients = 4usize;

    // Infrastructure.
    let world = TeeWorld::new_deterministic(123);
    let platform = world.platform(1);
    let mut server = LcmServer::<KvStore>::new(&platform, Arc::new(MemoryStorage::new()), 16);
    server.boot()?;
    let ids: Vec<ClientId> = (1..=n_clients as u32).map(ClientId).collect();
    let mut admin = AdminHandle::new(&world, ids.clone(), Quorum::Majority);
    admin.bootstrap(&mut server)?;
    let mut clients: Vec<KvsClient> = ids
        .iter()
        .map(|&id| KvsClient::new(id, admin.client_key()))
        .collect();

    // Load phase.
    let mut workload = CoreWorkload::new(preset.config())?;
    let load_start = Instant::now();
    for op in workload.load_ops().collect::<Vec<_>>() {
        clients[0].run(&mut server, &to_kv(op))?;
    }
    println!(
        "loaded {} records in {:.2?}",
        workload.config().record_count,
        load_start.elapsed()
    );

    // Run phase: round-robin the closed-loop clients.
    let mut rng = StdRng::seed_from_u64(42);
    let run_start = Instant::now();
    let mut last_stable = 0u64;
    for i in 0..total_ops {
        let op = to_kv(workload.next_op(&mut rng));
        let client = &mut clients[i % n_clients];
        let done = client.run(&mut server, &op)?;
        last_stable = last_stable.max(done.completion.stable.0);
    }
    let elapsed = run_start.elapsed();
    let throughput = total_ops as f64 / elapsed.as_secs_f64();

    println!(
        "workload {:?}: {} ops in {:.2?} -> {:.0} ops/s (single-threaded, in-process)",
        preset, total_ops, elapsed, throughput
    );
    println!(
        "final majority-stable watermark: #{last_stable} of #{} total ops",
        server.ops_processed()
    );
    println!("batches sealed+stored: {}", server.batches_processed());
    Ok(())
}
