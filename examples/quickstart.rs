//! Quickstart: bootstrap an LCM-protected key-value store and run a
//! few operations.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Flow (paper §4.3 + §5.3), all assembled by `DeploymentBuilder`:
//! 1. A TEE platform hosts the enclave; the host server persists
//!    sealed state to storage and batches requests.
//! 2. The admin attests the enclave, provisions the keys, and
//!    distributes the communication key to the clients.
//! 3. Clients PUT/GET/DEL through the LCM protocol and observe
//!    sequence numbers and majority-stability watermarks.

use lcm::kvs::store::KvStore;
use lcm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- One call assembles the stack: TEE world, server, front-end,
    // admin bootstrap (attestation + key provisioning, §4.3).
    let group = vec![ClientId(1), ClientId(2), ClientId(3)];
    let mut dep = DeploymentBuilder::<KvStore>::new()
        .clients(group)
        .seed(2024)
        .build()?;
    println!(
        "✓ enclave attested and provisioned for {} clients across {} shard(s)",
        dep.admin().clients().len(),
        dep.shards()
    );

    // --- Clients receive kC from the admin and start working.
    let mut alice = dep.kvs_client(ClientId(1));
    let mut bob = dep.kvs_client(ClientId(2));
    let mut carol = dep.kvs_client(ClientId(3));

    let done = alice.put(dep.frontend_mut(), b"motd", b"hello, collective memory")?;
    println!(
        "alice PUT motd  -> seq {}, majority-stable watermark {}",
        done.seq, done.stable
    );

    let value = bob.get(dep.frontend_mut(), b"motd")?;
    println!(
        "bob   GET motd  -> {:?} (seq {}, stable {})",
        String::from_utf8_lossy(&value.unwrap()),
        bob.lcm().last_seq(),
        bob.lcm().stable_seq()
    );

    carol.put(dep.frontend_mut(), b"count", b"1")?;

    // A second round of operations acknowledges the first: the
    // majority-stable watermark advances.
    let done = alice.put(dep.frontend_mut(), b"motd", b"updated")?;
    println!(
        "alice PUT motd  -> seq {}, majority-stable watermark {}",
        done.seq, done.stable
    );
    assert!(done.stable.0 >= 1, "first-round ops become stable");

    let existed = bob.del(dep.frontend_mut(), b"count")?;
    println!("bob   DEL count -> existed = {existed}");

    // The server crashes; sealed state + client metadata survive.
    dep.frontend_mut().crash();
    dep.frontend_mut().boot()?;
    let value = carol.get(dep.frontend_mut(), b"motd")?;
    println!(
        "carol GET motd  -> {:?} after crash recovery",
        String::from_utf8_lossy(&value.unwrap())
    );

    println!("✓ quickstart complete");
    Ok(())
}
