//! Quickstart: bootstrap an LCM-protected key-value store and run a
//! few operations.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Flow (paper §4.3 + §5.3):
//! 1. A TEE platform hosts the enclave; the host server persists
//!    sealed state to storage and batches requests.
//! 2. The admin attests the enclave, provisions the keys, and
//!    distributes the communication key to the clients.
//! 3. Clients PUT/GET/DEL through the LCM protocol and observe
//!    sequence numbers and majority-stability watermarks.

use std::sync::Arc;

use lcm::core::admin::AdminHandle;
use lcm::core::server::LcmServer;
use lcm::core::stability::Quorum;
use lcm::core::types::ClientId;
use lcm::kvs::client::KvsClient;
use lcm::kvs::store::KvStore;
use lcm::storage::MemoryStorage;
use lcm::tee::world::TeeWorld;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Infrastructure: a TEE world, one server platform, storage.
    let world = TeeWorld::new_deterministic(2024);
    let platform = world.platform(1);
    let storage = Arc::new(MemoryStorage::new());

    // --- The (honest, here) host server: enclave + storage + batching.
    let mut server = LcmServer::<KvStore>::new(&platform, storage, 16);
    let needs_provision = server.boot()?;
    assert!(needs_provision, "fresh server needs bootstrapping");

    // --- Admin bootstrap: attestation + key provisioning (§4.3).
    let group = vec![ClientId(1), ClientId(2), ClientId(3)];
    let mut admin = AdminHandle::new(&world, group, Quorum::Majority);
    admin.bootstrap(&mut server)?;
    println!(
        "✓ enclave attested and provisioned for {} clients",
        admin.clients().len()
    );

    // --- Clients receive kC from the admin and start working.
    let mut alice = KvsClient::new(ClientId(1), admin.client_key());
    let mut bob = KvsClient::new(ClientId(2), admin.client_key());
    let mut carol = KvsClient::new(ClientId(3), admin.client_key());

    let done = alice.put(&mut server, b"motd", b"hello, collective memory")?;
    println!(
        "alice PUT motd  -> seq {}, majority-stable watermark {}",
        done.seq, done.stable
    );

    let value = bob.get(&mut server, b"motd")?;
    println!(
        "bob   GET motd  -> {:?} (seq {}, stable {})",
        String::from_utf8_lossy(&value.unwrap()),
        bob.lcm().last_seq(),
        bob.lcm().stable_seq()
    );

    carol.put(&mut server, b"count", b"1")?;

    // A second round of operations acknowledges the first: the
    // majority-stable watermark advances.
    let done = alice.put(&mut server, b"motd", b"updated")?;
    println!(
        "alice PUT motd  -> seq {}, majority-stable watermark {}",
        done.seq, done.stable
    );
    assert!(done.stable.0 >= 1, "first-round ops become stable");

    let existed = bob.del(&mut server, b"count")?;
    println!("bob   DEL count -> existed = {existed}");

    // The server crashes; sealed state + client metadata survive.
    server.crash();
    server.boot()?;
    let value = carol.get(&mut server, b"motd")?;
    println!(
        "carol GET motd  -> {:?} after crash recovery",
        String::from_utf8_lossy(&value.unwrap())
    );

    println!("✓ quickstart complete");
    Ok(())
}
