//! Dynamic group membership demo (paper §4.6.3): joining a client,
//! then evicting one with a communication-key rotation.
//!
//! Run with: `cargo run --example membership`

use std::sync::Arc;

use lcm::core::admin::AdminHandle;
use lcm::core::server::LcmServer;
use lcm::core::stability::Quorum;
use lcm::core::types::ClientId;
use lcm::kvs::client::KvsClient;
use lcm::kvs::store::KvStore;
use lcm::storage::MemoryStorage;
use lcm::tee::world::TeeWorld;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = TeeWorld::new_deterministic(55);
    let platform = world.platform(1);
    let mut server = LcmServer::<KvStore>::new(&platform, Arc::new(MemoryStorage::new()), 16);
    server.boot()?;

    let mut admin = AdminHandle::new(&world, vec![ClientId(1), ClientId(2)], Quorum::Majority);
    admin.bootstrap(&mut server)?;
    let mut alice = KvsClient::new(ClientId(1), admin.client_key());
    let mut bob = KvsClient::new(ClientId(2), admin.client_key());

    alice.put(&mut server, b"team", b"alice,bob")?;
    println!(
        "group of 2 working; alice at seq {}",
        alice.lcm().last_seq()
    );

    // --- Join: the admin registers Carol and sends her kC.
    admin.add_client(&mut server, ClientId(3))?;
    let mut carol = KvsClient::new(ClientId(3), admin.client_key());
    carol.put(&mut server, b"team", b"alice,bob,carol")?;
    println!(
        "carol joined and wrote; group is now {}",
        admin.clients().len()
    );

    let (_, _, n) = admin.status(&mut server)?;
    assert_eq!(n, 3);

    // Stability now needs 2 of 3: one more round from alice and bob.
    alice.put(&mut server, b"x", b"1")?;
    let done = bob.put(&mut server, b"y", b"2")?;
    println!("majority-stable watermark with 3 clients: {}", done.stable);

    // --- Eviction: remove Bob; kC rotates so Bob is locked out.
    let new_kc = admin.remove_client(&mut server, ClientId(2))?;
    println!("bob removed; communication key rotated");

    // Remaining members install the new key and continue.
    alice.lcm_mut().rotate_key(&new_kc);
    carol.lcm_mut().rotate_key(&new_kc);
    alice.put(&mut server, b"team", b"alice,carol")?;
    println!(
        "alice continues with the fresh key (seq {})",
        alice.lcm().last_seq()
    );

    // Bob still holds the OLD key. His message no longer authenticates:
    // the context treats it as an attack and halts — an eviction is a
    // security event, not a soft failure.
    match bob.put(&mut server, b"team", b"bob-was-here") {
        Err(e) => println!("bob's stale-key write: ✓ rejected ({e})"),
        Ok(_) => return Err("evicted client still accepted!".into()),
    }

    println!("✓ membership flows complete");
    Ok(())
}
