//! Live migration demo: moving the trusted context to a new physical
//! TEE without a trusted third party (paper §4.6.2).
//!
//! Run with: `cargo run --example migration`
//!
//! This is the capability TMC-based rollback protection cannot offer:
//! a hardware counter is welded to one machine, but LCM's state lives
//! in sealed storage plus client-side metadata, so the origin enclave
//! can bootstrap its successor over an attested channel and hand over
//! `kP`/`kC` — transparently for the clients, who keep their `(tc, hc)`
//! context and notice nothing.

use std::sync::Arc;

use lcm::core::admin::AdminHandle;
use lcm::core::server::LcmServer;
use lcm::core::stability::Quorum;
use lcm::core::types::ClientId;
use lcm::kvs::client::KvsClient;
use lcm::kvs::store::KvStore;
use lcm::storage::MemoryStorage;
use lcm::tee::world::TeeWorld;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = TeeWorld::new_deterministic(31);

    // Origin server on platform 1.
    let origin_platform = world.platform(1);
    let mut origin =
        LcmServer::<KvStore>::new(&origin_platform, Arc::new(MemoryStorage::new()), 16);
    origin.boot()?;
    let mut admin = AdminHandle::new(&world, vec![ClientId(1), ClientId(2)], Quorum::Majority);
    admin.bootstrap(&mut origin)?;
    println!("origin enclave provisioned on {:?}", origin_platform.id());

    let mut alice = KvsClient::new(ClientId(1), admin.client_key());
    let mut bob = KvsClient::new(ClientId(2), admin.client_key());

    alice.put(&mut origin, b"inventory:widgets", b"42")?;
    bob.put(&mut origin, b"inventory:gadgets", b"7")?;
    println!(
        "pre-migration state built: alice at seq {}, bob at seq {}",
        alice.lcm().last_seq(),
        bob.lcm().last_seq()
    );

    // Target server on a DIFFERENT physical platform: different root
    // secret, different sealing keys. The origin's sealed blobs are
    // useless there — only the migration channel can move the state.
    let target_platform = world.platform(2);
    let mut target =
        LcmServer::<KvStore>::new(&target_platform, Arc::new(MemoryStorage::new()), 16);
    let needs_provision = target.boot()?;
    assert!(needs_provision);
    println!(
        "target enclave created on {:?}, awaiting state",
        target_platform.id()
    );

    // Migration: the origin T acts as the admin for T′ (§4.6.2) —
    // exports a ticket encrypted for same-program enclaves, stops
    // serving; the target imports and re-seals for its own platform.
    admin.migrate(&mut origin, &mut target)?;
    println!("✓ migration ticket transferred; origin stopped serving");

    // Clients continue with unchanged keys and metadata.
    let widgets = alice.get(&mut target, b"inventory:widgets")?;
    println!(
        "alice GET inventory:widgets on target -> {:?}",
        String::from_utf8_lossy(&widgets.unwrap())
    );
    let done = bob.put(&mut target, b"inventory:gadgets", b"8")?;
    println!(
        "bob   PUT on target -> seq {} (continues the global sequence)",
        done.seq
    );

    // Recovery still works on the target: its sealed history simply
    // continues the origin's.
    target.crash();
    target.boot()?;
    let gadgets = alice.get(&mut target, b"inventory:gadgets")?;
    println!(
        "after target crash+recovery: gadgets = {:?}",
        String::from_utf8_lossy(&gadgets.unwrap())
    );

    // The origin refuses all service after migrating away.
    bob.put(&mut origin, b"should", b"fail").map_or_else(
        |e| println!("origin after migration: ✓ refuses service ({e})"),
        |_| panic!("origin must not serve after migrating away"),
    );

    println!("✓ migration complete — no trusted third party involved");
    Ok(())
}
