//! Rollback attack demo: a malicious host restarts the enclave from a
//! stale sealed state.
//!
//! Run with: `cargo run --example rollback_attack`
//!
//! Two acts:
//! 1. Against the **SGX baseline** (sealing only, no LCM): the attack
//!    silently succeeds — a client reads an outdated balance with no
//!    error anywhere.
//! 2. Against the **LCM-protected** store: the very first operation
//!    after the rollback trips the context verification (`V[i]` does
//!    not match the client's `(tc, hc)`), the trusted context halts,
//!    and the client learns the server cheated.

use std::sync::Arc;

use lcm::core::admin::AdminHandle;
use lcm::core::server::LcmServer;
use lcm::core::stability::Quorum;
use lcm::core::types::ClientId;
use lcm::core::LcmError;
use lcm::kvs::baseline::{SecureKvsClient, SgxKvsServer};
use lcm::kvs::client::KvsClient;
use lcm::kvs::ops::{KvOp, KvResult};
use lcm::kvs::store::KvStore;
use lcm::storage::{AdversaryMode, RollbackStorage, Version};
use lcm::tee::world::TeeWorld;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = TeeWorld::new_deterministic(7);

    println!("=== Act 1: rollback vs the SGX baseline (no LCM) ===");
    {
        let platform = world.platform(1);
        // The adversary controls storage and retains every version.
        let storage = Arc::new(RollbackStorage::new());
        let mut server = SgxKvsServer::new(&platform, storage.clone(), 1);
        server.boot().map_err(AsErr)?;
        let client = SecureKvsClient::new(SgxKvsServer::session_key_for(&platform));

        client
            .run(
                &mut server,
                &KvOp::Put(b"balance".to_vec(), b"100 EUR".to_vec()),
            )
            .map_err(AsErr)?;
        client
            .run(
                &mut server,
                &KvOp::Put(b"balance".to_vec(), b"0 EUR".to_vec()),
            )
            .map_err(AsErr)?;
        println!("  wrote balance=100, then spent it: balance=0");

        // The malicious host restarts the enclave from the old blob.
        let stale = storage
            .history()
            .load_version("sgx-kvs.state", Version(0))?;
        storage.set_mode(AdversaryMode::ServeVersion(Version(0)));
        println!(
            "  host rolls storage back to version 0 ({} sealed bytes)",
            stale.len()
        );
        server.crash();
        server.boot().map_err(AsErr)?;

        let result = client
            .run(&mut server, &KvOp::Get(b"balance".to_vec()))
            .map_err(AsErr)?;
        if let KvResult::Value(Some(v)) = result {
            println!(
                "  ✗ SGX baseline serves balance={:?} — stale money restored, NOBODY NOTICED",
                String::from_utf8_lossy(&v)
            );
        }
    }

    println!("\n=== Act 2: the same attack vs LCM ===");
    {
        let platform = world.platform(2);
        let storage = Arc::new(RollbackStorage::new());
        let mut server = LcmServer::<KvStore>::new(&platform, storage.clone(), 1);
        server.boot()?;
        let mut admin = AdminHandle::new(&world, vec![ClientId(1)], Quorum::Majority);
        admin.bootstrap(&mut server)?;
        let mut client = KvsClient::new(ClientId(1), admin.client_key());

        client.put(&mut server, b"balance", b"100 EUR")?;
        client.put(&mut server, b"balance", b"0 EUR")?;
        println!("  wrote balance=100, then spent it: balance=0");

        // Roll back to the state right after the first PUT.
        storage.set_mode(AdversaryMode::ServeVersion(Version(1)));
        println!("  host rolls storage back and restarts the enclave");
        server.crash();
        server.boot()?;

        // The client's (tc, hc) now refers to a future the rolled-back
        // T has never seen: detection is immediate.
        match client.get(&mut server, b"balance") {
            Err(e @ LcmError::Violation(_)) => {
                println!("  ✓ LCM DETECTED the rollback: {e}");
            }
            Err(e) => println!("  ✓ rejected ({e})"),
            Ok(v) => {
                println!("  ✗ unexpected success: {v:?}");
                return Err("rollback went undetected!".into());
            }
        }
    }

    println!("\nConclusion: sealing alone cannot provide state continuity;");
    println!("LCM's collective memory catches the rollback on first contact.");
    Ok(())
}

/// Adapter for the baseline's plain-string errors.
#[derive(Debug)]
struct AsErr(String);
impl std::fmt::Display for AsErr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}
impl std::error::Error for AsErr {}
