//! Forking attack demo: a malicious host runs TWO instances of the
//! trusted context and partitions the clients between them.
//!
//! Run with: `cargo run --example forking_attack`
//!
//! The server forks the sealed state, gives each enclave instance its
//! own branch, and routes Alice to instance A and Bob to instance B.
//! Each instance is internally consistent, so neither client detects
//! anything *immediately* — exactly what fork-linearizability permits.
//! But the protocol guarantees the fork can never heal:
//!
//! 1. **Stability stalls**: each branch only sees one client's
//!    acknowledgements, so with a 3-client group no operation ever
//!    becomes majority-stable on either branch.
//! 2. **Any crossing detects**: the moment a client's message reaches
//!    the other branch, the context check fails and that instance
//!    halts.
//! 3. **Out-of-band comparison detects**: exchanging `(seq, chain)`
//!    records shows two different histories for the same sequence
//!    numbers (the paper's "lightweight out-of-band mechanism").

use std::sync::Arc;

use lcm::core::admin::AdminHandle;
use lcm::core::server::LcmServer;
use lcm::core::stability::Quorum;
use lcm::core::types::ClientId;
use lcm::core::verify::{check_single_history, ForkEvidence};
use lcm::kvs::client::KvsClient;
use lcm::kvs::store::KvStore;
use lcm::storage::{RollbackStorage, StableStorage};
use lcm::tee::world::TeeWorld;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let world = TeeWorld::new_deterministic(99);
    let platform = world.platform(1);
    let storage = Arc::new(RollbackStorage::new());

    // Bootstrap one honest-looking server with three clients.
    let mut server_a = LcmServer::<KvStore>::new(&platform, storage.clone(), 1);
    server_a.boot()?;
    let group = vec![ClientId(1), ClientId(2), ClientId(3)];
    let mut admin = AdminHandle::new(&world, group, Quorum::Majority);
    admin.bootstrap(&mut server_a)?;

    let mut alice = KvsClient::new(ClientId(1), admin.client_key());
    let mut bob = KvsClient::new(ClientId(2), admin.client_key());
    alice.lcm_mut().set_recording(true);
    bob.lcm_mut().set_recording(true);

    // A common prefix both clients observe.
    alice.put(&mut server_a, b"doc", b"v1")?;
    bob.put(&mut server_a, b"doc", b"v2")?;
    println!("common prefix: both clients ran one op (seq 1, 2)");

    // --- The fork: spawn a second enclave instance fed from a copied
    // branch of the storage history.
    let fork_point = storage.history().latest_version("lcm.state").unwrap();
    let branch_state = storage.fork_at("lcm.state", fork_point)?;
    let key_version = storage.history().latest_version("lcm.keyblob").unwrap();
    let key_blob = storage.history().load_version("lcm.keyblob", key_version)?;
    branch_state.store("lcm.keyblob", &key_blob)?;

    let mut server_b = LcmServer::<KvStore>::new(&platform, Arc::new(branch_state), 1);
    server_b.boot()?;
    println!("fork: second enclave instance started from the same sealed state");

    // Partition: Alice talks to A, Bob talks to B. Each branch works.
    alice.put(&mut server_a, b"doc", b"alice-edit")?;
    bob.put(&mut server_b, b"doc", b"bob-edit")?;
    let a_doc = alice.get(&mut server_a, b"doc")?;
    let b_doc = bob.get(&mut server_b, b"doc")?;
    println!(
        "partitioned views: alice sees {:?}, bob sees {:?}",
        String::from_utf8_lossy(&a_doc.unwrap()),
        String::from_utf8_lossy(&b_doc.unwrap())
    );

    // 1. Stability stalls on both branches: with 3 registered clients,
    //    a single client's acknowledgements are not a majority.
    println!(
        "stability watermarks: alice {}, bob {} (stuck — ops never became majority-stable)",
        alice.lcm().stable_seq(),
        bob.lcm().stable_seq()
    );
    assert!(alice.lcm().stable_seq().0 <= 2);
    assert!(bob.lcm().stable_seq().0 <= 2);

    // 2. Crossing the partition detects instantly: Bob's context
    //    belongs to branch B's history; instance A must reject it.
    match bob.get(&mut server_a, b"doc") {
        Err(e) => println!("bob's message on branch A: ✓ DETECTED ({e})"),
        Ok(_) => return Err("crossing the fork went undetected!".into()),
    }

    // 3. Out-of-band record exchange: the checker finds divergent
    //    chains at the same sequence number.
    let evidence = check_single_history(&[alice.lcm().records(), bob.lcm().records()]);
    match evidence {
        Err(ForkEvidence::DivergentChains { seq, a, b }) => {
            println!("out-of-band check: ✓ DETECTED divergent chains at {seq} between {a} and {b}");
        }
        other => return Err(format!("expected divergence evidence, got {other:?}").into()),
    }

    println!("\nConclusion: the fork kept working only while clients stayed");
    println!("partitioned forever — any contact or comparison exposes it.");
    Ok(())
}
