//! HKDF with SHA-256 (RFC 5869).
//!
//! The TEE simulator derives sealing keys (`get-key`) from a platform
//! root secret plus the enclave measurement via HKDF; the AEAD derives
//! separate encryption and MAC subkeys from one [`SecretKey`]. Validated
//! against the RFC 5869 test vectors.

use crate::hmac::{hmac_sha256, HmacSha256};
use crate::keys::SecretKey;
use crate::sha256::DIGEST_LEN;
use crate::{CryptoError, Result};

/// HKDF-Extract: compresses input keying material into a pseudorandom
/// key using `salt` (which may be empty).
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac_sha256(salt, ikm).0
}

/// HKDF-Expand: stretches a pseudorandom key `prk` into `out.len()`
/// bytes of output keying material bound to `info`.
///
/// # Errors
///
/// Returns [`CryptoError::OutputLengthInvalid`] when more than
/// `255 * 32` bytes are requested (RFC 5869 limit).
pub fn expand(prk: &[u8; DIGEST_LEN], info: &[u8], out: &mut [u8]) -> Result<()> {
    if out.len() > 255 * DIGEST_LEN {
        return Err(CryptoError::OutputLengthInvalid);
    }
    let mut previous: Vec<u8> = Vec::new();
    let mut offset = 0usize;
    let mut counter = 1u8;
    while offset < out.len() {
        let mut mac = HmacSha256::new(prk);
        mac.update(&previous);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (out.len() - offset).min(DIGEST_LEN);
        out[offset..offset + take].copy_from_slice(&block.as_bytes()[..take]);
        previous = block.as_bytes().to_vec();
        offset += take;
        counter = counter.wrapping_add(1);
    }
    Ok(())
}

/// One-shot HKDF (extract + expand) producing a [`SecretKey`].
///
/// This is the key-ladder primitive used throughout the TEE simulator:
/// `derive_key(root, salt, "seal-key:" ++ measurement)` yields a key that
/// is deterministic in its inputs and computationally independent of any
/// key derived with a different `info`.
pub fn derive_key(ikm: &SecretKey, salt: &[u8], info: &[u8]) -> SecretKey {
    let prk = extract(salt, ikm.as_bytes());
    let mut out = [0u8; 32];
    // 32 bytes is always within the RFC expansion limit.
    expand(&prk, info, &mut out).expect("32-byte expansion cannot exceed HKDF limit");
    SecretKey::from_bytes(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    // RFC 5869 Test Case 1.
    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = hex("000102030405060708090a0b0c");
        let info = hex("f0f1f2f3f4f5f6f7f8f9");

        let prk = extract(&salt, &ikm);
        assert_eq!(
            prk.to_vec(),
            hex("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
        );

        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm).unwrap();
        assert_eq!(
            okm.to_vec(),
            hex("3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865")
        );
    }

    // RFC 5869 Test Case 2 (longer inputs/outputs).
    #[test]
    fn rfc5869_case_2() {
        let ikm: Vec<u8> = (0x00..=0x4fu8).collect();
        let salt: Vec<u8> = (0x60..=0xafu8).collect();
        let info: Vec<u8> = (0xb0..=0xffu8).collect();

        let prk = extract(&salt, &ikm);
        let mut okm = [0u8; 82];
        expand(&prk, &info, &mut okm).unwrap();
        assert_eq!(
            okm.to_vec(),
            hex(
                "b11e398dc80327a1c8e7f78c596a49344f012eda2d4efad8a050cc4c19afa97c\
59045a99cac7827271cb41c65e590e09da3275600c2f09b8367793a9aca3db71\
cc30c58179ec3e87c14c01d5c1f3434f1d87"
            )
        );
    }

    // RFC 5869 Test Case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case_3() {
        let ikm = [0x0bu8; 22];
        let prk = extract(&[], &ikm);
        let mut okm = [0u8; 42];
        expand(&prk, &[], &mut okm).unwrap();
        assert_eq!(
            okm.to_vec(),
            hex("8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8")
        );
    }

    #[test]
    fn expand_rejects_oversized_output() {
        let prk = [0u8; 32];
        let mut okm = vec![0u8; 255 * 32 + 1];
        assert_eq!(
            expand(&prk, b"", &mut okm),
            Err(CryptoError::OutputLengthInvalid)
        );
    }

    #[test]
    fn derive_key_is_deterministic_and_domain_separated() {
        let root = SecretKey::from_bytes([5u8; 32]);
        let a1 = derive_key(&root, b"salt", b"purpose-a");
        let a2 = derive_key(&root, b"salt", b"purpose-a");
        let b = derive_key(&root, b"salt", b"purpose-b");
        let c = derive_key(&root, b"other-salt", b"purpose-a");
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_ne!(a1, c);
    }
}
