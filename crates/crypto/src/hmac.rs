//! HMAC-SHA-256 (RFC 2104 / FIPS 198-1).
//!
//! Used in two places: as the tag algorithm of the encrypt-then-MAC AEAD
//! in [`crate::aead`], and as the PRF underlying [`crate::hkdf`] key
//! derivation (sealing keys, per-purpose subkeys). Validated against the
//! RFC 4231 test vectors.
//!
//! # Example
//!
//! ```
//! use lcm_crypto::hmac;
//!
//! let tag = hmac::hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
//! assert_eq!(
//!     tag.to_hex(),
//!     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
//! );
//! ```

use crate::sha256::{Digest, Sha256, BLOCK_LEN, DIGEST_LEN};

const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Incremental HMAC-SHA-256 computation.
///
/// For one-shot use see [`hmac_sha256`].
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl std::fmt::Debug for HmacSha256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HmacSha256").finish_non_exhaustive()
    }
}

impl HmacSha256 {
    /// Creates an HMAC context keyed with `key`.
    ///
    /// Keys longer than the SHA-256 block size are hashed first, per the
    /// RFC; keys of any length are accepted.
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = crate::sha256::digest(key);
            block_key[..DIGEST_LEN].copy_from_slice(digest.as_bytes());
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = block_key[i] ^ IPAD;
            opad[i] = block_key[i] ^ OPAD;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        let mut outer = Sha256::new();
        outer.update(&opad);
        HmacSha256 { inner, outer }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC and returns the 32-byte tag.
    pub fn finalize(mut self) -> Digest {
        let inner_digest = self.inner.finalize();
        self.outer.update(inner_digest.as_bytes());
        self.outer.finalize()
    }

    /// Completes the MAC and verifies it against `expected` in constant
    /// time.
    ///
    /// # Errors
    ///
    /// Returns [`crate::CryptoError::AuthenticationFailed`] when the tag
    /// does not match.
    pub fn verify(self, expected: &[u8]) -> crate::Result<()> {
        let tag = self.finalize();
        if crate::ct::ct_eq(tag.as_bytes(), expected) {
            Ok(())
        } else {
            Err(crate::CryptoError::AuthenticationFailed)
        }
    }
}

/// One-shot HMAC-SHA-256 of `data` under `key`.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1..=25u8).collect();
        let data = [0xcdu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaau8; 131];
        let data = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let tag = hmac_sha256(&key, data);
        assert_eq!(
            tag.to_hex(),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"The quick brown fox ");
        mac.update(b"jumps over the lazy dog");
        assert_eq!(
            mac.finalize(),
            hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog")
        );
    }

    #[test]
    fn verify_accepts_good_tag() {
        let tag = hmac_sha256(b"k", b"m");
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"m");
        assert!(mac.verify(tag.as_bytes()).is_ok());
    }

    #[test]
    fn verify_rejects_bad_tag() {
        let mut tag = hmac_sha256(b"k", b"m").0;
        tag[0] ^= 1;
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"m");
        assert_eq!(
            mac.verify(&tag),
            Err(crate::CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn verify_rejects_truncated_tag() {
        let tag = hmac_sha256(b"k", b"m");
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"m");
        assert!(mac.verify(&tag.as_bytes()[..16]).is_err());
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
