//! ChaCha20 stream cipher (RFC 7539).
//!
//! Provides the confidentiality half of the [`crate::aead`] construction.
//! The implementation follows RFC 7539 §2.3/§2.4 (32-byte key, 12-byte
//! nonce, 32-bit block counter) and is validated against the RFC test
//! vectors.

use crate::{CryptoError, Result};

/// ChaCha20 key length in bytes.
pub const KEY_LEN: usize = 32;

/// ChaCha20 nonce length in bytes (RFC 7539 variant).
pub const NONCE_LEN: usize = 12;

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha20_block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }

    let mut working = state;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs `data` in place with the ChaCha20 keystream for
/// `(key, nonce, initial_counter)`.
///
/// Encryption and decryption are the same operation. The caller is
/// responsible for never reusing a `(key, nonce)` pair; the AEAD layer
/// enforces this with random nonces.
///
/// # Errors
///
/// Returns [`CryptoError::NonceExhausted`] if `data` is long enough to
/// overflow the 32-bit block counter (≈ 256 GiB), which would wrap the
/// keystream.
pub fn xor_keystream(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) -> Result<()> {
    let blocks_needed = data.len().div_ceil(64) as u64;
    if u64::from(initial_counter) + blocks_needed > u64::from(u32::MAX) + 1 {
        return Err(CryptoError::NonceExhausted);
    }
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(64) {
        let keystream = chacha20_block(key, counter, nonce);
        for (b, k) in chunk.iter_mut().zip(keystream.iter()) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc7539_block_test_vector() {
        // RFC 7539 §2.3.2
        let key: Vec<u8> = (0..32u8).collect();
        let mut key_arr = [0u8; 32];
        key_arr.copy_from_slice(&key);
        let nonce = hex("000000090000004a00000000");
        let mut nonce_arr = [0u8; 12];
        nonce_arr.copy_from_slice(&nonce);

        let block = chacha20_block(&key_arr, 1, &nonce_arr);
        let expected = hex(
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e",
        );
        assert_eq!(&block[..], &expected[..]);
    }

    #[test]
    fn rfc7539_encryption_test_vector() {
        // RFC 7539 §2.4.2
        let key: Vec<u8> = (0..32u8).collect();
        let mut key_arr = [0u8; 32];
        key_arr.copy_from_slice(&key);
        let nonce = hex("000000000000004a00000000");
        let mut nonce_arr = [0u8; 12];
        nonce_arr.copy_from_slice(&nonce);

        let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.".to_vec();
        xor_keystream(&key_arr, &nonce_arr, 1, &mut data).unwrap();
        let expected = hex(
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b\
f91b65c5524733ab8f593dabcd62b3571639d624e65152ab8f530c359f0861d8\
07ca0dbf500d6a6156a38e088a22b65e52bc514d16ccf806818ce91ab7793736\
5af90bbf74a35be6b40b8eedf2785e42874d",
        );
        assert_eq!(data, expected);
    }

    #[test]
    fn roundtrip() {
        let key = [9u8; 32];
        let nonce = [3u8; 12];
        let plaintext = b"some payload that spans more than one 64-byte chacha block to exercise the chunk loop properly".to_vec();
        let mut buf = plaintext.clone();
        xor_keystream(&key, &nonce, 0, &mut buf).unwrap();
        assert_ne!(buf, plaintext);
        xor_keystream(&key, &nonce, 0, &mut buf).unwrap();
        assert_eq!(buf, plaintext);
    }

    #[test]
    fn counter_overflow_rejected() {
        let key = [0u8; 32];
        let nonce = [0u8; 12];
        let mut data = vec![0u8; 128];
        assert_eq!(
            xor_keystream(&key, &nonce, u32::MAX, &mut data),
            Err(CryptoError::NonceExhausted)
        );
    }

    #[test]
    fn empty_data_is_noop() {
        let key = [1u8; 32];
        let nonce = [2u8; 12];
        let mut data: Vec<u8> = vec![];
        xor_keystream(&key, &nonce, 0, &mut data).unwrap();
        assert!(data.is_empty());
    }

    #[test]
    fn different_counters_differ() {
        let key = [7u8; 32];
        let nonce = [8u8; 12];
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        xor_keystream(&key, &nonce, 0, &mut a).unwrap();
        xor_keystream(&key, &nonce, 1, &mut b).unwrap();
        assert_ne!(a, b);
    }
}
