//! Authenticated encryption with associated data.
//!
//! This module provides the `auth-encrypt` / `auth-decrypt` pair that the
//! LCM paper assumes (§4.1): "authenticated encryption produces a
//! ciphertext integrated with a message-authentication code; it protects
//! the content from leaking information to S and prevents that S tampers
//! with messages or stored data by altering ciphertext."
//!
//! The paper's implementation uses AES-GCM-128 from the SGX SDK. Since
//! this reproduction implements all cryptography from scratch, we use the
//! equivalent generic composition: **ChaCha20 encryption, then
//! HMAC-SHA-256 over `aad ‖ nonce ‖ ciphertext ‖ len(aad)`** under an
//! independent MAC subkey (encrypt-then-MAC, the provably-sound order).
//! Both subkeys are derived from one 32-byte [`SecretKey`] via HKDF with
//! distinct labels. The security contract visible to the protocol —
//! IND-CCA confidentiality plus ciphertext integrity with associated
//! data — is the same as AES-GCM's.
//!
//! Wire layout of a sealed blob: `nonce(12) ‖ ciphertext ‖ tag(32)`.

use rand::RngCore;
use serde::{Deserialize, Serialize};

use crate::chacha20::{self, NONCE_LEN};
use crate::hkdf;
use crate::hmac::HmacSha256;
use crate::keys::SecretKey;
use crate::sha256::DIGEST_LEN;
use crate::{CryptoError, Result};

/// Length of the authentication tag, in bytes.
pub const TAG_LEN: usize = DIGEST_LEN;

/// Minimum length of any valid sealed blob (`nonce ‖ tag` with empty
/// ciphertext).
pub const MIN_SEALED_LEN: usize = NONCE_LEN + TAG_LEN;

/// An AEAD key: an encryption subkey and a MAC subkey derived from one
/// master secret.
///
/// # Example
///
/// ```
/// use lcm_crypto::aead::AeadKey;
/// use lcm_crypto::keys::SecretKey;
///
/// let master = SecretKey::generate();
/// let key = AeadKey::from_secret(&master);
/// # let _ = key;
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct AeadKey {
    enc: [u8; 32],
    mac: [u8; 32],
}

impl std::fmt::Debug for AeadKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AeadKey(<redacted>)")
    }
}

impl AeadKey {
    /// Derives the encryption and MAC subkeys from `master`.
    pub fn from_secret(master: &SecretKey) -> Self {
        let enc = hkdf::derive_key(master, b"lcm-aead", b"enc-subkey");
        let mac = hkdf::derive_key(master, b"lcm-aead", b"mac-subkey");
        AeadKey {
            enc: *enc.as_bytes(),
            mac: *mac.as_bytes(),
        }
    }
}

/// Encrypts and authenticates `plaintext`, binding `aad` into the tag.
///
/// Returns `nonce ‖ ciphertext ‖ tag`. A fresh random 96-bit nonce is
/// drawn from the OS RNG per call.
///
/// # Errors
///
/// Returns [`CryptoError::NonceExhausted`] only for plaintexts so large
/// they would overflow the ChaCha20 block counter (≈ 256 GiB).
pub fn auth_encrypt(key: &AeadKey, plaintext: &[u8], aad: &[u8]) -> Result<Vec<u8>> {
    let mut nonce = [0u8; NONCE_LEN];
    rand::thread_rng().fill_bytes(&mut nonce);
    auth_encrypt_with_nonce(key, &nonce, plaintext, aad)
}

/// Deterministic-nonce variant of [`auth_encrypt`], used by tests and by
/// the TEE simulator's deterministic mode.
///
/// # Errors
///
/// Same as [`auth_encrypt`]. Reusing a nonce under the same key destroys
/// confidentiality; callers other than tests should prefer
/// [`auth_encrypt`].
pub fn auth_encrypt_with_nonce(
    key: &AeadKey,
    nonce: &[u8; NONCE_LEN],
    plaintext: &[u8],
    aad: &[u8],
) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(NONCE_LEN + plaintext.len() + TAG_LEN);
    out.extend_from_slice(nonce);
    out.extend_from_slice(plaintext);
    chacha20::xor_keystream(&key.enc, nonce, 1, &mut out[NONCE_LEN..])?;

    let tag = compute_tag(key, nonce, &out[NONCE_LEN..], aad);
    out.extend_from_slice(&tag);
    Ok(out)
}

/// Verifies and decrypts a blob produced by [`auth_encrypt`].
///
/// # Errors
///
/// Returns [`CryptoError::AuthenticationFailed`] when the blob is
/// malformed, the tag does not verify, or `aad` differs from the value
/// used at encryption time.
pub fn auth_decrypt(key: &AeadKey, sealed: &[u8], aad: &[u8]) -> Result<Vec<u8>> {
    if sealed.len() < MIN_SEALED_LEN {
        return Err(CryptoError::AuthenticationFailed);
    }
    let (nonce_bytes, rest) = sealed.split_at(NONCE_LEN);
    let (ciphertext, tag) = rest.split_at(rest.len() - TAG_LEN);
    let mut nonce = [0u8; NONCE_LEN];
    nonce.copy_from_slice(nonce_bytes);

    let expected = compute_tag(key, &nonce, ciphertext, aad);
    if !crate::ct::ct_eq(&expected, tag) {
        return Err(CryptoError::AuthenticationFailed);
    }

    let mut plaintext = ciphertext.to_vec();
    chacha20::xor_keystream(&key.enc, &nonce, 1, &mut plaintext)?;
    Ok(plaintext)
}

fn compute_tag(
    key: &AeadKey,
    nonce: &[u8; NONCE_LEN],
    ciphertext: &[u8],
    aad: &[u8],
) -> [u8; TAG_LEN] {
    let mut mac = HmacSha256::new(&key.mac);
    mac.update(aad);
    mac.update(nonce);
    mac.update(ciphertext);
    // Unambiguous framing: append the AAD length so (aad, ciphertext)
    // splits cannot collide.
    mac.update(&(aad.len() as u64).to_be_bytes());
    mac.update(&(ciphertext.len() as u64).to_be_bytes());
    mac.finalize().0
}

/// A sealed blob paired with the associated data label it was bound to.
///
/// Higher layers (TEE sealing, protocol state blobs) use this as a
/// self-describing container in [`serde`]-encoded form.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SealedBox {
    /// Domain-separation label bound as associated data.
    pub label: String,
    /// `nonce ‖ ciphertext ‖ tag` as produced by [`auth_encrypt`].
    pub blob: Vec<u8>,
}

impl SealedBox {
    /// Seals `plaintext` under `key`, binding `label` as associated data.
    ///
    /// # Errors
    ///
    /// Propagates [`auth_encrypt`] errors.
    pub fn seal(key: &AeadKey, label: &str, plaintext: &[u8]) -> Result<Self> {
        Ok(SealedBox {
            label: label.to_owned(),
            blob: auth_encrypt(key, plaintext, label.as_bytes())?,
        })
    }

    /// Opens the box, verifying both the tag and that `label` matches
    /// the label the box was sealed under.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::AuthenticationFailed`] on any mismatch.
    pub fn open(&self, key: &AeadKey, label: &str) -> Result<Vec<u8>> {
        if self.label != label {
            return Err(CryptoError::AuthenticationFailed);
        }
        auth_decrypt(key, &self.blob, label.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> AeadKey {
        AeadKey::from_secret(&SecretKey::from_bytes([0x11; 32]))
    }

    #[test]
    fn roundtrip() {
        let sealed = auth_encrypt(&key(), b"hello world", b"aad").unwrap();
        let opened = auth_decrypt(&key(), &sealed, b"aad").unwrap();
        assert_eq!(opened, b"hello world");
    }

    #[test]
    fn empty_plaintext_roundtrip() {
        let sealed = auth_encrypt(&key(), b"", b"aad").unwrap();
        assert_eq!(sealed.len(), MIN_SEALED_LEN);
        assert_eq!(auth_decrypt(&key(), &sealed, b"aad").unwrap(), b"");
    }

    #[test]
    fn tamper_ciphertext_detected() {
        let mut sealed = auth_encrypt(&key(), b"payload", b"").unwrap();
        sealed[NONCE_LEN] ^= 0x01;
        assert_eq!(
            auth_decrypt(&key(), &sealed, b""),
            Err(CryptoError::AuthenticationFailed)
        );
    }

    #[test]
    fn tamper_tag_detected() {
        let mut sealed = auth_encrypt(&key(), b"payload", b"").unwrap();
        let last = sealed.len() - 1;
        sealed[last] ^= 0x80;
        assert!(auth_decrypt(&key(), &sealed, b"").is_err());
    }

    #[test]
    fn tamper_nonce_detected() {
        let mut sealed = auth_encrypt(&key(), b"payload", b"").unwrap();
        sealed[0] ^= 0xff;
        assert!(auth_decrypt(&key(), &sealed, b"").is_err());
    }

    #[test]
    fn wrong_aad_detected() {
        let sealed = auth_encrypt(&key(), b"payload", b"context-a").unwrap();
        assert!(auth_decrypt(&key(), &sealed, b"context-b").is_err());
    }

    #[test]
    fn wrong_key_detected() {
        let sealed = auth_encrypt(&key(), b"payload", b"").unwrap();
        let other = AeadKey::from_secret(&SecretKey::from_bytes([0x22; 32]));
        assert!(auth_decrypt(&other, &sealed, b"").is_err());
    }

    #[test]
    fn truncated_blob_rejected() {
        let sealed = auth_encrypt(&key(), b"payload", b"").unwrap();
        for cut in [0, 1, NONCE_LEN, MIN_SEALED_LEN - 1] {
            assert!(
                auth_decrypt(&key(), &sealed[..cut], b"").is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn nonces_are_fresh() {
        let a = auth_encrypt(&key(), b"same", b"").unwrap();
        let b = auth_encrypt(&key(), b"same", b"").unwrap();
        assert_ne!(a, b, "two encryptions of the same message must differ");
    }

    #[test]
    fn deterministic_nonce_variant_is_reproducible() {
        let nonce = [7u8; NONCE_LEN];
        let a = auth_encrypt_with_nonce(&key(), &nonce, b"x", b"y").unwrap();
        let b = auth_encrypt_with_nonce(&key(), &nonce, b"x", b"y").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn aad_ciphertext_framing_is_unambiguous() {
        // (aad="ab", pt="c...") and (aad="a", pt="bc...") must not produce
        // interchangeable tags even with an attacker-chosen split.
        let nonce = [9u8; NONCE_LEN];
        let sealed = auth_encrypt_with_nonce(&key(), &nonce, b"xyz", b"ab").unwrap();
        assert!(auth_decrypt(&key(), &sealed, b"a").is_err());
    }

    #[test]
    fn sealed_box_roundtrip() {
        let boxed = SealedBox::seal(&key(), "state-blob", b"contents").unwrap();
        assert_eq!(boxed.open(&key(), "state-blob").unwrap(), b"contents");
    }

    #[test]
    fn sealed_box_label_mismatch() {
        let boxed = SealedBox::seal(&key(), "state-blob", b"contents").unwrap();
        assert!(boxed.open(&key(), "other-label").is_err());
    }

    #[test]
    fn sealed_box_label_swap_attack() {
        // Swapping the declared label to match the open() call must still
        // fail because the original label is bound into the AAD.
        let mut boxed = SealedBox::seal(&key(), "state-blob", b"contents").unwrap();
        boxed.label = "other-label".to_owned();
        assert!(boxed.open(&key(), "other-label").is_err());
    }

    #[test]
    fn large_payload_roundtrip() {
        let payload = vec![0xa5u8; 1 << 16];
        let sealed = auth_encrypt(&key(), &payload, b"big").unwrap();
        assert_eq!(auth_decrypt(&key(), &sealed, b"big").unwrap(), payload);
    }
}
