//! Constant-time comparison helpers.
//!
//! Tag and key comparisons must not leak the position of the first
//! differing byte through timing; [`ct_eq`] compares in time dependent
//! only on the input lengths.

/// Compares two byte slices in constant time (with respect to content).
///
/// Returns `false` immediately when the lengths differ — length is
/// public information for every use in this workspace (tags and keys
/// have fixed, known sizes).
#[must_use]
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    // Reduce without branching on the accumulated difference.
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(ct_eq(b"same bytes", b"same bytes"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn unequal_content() {
        assert!(!ct_eq(b"same bytes", b"same bytez"));
        assert!(!ct_eq(b"xame bytes", b"same bytes"));
    }

    #[test]
    fn unequal_length() {
        assert!(!ct_eq(b"short", b"longer slice"));
        assert!(!ct_eq(b"a", b""));
    }
}
