//! SHA-256 (FIPS 180-4), implemented from scratch.
//!
//! This is the `hash()` of the LCM paper: a collision-resistant hash used
//! to build the operation hash chain `h ← hash(h ‖ o ‖ t ‖ i)` inside the
//! trusted execution context. The implementation is a straightforward,
//! allocation-free Merkle–Damgård compression loop; it is validated
//! against the FIPS 180-4 example vectors and a NIST long-message vector
//! in the module tests.
//!
//! # Example
//!
//! ```
//! use lcm_crypto::sha256::Sha256;
//!
//! let mut hasher = Sha256::new();
//! hasher.update(b"abc");
//! let digest = hasher.finalize();
//! assert_eq!(
//!     digest.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

/// Number of bytes in a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

/// Number of bytes in one SHA-256 message block.
pub const BLOCK_LEN: usize = 64;

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// A 32-byte SHA-256 digest.
///
/// The hash-chain values `h` and `hc` exchanged by the LCM protocol are
/// values of this type. It is a plain data structure: comparable,
/// hashable, serializable, and printable as lowercase hex.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// Digest consisting of all zero bytes, used as the hash-chain
    /// genesis value `h0` in the protocol.
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Renders the digest as lowercase hexadecimal.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in self.0 {
            use std::fmt::Write;
            let _ = write!(s, "{b:02x}");
        }
        s
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }
}

/// Incremental SHA-256 hasher.
///
/// Use [`Sha256::update`] to absorb data and [`Sha256::finalize`] to
/// produce the [`Digest`]. For one-shot hashing see [`digest`].
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; BLOCK_LEN],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sha256")
            .field("total_len", &self.total_len)
            .finish_non_exhaustive()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; BLOCK_LEN],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;

        if self.buffer_len > 0 {
            let take = (BLOCK_LEN - self.buffer_len).min(input.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&input[..take]);
            self.buffer_len += take;
            input = &input[take..];
            if self.buffer_len == BLOCK_LEN {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
            if input.is_empty() {
                return;
            }
        }

        let mut chunks = input.chunks_exact(BLOCK_LEN);
        for block in &mut chunks {
            let mut arr = [0u8; BLOCK_LEN];
            arr.copy_from_slice(block);
            self.compress(&arr);
        }
        let rest = chunks.remainder();
        self.buffer[..rest.len()].copy_from_slice(rest);
        self.buffer_len = rest.len();
    }

    /// Completes the hash and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        self.update_padding();
        let mut len_block = [0u8; 8];
        len_block.copy_from_slice(&bit_len.to_be_bytes());
        // After update_padding the buffer has exactly 56 bytes pending.
        self.buffer[56..64].copy_from_slice(&len_block);
        let block = self.buffer;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn update_padding(&mut self) {
        self.buffer[self.buffer_len] = 0x80;
        let after_marker = self.buffer_len + 1;
        if after_marker > 56 {
            // Not enough room for the length field: pad this block out,
            // compress it, and continue in a fresh block.
            for b in &mut self.buffer[after_marker..] {
                *b = 0;
            }
            let block = self.buffer;
            self.compress(&block);
            self.buffer = [0u8; BLOCK_LEN];
        } else {
            for b in &mut self.buffer[after_marker..56] {
                *b = 0;
            }
        }
        self.buffer_len = 56;
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);

            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
///
/// # Example
///
/// ```
/// let d = lcm_crypto::sha256::digest(b"");
/// assert_eq!(
///     d.to_hex(),
///     "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
/// );
/// ```
pub fn digest(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hashes the concatenation of several byte slices without an
/// intermediate allocation, e.g. the LCM chain step
/// `hash(h ‖ o ‖ t ‖ i)`.
pub fn digest_parts(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            digest(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            digest(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            digest(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_896_bits() {
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn\
hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            digest(msg).to_hex(),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            digest(&msg).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        // Split at many awkward boundaries.
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 999, 1000] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), digest(&data), "split at {split}");
        }
    }

    #[test]
    fn digest_parts_equals_concat() {
        let a = b"hello ";
        let b = b"world";
        let mut concat = Vec::new();
        concat.extend_from_slice(a);
        concat.extend_from_slice(b);
        assert_eq!(digest_parts(&[a, b]), digest(&concat));
    }

    #[test]
    fn padding_boundary_lengths() {
        // Lengths around the 56-byte padding boundary exercise the
        // two-block padding path.
        for len in 50..70 {
            let data = vec![0xabu8; len];
            let mut h = Sha256::new();
            for byte in &data {
                h.update(std::slice::from_ref(byte));
            }
            assert_eq!(h.finalize(), digest(&data), "len {len}");
        }
    }

    #[test]
    fn digest_display_and_debug() {
        let d = digest(b"abc");
        assert!(format!("{d}").starts_with("ba7816bf"));
        assert!(format!("{d:?}").starts_with("Digest(ba7816bf"));
    }

    #[test]
    fn digest_from_bytes_roundtrip() {
        let raw = hex("ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
        let mut arr = [0u8; 32];
        arr.copy_from_slice(&raw);
        let d = Digest::from(arr);
        assert_eq!(d.as_bytes(), &raw[..]);
        assert_eq!(d, digest(b"abc"));
    }

    #[test]
    fn zero_digest_is_all_zero() {
        assert!(Digest::ZERO.as_bytes().iter().all(|&b| b == 0));
    }
}
