//! Cryptographic substrate for the LCM reproduction.
//!
//! The LCM protocol (Brandenburger et al., DSN 2017) assumes three
//! primitives and nothing else:
//!
//! * a collision-resistant hash `hash()` — the paper uses SHA-256,
//!   implemented here in [`sha256`];
//! * authenticated encryption `auth-encrypt`/`auth-decrypt` — the paper
//!   uses AES-GCM-128; we provide an equivalent AEAD built from ChaCha20
//!   (RFC 7539 block function) with an HMAC-SHA-256 tag in
//!   encrypt-then-MAC composition, see [`aead`];
//! * a secure random generator for key material, see [`keys`].
//!
//! All primitives are implemented from scratch so that the trusted
//! execution environment simulator stays fully self-contained and
//! deterministic. Each primitive is validated against published test
//! vectors (FIPS 180-4, RFC 4231, RFC 5869, RFC 7539) in its module
//! tests.
//!
//! # Example
//!
//! ```
//! use lcm_crypto::aead::{self, AeadKey};
//! use lcm_crypto::keys::SecretKey;
//!
//! # fn main() -> Result<(), lcm_crypto::CryptoError> {
//! let key = AeadKey::from_secret(&SecretKey::from_bytes([7u8; 32]));
//! let sealed = aead::auth_encrypt(&key, b"operation payload", b"context")?;
//! let opened = aead::auth_decrypt(&key, &sealed, b"context")?;
//! assert_eq!(opened, b"operation payload");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod ct;
pub mod hkdf;
pub mod hmac;
pub mod keys;
pub mod sha256;

mod error;

pub use error::CryptoError;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, CryptoError>;
