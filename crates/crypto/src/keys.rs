//! Symmetric key material and generation.
//!
//! The LCM protocol uses three symmetric keys (paper §4.1): the
//! communication key `kC`, the protocol-state key `kP`, and the TEE
//! sealing key `kS`. All three are 32-byte secrets represented by
//! [`SecretKey`]; the type system distinguishes their *uses* at the
//! protocol layer (`lcm-core`) rather than here.

use std::fmt;

use rand::RngCore;
use serde::{Deserialize, Serialize};

/// Length of every symmetric key in this workspace, in bytes.
pub const KEY_LEN: usize = 32;

/// A 32-byte symmetric secret key.
///
/// `Debug`/`Display` never reveal the key bytes. Keys are comparable so
/// that tests and the TEE simulator can assert key equality; comparison
/// is constant time.
#[derive(Clone, Serialize, Deserialize)]
pub struct SecretKey([u8; KEY_LEN]);

impl SecretKey {
    /// Wraps raw bytes as a key.
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        SecretKey(bytes)
    }

    /// Generates a fresh random key from the OS RNG.
    pub fn generate() -> Self {
        let mut bytes = [0u8; KEY_LEN];
        rand::thread_rng().fill_bytes(&mut bytes);
        SecretKey(bytes)
    }

    /// Generates a key from a caller-provided RNG (deterministic tests,
    /// simulated TEE key ladders).
    pub fn generate_with<R: RngCore>(rng: &mut R) -> Self {
        let mut bytes = [0u8; KEY_LEN];
        rng.fill_bytes(&mut bytes);
        SecretKey(bytes)
    }

    /// Returns the raw key bytes.
    ///
    /// Exposed because the TEE simulator must seal/unseal keys; handle
    /// with care.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }
}

impl PartialEq for SecretKey {
    fn eq(&self, other: &Self) -> bool {
        crate::ct::ct_eq(&self.0, &other.0)
    }
}

impl Eq for SecretKey {}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SecretKey(<redacted>)")
    }
}

impl From<[u8; KEY_LEN]> for SecretKey {
    fn from(bytes: [u8; KEY_LEN]) -> Self {
        SecretKey(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn debug_redacts_key_material() {
        let key = SecretKey::from_bytes([0x42; KEY_LEN]);
        let rendered = format!("{key:?}");
        assert!(!rendered.contains("42"));
        assert!(rendered.contains("redacted"));
    }

    #[test]
    fn generate_with_is_deterministic() {
        let mut rng1 = StdRng::seed_from_u64(11);
        let mut rng2 = StdRng::seed_from_u64(11);
        assert_eq!(
            SecretKey::generate_with(&mut rng1),
            SecretKey::generate_with(&mut rng2)
        );
    }

    #[test]
    fn generate_produces_distinct_keys() {
        assert_ne!(SecretKey::generate(), SecretKey::generate());
    }

    #[test]
    fn equality_is_by_content() {
        let a = SecretKey::from_bytes([1; KEY_LEN]);
        let b = SecretKey::from_bytes([1; KEY_LEN]);
        let c = SecretKey::from_bytes([2; KEY_LEN]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn serde_roundtrip() {
        let key = SecretKey::generate();
        let json = serde_json_like_roundtrip(&key);
        assert_eq!(key, json);
    }

    // Avoids a serde_json dependency: roundtrip through the bincode-like
    // wire codec used across the workspace would be circular here, so use
    // the derived Serialize impl with a minimal in-memory format.
    fn serde_json_like_roundtrip(key: &SecretKey) -> SecretKey {
        // Serialize is derived over [u8; 32]; just clone through bytes.
        SecretKey::from_bytes(*key.as_bytes())
    }
}
