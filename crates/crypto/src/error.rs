use std::error::Error;
use std::fmt;

/// Error type for all fallible cryptographic operations in this crate.
///
/// Decryption failures deliberately carry no detail beyond the variant:
/// distinguishing "bad tag" from "bad ciphertext structure" to an
/// adversary is a classic padding-oracle-shaped mistake, and the LCM
/// protocol treats every authentication failure identically (it halts,
/// accusing the server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CryptoError {
    /// An authentication tag did not verify, or a ciphertext was
    /// malformed (truncated, wrong framing).
    AuthenticationFailed,
    /// Key material had the wrong length for the requested primitive.
    InvalidKeyLength {
        /// The length required by the primitive, in bytes.
        expected: usize,
        /// The length that was actually supplied.
        actual: usize,
    },
    /// A nonce or counter would repeat, which would be catastrophic for
    /// the stream cipher; the caller must rotate keys first.
    NonceExhausted,
    /// Requested output length is out of range for the primitive
    /// (e.g. HKDF limits expansion to 255 blocks).
    OutputLengthInvalid,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::AuthenticationFailed => {
                write!(f, "authentication failed")
            }
            CryptoError::InvalidKeyLength { expected, actual } => {
                write!(
                    f,
                    "invalid key length: expected {expected} bytes, got {actual}"
                )
            }
            CryptoError::NonceExhausted => write!(f, "nonce space exhausted"),
            CryptoError::OutputLengthInvalid => {
                write!(f, "requested output length is invalid")
            }
        }
    }
}

impl Error for CryptoError {}
