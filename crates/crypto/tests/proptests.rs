//! Property-based tests over the cryptographic primitives.

use lcm_crypto::aead::{self, AeadKey};
use lcm_crypto::chacha20;
use lcm_crypto::hkdf;
use lcm_crypto::keys::SecretKey;
use lcm_crypto::sha256::{self, Sha256};
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = SecretKey> {
    any::<[u8; 32]>().prop_map(SecretKey::from_bytes)
}

proptest! {
    // Pinned case count so CI time is bounded; the runner's seed is
    // derived deterministically from each test's name.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hashing in one shot equals hashing over arbitrary chunkings.
    #[test]
    fn sha256_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                 splits in proptest::collection::vec(0usize..2048, 0..8)) {
        let oneshot = sha256::digest(&data);
        let mut hasher = Sha256::new();
        let mut cursor = 0usize;
        let mut points: Vec<usize> = splits.into_iter().map(|s| s % (data.len() + 1)).collect();
        points.sort_unstable();
        for p in points {
            if p > cursor {
                hasher.update(&data[cursor..p]);
                cursor = p;
            }
        }
        hasher.update(&data[cursor..]);
        prop_assert_eq!(hasher.finalize(), oneshot);
    }

    /// digest_parts over any partition equals digest of the concatenation.
    #[test]
    fn sha256_parts_invariant(parts in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..128), 0..8)) {
        let concat: Vec<u8> = parts.iter().flatten().copied().collect();
        let refs: Vec<&[u8]> = parts.iter().map(|p| p.as_slice()).collect();
        prop_assert_eq!(sha256::digest_parts(&refs), sha256::digest(&concat));
    }

    /// AEAD roundtrip succeeds for arbitrary payload/AAD.
    #[test]
    fn aead_roundtrip(master in arb_key(),
                      plaintext in proptest::collection::vec(any::<u8>(), 0..1024),
                      aad in proptest::collection::vec(any::<u8>(), 0..64)) {
        let key = AeadKey::from_secret(&master);
        let sealed = aead::auth_encrypt(&key, &plaintext, &aad).unwrap();
        prop_assert_eq!(aead::auth_decrypt(&key, &sealed, &aad).unwrap(), plaintext);
    }

    /// Any single-bit flip anywhere in the sealed blob is detected.
    #[test]
    fn aead_bitflip_detected(master in arb_key(),
                             plaintext in proptest::collection::vec(any::<u8>(), 1..256),
                             bit in 0usize..4096) {
        let key = AeadKey::from_secret(&master);
        let mut sealed = aead::auth_encrypt(&key, &plaintext, b"aad").unwrap();
        let bit = bit % (sealed.len() * 8);
        sealed[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(aead::auth_decrypt(&key, &sealed, b"aad").is_err());
    }

    /// Decryption under a different key always fails.
    #[test]
    fn aead_wrong_key_fails(k1 in arb_key(), k2 in arb_key(),
                            plaintext in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assume!(k1 != k2);
        let sealed = aead::auth_encrypt(&AeadKey::from_secret(&k1), &plaintext, b"").unwrap();
        prop_assert!(aead::auth_decrypt(&AeadKey::from_secret(&k2), &sealed, b"").is_err());
    }

    /// ChaCha20 is an involution: applying the keystream twice restores
    /// the plaintext.
    #[test]
    fn chacha20_involution(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                           data in proptest::collection::vec(any::<u8>(), 0..512),
                           counter in 0u32..1000) {
        let mut buf = data.clone();
        chacha20::xor_keystream(&key, &nonce, counter, &mut buf).unwrap();
        chacha20::xor_keystream(&key, &nonce, counter, &mut buf).unwrap();
        prop_assert_eq!(buf, data);
    }

    /// HKDF key derivation is injective over labels in practice: distinct
    /// info labels yield distinct keys.
    #[test]
    fn hkdf_label_separation(root in arb_key(), a in ".{1,32}", b in ".{1,32}") {
        prop_assume!(a != b);
        let ka = hkdf::derive_key(&root, b"salt", a.as_bytes());
        let kb = hkdf::derive_key(&root, b"salt", b.as_bytes());
        prop_assert_ne!(ka, kb);
    }
}
