//! Known-answer tests anchoring the hand-rolled primitives against the
//! published standards: SHA-256 (FIPS 180-4 / NIST CAVS), HMAC-SHA-256
//! (RFC 4231), HKDF-SHA-256 (RFC 5869), and the ChaCha20 block/
//! keystream function (RFC 7539). The property tests in
//! `tests/proptests.rs` cover invariants; these pin exact outputs so a
//! silent miscompilation or refactor of the primitives cannot pass.

use lcm_crypto::aead::{self, AeadKey};
use lcm_crypto::chacha20;
use lcm_crypto::hkdf;
use lcm_crypto::hmac::hmac_sha256;
use lcm_crypto::keys::SecretKey;
use lcm_crypto::sha256;

fn unhex(s: &str) -> Vec<u8> {
    let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
    assert!(s.len() % 2 == 0, "odd hex length");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("bad hex"))
        .collect()
}

// --------------------------------------------------------------------------
// SHA-256 — FIPS 180-4 examples and NIST CAVS vectors.

#[test]
fn sha256_fips_180_4_vectors() {
    let cases: &[(&[u8], &str)] = &[
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
              ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
    ];
    for (msg, expected) in cases {
        assert_eq!(
            sha256::digest(msg).to_hex(),
            *expected,
            "SHA-256({:?})",
            String::from_utf8_lossy(msg)
        );
    }
}

#[test]
fn sha256_million_a() {
    let mut hasher = sha256::Sha256::new();
    let chunk = [b'a'; 1000];
    for _ in 0..1000 {
        hasher.update(&chunk);
    }
    assert_eq!(
        hasher.finalize().to_hex(),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    );
}

// --------------------------------------------------------------------------
// HMAC-SHA-256 — RFC 4231 test cases 1-7.

#[test]
fn hmac_sha256_rfc4231_vectors() {
    struct Case {
        key: Vec<u8>,
        data: Vec<u8>,
        mac: &'static str,
        truncate_to: usize,
    }
    let cases = [
        // Test Case 1
        Case {
            key: vec![0x0b; 20],
            data: b"Hi There".to_vec(),
            mac: "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
            truncate_to: 32,
        },
        // Test Case 2: short key, short data.
        Case {
            key: b"Jefe".to_vec(),
            data: b"what do ya want for nothing?".to_vec(),
            mac: "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
            truncate_to: 32,
        },
        // Test Case 3: 0xaa key, 0xdd data.
        Case {
            key: vec![0xaa; 20],
            data: vec![0xdd; 50],
            mac: "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
            truncate_to: 32,
        },
        // Test Case 4: incrementing key, 0xcd data.
        Case {
            key: (0x01..=0x19).collect(),
            data: vec![0xcd; 50],
            mac: "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
            truncate_to: 32,
        },
        // Test Case 5: output truncated to 128 bits.
        Case {
            key: vec![0x0c; 20],
            data: b"Test With Truncation".to_vec(),
            mac: "a3b6167473100ee06e0c796c2955552b",
            truncate_to: 16,
        },
        // Test Case 6: key larger than one block.
        Case {
            key: vec![0xaa; 131],
            data: b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
            mac: "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
            truncate_to: 32,
        },
        // Test Case 7: large key and large data.
        Case {
            key: vec![0xaa; 131],
            data: b"This is a test using a larger than block-size key and a larger than \
                    block-size data. The key needs to be hashed before being used by the \
                    HMAC algorithm."
                .to_vec(),
            mac: "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
            truncate_to: 32,
        },
    ];
    for (i, case) in cases.iter().enumerate() {
        let mac = hmac_sha256(&case.key, &case.data);
        assert_eq!(
            mac.as_bytes()[..case.truncate_to],
            unhex(case.mac),
            "RFC 4231 test case {}",
            i + 1
        );
    }
}

// --------------------------------------------------------------------------
// HKDF-SHA-256 — RFC 5869 test cases 1-3.

#[test]
fn hkdf_sha256_rfc5869_case_1() {
    let ikm = vec![0x0b; 22];
    let salt = unhex("000102030405060708090a0b0c");
    let info = unhex("f0f1f2f3f4f5f6f7f8f9");
    let prk = hkdf::extract(&salt, &ikm);
    assert_eq!(
        prk.to_vec(),
        unhex("077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5")
    );
    let mut okm = [0u8; 42];
    hkdf::expand(&prk, &info, &mut okm).unwrap();
    assert_eq!(
        okm.to_vec(),
        unhex(
            "3cb25f25faacd57a90434f64d0362f2a\
             2d2d0a90cf1a5a4c5db02d56ecc4c5bf\
             34007208d5b887185865"
        )
    );
}

#[test]
fn hkdf_sha256_rfc5869_case_2_long_inputs() {
    let ikm: Vec<u8> = (0x00..=0x4f).collect();
    let salt: Vec<u8> = (0x60..=0xaf).collect();
    let info: Vec<u8> = (0xb0..=0xff).collect();
    let prk = hkdf::extract(&salt, &ikm);
    assert_eq!(
        prk.to_vec(),
        unhex("06a6b88c5853361a06104c9ceb35b45cef760014904671014a193f40c15fc244")
    );
    let mut okm = [0u8; 82];
    hkdf::expand(&prk, &info, &mut okm).unwrap();
    assert_eq!(
        okm.to_vec(),
        unhex(
            "b11e398dc80327a1c8e7f78c596a4934\
             4f012eda2d4efad8a050cc4c19afa97c\
             59045a99cac7827271cb41c65e590e09\
             da3275600c2f09b8367793a9aca3db71\
             cc30c58179ec3e87c14c01d5c1f3434f\
             1d87"
        )
    );
}

#[test]
fn hkdf_sha256_rfc5869_case_3_empty_salt_and_info() {
    let ikm = vec![0x0b; 22];
    let prk = hkdf::extract(&[], &ikm);
    assert_eq!(
        prk.to_vec(),
        unhex("19ef24a32c717b167f33a91d6f648bdf96596776afdb6377ac434c1c293ccb04")
    );
    let mut okm = [0u8; 42];
    hkdf::expand(&prk, &[], &mut okm).unwrap();
    assert_eq!(
        okm.to_vec(),
        unhex(
            "8da4e775a563c18f715f802a063c5a31\
             b8a11f5c5ee1879ec3454e5f3c738d2d\
             9d201395faa4b61a96c8"
        )
    );
}

// --------------------------------------------------------------------------
// ChaCha20 — RFC 7539 block-function and encryption vectors.

#[test]
fn chacha20_rfc7539_keystream_block() {
    // §2.3.2: key 00..1f, nonce 00:00:00:09:00:00:00:4a:00:00:00:00,
    // counter 1. XORing zeros extracts the raw serialized keystream.
    let key: [u8; 32] = std::array::from_fn(|i| i as u8);
    let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
    let mut block = [0u8; 64];
    chacha20::xor_keystream(&key, &nonce, 1, &mut block).unwrap();
    assert_eq!(
        block.to_vec(),
        unhex(
            "10f1e7e4d13b5915500fdd1fa32071c4\
             c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2\
             b5129cd1de164eb9cbd083e8a2503c4e"
        )
    );
}

#[test]
fn chacha20_rfc7539_sunscreen_encryption() {
    // §2.4.2: the "sunscreen" plaintext under key 00..1f, nonce
    // 00:00:00:00:00:00:00:4a:00:00:00:00, initial counter 1.
    let key: [u8; 32] = std::array::from_fn(|i| i as u8);
    let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
    let mut data = b"Ladies and Gentlemen of the class of '99: If I could offer you \
                     only one tip for the future, sunscreen would be it."
        .to_vec();
    chacha20::xor_keystream(&key, &nonce, 1, &mut data).unwrap();
    assert_eq!(
        data,
        unhex(
            "6e2e359a2568f98041ba0728dd0d6981\
             e97e7aec1d4360c20a27afccfd9fae0b\
             f91b65c5524733ab8f593dabcd62b357\
             1639d624e65152ab8f530c359f0861d8\
             07ca0dbf500d6a6156a38e088a22b65e\
             52bc514d16ccf806818ce91ab7793736\
             5af90bbf74a35be6b40b8eedf2785e42\
             874d"
        )
    );
    // And back: the keystream is an involution.
    chacha20::xor_keystream(&key, &nonce, 1, &mut data).unwrap();
    assert!(data.starts_with(b"Ladies and Gentlemen"));
}

// --------------------------------------------------------------------------
// AEAD composition — pinned regression vector. The workspace's AEAD is
// ChaCha20 + HMAC-SHA-256 encrypt-then-MAC (not ChaCha20-Poly1305), so
// no RFC vector exists; this pins the exact composition so the wire
// format cannot drift silently.

#[test]
fn aead_composition_is_stable() {
    let key = AeadKey::from_secret(&SecretKey::from_bytes([7u8; 32]));
    let nonce = [0x24u8; 12];
    let sealed =
        aead::auth_encrypt_with_nonce(&key, &nonce, b"attack at dawn", b"lcm.kat").unwrap();
    // nonce (12) ‖ ciphertext (14) ‖ HMAC-SHA-256 tag (32).
    assert_eq!(sealed.len(), 12 + 14 + 32);
    assert_eq!(sealed[..12], nonce);
    assert_eq!(
        aead::auth_decrypt(&key, &sealed, b"lcm.kat").unwrap(),
        b"attack at dawn"
    );
    // Self-consistency across calls: deterministic for a fixed nonce.
    let again = aead::auth_encrypt_with_nonce(&key, &nonce, b"attack at dawn", b"lcm.kat").unwrap();
    assert_eq!(sealed, again);
}
