//! Experiment scenarios: the parameter sweeps behind each figure.

use std::time::Duration;

use crate::cost::{CostModel, ServerKind};
use crate::engine::Simulation;
use crate::metrics::Metrics;

/// One experiment configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Which server variant to run.
    pub kind: ServerKind,
    /// Number of closed-loop clients.
    pub n_clients: usize,
    /// Number of records in the store.
    pub record_count: usize,
    /// Object (value) size in bytes.
    pub object_size: usize,
    /// Synchronous disk writes (Fig. 6) or async (Figs. 4/5).
    pub fsync: bool,
    /// Number of independent server shards (the sharded multi-enclave
    /// host); 1 is the paper's single-enclave server.
    pub shards: usize,
    /// Members per shard group (the replicated `2f + 1` deployment);
    /// 1 is the unreplicated server. Each extra member adds a blob
    /// apply plus an ack ([`CostModel::replica_ack`]) to every batch,
    /// and its own persisted copy under fsync.
    pub replicas: usize,
    /// Driver threads of the concurrent transport front-end: at most
    /// this many shard cycles overlap, and each active extra driver
    /// pays the [`CostModel::frontend_contention`] surcharge on the
    /// per-op host share. `0` (the default) is auto — one driver per
    /// shard, no surcharge — i.e. the pre-front-end model.
    pub frontend_threads: usize,
    /// Persist through the sealed delta-log storage engine: group
    /// commits seal only the batch's touched-key diff (plus the
    /// engine's [`CostModel::delta_store`] bookkeeping) instead of the
    /// full state. Only affects the LCM kinds — the engine passes
    /// other servers' blobs through.
    pub delta_log: bool,
    /// Virtual measurement duration (paper: 30 s).
    pub duration: Duration,
}

impl Scenario {
    /// The paper's default configuration: 1000 records of 100 B,
    /// async writes, 30 virtual seconds.
    ///
    /// The virtual duration can be shortened for smoke runs (CI) by
    /// setting `LCM_SIM_SECONDS`; the simulation stays deterministic
    /// for a given value.
    pub fn paper_default(kind: ServerKind, n_clients: usize) -> Self {
        let seconds = std::env::var("LCM_SIM_SECONDS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&s| s > 0)
            .unwrap_or(30);
        Scenario {
            kind,
            n_clients,
            record_count: 1000,
            object_size: 100,
            fsync: false,
            shards: 1,
            replicas: 1,
            frontend_threads: 0,
            delta_log: false,
            duration: Duration::from_secs(seconds),
        }
    }
}

/// Runs one scenario under the given cost model.
pub fn run_scenario(model: &CostModel, scenario: &Scenario) -> Metrics {
    let profile = if scenario.delta_log {
        model.profile_delta_log(
            scenario.kind,
            scenario.record_count,
            scenario.object_size,
            scenario.fsync,
        )
    } else {
        model.profile(
            scenario.kind,
            scenario.record_count,
            scenario.object_size,
            scenario.fsync,
        )
    };
    Simulation::new(profile, model, scenario.n_clients, scenario.duration)
        .with_shards(scenario.shards)
        .with_replicas(scenario.replicas, model.replica_ack)
        .with_frontend_threads(scenario.frontend_threads, model.frontend_contention)
        .run()
}

/// Fig. 4 sweep: SGX vs LCM across object sizes, 8 clients, async.
pub fn figure4_sizes() -> Vec<usize> {
    vec![100, 500, 1000, 1500, 2000, 2500]
}

/// Fig. 5/6 sweep: client counts.
pub fn client_counts() -> Vec<usize> {
    vec![1, 2, 4, 8, 16, 32]
}

/// Runs the Fig. 4 experiment, returning
/// `(object_size, sgx_ops_per_s, lcm_ops_per_s)` rows.
pub fn run_figure4(model: &CostModel) -> Vec<(usize, f64, f64)> {
    figure4_sizes()
        .into_iter()
        .map(|size| {
            let mut scenario = Scenario::paper_default(ServerKind::Sgx { batch: 1 }, 8);
            scenario.object_size = size;
            let sgx = run_scenario(model, &scenario).throughput();
            scenario.kind = ServerKind::Lcm { batch: 1 };
            let lcm = run_scenario(model, &scenario).throughput();
            (size, sgx, lcm)
        })
        .collect()
}

/// One plotted series of the Fig. 5/6 sweep: a server variant, the
/// storage engine it persists through, and its measured rows.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureSeries {
    /// Which server variant the series runs.
    pub kind: ServerKind,
    /// Whether the variant persists through the sealed delta-log
    /// engine instead of full-state sealing.
    pub delta_log: bool,
    /// `(n_clients, ops_per_s)` per swept client count.
    pub rows: Vec<(usize, f64)>,
}

impl FigureSeries {
    /// Plot-legend label; delta-log series are suffixed so they sort
    /// next to their full-seal twin.
    pub fn label(&self) -> String {
        if self.delta_log {
            format!("{} (delta-log)", self.kind.label())
        } else {
            self.kind.label()
        }
    }
}

/// Runs the Fig. 5 (async) or Fig. 6 (fsync) experiment: every series
/// over every client count. The paper's seven series are extended
/// with an eighth — the batched LCM server persisting through the
/// sealed delta-log engine — so the figures show both storage
/// backends side by side.
pub fn run_figure5_or_6(model: &CostModel, fsync: bool) -> Vec<FigureSeries> {
    let mut variants: Vec<(ServerKind, bool)> = ServerKind::figure5_series()
        .into_iter()
        .map(|kind| (kind, false))
        .collect();
    variants.push((ServerKind::Lcm { batch: 16 }, true));
    variants
        .into_iter()
        .map(|(kind, delta_log)| {
            let rows = client_counts()
                .into_iter()
                .map(|n| {
                    let mut scenario = Scenario::paper_default(kind, n);
                    scenario.fsync = fsync;
                    scenario.delta_log = delta_log;
                    (n, run_scenario(model, &scenario).throughput())
                })
                .collect();
            FigureSeries {
                kind,
                delta_log,
                rows,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn figure4_lcm_overhead_shrinks_with_size() {
        let rows = run_figure4(&model());
        let ovh = |(_, sgx, lcm): &(usize, f64, f64)| 1.0 - lcm / sgx;
        let first = ovh(&rows[0]);
        let last = ovh(rows.last().unwrap());
        // Paper: 20.12% at 100 B, 10.96% at 2500 B.
        assert!((0.12..=0.28).contains(&first), "overhead@100 = {first:.4}");
        assert!((0.05..=0.16).contains(&last), "overhead@2500 = {last:.4}");
        assert!(first > last, "overhead must shrink with object size");
    }

    #[test]
    fn figure4_throughput_decreases_with_size() {
        let rows = run_figure4(&model());
        for pair in rows.windows(2) {
            assert!(pair[1].1 < pair[0].1, "SGX monotone");
            assert!(pair[1].2 < pair[0].2, "LCM monotone");
        }
    }

    #[test]
    fn figure5_orderings_hold() {
        let series = run_figure5_or_6(&model(), false);
        let get = |kind: ServerKind| {
            series
                .iter()
                .find(|s| s.kind == kind && !s.delta_log)
                .map(|s| s.rows.clone())
                .unwrap()
        };
        let native = get(ServerKind::Native);
        let sgx = get(ServerKind::Sgx { batch: 1 });
        let lcm = get(ServerKind::Lcm { batch: 1 });
        let tmc = get(ServerKind::SgxTmc);

        for i in 0..native.len() {
            assert!(
                sgx[i].1 <= native[i].1 * 1.001,
                "SGX ≤ Native @{}",
                native[i].0
            );
            assert!(lcm[i].1 <= sgx[i].1 * 1.001, "LCM ≤ SGX @{}", native[i].0);
            assert!(tmc[i].1 < 25.0, "TMC flat @{}", native[i].0);
        }
        // Native keeps scaling where SGX has saturated.
        let last = native.len() - 1;
        assert!(native[last].1 > 2.0 * sgx[last].1);
    }

    #[test]
    fn figure6_fsync_collapses_unbatched() {
        let series = run_figure5_or_6(&model(), true);
        for s in &series {
            match s.kind {
                ServerKind::Native
                | ServerKind::Sgx { batch: 1 }
                | ServerKind::Lcm { batch: 1 } => {
                    let first = s.rows[0].1;
                    let last = s.rows.last().unwrap().1;
                    assert!(last < 1.5 * first, "{} flat under fsync", s.label());
                }
                ServerKind::RedisTls => {
                    assert!(s.rows.last().unwrap().1 > 4.0 * s.rows[0].1, "Redis scales");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn figure_sweep_carries_the_delta_log_series() {
        let series = run_figure5_or_6(&model(), true);
        let pick = |delta_log: bool| {
            series
                .iter()
                .find(|s| s.kind == (ServerKind::Lcm { batch: 16 }) && s.delta_log == delta_log)
                .unwrap()
        };
        let full = pick(false);
        let delta = pick(true);
        assert_eq!(delta.label(), "LCM with batching (delta-log)");
        // Under fsync at the paper's 1000-record store both engines
        // persist small blobs, so the series track each other; the
        // delta-log engine must at least not lose to full sealing at
        // saturation.
        let last = full.rows.len() - 1;
        assert!(
            delta.rows[last].1 >= 0.9 * full.rows[last].1,
            "delta-log {} vs full-seal {} at 32 clients",
            delta.rows[last].1,
            full.rows[last].1
        );
    }

    #[test]
    fn delta_log_decouples_throughput_from_store_size() {
        let m = model();
        let at = |records: usize, delta_log: bool| {
            let mut s = Scenario::paper_default(ServerKind::Lcm { batch: 16 }, 8);
            s.fsync = true;
            s.record_count = records;
            s.delta_log = delta_log;
            run_scenario(&m, &s).throughput()
        };
        // Full-state sealing collapses as the store grows; the
        // delta-log engine barely notices (the residual droop is the
        // EPC paging tax on per-op execution, which persisting
        // incrementally cannot remove).
        let full_ratio = at(1_000_000, false) / at(1_000, false);
        let delta_ratio = at(1_000_000, true) / at(1_000, true);
        assert!(full_ratio < 0.5, "full-seal ratio {full_ratio:.3}");
        assert!(delta_ratio > 0.5, "delta-log ratio {delta_ratio:.3}");
        assert!(delta_ratio > 2.0 * full_ratio);
    }

    #[test]
    fn paper_default_scenario() {
        let s = Scenario::paper_default(ServerKind::Native, 4);
        assert_eq!(s.record_count, 1000);
        assert_eq!(s.object_size, 100);
        assert!(!s.fsync);
    }
}
