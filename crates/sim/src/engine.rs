//! The closed-loop discrete-event engine.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Duration;

use crate::cost::ServiceProfile;
use crate::metrics::Metrics;

/// Nanoseconds of virtual time.
type Nanos = u64;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A request from `client` arrives at its shard's ingress queue.
    Arrival { client: usize },
    /// Shard `shard` finishes the cycle serving these clients.
    ServerDone { shard: usize, clients: Vec<usize> },
}

/// A closed-loop simulation: `n_clients` YCSB workers, one server
/// described by a [`ServiceProfile`] — optionally split into several
/// independent shard stations ([`Simulation::with_shards`]), each with
/// its own queue and its own disk, modelling the sharded
/// multi-enclave host.
///
/// Deterministic: service times are the profile's constants and
/// clients have zero think time, exactly like a saturating YCSB run.
/// Clients are partitioned over shards round-robin, mirroring a
/// uniform route-hash distribution under the genesis slice table;
/// [`Simulation::with_hot_shard`] pins a prefix of them to one
/// station instead, modelling a skewed key population before
/// heat-aware rebalancing spreads its slices back out.
///
/// # Example
///
/// ```
/// use lcm_sim::{CostModel, ServerKind, Simulation};
/// use std::time::Duration;
///
/// let model = CostModel::default();
/// let profile = model.profile(ServerKind::Native, 1000, 100, false);
/// let sim = Simulation::new(profile, &model, 8, Duration::from_secs(5));
/// let metrics = sim.run();
/// assert!(metrics.throughput() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Simulation {
    profile: ServiceProfile,
    disk: lcm_storage::DiskModel,
    n_clients: usize,
    shards: usize,
    /// Transport front-end driver threads (0 = auto: one driver per
    /// shard, the pre-front-end model with no contention surcharge).
    frontend_threads: usize,
    /// Per-extra-driver contention surcharge on the host share of
    /// `per_op` (see `CostModel::frontend_contention`).
    frontend_contention: f64,
    /// Clients pinned to shard 0 (hot-skew model; 0 = uniform).
    hot_clients: usize,
    /// Members per shard group (1 = unreplicated).
    replicas: usize,
    /// Per-follower ack plumbing charged per batch (see
    /// `CostModel::replica_ack`).
    replica_ack: Duration,
    duration: Nanos,
    warmup: Nanos,
    request_leg: Nanos,
    reply_leg: Nanos,
}

impl Simulation {
    /// Builds a simulation of `n_clients` closed-loop clients against
    /// the given profile for `duration` of virtual time (the paper
    /// measures 30-second windows; 5–30 s all give identical rates in
    /// this deterministic engine).
    pub fn new(
        profile: ServiceProfile,
        model: &crate::cost::CostModel,
        n_clients: usize,
        duration: Duration,
    ) -> Self {
        let request_leg =
            (model.net_one_way(profile.wire_in) + profile.extra_latency / 2).as_nanos() as Nanos;
        let reply_leg =
            (model.net_one_way(profile.wire_out) + profile.extra_latency / 2).as_nanos() as Nanos;
        let duration_ns = duration.as_nanos() as Nanos;
        Simulation {
            profile,
            disk: model.disk,
            n_clients: n_clients.max(1),
            shards: 1,
            frontend_threads: 0,
            frontend_contention: 0.0,
            hot_clients: 0,
            replicas: 1,
            replica_ack: Duration::ZERO,
            duration: duration_ns,
            warmup: duration_ns / 10,
            request_leg,
            reply_leg,
        }
    }

    /// Splits the server into `shards` independent stations — the
    /// sharded multi-enclave host. Stage-2 work (execute + seal) and
    /// persistence parallelize across stations; the network legs are
    /// unchanged.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Pins the first `hot_clients` clients to shard 0, modelling a
    /// skewed key population whose slices all hash to one station —
    /// the workload the real stack's `*-hot` bench cells measure. The
    /// remaining clients spread round-robin as before. `0` (the
    /// default) is the uniform table; it is also the end state
    /// heat-aware rebalancing converges to once the hot slices have
    /// been migrated off the loaded shard, so the throughput gap
    /// between a skewed run and a uniform one bounds what live slice
    /// migration can recover.
    #[must_use]
    pub fn with_hot_shard(mut self, hot_clients: usize) -> Self {
        self.hot_clients = hot_clients;
        self
    }

    /// Models the concurrent transport front-end: at most `threads`
    /// driver threads execute shard cycles concurrently (a shard with
    /// queued work waits for a free driver), and each active extra
    /// driver adds `contention` of the per-op host share (lock
    /// handoffs on the shared ingress/reply planes). `threads = 0` is
    /// the auto default — one driver per shard, no surcharge — which
    /// is exactly the pre-front-end model.
    #[must_use]
    pub fn with_frontend_threads(mut self, threads: usize, contention: f64) -> Self {
        self.frontend_threads = threads;
        self.frontend_contention = contention.max(0.0);
        self
    }

    /// Runs each shard station as a replica group of `replicas`
    /// members. Every batch cycle then additionally ships the sealed
    /// blob to each of the `replicas - 1` followers — the follower's
    /// apply is an unseal + reseal of the state, modelled as another
    /// `per_batch`, plus the `ack` plumbing — and, under fsync, each
    /// member persists its own copy of the blob before the quorum
    /// releases the batch. `1` (the default) reproduces the
    /// unreplicated model exactly.
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize, ack: Duration) -> Self {
        self.replicas = replicas.max(1);
        self.replica_ack = ack;
        self
    }

    fn effective_batch(&self) -> usize {
        if self.profile.group_commit {
            // Group commit merges whatever is queued (bounded).
            64
        } else {
            self.profile.batch_limit
        }
    }

    fn cycle_duration(&self, k: usize) -> Nanos {
        let p = &self.profile;
        let mut total = p.per_op * (k as u32) + p.per_batch + p.tmc_per_op * (k as u32);
        let followers = (self.replicas - 1) as u32;
        if followers > 0 {
            // Replication is in the batch path: the released replies
            // wait for every follower's apply (another per_batch) and
            // ack before the quorum frees them.
            total += (p.per_batch + self.replica_ack) * followers;
        }
        if p.fsync {
            let commits = if p.fsync_per_op { k } else { self.replicas };
            for _ in 0..commits {
                total += self.disk.sync_write_cost(p.disk_bytes_per_commit);
            }
        }
        total.as_nanos() as Nanos
    }

    /// Runs the simulation to completion, returning measured metrics.
    pub fn run(&self) -> Metrics {
        let mut heap: BinaryHeap<Reverse<(Nanos, u64, Event)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let push = |heap: &mut BinaryHeap<_>, t: Nanos, e: Event, seq: &mut u64| {
            *seq += 1;
            heap.push(Reverse((t, *seq, e)));
        };

        let shards = self.shards;
        // Front-end driver pool: a shard cycle occupies one driver
        // thread from start to finish, so at most `eff_drivers` shard
        // cycles overlap. The auto default (one driver per shard,
        // surcharge-free) reproduces the pre-front-end model exactly.
        let eff_drivers = if self.frontend_threads == 0 {
            shards
        } else {
            self.frontend_threads.min(shards).max(1)
        };
        let per_op_surcharge: Nanos = if self.frontend_threads == 0 {
            0
        } else {
            (self.profile.host_share.as_nanos() as f64
                * self.frontend_contention
                * (eff_drivers - 1) as f64) as Nanos
        };
        let mut free_drivers = eff_drivers;
        let mut queues: Vec<VecDeque<usize>> = vec![VecDeque::new(); shards];
        let mut busy: Vec<bool> = vec![false; shards];
        let mut send_time: Vec<Nanos> = vec![0; self.n_clients];
        let mut metrics = Metrics::new(Duration::from_nanos(self.duration - self.warmup));
        // Client→shard partition: the engine's stand-in for the slice
        // table. Round-robin mirrors a uniform route-hash spread; the
        // first `hot_clients` pin to shard 0 to model a skewed key
        // population (all of its slices owned by one station).
        let hot = self.hot_clients.min(self.n_clients);
        let shard_of = move |client: usize| {
            if client < hot {
                0
            } else {
                client % shards
            }
        };

        // All clients fire at t=0 with a 1 µs stagger to avoid
        // artificial phase lock.
        for (c, send) in send_time.iter_mut().enumerate() {
            let t0 = c as Nanos * 1_000;
            *send = t0;
            push(
                &mut heap,
                t0 + self.request_leg,
                Event::Arrival { client: c },
                &mut seq,
            );
        }

        // Starts a cycle on `shard` if it has work and a driver is
        // free.
        macro_rules! try_start {
            ($shard:expr, $now:expr, $heap:expr, $seq:expr, $queues:expr, $busy:expr, $free:expr) => {{
                let shard = $shard;
                if !$busy[shard] && !$queues[shard].is_empty() && $free > 0 {
                    let k = self.effective_batch().min($queues[shard].len());
                    let batch: Vec<usize> = $queues[shard].drain(..k).collect();
                    $busy[shard] = true;
                    $free -= 1;
                    let cycle =
                        self.cycle_duration(batch.len()) + per_op_surcharge * batch.len() as Nanos;
                    push(
                        $heap,
                        $now + cycle,
                        Event::ServerDone {
                            shard,
                            clients: batch,
                        },
                        $seq,
                    );
                }
            }};
        }

        while let Some(Reverse((now, _, event))) = heap.pop() {
            if now >= self.duration {
                break;
            }
            match event {
                Event::Arrival { client } => {
                    let shard = shard_of(client);
                    queues[shard].push_back(client);
                    try_start!(shard, now, &mut heap, &mut seq, queues, busy, free_drivers);
                }
                Event::ServerDone { shard, clients } => {
                    busy[shard] = false;
                    free_drivers += 1;
                    for client in clients {
                        let completion = now + self.reply_leg;
                        if completion >= self.warmup && completion < self.duration {
                            metrics.record(Duration::from_nanos(completion - send_time[client]));
                        }
                        // Closed loop: immediately send the next request.
                        send_time[client] = completion;
                        push(
                            &mut heap,
                            completion + self.request_leg,
                            Event::Arrival { client },
                            &mut seq,
                        );
                    }
                    // The freed driver picks up waiting work, starting
                    // with the shard it just finished (round-robin).
                    for offset in 0..shards {
                        try_start!(
                            (shard + offset) % shards,
                            now,
                            &mut heap,
                            &mut seq,
                            queues,
                            busy,
                            free_drivers
                        );
                    }
                }
            }
        }
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CostModel, ServerKind};

    fn run(kind: ServerKind, n: usize, fsync: bool) -> Metrics {
        let model = CostModel::default();
        let profile = model.profile(kind, 1000, 100, fsync);
        Simulation::new(profile, &model, n, Duration::from_secs(5)).run()
    }

    #[test]
    fn single_client_throughput_is_rtt_bound() {
        let m = run(ServerKind::Native, 1, false);
        // RTT ≈ 0.43 ms ⇒ ~2.3 kops/s.
        let x = m.throughput();
        assert!((1_500.0..3_500.0).contains(&x), "native@1 = {x}");
    }

    #[test]
    fn native_scales_with_clients() {
        let x1 = run(ServerKind::Native, 1, false).throughput();
        let x8 = run(ServerKind::Native, 8, false).throughput();
        let x32 = run(ServerKind::Native, 32, false).throughput();
        assert!(x8 > 6.0 * x1, "x1={x1} x8={x8}");
        assert!(x32 > 2.5 * x8, "x8={x8} x32={x32}");
    }

    #[test]
    fn sgx_saturates_around_eight_clients() {
        let x8 = run(ServerKind::Sgx { batch: 1 }, 8, false).throughput();
        let x32 = run(ServerKind::Sgx { batch: 1 }, 32, false).throughput();
        assert!(
            x32 < 1.15 * x8,
            "SGX should be saturated by 8 clients: x8={x8} x32={x32}"
        );
    }

    #[test]
    fn lcm_is_slower_than_sgx_but_close() {
        for n in [1usize, 8, 32] {
            let sgx = run(ServerKind::Sgx { batch: 1 }, n, false).throughput();
            let lcm = run(ServerKind::Lcm { batch: 1 }, n, false).throughput();
            let ratio = lcm / sgx;
            assert!((0.60..=1.0).contains(&ratio), "LCM/SGX@{n} = {ratio:.3}");
        }
    }

    #[test]
    fn tmc_throughput_is_a_dozen_ops() {
        for n in [1usize, 8, 32] {
            let x = run(ServerKind::SgxTmc, n, false).throughput();
            assert!((8.0..=20.0).contains(&x), "TMC@{n} = {x}");
        }
    }

    #[test]
    fn fsync_flattens_unbatched_variants() {
        let x1 = run(ServerKind::Sgx { batch: 1 }, 1, true).throughput();
        let x32 = run(ServerKind::Sgx { batch: 1 }, 32, true).throughput();
        assert!(x32 < 1.3 * x1, "x1={x1} x32={x32}");
        assert!(x32 < 1_000.0, "fsync-bound must be slow: {x32}");
    }

    #[test]
    fn batching_rescues_fsync_throughput() {
        let unbatched = run(ServerKind::Lcm { batch: 1 }, 32, true).throughput();
        let batched = run(ServerKind::Lcm { batch: 16 }, 32, true).throughput();
        assert!(
            batched > 4.0 * unbatched,
            "unbatched={unbatched} batched={batched}"
        );
    }

    #[test]
    fn redis_group_commit_scales_under_fsync() {
        let x1 = run(ServerKind::RedisTls, 1, true).throughput();
        let x32 = run(ServerKind::RedisTls, 32, true).throughput();
        assert!(x32 > 5.0 * x1, "x1={x1} x32={x32}");
    }

    #[test]
    fn deterministic_runs() {
        let a = run(ServerKind::Lcm { batch: 16 }, 8, false).ops();
        let b = run(ServerKind::Lcm { batch: 16 }, 8, false).ops();
        assert_eq!(a, b);
    }

    fn run_sharded(shards: usize, n: usize, fsync: bool) -> Metrics {
        let model = CostModel::default();
        let profile = model.profile(ServerKind::Lcm { batch: 16 }, 1000, 100, fsync);
        Simulation::new(profile, &model, n, Duration::from_secs(5))
            .with_shards(shards)
            .run()
    }

    #[test]
    fn sharding_scales_a_saturated_server() {
        // At 64 clients one LCM station is saturated; 4 stations with
        // their own disks should clear well over 1.5x of it.
        let x1 = run_sharded(1, 64, true).throughput();
        let x4 = run_sharded(4, 64, true).throughput();
        assert!(x4 > 1.5 * x1, "x1={x1} x4={x4}");
        assert!(x4 < 4.5 * x1, "superlinear scaling is a model bug");
    }

    #[test]
    fn sharding_is_neutral_when_unsaturated() {
        // A single client cannot use more than one shard.
        let x1 = run_sharded(1, 1, false).throughput();
        let x4 = run_sharded(4, 1, false).throughput();
        let ratio = x4 / x1;
        assert!((0.95..=1.05).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn one_shard_equals_unsharded() {
        let base = run(ServerKind::Lcm { batch: 16 }, 16, false).ops();
        let one = run_sharded(1, 16, false).ops();
        assert_eq!(base, one);
    }

    fn run_frontend(shards: usize, threads: usize, n: usize) -> Metrics {
        let model = CostModel::default();
        let profile = model.profile(ServerKind::Lcm { batch: 16 }, 1000, 100, true);
        Simulation::new(profile, &model, n, Duration::from_secs(5))
            .with_shards(shards)
            .with_frontend_threads(threads, model.frontend_contention)
            .run()
    }

    #[test]
    fn auto_frontend_matches_legacy_model() {
        // threads = 0 (auto: one driver per shard, no surcharge) must
        // reproduce the pre-front-end predictions exactly.
        let legacy = run_sharded(4, 64, true).ops();
        let auto = run_frontend(4, 0, 64).ops();
        assert_eq!(legacy, auto);
    }

    #[test]
    fn single_driver_serializes_the_shard_fanout() {
        // One front-end driver executes shard cycles one at a time:
        // the 4-shard speedup collapses toward 1x, and adding drivers
        // restores it.
        let one_driver = run_frontend(4, 1, 64).throughput();
        let four_drivers = run_frontend(4, 4, 64).throughput();
        assert!(
            four_drivers > 2.0 * one_driver,
            "1 driver {one_driver:.0} vs 4 drivers {four_drivers:.0}"
        );
        // A single driver over 4 shards is no better than ~the
        // single-shard server (same serial store path).
        let one_shard = run_frontend(1, 1, 64).throughput();
        assert!(
            one_driver < 1.4 * one_shard,
            "single driver must not scale: {one_driver:.0} vs {one_shard:.0}"
        );
    }

    #[test]
    fn extra_drivers_beyond_shards_only_add_contention() {
        let matched = run_frontend(4, 4, 64).throughput();
        let oversubscribed = run_frontend(4, 16, 64).throughput();
        // Drivers are capped at the shard count; the surcharge uses
        // the effective count, so oversubscription is neutral here.
        assert!((oversubscribed / matched - 1.0).abs() < 0.01);
    }

    #[test]
    fn contention_surcharge_is_mild_but_real() {
        let model = CostModel::default();
        let profile = model.profile(ServerKind::Lcm { batch: 16 }, 1000, 100, false);
        let free = Simulation::new(profile.clone(), &model, 64, Duration::from_secs(5))
            .with_shards(4)
            .with_frontend_threads(4, 0.0)
            .run()
            .throughput();
        let charged = Simulation::new(profile, &model, 64, Duration::from_secs(5))
            .with_shards(4)
            .with_frontend_threads(4, model.frontend_contention)
            .run()
            .throughput();
        assert!(charged <= free);
        assert!(
            charged > 0.8 * free,
            "surcharge too harsh: {charged} vs {free}"
        );
    }

    #[test]
    fn hot_skew_collapses_sharded_throughput() {
        // 64 saturating clients all pinned to one of 4 stations: the
        // other three idle, so throughput falls back to roughly the
        // single-shard rate — the collapse the real stack's `*-hot`
        // bench cells measure.
        let uniform = run_sharded(4, 64, true).throughput();
        let x1 = run_sharded(1, 64, true).throughput();
        let model = CostModel::default();
        let profile = model.profile(ServerKind::Lcm { batch: 16 }, 1000, 100, true);
        let skewed = Simulation::new(profile, &model, 64, Duration::from_secs(5))
            .with_shards(4)
            .with_hot_shard(64)
            .run()
            .throughput();
        assert!(skewed < 0.6 * uniform, "uniform={uniform} skewed={skewed}");
        let vs_single = skewed / x1;
        assert!(
            (0.9..=1.1).contains(&vs_single),
            "fully skewed 4-shard must degenerate to 1 shard: {vs_single:.3}"
        );
    }

    #[test]
    fn rebalancing_recovers_the_hot_skew_collapse() {
        // `with_hot_shard(0)` is the uniform table heat-aware
        // rebalancing converges to: the recovery the migration bench
        // cells gate on is exactly the skewed→uniform gap.
        let model = CostModel::default();
        let profile = model.profile(ServerKind::Lcm { batch: 16 }, 1000, 100, true);
        let mk = |hot: usize| {
            let p = profile.clone();
            Simulation::new(p, &model, 64, Duration::from_secs(5))
                .with_shards(4)
                .with_hot_shard(hot)
                .run()
                .throughput()
        };
        let skewed = mk(64);
        let rebalanced = mk(0);
        assert!(
            rebalanced > 2.0 * skewed,
            "skewed={skewed} rebalanced={rebalanced}"
        );
        assert_eq!(
            mk(0),
            run_sharded(4, 64, true).throughput(),
            "hot=0 must reproduce the uniform model exactly"
        );
    }

    fn run_replicated(replicas: usize, n: usize, fsync: bool) -> Metrics {
        let model = CostModel::default();
        let profile = model.profile(ServerKind::Lcm { batch: 16 }, 1000, 100, fsync);
        Simulation::new(profile, &model, n, Duration::from_secs(5))
            .with_replicas(replicas, model.replica_ack)
            .run()
    }

    #[test]
    fn one_replica_equals_unreplicated() {
        let base = run(ServerKind::Lcm { batch: 16 }, 16, false).ops();
        let one = run_replicated(1, 16, false).ops();
        assert_eq!(base, one);
    }

    #[test]
    fn replication_charges_the_batch_path() {
        // Three members = two extra blob applies + acks per batch, and
        // three persisted copies under fsync: write throughput must
        // drop, and drop harder when the store is the bottleneck.
        let x1 = run_replicated(1, 32, true).throughput();
        let x3 = run_replicated(3, 32, true).throughput();
        assert!(x3 < x1, "x1={x1} x3={x3}");
        let slowdown = x1 / x3;
        assert!(
            (1.2..=4.0).contains(&slowdown),
            "3-replica fsync slowdown out of band: {slowdown:.2}x"
        );
        // Async writes: the two extra applies still cost real batch
        // work, but without the per-member commit the penalty is mild.
        let a1 = run_replicated(1, 32, false).throughput();
        let a3 = run_replicated(3, 32, false).throughput();
        assert!(a3 < a1);
        assert!(a1 / a3 < x1 / x3, "fsync must amplify the replica cost");
    }

    #[test]
    fn latency_increases_at_saturation() {
        let low = run(ServerKind::Sgx { batch: 1 }, 1, false).mean_latency();
        let high = run(ServerKind::Sgx { batch: 1 }, 32, false).mean_latency();
        assert!(high > 2 * low, "low={low:?} high={high:?}");
    }
}
