//! Mean-value analysis (MVA): an independent analytic cross-check of
//! the discrete-event engine.
//!
//! For a closed queueing network with one FIFO server station (service
//! demand `D` per operation) and one delay station (think/network time
//! `Z`), exact MVA computes the throughput recursively:
//!
//! ```text
//! Q(0) = 0
//! R(i) = D · (1 + Q(i-1))        response time at the server
//! X(i) = i / (Z + R(i))          system throughput with i clients
//! Q(i) = X(i) · R(i)             mean queue length
//! ```
//!
//! The unbatched server profiles map exactly onto this model (every
//! operation is one service cycle), so DES and MVA must agree — a
//! strong internal-consistency check exercised by this module's tests.
//! Batched and group-commit servers violate the product-form
//! assumptions and are only sanity-bounded.

use std::time::Duration;

use crate::cost::{CostModel, ServerKind};

/// Result of an MVA evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MvaPoint {
    /// Throughput in operations per second.
    pub throughput: f64,
    /// Mean end-to-end response time (delay + server).
    pub response: Duration,
}

/// Exact MVA for one queueing station with per-op demand `demand` and
/// delay `think`, evaluated at `n` closed-loop clients.
pub fn mva(demand: Duration, think: Duration, n: usize) -> MvaPoint {
    let d = demand.as_secs_f64();
    let z = think.as_secs_f64();
    let mut q = 0.0f64;
    let mut x = 0.0f64;
    let mut r = d;
    for i in 1..=n {
        r = d * (1.0 + q);
        x = i as f64 / (z + r);
        q = x * r;
    }
    MvaPoint {
        throughput: x,
        response: Duration::from_secs_f64(z + r),
    }
}

/// Evaluates an *unbatched* server kind analytically under the given
/// cost model (paper-default workload: 1000 records, 100 B objects).
///
/// # Panics
///
/// Panics when called for a batched or group-commit kind, whose
/// behaviour MVA does not model.
pub fn mva_for_kind(
    model: &CostModel,
    kind: ServerKind,
    n_clients: usize,
    fsync: bool,
) -> MvaPoint {
    let profile = model.profile(kind, 1000, 100, fsync);
    assert!(
        profile.batch_limit == 1 && !profile.group_commit,
        "MVA models unbatched FIFO servers only"
    );
    let mut demand = profile.per_op + profile.per_batch + profile.tmc_per_op;
    if profile.fsync {
        // Unbatched: exactly one commit per operation either way.
        demand += model.disk.sync_write_cost(profile.disk_bytes_per_commit);
    }
    let think = model.net_one_way(profile.wire_in)
        + model.net_one_way(profile.wire_out)
        + profile.extra_latency;
    mva(demand, think, n_clients)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulation;

    fn des_throughput(model: &CostModel, kind: ServerKind, n: usize, fsync: bool) -> f64 {
        let profile = model.profile(kind, 1000, 100, fsync);
        Simulation::new(profile, model, n, Duration::from_secs(5))
            .run()
            .throughput()
    }

    #[test]
    fn mva_basics() {
        // One client: X = 1 / (Z + D).
        let p = mva(Duration::from_millis(1), Duration::from_millis(9), 1);
        assert!((p.throughput - 100.0).abs() < 1e-6);
        // Saturation: X → 1/D as n → ∞.
        let p = mva(Duration::from_millis(1), Duration::from_millis(9), 1000);
        assert!((p.throughput - 1000.0).abs() / 1000.0 < 0.01);
    }

    #[test]
    fn mva_monotone_in_clients() {
        let mut last = 0.0;
        for n in 1..=64 {
            let x = mva(Duration::from_micros(100), Duration::from_micros(400), n).throughput;
            assert!(x >= last - 1e-9);
            last = x;
        }
    }

    #[test]
    fn des_bounded_by_mva_and_asymptotic_bounds() {
        // For deterministic service, exact MVA (which assumes
        // exponential service times) is a LOWER bound on throughput,
        // and the asymptotic bound X ≤ min(n/(Z+D), 1/D) is the UPPER
        // bound — a deterministic closed loop pipelines perfectly up
        // to the knee. The DES must sit between them.
        let model = CostModel::default();
        for kind in [
            ServerKind::Native,
            ServerKind::Sgx { batch: 1 },
            ServerKind::Lcm { batch: 1 },
        ] {
            let profile = model.profile(kind, 1000, 100, false);
            let d = (profile.per_op + profile.per_batch).as_secs_f64();
            let z = (model.net_one_way(profile.wire_in)
                + model.net_one_way(profile.wire_out)
                + profile.extra_latency)
                .as_secs_f64();
            for n in [1usize, 2, 4, 8, 16, 32] {
                let lower = mva_for_kind(&model, kind, n, false).throughput;
                let upper = (n as f64 / (z + d)).min(1.0 / d);
                let simulated = des_throughput(&model, kind, n, false);
                assert!(
                    simulated >= lower * 0.97,
                    "{}@{n}: DES {simulated:.0} below MVA bound {lower:.0}",
                    kind.label(),
                );
                assert!(
                    simulated <= upper * 1.03,
                    "{}@{n}: DES {simulated:.0} above asymptotic bound {upper:.0}",
                    kind.label(),
                );
            }
        }
    }

    #[test]
    fn des_matches_mva_under_fsync() {
        let model = CostModel::default();
        for n in [1usize, 8, 32] {
            let analytic = mva_for_kind(&model, ServerKind::Lcm { batch: 1 }, n, true).throughput;
            let simulated = des_throughput(&model, ServerKind::Lcm { batch: 1 }, n, true);
            let rel = (analytic - simulated).abs() / analytic;
            assert!(
                rel < 0.15,
                "fsync@{n}: MVA {analytic:.0} vs DES {simulated:.0}"
            );
        }
    }

    #[test]
    fn des_matches_mva_for_tmc() {
        let model = CostModel::default();
        let analytic = mva_for_kind(&model, ServerKind::SgxTmc, 8, false).throughput;
        let simulated = des_throughput(&model, ServerKind::SgxTmc, 8, false);
        assert!((analytic - simulated).abs() / analytic < 0.1);
    }

    #[test]
    #[should_panic(expected = "unbatched")]
    fn batched_kinds_rejected() {
        let model = CostModel::default();
        let _ = mva_for_kind(&model, ServerKind::Lcm { batch: 16 }, 8, false);
    }
}
