//! Deterministic discrete-event simulator reproducing the paper's
//! throughput experiments (Figs. 4–6, §6.5).
//!
//! ## Why a simulator
//!
//! The paper's absolute numbers come from a 2016 SGX desktop (i7-6700),
//! a 24-vCPU client VM, a 1 Gbps LAN, Stunnel, and the Java YCSB
//! harness. None of that hardware is available here, so the evaluation
//! substrate is a calibrated **closed-loop discrete-event simulation**:
//! every client is a closed-loop YCSB worker; the server is modelled
//! as the paper describes it — a *single-threaded* application that
//! performs all enclave crypto inline (§6.4: "LCM and SGX are single
//! threaded applications and perform the encryption of every client
//! request inside the enclave"), with request batching, sealed-state
//! persistence, an optional fsync barrier, an optional trusted
//! monotonic counter, and Stunnel-style parallel transport encryption
//! for the native/Redis baselines.
//!
//! ## What is calibrated vs. derived
//!
//! Message sizes, batch behaviour, fsync semantics, group commit, and
//! the TMC increment latency are *derived* from the respective
//! implementations in this workspace and the paper's descriptions. The
//! CPU cost constants (per-byte AEAD cost, ecall overhead, socket
//! handling) are *calibrated* so that the simulated SGX baseline lands
//! in the paper's throughput ballpark; the LCM metadata premium is
//! fitted to the §6.3/Fig. 4 overhead measurements (20.12 % at 100 B
//! falling to 10.96 % at 2500 B). EXPERIMENTS.md reports
//! paper-vs-simulated numbers for every figure.
//!
//! ## Layout
//!
//! * [`cost`] — the cost model: [`cost::CostModel`] constants and the
//!   per-server-kind [`cost::ServiceProfile`];
//! * [`engine`] — the event-driven closed-loop engine;
//! * [`scenario`] — experiment configuration and runners for each
//!   figure's sweep;
//! * [`metrics`] — throughput/latency accounting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod metrics;
pub mod mva;
pub mod scenario;

pub use cost::{CostModel, ServerKind, ServiceProfile};
pub use engine::Simulation;
pub use metrics::Metrics;
pub use scenario::{run_scenario, Scenario};
