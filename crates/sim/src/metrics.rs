//! Throughput and latency accounting for simulation runs.

use std::time::Duration;

/// Cap on retained latency samples; beyond this the collector keeps
/// every k-th sample (deterministic decimation) so percentiles stay
/// meaningful without unbounded memory.
const SAMPLE_CAP: usize = 1 << 18;

/// Metrics collected over a measurement window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metrics {
    window: Duration,
    ops: u64,
    total_latency: Duration,
    max_latency: Duration,
    samples: Vec<Duration>,
    stride: u64,
}

impl Metrics {
    /// Creates an empty metrics collector for a window of the given
    /// length.
    pub fn new(window: Duration) -> Self {
        Metrics {
            window,
            ops: 0,
            total_latency: Duration::ZERO,
            max_latency: Duration::ZERO,
            samples: Vec::new(),
            stride: 1,
        }
    }

    /// Records one completed operation with its end-to-end latency.
    pub fn record(&mut self, latency: Duration) {
        self.ops += 1;
        self.total_latency += latency;
        self.max_latency = self.max_latency.max(latency);
        if self.ops % self.stride == 0 {
            if self.samples.len() >= SAMPLE_CAP {
                // Decimate: keep every other retained sample, double
                // the stride.
                let mut keep = Vec::with_capacity(SAMPLE_CAP / 2);
                for (i, s) in self.samples.drain(..).enumerate() {
                    if i % 2 == 0 {
                        keep.push(s);
                    }
                }
                self.samples = keep;
                self.stride *= 2;
            }
            self.samples.push(latency);
        }
    }

    /// Completed operations in the window.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Throughput in operations per second.
    pub fn throughput(&self) -> f64 {
        if self.window.is_zero() {
            return 0.0;
        }
        self.ops as f64 / self.window.as_secs_f64()
    }

    /// Mean end-to-end latency.
    pub fn mean_latency(&self) -> Duration {
        if self.ops == 0 {
            Duration::ZERO
        } else {
            self.total_latency / self.ops as u32
        }
    }

    /// Maximum observed latency.
    pub fn max_latency(&self) -> Duration {
        self.max_latency
    }

    /// The `p`-th latency percentile (0.0–1.0) over retained samples.
    ///
    /// Returns [`Duration::ZERO`] when nothing was recorded.
    pub fn percentile(&self, p: f64) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * p.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Median latency.
    pub fn p50(&self) -> Duration {
        self.percentile(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> Duration {
        self.percentile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_from_ops_and_window() {
        let mut m = Metrics::new(Duration::from_secs(10));
        for _ in 0..1000 {
            m.record(Duration::from_millis(1));
        }
        assert_eq!(m.ops(), 1000);
        assert!((m.throughput() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn latency_stats() {
        let mut m = Metrics::new(Duration::from_secs(1));
        m.record(Duration::from_millis(2));
        m.record(Duration::from_millis(4));
        assert_eq!(m.mean_latency(), Duration::from_millis(3));
        assert_eq!(m.max_latency(), Duration::from_millis(4));
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new(Duration::from_secs(1));
        assert_eq!(m.throughput(), 0.0);
        assert_eq!(m.mean_latency(), Duration::ZERO);
        assert_eq!(m.p50(), Duration::ZERO);
    }

    #[test]
    fn percentiles_ordered() {
        let mut m = Metrics::new(Duration::from_secs(1));
        for i in 1..=100u64 {
            m.record(Duration::from_micros(i));
        }
        let p50 = m.p50().as_micros() as i64;
        assert!((p50 - 50).abs() <= 1, "p50 = {p50}");
        let p99 = m.p99().as_micros() as i64;
        assert!((p99 - 99).abs() <= 1, "p99 = {p99}");
        assert!(m.p50() <= m.p99());
        assert!(m.p99() <= m.max_latency());
        assert_eq!(m.percentile(0.0), Duration::from_micros(1));
        assert_eq!(m.percentile(1.0), Duration::from_micros(100));
    }

    #[test]
    fn decimation_keeps_percentiles_sane() {
        let mut m = Metrics::new(Duration::from_secs(1));
        // Far beyond the cap; uniform 1..=1000 µs distribution.
        for i in 0..(SAMPLE_CAP * 3) {
            m.record(Duration::from_micros((i % 1000 + 1) as u64));
        }
        let p50 = m.p50().as_micros() as i64;
        assert!((p50 - 500).abs() < 50, "p50 = {p50}µs");
        assert_eq!(m.ops(), (SAMPLE_CAP * 3) as u64);
    }
}
