//! The cost model: constants and per-server-kind service profiles.

use std::time::Duration;

use lcm_core::wire::{INVOKE_OVERHEAD, REPLY_OVERHEAD, ROUTE_HINT_LEN};
use lcm_storage::DiskModel;
use lcm_tee::epc::{EpcModel, MapMemoryModel};

/// AEAD framing bytes (nonce + tag) added by the transport encryption
/// of this workspace's crypto substrate.
pub const AEAD_FRAMING: usize = 12 + 32;

/// The key length used throughout the paper's evaluation.
pub const KEY_LEN: usize = 40;

/// The server variants benchmarked in Figs. 5/6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServerKind {
    /// Unprotected KVS, Stunnel transport encryption (parallel).
    Native,
    /// Redis-style append-only-file KVS with group commit, Stunnel.
    RedisTls,
    /// SGX-sealed KVS, no rollback protection.
    Sgx {
        /// Operations per seal-and-store batch (1 = no batching).
        batch: usize,
    },
    /// LCM-protected KVS.
    Lcm {
        /// Operations per seal-and-store batch (1 = no batching).
        batch: usize,
    },
    /// SGX KVS gated by a trusted monotonic counter per request.
    SgxTmc,
}

impl ServerKind {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            ServerKind::Native => "Native".into(),
            ServerKind::RedisTls => "Redis TLS".into(),
            ServerKind::Sgx { batch: 1 } => "SGX".into(),
            ServerKind::Sgx { .. } => "SGX with batching".into(),
            ServerKind::Lcm { batch: 1 } => "LCM".into(),
            ServerKind::Lcm { .. } => "LCM with batching".into(),
            ServerKind::SgxTmc => "SGX + TMC".into(),
        }
    }

    /// All seven series of Fig. 5/6 in the paper's legend order.
    pub fn figure5_series() -> Vec<ServerKind> {
        vec![
            ServerKind::Sgx { batch: 1 },
            ServerKind::Sgx { batch: 16 },
            ServerKind::Native,
            ServerKind::Lcm { batch: 1 },
            ServerKind::Lcm { batch: 16 },
            ServerKind::RedisTls,
            ServerKind::SgxTmc,
        ]
    }
}

/// Calibrated cost constants (see module docs of [`crate`] for what is
/// calibrated vs. derived).
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// One-way network latency per message (LAN + TCP + client stack).
    pub net_one_way: Duration,
    /// Network cost per byte (1 Gbps ⇒ 8 ns/B).
    pub net_ns_per_byte: f64,
    /// Stunnel encrypt/decrypt latency added per direction for
    /// Native/Redis (parallel worker processes: latency, not a
    /// single-threaded bottleneck).
    pub stunnel_latency: Duration,
    /// Single-threaded host work per request (socket recv/send, queue
    /// management) — paid by every server kind.
    pub host_per_op: Duration,
    /// Native/Redis in-process work per op (map access, log append).
    pub plain_exec: Duration,
    /// Fixed cost of one ecall (enclave transition), per batch.
    pub ecall_overhead: Duration,
    /// Fixed cost of one in-enclave AEAD operation.
    pub aead_fixed: Duration,
    /// Per-byte in-enclave AEAD cost.
    pub aead_ns_per_byte: f64,
    /// In-enclave KVS operation execution (std::map access).
    pub enclave_exec: Duration,
    /// One SHA-256 hash-chain step (LCM only).
    pub hash_step: Duration,
    /// Contention surcharge of the concurrent transport front-end:
    /// the fraction of the per-op *host* work added per extra active
    /// driver thread (lock handoffs on the shared ingress/reply book,
    /// demux serialization). Applied only when a scenario pins
    /// `frontend_threads` explicitly; the auto default (one driver per
    /// lane, no surcharge) is the pre-front-end model.
    pub frontend_contention: f64,
    /// The in-enclave shard-identity route check (LCM only): FNV-1a
    /// over the operation's partition key, recomputed from the
    /// decrypted plaintext, plus the modulo comparison against the
    /// enclave's attested `(index, count)`. A few dozen bytes hashed
    /// per request — noise next to the AEAD work, but modelled so the
    /// simulator's LCM per-op cost stays an itemized account of what
    /// the real enclave does (validated against the real stack in
    /// `tests/sharding_validation.rs`).
    pub route_check: Duration,
    /// The host-side admission check at the front door (LCM only):
    /// one token-bucket refill-and-take, the weighted-fair in-flight
    /// accounting, the retry-dedup map probes, and the latency
    /// histogram record — all under the reply-book lock at ingress.
    /// A few map operations plus arithmetic per request; charged to
    /// the *host* share of the per-op cost (it runs outside the
    /// enclave), and validated against the real admission-enabled
    /// front-end in `tests/sharding_validation.rs`.
    pub admission_check: Duration,
    /// Per-follower acknowledgement overhead of a replicated shard
    /// group (LCM only, charged once per follower per batch): the host
    /// lifting the sealed blob off the leader's medium, the follower's
    /// in-enclave digest over what it installed, and the group's
    /// holder/quorum bookkeeping. The blob *application* itself (an
    /// unseal + reseal on the follower) is modelled as another
    /// `per_batch` in the engine; this term is only the ack plumbing
    /// around it. Validated against the real `ReplicaGroup` stack in
    /// `tests/sharding_validation.rs`.
    pub replica_ack: Duration,
    /// Per-group-commit bookkeeping of the sealed delta-log storage
    /// engine (LCM only, and only when a scenario enables
    /// `delta_log`): encoding the touched-key diff, the length+CRC
    /// record framing, the head-slot rewrite, and the segment/anchor
    /// accounting around the delta seal. The seal itself is charged
    /// through the model's internal seal curve over the *delta* bytes
    /// instead of the full state — that substitution, not this term,
    /// is where the
    /// engine wins — so `delta_store` is just the fixed plumbing per
    /// commit. Validated against the real `DeltaLogStorage` stack in
    /// `tests/sharding_validation.rs`.
    pub delta_store: Duration,
    /// Fixed cost of sealing the state, per batch.
    pub seal_fixed: Duration,
    /// Per-byte sealing cost.
    pub seal_ns_per_byte: f64,
    /// LCM metadata premium at 100 B objects (fitted to Fig. 4:
    /// 20.12 % throughput overhead at saturation).
    pub lcm_premium_100: f64,
    /// LCM metadata premium at 2500 B objects (fitted: 10.96 %).
    pub lcm_premium_2500: f64,
    /// TMC increment latency (paper §6.5: 60 ms measured).
    pub tmc_increment: Duration,
    /// Disk model for persistence costs.
    pub disk: DiskModel,
    /// EPC paging model (only material for the §6.2 experiment).
    pub epc: EpcModel,
    /// `std::map` memory accounting.
    pub map_memory: MapMemoryModel,
    /// Maximum ops merged into one Redis group commit.
    pub group_commit_limit: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            net_one_way: Duration::from_micros(190),
            net_ns_per_byte: 8.0,
            stunnel_latency: Duration::from_micros(12),
            host_per_op: Duration::from_micros(14),
            plain_exec: Duration::from_micros(3),
            ecall_overhead: Duration::from_micros(9),
            aead_fixed: Duration::from_nanos(1_300),
            aead_ns_per_byte: 1.2,
            enclave_exec: Duration::from_micros(2),
            hash_step: Duration::from_nanos(600),
            frontend_contention: 0.04,
            route_check: Duration::from_nanos(120),
            admission_check: Duration::from_nanos(250),
            replica_ack: Duration::from_micros(2),
            delta_store: Duration::from_micros(1),
            seal_fixed: Duration::from_micros(3),
            seal_ns_per_byte: 0.25,
            lcm_premium_100: 0.2519,  // 1/(1-0.2012) - 1
            lcm_premium_2500: 0.1231, // 1/(1-0.1096) - 1
            tmc_increment: Duration::from_millis(60),
            disk: DiskModel::default(),
            epc: EpcModel::default(),
            map_memory: MapMemoryModel::default(),
            group_commit_limit: 64,
        }
    }
}

fn dur_mul(d: Duration, f: f64) -> Duration {
    Duration::from_nanos((d.as_nanos() as f64 * f) as u64)
}

impl CostModel {
    /// LCM's metadata premium for a given object size, interpolated
    /// linearly between the two fitted anchors and clamped outside.
    pub fn lcm_premium(&self, object_size: usize) -> f64 {
        let (x0, y0) = (100.0, self.lcm_premium_100);
        let (x1, y1) = (2500.0, self.lcm_premium_2500);
        let x = (object_size as f64).clamp(x0, x1);
        y0 + (x - x0) * (y1 - y0) / (x1 - x0)
    }

    fn aead(&self, bytes: usize) -> Duration {
        self.aead_fixed + Duration::from_nanos((bytes as f64 * self.aead_ns_per_byte) as u64)
    }

    fn seal(&self, bytes: usize) -> Duration {
        self.seal_fixed + Duration::from_nanos((bytes as f64 * self.seal_ns_per_byte) as u64)
    }

    /// One-way network time for a message of `bytes`.
    pub fn net_one_way(&self, bytes: usize) -> Duration {
        self.net_one_way + Duration::from_nanos((bytes as f64 * self.net_ns_per_byte) as u64)
    }

    /// Builds the [`ServiceProfile`] for `kind` serving `record_count`
    /// objects of `object_size` bytes, with fsync on or off.
    ///
    /// Message sizes: a PUT carries `key + value` plus per-protocol
    /// metadata; a GET reply carries the value. Both directions are
    /// averaged for the 50/50 workload-A mix.
    pub fn profile(
        &self,
        kind: ServerKind,
        record_count: usize,
        object_size: usize,
        fsync: bool,
    ) -> ServiceProfile {
        let payload_in = KEY_LEN + object_size; // PUT-shaped request
        let payload_out = object_size; // GET-shaped reply
        let state_bytes = record_count * self.map_memory.bytes_per_object(KEY_LEN, object_size);
        let heap_penalty = self.epc.access_penalty(state_bytes);

        // Wire sizes per protocol.
        let (wire_in, wire_out) = match kind {
            ServerKind::Lcm { .. } => (
                // The plaintext routing envelope rides outside the AEAD.
                payload_in + ROUTE_HINT_LEN + INVOKE_OVERHEAD + AEAD_FRAMING,
                payload_out + REPLY_OVERHEAD + AEAD_FRAMING,
            ),
            ServerKind::Sgx { .. } | ServerKind::SgxTmc => (
                payload_in + 1 + AEAD_FRAMING,
                payload_out + 1 + AEAD_FRAMING,
            ),
            // Native/Redis: TLS record framing, roughly the same size.
            ServerKind::Native | ServerKind::RedisTls => (payload_in + 29, payload_out + 29),
        };

        match kind {
            ServerKind::Native => ServiceProfile {
                kind,
                wire_in,
                wire_out,
                per_op: self.host_per_op + self.plain_exec,
                host_share: self.host_per_op,
                per_batch: Duration::ZERO,
                batch_limit: 1,
                extra_latency: 2 * self.stunnel_latency,
                disk_bytes_per_commit: state_bytes.min(1 << 16), // async snapshot page writes
                fsync,
                group_commit: false,
                fsync_per_op: true,
                tmc_per_op: Duration::ZERO,
            },
            ServerKind::RedisTls => ServiceProfile {
                kind,
                wire_in,
                wire_out,
                per_op: self.host_per_op + self.plain_exec,
                host_share: self.host_per_op,
                per_batch: Duration::ZERO,
                batch_limit: 1,
                extra_latency: 2 * self.stunnel_latency,
                // AOF appends only the op entry, not the state.
                disk_bytes_per_commit: payload_in + 16,
                fsync,
                group_commit: true,
                fsync_per_op: false,
                tmc_per_op: Duration::ZERO,
            },
            ServerKind::Sgx { batch } | ServerKind::Lcm { batch } => {
                let crypto = self.aead(wire_in) + self.aead(wire_out);
                let exec = dur_mul(self.enclave_exec, heap_penalty);
                let crypto_cost = crypto;
                let exec_cost = exec;
                let mut per_op = self.host_per_op + crypto_cost + exec_cost;
                let mut host_share = self.host_per_op;
                let mut state = state_bytes;
                let mut per_batch = self.ecall_overhead + self.seal(state);
                if let ServerKind::Lcm { .. } = kind {
                    per_op += self.hash_step + self.route_check + self.admission_check;
                    host_share += self.admission_check;
                    // V map entries (~100 B per client, plus the cached
                    // reply of the retry extension) enlarge the sealed
                    // state; dominated by the KVS state itself.
                    state += 4 * 1024;
                    per_batch = self.ecall_overhead + self.seal(state);
                    // Fitted metadata premium (see module docs): covers
                    // the per-request protocol bookkeeping AND the
                    // heavier seal (V, cached replies) that the paper's
                    // measurements include. Applied to the whole
                    // enclave cycle, matching the throughput overhead
                    // Fig. 4 reports at saturation.
                    let premium = 1.0 + self.lcm_premium(object_size);
                    per_op = dur_mul(per_op, premium);
                    per_batch = dur_mul(per_batch, premium);
                    host_share = dur_mul(host_share, premium);
                }
                ServiceProfile {
                    kind,
                    wire_in,
                    wire_out,
                    per_op,
                    host_share,
                    per_batch,
                    batch_limit: batch.max(1),
                    extra_latency: Duration::ZERO,
                    disk_bytes_per_commit: state,
                    fsync,
                    group_commit: false,
                    fsync_per_op: false,
                    tmc_per_op: Duration::ZERO,
                }
            }
            ServerKind::SgxTmc => {
                let base = self.profile(
                    ServerKind::Sgx { batch: 1 },
                    record_count,
                    object_size,
                    fsync,
                );
                ServiceProfile {
                    kind,
                    tmc_per_op: self.tmc_increment,
                    ..base
                }
            }
        }
    }

    /// Like [`CostModel::profile`], but with the server persisting
    /// through the sealed delta-log storage engine: each group commit
    /// seals only the batch's touched-key diff — plus the engine's
    /// fixed bookkeeping, [`CostModel::delta_store`] — instead of
    /// resealing the whole resident state.
    ///
    /// Only the LCM kinds change (the engine passes every other
    /// server's blobs through untouched). The per-*op* cost keeps its
    /// full state-size dependence — the EPC paging penalty taxes
    /// lookups regardless of how the state is persisted — but the
    /// per-*batch* cost and the commit's disk footprint become
    /// functions of the batch alone, which is why the engine's
    /// throughput is nearly independent of record count (the
    /// `delta-1M` vs `delta-small` bench cells, gated in CI).
    pub fn profile_delta_log(
        &self,
        kind: ServerKind,
        record_count: usize,
        object_size: usize,
        fsync: bool,
    ) -> ServiceProfile {
        let mut profile = self.profile(kind, record_count, object_size, fsync);
        let ServerKind::Lcm { batch } = kind else {
            return profile;
        };
        // One sealed delta: the batch's keys and values with their
        // per-record codec framing, plus the V-map subset for the
        // batch's clients and the anchor/floor header — none of it
        // scales with the resident record count.
        let delta_bytes = batch.max(1) * (KEY_LEN + object_size + 16) + 512;
        let premium = 1.0 + self.lcm_premium(object_size);
        profile.per_batch = dur_mul(
            self.ecall_overhead + self.seal(delta_bytes) + self.delta_store,
            premium,
        );
        profile.disk_bytes_per_commit = delta_bytes;
        profile
    }
}

/// The per-request/per-batch costs of one server configuration, as
/// consumed by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceProfile {
    /// Which server this profiles.
    pub kind: ServerKind,
    /// Request wire size in bytes.
    pub wire_in: usize,
    /// Reply wire size in bytes.
    pub wire_out: usize,
    /// Single-threaded server work per operation.
    pub per_op: Duration,
    /// The untrusted-host share of `per_op` (socket recv/send, queue
    /// management, routing) — the part the transport front-end's
    /// driver threads pay, and the base of the front-end contention
    /// surcharge.
    pub host_share: Duration,
    /// Single-threaded server work per batch (ecall + seal).
    pub per_batch: Duration,
    /// Maximum operations per batch.
    pub batch_limit: usize,
    /// Extra round-trip latency not serialized at the server
    /// (Stunnel worker processes).
    pub extra_latency: Duration,
    /// Bytes written to disk per commit.
    pub disk_bytes_per_commit: usize,
    /// Whether writes are fsynced (Fig. 6) or async (Figs. 4/5).
    pub fsync: bool,
    /// Whether concurrent commits share one fsync (Redis group
    /// commit).
    pub group_commit: bool,
    /// Whether the fsync is per operation (Native snapshots) rather
    /// than per batch.
    pub fsync_per_op: bool,
    /// Trusted-monotonic-counter increment charged per operation.
    pub tmc_per_op: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn lcm_premium_interpolates() {
        let m = model();
        assert!((m.lcm_premium(100) - m.lcm_premium_100).abs() < 1e-9);
        assert!((m.lcm_premium(2500) - m.lcm_premium_2500).abs() < 1e-9);
        let mid = m.lcm_premium(1300);
        assert!(mid < m.lcm_premium_100 && mid > m.lcm_premium_2500);
        // Clamped outside the anchors (within float tolerance).
        assert!((m.lcm_premium(50) - m.lcm_premium_100).abs() < 1e-9);
        assert!((m.lcm_premium(10_000) - m.lcm_premium_2500).abs() < 1e-9);
    }

    #[test]
    fn lcm_costs_more_than_sgx() {
        let m = model();
        for size in [100, 500, 2500] {
            let sgx = m.profile(ServerKind::Sgx { batch: 1 }, 1000, size, false);
            let lcm = m.profile(ServerKind::Lcm { batch: 1 }, 1000, size, false);
            assert!(lcm.per_op > sgx.per_op, "size {size}");
            assert!(lcm.wire_in > sgx.wire_in);
            assert!(lcm.wire_out > sgx.wire_out);
        }
    }

    #[test]
    fn route_check_is_charged_to_lcm_only() {
        let mut cheap = model();
        cheap.route_check = Duration::ZERO;
        let m = model();
        let with_check = m.profile(ServerKind::Lcm { batch: 1 }, 1000, 100, false);
        let without = cheap.profile(ServerKind::Lcm { batch: 1 }, 1000, 100, false);
        assert!(with_check.per_op > without.per_op);
        // SGX has no in-enclave router to pay for.
        assert_eq!(
            m.profile(ServerKind::Sgx { batch: 1 }, 1000, 100, false)
                .per_op,
            cheap
                .profile(ServerKind::Sgx { batch: 1 }, 1000, 100, false)
                .per_op
        );
        // The check is small: well under 1% of the LCM per-op budget,
        // matching its footprint on the real stack.
        let delta = with_check.per_op - without.per_op;
        assert!(delta * 100 < with_check.per_op);
    }

    #[test]
    fn admission_check_is_charged_to_lcm_host_share() {
        let mut cheap = model();
        cheap.admission_check = Duration::ZERO;
        let m = model();
        let with_check = m.profile(ServerKind::Lcm { batch: 1 }, 1000, 100, false);
        let without = cheap.profile(ServerKind::Lcm { batch: 1 }, 1000, 100, false);
        // The front door runs on the host, so both the total and the
        // host share of the per-op cost carry it.
        assert!(with_check.per_op > without.per_op);
        assert!(with_check.host_share > without.host_share);
        // SGX has no multi-tenant front door to pay for.
        assert_eq!(
            m.profile(ServerKind::Sgx { batch: 1 }, 1000, 100, false)
                .per_op,
            cheap
                .profile(ServerKind::Sgx { batch: 1 }, 1000, 100, false)
                .per_op
        );
        // Like the route check, it is noise next to the crypto work:
        // under 2% of the LCM per-op budget.
        let delta = with_check.per_op - without.per_op;
        assert!(delta * 50 < with_check.per_op);
    }

    #[test]
    fn delta_log_per_batch_is_state_size_independent() {
        let m = model();
        let kind = ServerKind::Lcm { batch: 16 };
        let small = m.profile_delta_log(kind, 1_000, 100, true);
        let big = m.profile_delta_log(kind, 1_000_000, 100, true);
        // The sealed diff per commit does not grow with the store.
        assert_eq!(small.per_batch, big.per_batch);
        assert_eq!(small.disk_bytes_per_commit, big.disk_bytes_per_commit);
        // Full-state sealing at 10^6 records dwarfs both.
        let full = m.profile(kind, 1_000_000, 100, true);
        assert!(full.per_batch > 10 * big.per_batch);
        assert!(full.disk_bytes_per_commit > 100 * big.disk_bytes_per_commit);
        // The per-op EPC tax survives: reads still walk the big map.
        assert!(big.per_op > small.per_op);
    }

    #[test]
    fn delta_store_is_charged_per_group_commit() {
        let mut cheap = model();
        cheap.delta_store = Duration::ZERO;
        let m = model();
        let kind = ServerKind::Lcm { batch: 4 };
        let with_term = m.profile_delta_log(kind, 1000, 100, true);
        let without = cheap.profile_delta_log(kind, 1000, 100, true);
        // Bookkeeping lands on the batch, not on each op.
        assert!(with_term.per_batch > without.per_batch);
        assert_eq!(with_term.per_op, without.per_op);
        // Non-LCM blobs pass through the engine untouched.
        let sgx = ServerKind::Sgx { batch: 4 };
        assert_eq!(
            m.profile_delta_log(sgx, 1000, 100, true),
            m.profile(sgx, 1000, 100, true)
        );
    }

    #[test]
    fn native_is_cheapest_per_op() {
        let m = model();
        let native = m.profile(ServerKind::Native, 1000, 100, false);
        let sgx = m.profile(ServerKind::Sgx { batch: 1 }, 1000, 100, false);
        assert!(native.per_op < sgx.per_op + sgx.per_batch);
    }

    #[test]
    fn batching_reduces_per_op_share() {
        let m = model();
        let unbatched = m.profile(ServerKind::Sgx { batch: 1 }, 1000, 100, false);
        let batched = m.profile(ServerKind::Sgx { batch: 16 }, 1000, 100, false);
        assert_eq!(unbatched.per_batch, batched.per_batch);
        assert_eq!(batched.batch_limit, 16);
    }

    #[test]
    fn tmc_inherits_sgx_and_adds_counter() {
        let m = model();
        let sgx = m.profile(ServerKind::Sgx { batch: 1 }, 1000, 100, false);
        let tmc = m.profile(ServerKind::SgxTmc, 1000, 100, false);
        assert_eq!(tmc.per_op, sgx.per_op);
        assert_eq!(tmc.tmc_per_op, Duration::from_millis(60));
    }

    #[test]
    fn redis_disk_is_incremental() {
        let m = model();
        let redis = m.profile(ServerKind::RedisTls, 1000, 100, true);
        let sgx = m.profile(ServerKind::Sgx { batch: 1 }, 1000, 100, true);
        assert!(redis.disk_bytes_per_commit < sgx.disk_bytes_per_commit / 10);
        assert!(redis.group_commit);
        assert!(!sgx.group_commit);
    }

    #[test]
    fn epc_penalty_inflates_exec_for_huge_stores() {
        let m = model();
        let small = m.profile(ServerKind::Sgx { batch: 1 }, 1000, 100, false);
        let huge = m.profile(ServerKind::Sgx { batch: 1 }, 1_000_000, 100, false);
        assert!(huge.per_op > small.per_op);
    }

    #[test]
    fn labels_match_paper_legend() {
        assert_eq!(ServerKind::Lcm { batch: 16 }.label(), "LCM with batching");
        assert_eq!(ServerKind::Sgx { batch: 1 }.label(), "SGX");
        assert_eq!(ServerKind::figure5_series().len(), 7);
    }
}
