//! Validates the simulator's shard-count knob against the *real*
//! sharded multi-enclave stack.
//!
//! The engine models `Simulation::with_shards(n)` as n independent
//! stations with their own queues and disks; the real counterpart is
//! `lcm_core::shard::ShardedServer` running n enclaves over namespaced
//! storage with a wall-clock per-store latency. Both must agree
//! qualitatively: a saturated single enclave scales by well over 1.5x
//! at 4 shards, and a single unsaturated client gains nothing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lcm_core::admin::AdminHandle;
use lcm_core::client::LcmClient;
use lcm_core::functionality::Counter;
use lcm_core::server::BatchServer;
use lcm_core::shard::build_sharded;
use lcm_core::stability::Quorum;
use lcm_core::types::ClientId;
use lcm_kvs::client::KvsClient;
use lcm_kvs::ops::{KvOp, KvResult};
use lcm_sim::cost::ServerKind;
use lcm_sim::scenario::{run_scenario, Scenario};
use lcm_sim::CostModel;
use lcm_storage::{DelayedStorage, DeltaLogStorage, MemoryStorage};
use lcm_tee::world::TeeWorld;

const N_CLIENTS: u32 = 32;
const BATCH: usize = 4;
const ROUNDS: u32 = 8;
/// Large enough that the modelled device latency dominates even
/// unoptimized (debug-profile) enclave crypto on a single-core runner.
const STORE_DELAY: Duration = Duration::from_millis(2);

/// Real ops/s of the sharded stack: one `inc` per client per round on
/// the client's own counter (counters spread over shards by route
/// hash), all queued before each processing sweep.
fn measure_real(shards: u32, pipelined: bool) -> f64 {
    let world = TeeWorld::new_deterministic(9_000 + u64::from(shards));
    let storage = Arc::new(DelayedStorage::new(MemoryStorage::new(), STORE_DELAY));
    let mut server = build_sharded::<Counter>(&world, 1, storage, BATCH, shards, pipelined);
    assert!(server.boot().unwrap());
    let ids: Vec<ClientId> = (1..=N_CLIENTS).map(ClientId).collect();
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, 11);
    admin.bootstrap(&mut server).unwrap();
    let mut clients: Vec<LcmClient> = ids
        .iter()
        .map(|&id| LcmClient::new_sharded(id, admin.client_key(), shards))
        .collect();

    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        for (i, c) in clients.iter_mut().enumerate() {
            let op = Counter::inc_op(format!("k{i}").as_bytes(), 1);
            server.submit(c.invoke_for::<Counter>(&op).unwrap());
        }
        let replies = server.process_all().unwrap();
        assert_eq!(replies.len(), N_CLIENTS as usize);
        for (id, wire) in replies {
            let c = clients.iter_mut().find(|c| c.id() == id).unwrap();
            c.handle_reply(&wire).unwrap();
        }
    }
    server.flush_persists().unwrap();
    f64::from(N_CLIENTS * ROUNDS) / t0.elapsed().as_secs_f64()
}

fn predict(shards: usize, n_clients: usize) -> f64 {
    let model = CostModel::default();
    let mut scenario = Scenario::paper_default(ServerKind::Lcm { batch: BATCH }, n_clients);
    scenario.fsync = true; // the real sweep charges every store
    scenario.shards = shards;
    run_scenario(&model, &scenario).throughput()
}

/// Real ops/s of the sharded stack behind the concurrent transport
/// front-end with `driver_threads` lane drivers: every client runs its
/// own closed loop on its own thread through a `FrontendPort`.
fn measure_real_frontend(shards: u32, driver_threads: usize) -> f64 {
    use lcm_core::transport::{DriveMode, Frontend};
    let world = TeeWorld::new_deterministic(9_100 + u64::from(shards));
    let storage = Arc::new(DelayedStorage::new(MemoryStorage::new(), STORE_DELAY));
    let server = build_sharded::<Counter>(&world, 1, storage, BATCH, shards, false);
    let mut fe = Frontend::new(server, driver_threads, DriveMode::Continuous).unwrap();
    assert!(fe.boot().unwrap());
    let ids: Vec<ClientId> = (1..=N_CLIENTS).map(ClientId).collect();
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, 11);
    admin.bootstrap(&mut fe).unwrap();

    let t0 = Instant::now();
    let workers: Vec<_> = ids
        .iter()
        .map(|&id| {
            let mut client = LcmClient::new_sharded(id, admin.client_key(), shards);
            let port = fe.connect(id);
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    let op = Counter::inc_op(format!("k{}-{i}", id.0).as_bytes(), 1);
                    port.send(client.invoke_for::<Counter>(&op).unwrap());
                    let reply = port
                        .recv_timeout(Duration::from_secs(60))
                        .expect("closed-loop reply");
                    client.handle_reply(&reply).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    fe.flush_persists().unwrap();
    f64::from(N_CLIENTS * ROUNDS) / t0.elapsed().as_secs_f64()
}

fn predict_frontend(shards: usize, threads: usize, n_clients: usize) -> f64 {
    predict_frontend_with_model(&CostModel::default(), shards, threads, n_clients)
}

fn predict_frontend_with_model(
    model: &CostModel,
    shards: usize,
    threads: usize,
    n_clients: usize,
) -> f64 {
    let mut scenario = Scenario::paper_default(ServerKind::Lcm { batch: BATCH }, n_clients);
    scenario.fsync = true;
    scenario.shards = shards;
    scenario.frontend_threads = threads;
    run_scenario(model, &scenario).throughput()
}

/// [`measure_real_frontend`] with the multi-tenant admission layer
/// enabled at the front door: one unmetered tenant holding every
/// client, so no request is ever throttled and the measured delta is
/// purely the admission *bookkeeping* (token accounting, dedup map
/// probes, latency histograms) the cost model charges as
/// `admission_check`.
fn measure_real_frontend_admitted(shards: u32, driver_threads: usize) -> f64 {
    use lcm_core::admission::{AdmissionConfig, TenantConfig, TenantId};
    use lcm_core::transport::{DriveMode, Frontend};
    let world = TeeWorld::new_deterministic(9_100 + u64::from(shards));
    let storage = Arc::new(DelayedStorage::new(MemoryStorage::new(), STORE_DELAY));
    let server = build_sharded::<Counter>(&world, 1, storage, BATCH, shards, false);
    let ids: Vec<ClientId> = (1..=N_CLIENTS).map(ClientId).collect();
    server.configure_admission(AdmissionConfig {
        tenants: vec![TenantConfig::unlimited(TenantId(1), ids.clone(), 1)],
        max_in_flight: 1024,
    });
    let mut fe = Frontend::new(server, driver_threads, DriveMode::Continuous).unwrap();
    assert!(fe.boot().unwrap());
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, 11);
    admin.bootstrap(&mut fe).unwrap();

    let t0 = Instant::now();
    let workers: Vec<_> = ids
        .iter()
        .map(|&id| {
            let mut client = LcmClient::new_sharded(id, admin.client_key(), shards);
            let port = fe.connect(id);
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    let op = Counter::inc_op(format!("k{}-{i}", id.0).as_bytes(), 1);
                    port.send(client.invoke_for::<Counter>(&op).unwrap());
                    let reply = port
                        .recv_timeout(Duration::from_secs(60))
                        .expect("closed-loop reply");
                    client.handle_reply(&reply).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    fe.flush_persists().unwrap();
    f64::from(N_CLIENTS * ROUNDS) / t0.elapsed().as_secs_f64()
}

/// Real ops/s of a single shard run as a replica group of `replicas`
/// members: the leader executes each batch, then ships the sealed blob
/// to every follower (each persisting its own copy through the delayed
/// device) before the quorum releases the replies.
fn measure_real_replicated(replicas: u32) -> f64 {
    use lcm_core::shard::{build_replicated, ReplicationSpec};
    let world = TeeWorld::new_deterministic(9_200 + u64::from(replicas));
    let storage = Arc::new(DelayedStorage::new(MemoryStorage::new(), STORE_DELAY));
    let spec = ReplicationSpec {
        shards: 1,
        replicas,
        quorum: Quorum::Majority,
    };
    let mut server = build_replicated::<Counter>(&world, 1, storage, BATCH, spec, false);
    assert!(server.boot().unwrap());
    let ids: Vec<ClientId> = (1..=N_CLIENTS).map(ClientId).collect();
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, 11);
    admin.bootstrap(&mut server).unwrap();
    let mut clients: Vec<LcmClient> = ids
        .iter()
        .map(|&id| LcmClient::new_sharded(id, admin.client_key(), 1))
        .collect();

    let t0 = Instant::now();
    for _ in 0..ROUNDS {
        for (i, c) in clients.iter_mut().enumerate() {
            let op = Counter::inc_op(format!("k{i}").as_bytes(), 1);
            server.submit(c.invoke_for::<Counter>(&op).unwrap());
        }
        let replies = server.process_all().unwrap();
        assert_eq!(replies.len(), N_CLIENTS as usize);
        for (id, wire) in replies {
            let c = clients.iter_mut().find(|c| c.id() == id).unwrap();
            c.handle_reply(&wire).unwrap();
        }
    }
    server.flush_persists().unwrap();
    f64::from(N_CLIENTS * ROUNDS) / t0.elapsed().as_secs_f64()
}

/// Real ops/s of the KVS stack persisting through the sealed
/// delta-log engine, with `preload` synthetic records resident before
/// the timed window (bulk-loaded via [`KvOp::Fill`], so the preload
/// costs one oversized delta and — once it exceeds the checkpoint
/// cadence — one compaction, both outside the measurement).
fn measure_real_delta(preload: u32) -> f64 {
    let world = TeeWorld::new_deterministic(9_300 + u64::from(preload));
    let disk = Arc::new(DelayedStorage::new(MemoryStorage::new(), STORE_DELAY));
    let engine = Arc::new(DeltaLogStorage::open(disk).expect("engine opens on empty storage"));
    let mut server = build_sharded::<lcm_kvs::store::KvStore>(&world, 1, engine, BATCH, 1, false);
    assert!(server.boot().unwrap());
    let ids: Vec<ClientId> = (1..=N_CLIENTS).map(ClientId).collect();
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, 11);
    admin.bootstrap(&mut server).unwrap();
    let mut clients: Vec<KvsClient> = ids
        .iter()
        .map(|&id| KvsClient::new_sharded(id, admin.client_key(), 1))
        .collect();

    if preload > 0 {
        let fill = KvOp::Fill {
            pin: b"fill".to_vec(),
            start: 0,
            count: preload,
            value_len: 100,
        };
        let done = clients[0].run(&mut server, &fill).unwrap();
        assert_eq!(done.result, KvResult::Stored);
    }

    let mut run_round = |clients: &mut Vec<KvsClient>, round: u32| {
        for (i, c) in clients.iter_mut().enumerate() {
            // Fresh keys each round keep every delta the same shape;
            // "w"-prefixed keys cannot collide with the hex fill keys.
            let op = KvOp::Put(format!("w{i}-{round}").into_bytes(), vec![7u8; 100]);
            server.submit(c.invoke_wire(&op).unwrap());
        }
        let replies = server.process_all().unwrap();
        assert_eq!(replies.len(), N_CLIENTS as usize);
        for (id, wire) in replies {
            let c = clients.iter_mut().find(|c| c.lcm().id() == id).unwrap();
            c.complete(&wire).unwrap();
        }
    };
    // One untimed round: an oversized preload delta defers its
    // compaction checkpoint to the *next* persist — flush that
    // one-time reseal before the clock starts.
    run_round(&mut clients, ROUNDS);

    let t0 = Instant::now();
    for round in 0..ROUNDS {
        run_round(&mut clients, round);
    }
    server.flush_persists().unwrap();
    f64::from(N_CLIENTS * ROUNDS) / t0.elapsed().as_secs_f64()
}

fn predict_delta(record_count: usize, n_clients: usize) -> f64 {
    let model = CostModel::default();
    let mut scenario = Scenario::paper_default(ServerKind::Lcm { batch: BATCH }, n_clients);
    scenario.fsync = true; // the real sweep charges every store
    scenario.delta_log = true;
    scenario.record_count = record_count;
    run_scenario(&model, &scenario).throughput()
}

fn predict_replicated(replicas: usize, n_clients: usize) -> f64 {
    let model = CostModel::default();
    let mut scenario = Scenario::paper_default(ServerKind::Lcm { batch: BATCH }, n_clients);
    scenario.fsync = true; // the real sweep charges every store
    scenario.replicas = replicas;
    run_scenario(&model, &scenario).throughput()
}

#[test]
fn replica_ack_term_tracks_the_real_quorum_cost() {
    // The cost model charges each extra group member a blob apply plus
    // an ack per batch, and its own persisted copy — so write
    // throughput at 3 replicas must drop below 1 replica by roughly
    // the same factor on the model and on the real `ReplicaGroup`
    // stack (both store-bound at this batch/client mix).
    let sim = predict_replicated(1, N_CLIENTS as usize) / predict_replicated(3, N_CLIENTS as usize);
    let real = measure_real_replicated(1) / measure_real_replicated(3);
    assert!(sim > 1.2, "simulator predicts a {sim:.2}x write slowdown");
    assert!(real > 1.2, "real stack shows a {real:.2}x write slowdown");
    let agreement = real / sim;
    assert!(
        (0.3..=3.0).contains(&agreement),
        "sim {sim:.2}x vs real {real:.2}x diverge (agreement {agreement:.2})"
    );
}

#[test]
fn delta_store_term_tracks_the_real_engine_state_independence() {
    // The delta-log model's load-bearing claim is that write
    // throughput stops depending on resident state size: per commit
    // the engine seals a batch-shaped diff plus the fixed
    // `delta_store` bookkeeping, never the whole store. Validate the
    // claim on the real stack — a 40x larger resident store must cost
    // at most wall-clock jitter on the engine — and check the
    // predicted and measured large-vs-small ratios agree within the
    // usual generous band.
    let sim = predict_delta(20_000, N_CLIENTS as usize) / predict_delta(500, N_CLIENTS as usize);
    let real = measure_real_delta(20_000) / measure_real_delta(500);
    assert!(sim > 0.5, "simulator keeps {sim:.2}x at 40x the state");
    assert!(real > 0.5, "real engine keeps {real:.2}x at 40x the state");
    let agreement = real / sim;
    assert!(
        (0.3..=3.0).contains(&agreement),
        "sim {sim:.2}x vs real {real:.2}x diverge (agreement {agreement:.2})"
    );
}

#[test]
fn four_shards_beat_one_on_the_real_stack() {
    let x1 = measure_real(1, false);
    let x4 = measure_real(4, false);
    let speedup = x4 / x1;
    assert!(
        speedup >= 1.5,
        "4-shard sync speedup {speedup:.2}x below the 1.5x bar (x1={x1:.0}, x4={x4:.0})"
    );
}

#[test]
fn four_shards_beat_one_in_pipelined_mode_too() {
    let x1 = measure_real(1, true);
    let x4 = measure_real(4, true);
    let speedup = x4 / x1;
    assert!(
        speedup >= 1.3,
        "4-shard pipelined speedup {speedup:.2}x too low (x1={x1:.0}, x4={x4:.0})"
    );
}

#[test]
fn simulator_frontend_knob_tracks_the_real_trend() {
    // The engine models front-end driver threads as the vehicles of
    // shard cycles: with one driver, the 4 shards' store round-trips
    // serialize again; with 4, they overlap. The real stack behind the
    // concurrent `Frontend` must show the same recovery, and the
    // predicted and measured 4-vs-1-driver speedups must agree within
    // the same generous band as the shard knob.
    let sim =
        predict_frontend(4, 4, N_CLIENTS as usize) / predict_frontend(4, 1, N_CLIENTS as usize);
    let real = measure_real_frontend(4, 4) / measure_real_frontend(4, 1);
    assert!(sim > 1.5, "simulator predicts {sim:.2}x");
    assert!(real > 1.5, "real stack shows {real:.2}x");
    let agreement = real / sim;
    assert!(
        (0.3..=3.0).contains(&agreement),
        "sim {sim:.2}x vs real {real:.2}x diverge (agreement {agreement:.2})"
    );
}

#[test]
fn admission_term_matches_the_real_bookkeeping_cost() {
    // The cost model charges `admission_check` — the front door's
    // per-request token/dedup/histogram bookkeeping — as host-side
    // noise (a fraction of a percent of the per-op budget). Validate
    // that claim against the real stack: the identical closed-loop
    // front-end workload with admission enabled (one unmetered tenant,
    // nobody throttled) must not lose more than wall-clock jitter
    // versus admission disabled, and the simulator must predict the
    // same near-unity ratio.
    let with_check = CostModel::default();
    let without_check = CostModel {
        admission_check: Duration::ZERO,
        ..CostModel::default()
    };
    let sim = predict_frontend_with_model(&with_check, 4, 4, N_CLIENTS as usize)
        / predict_frontend_with_model(&without_check, 4, 4, N_CLIENTS as usize);
    assert!(
        (0.95..=1.0).contains(&sim),
        "the model says bookkeeping is noise, not {sim:.3}x"
    );

    let real = measure_real_frontend_admitted(4, 4) / measure_real_frontend(4, 4);
    assert!(
        (0.5..=1.5).contains(&real),
        "admission bookkeeping changed real throughput by {real:.2}x"
    );
    let agreement = real / sim;
    assert!(
        (0.3..=3.0).contains(&agreement),
        "sim {sim:.3}x vs real {real:.2}x diverge (agreement {agreement:.2})"
    );
}

#[test]
fn simulator_shard_knob_tracks_the_real_trend() {
    // Both stacks are store-bound at this batch/client mix; the
    // predicted and measured 4-vs-1 speedups must agree on direction
    // and rough magnitude (within a generous factor — the simulator is
    // calibrated against the paper's hardware, not this machine).
    let sim = predict(4, N_CLIENTS as usize) / predict(1, N_CLIENTS as usize);
    let real = measure_real(4, false) / measure_real(1, false);
    assert!(sim > 1.5, "simulator predicts {sim:.2}x");
    assert!(real > 1.5, "real stack shows {real:.2}x");
    let agreement = real / sim;
    assert!(
        (0.3..=3.0).contains(&agreement),
        "sim {sim:.2}x vs real {real:.2}x diverge (agreement {agreement:.2})"
    );
}
