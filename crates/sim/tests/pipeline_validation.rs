//! Validates the simulator's asynchronous-write predictions against
//! the *real* concurrent pipeline.
//!
//! The discrete-event simulator charges virtual disk costs and
//! predicts (Figs. 5/6): async writes beat fsync-bound writes, and
//! batching amortizes the per-commit cost. `PipelinedServer` now
//! implements the async mode with real threads; these tests check that
//! the simulator's qualitative claims hold on the real stack under an
//! identical storage cost ([`DelayedStorage`]).

use std::sync::Arc;
use std::time::{Duration, Instant};

use lcm_core::admin::AdminHandle;
use lcm_core::client::LcmClient;
use lcm_core::functionality::AppendLog;
use lcm_core::pipeline::PipelinedServer;
use lcm_core::server::{BatchServer, LcmServer};
use lcm_core::stability::Quorum;
use lcm_core::types::ClientId;
use lcm_sim::cost::ServerKind;
use lcm_sim::scenario::{run_scenario, Scenario};
use lcm_sim::CostModel;
use lcm_storage::{DelayedStorage, MemoryStorage};
use lcm_tee::world::TeeWorld;

const N_CLIENTS: u32 = 16;
const ROUNDS: u32 = 30;
const STORE_DELAY: Duration = Duration::from_micros(500);

/// Drives `rounds` full rounds (one op per client, queued then
/// processed as batches) against a boxed server; returns the wall
/// clock including a final persistence flush.
fn drive(server: &mut Box<dyn BatchServer>, clients: &mut [LcmClient], rounds: u32) -> Duration {
    let t0 = Instant::now();
    for round in 0..rounds {
        for c in clients.iter_mut() {
            server.submit(c.invoke(&round.to_be_bytes()).unwrap());
        }
        let replies = server.process_all().unwrap();
        for (id, wire) in replies {
            let c = clients.iter_mut().find(|c| c.id() == id).unwrap();
            c.handle_reply(&wire).unwrap();
        }
    }
    server.flush_persists().unwrap();
    t0.elapsed()
}

fn real_stack(batch: usize, pipelined: bool, seed: u64) -> Duration {
    let world = TeeWorld::new_deterministic(seed);
    let platform = world.platform_deterministic(1);
    let storage = Arc::new(DelayedStorage::new(MemoryStorage::new(), STORE_DELAY));
    let inner = LcmServer::<AppendLog>::new(&platform, storage, batch);
    let mut server: Box<dyn BatchServer> = if pipelined {
        Box::new(PipelinedServer::new(inner))
    } else {
        Box::new(inner)
    };
    server.boot().unwrap();
    let ids: Vec<ClientId> = (1..=N_CLIENTS).map(ClientId).collect();
    let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, seed);
    admin.bootstrap(&mut server).unwrap();
    let mut clients: Vec<LcmClient> = ids
        .iter()
        .map(|&id| LcmClient::new(id, admin.client_key()))
        .collect();
    drive(&mut server, &mut clients, ROUNDS)
}

#[test]
fn simulator_predicts_async_wins_and_the_real_pipeline_agrees() {
    // Simulator: LCM with batching, 16 clients — async ≥ fsync.
    let model = CostModel::default();
    let mut scenario = Scenario::paper_default(ServerKind::Lcm { batch: 16 }, N_CLIENTS as usize);
    let predicted_async = run_scenario(&model, &scenario).throughput();
    scenario.fsync = true;
    let predicted_fsync = run_scenario(&model, &scenario).throughput();
    assert!(
        predicted_async > predicted_fsync,
        "simulator must predict async-write mode ahead: {predicted_async:.0} vs {predicted_fsync:.0}"
    );

    // Real stack, identical per-store wall-clock cost: the pipelined
    // (async-write) server must finish the same schedule at least as
    // fast as the synchronous loop, which serializes every store into
    // the execution path. The comparison is wall clock on a possibly
    // loaded CI runner, so allow 5% scheduler noise — the strict
    // throughput win is measured by `benches/pipeline.rs`.
    let sync_elapsed = real_stack(16, false, 90);
    let pipelined_elapsed = real_stack(16, true, 90);
    assert!(
        pipelined_elapsed.as_secs_f64() < sync_elapsed.as_secs_f64() * 1.05,
        "real pipeline must not lose to the synchronous loop under storage cost: \
         pipelined {pipelined_elapsed:?} vs sync {sync_elapsed:?}"
    );
}

#[test]
fn simulator_predicts_batching_amortizes_and_the_real_stack_agrees() {
    // Simulator: under fsync-bound writes batching wins.
    let model = CostModel::default();
    let mut s1 = Scenario::paper_default(ServerKind::Lcm { batch: 1 }, N_CLIENTS as usize);
    s1.fsync = true;
    let mut s16 = Scenario::paper_default(ServerKind::Lcm { batch: 16 }, N_CLIENTS as usize);
    s16.fsync = true;
    assert!(
        run_scenario(&model, &s16).throughput() > run_scenario(&model, &s1).throughput(),
        "simulator must predict batching ahead under fsync"
    );

    // Real stack: same schedule, same storage cost — batch=16 pays the
    // store once per round instead of 16 times.
    let unbatched = real_stack(1, false, 91);
    let batched = real_stack(16, false, 91);
    assert!(
        batched < unbatched,
        "batch=16 must beat batch=1 under storage cost: {batched:?} vs {unbatched:?}"
    );
}
