//! Model-based property tests: the enclave `KvStore` must behave
//! exactly like a reference `BTreeMap` under arbitrary op sequences,
//! through serialization boundaries and through the full byte-level
//! `Functionality` interface.

use std::collections::BTreeMap;

use lcm_core::codec::WireCodec;
use lcm_core::functionality::Functionality;
use lcm_kvs::ops::{KvOp, KvResult};
use lcm_kvs::store::KvStore;
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = KvOp> {
    let key = proptest::collection::vec(any::<u8>(), 0..8);
    let value = proptest::collection::vec(any::<u8>(), 0..32);
    prop_oneof![
        3 => key.clone().prop_map(KvOp::Get),
        3 => (key.clone(), value).prop_map(|(k, v)| KvOp::Put(k, v)),
        1 => key.clone().prop_map(KvOp::Del),
        1 => (key.clone(), any::<u32>()).prop_map(|(start, limit)| KvOp::Scan {
            start,
            limit: limit % 16,
        }),
        1 => (key.clone(), key, any::<u32>()).prop_map(|(pin, start, limit)| KvOp::ScanShard {
            pin,
            start,
            limit: limit % 16,
        }),
        1 => (
            proptest::collection::vec(any::<u8>(), 0..8),
            any::<u64>(),
            0u32..4,
            0u32..8,
        )
            .prop_map(|(pin, start, count, value_len)| KvOp::Fill {
                pin,
                start,
                count,
                value_len,
            }),
    ]
}

fn reference_apply(model: &mut BTreeMap<Vec<u8>, Vec<u8>>, op: &KvOp) -> KvResult {
    match op {
        KvOp::Get(k) => KvResult::Value(model.get(k).cloned()),
        KvOp::Put(k, v) => {
            model.insert(k.clone(), v.clone());
            KvResult::Stored
        }
        KvOp::Del(k) => KvResult::Deleted(model.remove(k).is_some()),
        // A pinned scan executes exactly like a plain scan; the pin
        // only affects routing.
        KvOp::Scan { start, limit } | KvOp::ScanShard { start, limit, .. } => KvResult::Range(
            model
                .range(start.clone()..)
                .take(*limit as usize)
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        ),
        KvOp::Fill {
            start,
            count,
            value_len,
            ..
        } => {
            for i in 0..u64::from(*count) {
                model.insert(
                    format!("{:016x}", start.wrapping_add(i)).into_bytes(),
                    vec![b'x'; *value_len as usize],
                );
            }
            KvResult::Stored
        }
    }
}

proptest! {
    // Pinned case count so CI time is bounded; the runner's seed is
    // derived deterministically from each test's name.
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Typed path equals the reference model.
    #[test]
    fn store_matches_reference(ops in proptest::collection::vec(arb_op(), 0..200)) {
        let mut store = KvStore::default();
        let mut model = BTreeMap::new();
        for op in &ops {
            prop_assert_eq!(store.apply(op), reference_apply(&mut model, op));
        }
        prop_assert_eq!(store.len(), model.len());
    }

    /// The byte-level Functionality interface agrees with the typed
    /// path.
    #[test]
    fn exec_bytes_match_typed(ops in proptest::collection::vec(arb_op(), 0..100)) {
        let mut typed = KvStore::default();
        let mut raw = KvStore::default();
        for op in &ops {
            let typed_result = typed.apply(op);
            let raw_result = KvResult::from_bytes(&raw.exec(&op.to_bytes())).unwrap();
            prop_assert_eq!(typed_result, raw_result);
        }
    }

    /// Snapshot/restore at any point is transparent.
    #[test]
    fn snapshot_restore_any_point(
        before in proptest::collection::vec(arb_op(), 0..60),
        after in proptest::collection::vec(arb_op(), 0..60),
    ) {
        let mut direct = KvStore::default();
        let mut checkpointed = KvStore::default();
        for op in &before {
            direct.apply(op);
            checkpointed.apply(op);
        }
        // Round-trip through the serialization interface.
        let snap = checkpointed.snapshot();
        let mut restored = KvStore::default();
        restored.restore(&snap).unwrap();
        for op in &after {
            prop_assert_eq!(direct.apply(op), restored.apply(op));
        }
        prop_assert_eq!(direct, restored);
    }

    /// Snapshots are canonical: equal stores produce identical bytes.
    #[test]
    fn snapshots_are_canonical(ops in proptest::collection::vec(arb_op(), 0..60)) {
        let mut a = KvStore::default();
        for op in &ops {
            a.apply(op);
        }
        let snap = a.snapshot();
        let mut b = KvStore::default();
        b.restore(&snap).unwrap();
        prop_assert_eq!(b.snapshot(), snap);
    }

    /// heap_bytes is monotone under inserts of fresh keys.
    #[test]
    fn heap_monotone_under_fresh_inserts(n in 1usize..50) {
        let mut store = KvStore::default();
        let mut last = store.heap_bytes();
        for i in 0..n {
            store.apply(&KvOp::Put(format!("key-{i}").into_bytes(), vec![0u8; 10]));
            let now = store.heap_bytes();
            prop_assert!(now > last);
            last = now;
        }
    }

    /// Malformed op bytes never panic and never mutate state.
    #[test]
    fn malformed_ops_are_inert(garbage in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assume!(KvOp::from_bytes(&garbage).is_err());
        let mut store = KvStore::default();
        store.apply(&KvOp::Put(b"k".to_vec(), b"v".to_vec()));
        let snap_before = store.snapshot();
        let result = store.exec(&garbage);
        prop_assert_eq!(KvResult::from_bytes(&result).unwrap(), KvResult::Malformed);
        prop_assert_eq!(store.snapshot(), snap_before);
    }
}
