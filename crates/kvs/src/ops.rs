//! KVS operation and result wire formats.

use lcm_core::codec::{CodecError, Reader, WireCodec, Writer};

/// A key-value store operation (the paper's GET/PUT/DEL client
/// interface, §5.3, extended with ordered scans so YCSB workload E
/// runs natively).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Read the value under a key.
    Get(Vec<u8>),
    /// Store a value under a key.
    Put(Vec<u8>, Vec<u8>),
    /// Delete a key.
    Del(Vec<u8>),
    /// Read up to `limit` records in key order starting at `start`
    /// (inclusive).
    Scan {
        /// First key of the range (inclusive).
        start: Vec<u8>,
        /// Maximum number of records returned.
        limit: u32,
    },
    /// A [`KvOp::Scan`] leg of a cross-shard scatter-gather read,
    /// *pinned* to one shard: the operation routes by `pin` (a
    /// client-chosen key hashing to the target shard) instead of by
    /// `start`, so the client can address the same key range on every
    /// shard and merge the ordered legs.
    ///
    /// The pin travels inside the AEAD like the rest of the operation,
    /// so the receiving enclave's attested-identity route check
    /// recomputes it from the plaintext — a host cannot repoint a
    /// pinned leg at a different shard.
    ScanShard {
        /// Routing pin; must hash to the shard this leg targets.
        pin: Vec<u8>,
        /// First key of the range (inclusive).
        start: Vec<u8>,
        /// Maximum number of records returned by this shard.
        limit: u32,
    },
    /// Bulk-load `count` synthetic records in one invocation: keys are
    /// the 16-hex-digit encodings of `start .. start + count`, values
    /// are `value_len` filler bytes. Routes by `pin` like
    /// [`KvOp::ScanShard`], so a loader can address each shard
    /// directly. This is the benchmark preload path — building a
    /// million-object store one `Put` at a time would spend the whole
    /// measurement window on setup.
    Fill {
        /// Routing pin; must hash to the shard this fill targets.
        pin: Vec<u8>,
        /// First synthetic key index (keys are `{:016x}`-formatted).
        start: u64,
        /// Number of records to insert.
        count: u32,
        /// Length in bytes of each filler value.
        value_len: u32,
    },
}

pub(crate) const OP_GET: u8 = 1;
pub(crate) const OP_PUT: u8 = 2;
pub(crate) const OP_DEL: u8 = 3;
pub(crate) const OP_SCAN: u8 = 4;
pub(crate) const OP_SCAN_SHARD: u8 = 5;
pub(crate) const OP_FILL: u8 = 6;

impl KvOp {
    /// The key this operation routes by (the range start for scans,
    /// the pin for shard-pinned scan legs).
    pub fn key(&self) -> &[u8] {
        match self {
            KvOp::Get(k) | KvOp::Del(k) => k,
            KvOp::Put(k, _) => k,
            KvOp::Scan { start, .. } => start,
            KvOp::ScanShard { pin, .. } | KvOp::Fill { pin, .. } => pin,
        }
    }
}

impl WireCodec for KvOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            KvOp::Get(key) => {
                w.put_u8(OP_GET);
                w.put_raw(key);
            }
            KvOp::Put(key, value) => {
                w.put_u8(OP_PUT);
                w.put_bytes(key);
                w.put_raw(value);
            }
            KvOp::Del(key) => {
                w.put_u8(OP_DEL);
                w.put_raw(key);
            }
            KvOp::Scan { start, limit } => {
                w.put_u8(OP_SCAN);
                w.put_u32(*limit);
                w.put_raw(start);
            }
            KvOp::ScanShard { pin, start, limit } => {
                w.put_u8(OP_SCAN_SHARD);
                w.put_bytes(pin);
                w.put_u32(*limit);
                w.put_raw(start);
            }
            KvOp::Fill {
                pin,
                start,
                count,
                value_len,
            } => {
                w.put_u8(OP_FILL);
                w.put_bytes(pin);
                w.put_u64(*start);
                w.put_u32(*count);
                w.put_u32(*value_len);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            OP_GET => Ok(KvOp::Get(r.get_rest().to_vec())),
            OP_PUT => {
                let key = r.get_bytes()?.to_vec();
                Ok(KvOp::Put(key, r.get_rest().to_vec()))
            }
            OP_DEL => Ok(KvOp::Del(r.get_rest().to_vec())),
            OP_SCAN => {
                let limit = r.get_u32()?;
                Ok(KvOp::Scan {
                    limit,
                    start: r.get_rest().to_vec(),
                })
            }
            OP_SCAN_SHARD => {
                let pin = r.get_bytes()?.to_vec();
                let limit = r.get_u32()?;
                Ok(KvOp::ScanShard {
                    pin,
                    limit,
                    start: r.get_rest().to_vec(),
                })
            }
            OP_FILL => {
                let pin = r.get_bytes()?.to_vec();
                let start = r.get_u64()?;
                let count = r.get_u32()?;
                let value_len = r.get_u32()?;
                Ok(KvOp::Fill {
                    pin,
                    start,
                    count,
                    value_len,
                })
            }
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

/// The result of a [`KvOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvResult {
    /// GET result: the value, or `None` if the key is absent.
    Value(Option<Vec<u8>>),
    /// PUT acknowledged.
    Stored,
    /// DEL result: whether the key existed.
    Deleted(bool),
    /// SCAN result: key/value pairs in key order.
    Range(Vec<(Vec<u8>, Vec<u8>)>),
    /// The operation was malformed.
    Malformed,
}

const RES_NONE: u8 = 1;
const RES_VALUE: u8 = 2;
const RES_STORED: u8 = 3;
const RES_DELETED: u8 = 4;
const RES_MALFORMED: u8 = 5;
const RES_RANGE: u8 = 6;

impl WireCodec for KvResult {
    fn encode(&self, w: &mut Writer) {
        match self {
            KvResult::Value(None) => w.put_u8(RES_NONE),
            KvResult::Value(Some(v)) => {
                w.put_u8(RES_VALUE);
                w.put_raw(v);
            }
            KvResult::Stored => w.put_u8(RES_STORED),
            KvResult::Deleted(existed) => {
                w.put_u8(RES_DELETED);
                w.put_bool(*existed);
            }
            KvResult::Range(pairs) => {
                w.put_u8(RES_RANGE);
                w.put_u32(pairs.len() as u32);
                for (k, v) in pairs {
                    w.put_bytes(k);
                    w.put_bytes(v);
                }
            }
            KvResult::Malformed => w.put_u8(RES_MALFORMED),
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            RES_NONE => Ok(KvResult::Value(None)),
            RES_VALUE => Ok(KvResult::Value(Some(r.get_rest().to_vec()))),
            RES_STORED => Ok(KvResult::Stored),
            RES_DELETED => Ok(KvResult::Deleted(r.get_bool()?)),
            RES_RANGE => {
                let n = r.get_u32()? as usize;
                let mut pairs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let k = r.get_bytes()?.to_vec();
                    let v = r.get_bytes()?.to_vec();
                    pairs.push((k, v));
                }
                Ok(KvResult::Range(pairs))
            }
            RES_MALFORMED => Ok(KvResult::Malformed),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_roundtrips() {
        let ops = vec![
            KvOp::Get(b"key".to_vec()),
            KvOp::Put(b"key".to_vec(), b"value".to_vec()),
            KvOp::Del(b"key".to_vec()),
            KvOp::Get(vec![]),
            KvOp::Put(vec![], vec![]),
            KvOp::Scan {
                start: b"user".to_vec(),
                limit: 50,
            },
            KvOp::ScanShard {
                pin: b"pin-3".to_vec(),
                start: b"user".to_vec(),
                limit: 50,
            },
            KvOp::ScanShard {
                pin: vec![],
                start: vec![],
                limit: 0,
            },
            KvOp::Fill {
                pin: b"pin-0".to_vec(),
                start: 1 << 40,
                count: 1_000_000,
                value_len: 100,
            },
            KvOp::Fill {
                pin: vec![],
                start: 0,
                count: 0,
                value_len: 0,
            },
        ];
        for op in ops {
            assert_eq!(KvOp::from_bytes(&op.to_bytes()).unwrap(), op);
        }
    }

    #[test]
    fn result_roundtrips() {
        let results = vec![
            KvResult::Value(None),
            KvResult::Value(Some(b"v".to_vec())),
            KvResult::Value(Some(vec![])),
            KvResult::Stored,
            KvResult::Deleted(true),
            KvResult::Deleted(false),
            KvResult::Range(vec![]),
            KvResult::Range(vec![
                (b"k1".to_vec(), b"v1".to_vec()),
                (b"k2".to_vec(), vec![]),
            ]),
            KvResult::Malformed,
        ];
        for res in results {
            assert_eq!(KvResult::from_bytes(&res.to_bytes()).unwrap(), res);
        }
    }

    #[test]
    fn key_accessor() {
        assert_eq!(KvOp::Get(b"a".to_vec()).key(), b"a");
        assert_eq!(KvOp::Put(b"b".to_vec(), b"v".to_vec()).key(), b"b");
        assert_eq!(KvOp::Del(b"c".to_vec()).key(), b"c");
        // A pinned scan routes by its pin, not its range start.
        let leg = KvOp::ScanShard {
            pin: b"pin".to_vec(),
            start: b"a".to_vec(),
            limit: 9,
        };
        assert_eq!(leg.key(), b"pin");
        // A bulk fill also routes by its pin.
        let fill = KvOp::Fill {
            pin: b"pin-7".to_vec(),
            start: 0,
            count: 10,
            value_len: 8,
        };
        assert_eq!(fill.key(), b"pin-7");
    }

    #[test]
    fn put_encoding_is_compact() {
        // tag + keylen(4) + key + value, no value length prefix.
        let op = KvOp::Put(vec![0; 40], vec![0; 100]);
        assert_eq!(op.to_bytes().len(), 1 + 4 + 40 + 100);
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(KvOp::from_bytes(&[0x7f]).is_err());
        assert!(KvResult::from_bytes(&[0x7f]).is_err());
    }

    #[test]
    fn empty_value_distinct_from_absent() {
        let present = KvResult::Value(Some(vec![]));
        let absent = KvResult::Value(None);
        assert_ne!(present.to_bytes(), absent.to_bytes());
    }
}
