//! Typed KVS client over the LCM client library (the paper's "KVS
//! client which instantiates the LCM client-library", §5.3).

use lcm_core::client::LcmClient;
use lcm_core::codec::WireCodec;
use lcm_core::server::BatchServer;
use lcm_core::types::{ClientId, Completion};
use lcm_core::{LcmError, Result};
use lcm_crypto::keys::SecretKey;

use crate::ops::{KvOp, KvResult};

/// A key-value client speaking the LCM protocol.
///
/// Wraps an [`LcmClient`], translating between typed KVS operations and
/// the opaque byte operations LCM carries. Transport is external: use
/// the `*_wire` methods with your own channel, or the convenience
/// [`KvsClient::run`] that drives any in-process [`BatchServer`] —
/// synchronous or pipelined — directly (used by examples and tests).
pub struct KvsClient {
    inner: LcmClient,
    /// Round-robin cursor for scatter-gather read pins: successive
    /// read legs spread across the shard groups' replicas instead of
    /// all landing on member 0 (see [`KvsClient::multi_get`]).
    next_pin: u32,
}

impl std::fmt::Debug for KvsClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvsClient")
            .field("lcm", &self.inner)
            .finish()
    }
}

/// A typed completion: the KVS result plus LCM metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KvCompletion {
    /// The decoded KVS result.
    pub result: KvResult,
    /// Sequence number and stability from the LCM layer.
    pub completion: Completion,
}

impl KvsClient {
    /// Creates a client with identity `id` holding the group key `kC`,
    /// for an unsharded (single-shard) deployment.
    pub fn new(id: ClientId, k_c: &SecretKey) -> Self {
        Self::new_sharded(id, k_c, 1)
    }

    /// Creates a client for a deployment of `n_shards` server shards:
    /// operations route by record key (via
    /// [`lcm_core::functionality::Functionality::shard_key`] of
    /// [`KvStore`](crate::store::KvStore)) and the underlying
    /// [`LcmClient`] keeps one protocol context per shard.
    pub fn new_sharded(id: ClientId, k_c: &SecretKey, n_shards: u32) -> Self {
        KvsClient {
            inner: LcmClient::new_sharded(id, k_c, n_shards),
            next_pin: 0,
        }
    }

    /// Number of server shards this client is wired for (1 unless
    /// created with [`KvsClient::new_sharded`]). Must match the
    /// deployment's attested shard count: the client's router and the
    /// enclaves' identity checks agree exactly when they share the
    /// same `(route hash, shard count)` mapping.
    pub fn n_shards(&self) -> u32 {
        self.inner.n_shards()
    }

    /// Access to the underlying LCM client (sequence numbers, stability
    /// watermark, recording).
    pub fn lcm(&self) -> &LcmClient {
        &self.inner
    }

    /// Mutable access to the underlying LCM client.
    pub fn lcm_mut(&mut self) -> &mut LcmClient {
        &mut self.inner
    }

    /// Produces the wire message for a typed operation.
    ///
    /// # Errors
    ///
    /// Propagates [`LcmClient::invoke`] errors.
    pub fn invoke_wire(&mut self, op: &KvOp) -> Result<Vec<u8>> {
        self.inner
            .invoke_for::<crate::store::KvStore>(&op.to_bytes())
    }

    /// Completes a pending operation from a reply wire message.
    ///
    /// # Errors
    ///
    /// Propagates protocol violations from [`LcmClient::handle_reply`];
    /// a malformed *result* inside a well-authenticated reply is
    /// reported as [`LcmError::Codec`].
    pub fn complete(&mut self, reply_wire: &[u8]) -> Result<KvCompletion> {
        let completion = self.inner.handle_reply(reply_wire)?;
        let result = KvResult::from_bytes(&completion.result).map_err(LcmError::Codec)?;
        Ok(KvCompletion { result, completion })
    }

    /// Convenience: runs one operation to completion against an
    /// in-process server (submit → process → complete), transparently
    /// chasing resharding redirects: a reply carrying a newer slice
    /// table re-invokes the operation under it.
    ///
    /// # Errors
    ///
    /// Propagates client- and server-side errors, including detected
    /// violations.
    pub fn run<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
        op: &KvOp,
    ) -> Result<KvCompletion> {
        use lcm_core::client::WriteOutcome;
        let mut wire = self.invoke_wire(op)?;
        loop {
            server.submit(wire);
            let replies = server.process_all()?;
            let mine = replies
                .into_iter()
                .find(|(id, _)| *id == self.inner.id())
                .ok_or_else(|| LcmError::Tee("no reply routed to this client".into()))?;
            match self.inner.handle_reply_on(&mine.1)? {
                (_, WriteOutcome::Done(completion)) => {
                    let result =
                        KvResult::from_bytes(&completion.result).map_err(LcmError::Codec)?;
                    return Ok(KvCompletion { result, completion });
                }
                // The slice moved since this client last routed: the
                // redirect already adopted the newer table, so the
                // re-invocation lands on the new owner.
                (_, WriteOutcome::Redirected { .. }) => {
                    wire = self.invoke_wire(op)?;
                }
            }
        }
    }

    /// Typed GET against an in-process server.
    ///
    /// # Errors
    ///
    /// Propagates [`KvsClient::run`] errors.
    pub fn get<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
        key: &[u8],
    ) -> Result<Option<Vec<u8>>> {
        match self.run(server, &KvOp::Get(key.to_vec()))?.result {
            KvResult::Value(v) => Ok(v),
            other => Err(LcmError::Tee(format!("unexpected result {other:?}"))),
        }
    }

    /// Typed PUT against an in-process server.
    ///
    /// # Errors
    ///
    /// Propagates [`KvsClient::run`] errors.
    pub fn put<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
        key: &[u8],
        value: &[u8],
    ) -> Result<Completion> {
        let done = self.run(server, &KvOp::Put(key.to_vec(), value.to_vec()))?;
        match done.result {
            KvResult::Stored => Ok(done.completion),
            other => Err(LcmError::Tee(format!("unexpected result {other:?}"))),
        }
    }

    /// Refreshes this client's stability watermark by issuing a dummy
    /// read (paper §4.5: a client that needs stability updates without
    /// new work "can simply invoke dummy operations periodically", the
    /// FAUST technique). Returns the refreshed majority-stable
    /// sequence number.
    ///
    /// # Errors
    ///
    /// Propagates [`KvsClient::run`] errors — including the violation
    /// a forked-off client eventually hits.
    pub fn refresh_stability<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
    ) -> Result<lcm_core::types::SeqNo> {
        let done = self.run(server, &KvOp::Get(Vec::new()))?;
        Ok(done.completion.stable)
    }

    /// Typed ordered SCAN against an in-process server: up to `limit`
    /// records starting at `start` (inclusive), in key order.
    ///
    /// # Errors
    ///
    /// Propagates [`KvsClient::run`] errors.
    pub fn scan<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
        start: &[u8],
        limit: u32,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let op = KvOp::Scan {
            start: start.to_vec(),
            limit,
        };
        match self.run(server, &op)?.result {
            KvResult::Range(pairs) => Ok(pairs),
            other => Err(LcmError::Tee(format!("unexpected result {other:?}"))),
        }
    }

    /// Typed DEL against an in-process server.
    ///
    /// # Errors
    ///
    /// Propagates [`KvsClient::run`] errors.
    pub fn del<S: BatchServer + ?Sized>(&mut self, server: &mut S, key: &[u8]) -> Result<bool> {
        match self.run(server, &KvOp::Del(key.to_vec()))?.result {
            KvResult::Deleted(existed) => Ok(existed),
            other => Err(LcmError::Tee(format!("unexpected result {other:?}"))),
        }
    }

    /// Runs a read-only typed operation over the verified read path,
    /// pinned to `replica` of the operation's shard group (replica 0
    /// is valid on unreplicated deployments: it is the sole member).
    ///
    /// If the pinned member is behind — it has not yet applied the
    /// quorum round holding this client's last write, or it answered
    /// with a routing epoch this client has already moved past — the
    /// read is re-issued to the group's current leader, which by
    /// construction holds the newest state. If the slice *moved*
    /// since this client last routed, the authenticated redirect
    /// adopts the newer table and the read chases it to the new owner
    /// under the same pin.
    ///
    /// # Errors
    ///
    /// Propagates client- and server-side errors, including the halt a
    /// forged or rolled-back reply triggers.
    pub fn read_at<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
        op: &KvOp,
        replica: u32,
    ) -> Result<KvResult> {
        use lcm_core::client::ReadOutcome;
        let bytes = op.to_bytes();
        let mut replica = replica;
        let mut behind_retried = false;
        // Each chase adopts a strictly newer table, so the retry count
        // is bounded by the epoch gap; the cap only guards against a
        // broken server bouncing the read forever.
        for _ in 0..8 {
            let wire = self
                .inner
                .read_for::<crate::store::KvStore>(&bytes, replica)?;
            match self.inner.handle_read_reply(&server.serve_read(wire)?)? {
                ReadOutcome::Fresh(done) => {
                    return KvResult::from_bytes(&done.result).map_err(LcmError::Codec)
                }
                ReadOutcome::Behind => {
                    if behind_retried {
                        return Err(LcmError::Tee("group leader behind on verified read".into()));
                    }
                    behind_retried = true;
                    replica = server.group_leader(self.shard_of(op));
                }
                // The newer table is adopted; the next leg routes to
                // the slice's new owner group.
                ReadOutcome::Moved => behind_retried = false,
            }
        }
        Err(LcmError::Tee(
            "verified read chased too many slice moves".into(),
        ))
    }

    /// Typed GET on the verified read path ([`KvsClient::read_at`]):
    /// the follower-served scale-out read.
    ///
    /// # Errors
    ///
    /// Propagates [`KvsClient::read_at`] errors.
    pub fn get_at<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
        key: &[u8],
        replica: u32,
    ) -> Result<Option<Vec<u8>>> {
        match self.read_at(server, &KvOp::Get(key.to_vec()), replica)? {
            KvResult::Value(v) => Ok(v),
            other => Err(LcmError::Tee(format!("unexpected result {other:?}"))),
        }
    }

    /// The shard a typed operation routes to under this client's
    /// *current* slice table (epoch 0's uniform table until a
    /// resharding redirect hands the client a newer one).
    pub fn shard_of(&self, op: &KvOp) -> u32 {
        let bytes = op.to_bytes();
        let key =
            <crate::store::KvStore as lcm_core::functionality::Functionality>::shard_key(&bytes);
        self.inner
            .shard_of_route(lcm_core::shard::route_for(self.inner.id(), key))
    }

    /// Runs a set of typed operations to completion with cross-shard
    /// pipelining: operations on *different* shards are in flight
    /// together (the per-shard sequential rule still holds, so
    /// same-shard operations run in order), every leg's reply is
    /// verified against that shard's own `(tc, ts, hc)` context, and
    /// the completions come back in the input order.
    ///
    /// This is the scatter phase of the scatter-gather reads
    /// ([`KvsClient::multi_get`] / [`KvsClient::scan_all`]); it drives
    /// any [`BatchServer`] — including the concurrent transport
    /// front-end, which it reaches through the same submit/pump
    /// surface.
    ///
    /// # Errors
    ///
    /// Propagates client- and server-side errors, including detected
    /// violations on any leg.
    pub fn fan_out<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
        ops: &[KvOp],
    ) -> Result<Vec<KvCompletion>> {
        use std::collections::{BTreeMap, VecDeque};
        let mut results: Vec<Option<KvCompletion>> = (0..ops.len()).map(|_| None).collect();
        let mut waiting: VecDeque<usize> = (0..ops.len()).collect();
        // shard → index of the op currently in flight there.
        let mut in_flight: BTreeMap<u32, usize> = BTreeMap::new();
        while !waiting.is_empty() || !in_flight.is_empty() {
            // Scatter: launch every waiting op whose shard is free.
            let mut deferred = VecDeque::new();
            while let Some(idx) = waiting.pop_front() {
                let shard = self.shard_of(&ops[idx]);
                if in_flight.contains_key(&shard) {
                    deferred.push_back(idx);
                    continue;
                }
                let wire = self.invoke_wire(&ops[idx])?;
                server.submit(wire);
                in_flight.insert(shard, idx);
            }
            waiting = deferred;
            // Gather: one pump completes every in-flight leg; each
            // reply names its shard (by AAD authentication), pairing
            // it back to the op it answers.
            let before = in_flight.len();
            let replies = server.process_all()?;
            for (id, wire) in replies {
                if id != self.inner.id() {
                    return Err(LcmError::Tee(format!(
                        "fan-out received a reply routed to foreign client {id:?}"
                    )));
                }
                use lcm_core::client::WriteOutcome;
                match self.inner.handle_reply_on(&wire)? {
                    (shard, WriteOutcome::Done(completion)) => {
                        let idx = in_flight
                            .remove(&shard)
                            .ok_or_else(|| LcmError::Tee("reply for a leg not in flight".into()))?;
                        let result =
                            KvResult::from_bytes(&completion.result).map_err(LcmError::Codec)?;
                        results[idx] = Some(KvCompletion { result, completion });
                    }
                    // The leg's slice moved mid-fan-out: the redirect
                    // adopted the newer table, so put the leg back in
                    // the waiting set — the next scatter re-invokes it
                    // under the new routing (possibly onto a shard
                    // that currently has a different leg in flight,
                    // which the scatter loop already serializes).
                    (shard, WriteOutcome::Redirected { .. }) => {
                        let idx = in_flight
                            .remove(&shard)
                            .ok_or_else(|| LcmError::Tee("reply for a leg not in flight".into()))?;
                        waiting.push_back(idx);
                    }
                }
            }
            if in_flight.len() == before && !in_flight.is_empty() {
                return Err(LcmError::Tee(
                    "fan-out made no progress: in-flight legs got no replies".into(),
                ));
            }
        }
        Ok(results
            .into_iter()
            .map(|r| r.expect("every index completed or errored"))
            .collect())
    }

    /// The next scatter-gather read pin: round-robins over the
    /// deployment's `replicas` group members so read legs spread
    /// across followers instead of all landing on member 0. The
    /// leader still backstops every leg ([`KvsClient::read_at`]
    /// re-pins on [`lcm_core::client::ReadOutcome::Behind`]).
    fn next_read_pin(&mut self, replicas: u32) -> u32 {
        let pin = self.next_pin % replicas.max(1);
        self.next_pin = self.next_pin.wrapping_add(1);
        pin
    }

    /// Scatter-gather GET over the verified read path: reads `keys`
    /// with one read leg each, pins round-robined across the shard
    /// groups' replicas, and returns
    /// the values in input order. Each leg is verified against its
    /// shard's own history context; a leg landing on a follower that
    /// is behind re-pins to the group leader, and a leg whose slice
    /// moved chases the redirect.
    ///
    /// # Errors
    ///
    /// Propagates [`KvsClient::read_at`] errors.
    pub fn multi_get<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
        keys: &[Vec<u8>],
    ) -> Result<Vec<Option<Vec<u8>>>> {
        let replicas = server.replica_count();
        keys.iter()
            .map(|k| {
                let pin = self.next_read_pin(replicas);
                match self.read_at(server, &KvOp::Get(k.clone()), pin)? {
                    KvResult::Value(v) => Ok(v),
                    other => Err(LcmError::Tee(format!("unexpected result {other:?}"))),
                }
            })
            .collect()
    }

    /// A routing pin that hashes to `shard` under this client's
    /// *current* slice table — what addresses one [`KvOp::ScanShard`]
    /// leg. `None` when the shard owns no slices under that table
    /// (every slice migrated away): no key can route there, and no
    /// slice-routed data lives there either.
    pub fn pin_for(&self, shard: u32) -> Option<Vec<u8>> {
        let table = self.inner.slice_table();
        if table.slices_of(shard).is_empty() {
            return None;
        }
        (0u32..)
            .map(|j| format!("pin-{j}").into_bytes())
            .find(|k| table.shard_of(lcm_core::shard::route_hash(k)) == shard)
    }

    /// Scatter-gather SCAN over the verified read path: fans one
    /// [`KvOp::ScanShard`] leg out to **every** shard for the same
    /// `[start..]` range (pins round-robined across replicas), merges
    /// the ordered legs, and returns up to `limit` records in global
    /// key order — the cross-shard counterpart of [`KvsClient::scan`],
    /// whose single wire only ever sees one shard's slice of a
    /// partitioned deployment.
    ///
    /// # Errors
    ///
    /// Propagates [`KvsClient::read_at`] errors.
    pub fn scan_all<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
        start: &[u8],
        limit: u32,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let replicas = server.replica_count();
        let mut merged: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for shard in 0..self.n_shards() {
            // A shard that owns no slices under the current table holds
            // no data — and no key could route a leg to it anyway.
            let Some(pin) = self.pin_for(shard) else {
                continue;
            };
            let op = KvOp::ScanShard {
                pin,
                start: start.to_vec(),
                limit,
            };
            let pin = self.next_read_pin(replicas);
            match self.read_at(server, &op, pin)? {
                KvResult::Range(pairs) => merged.extend(pairs),
                other => return Err(LcmError::Tee(format!("unexpected result {other:?}"))),
            }
        }
        // Shards own disjoint key slices, so a sort of the
        // concatenated legs is the merge.
        merged.sort_by(|a, b| a.0.cmp(&b.0));
        merged.truncate(limit as usize);
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::KvStore;
    use lcm_core::admin::AdminHandle;
    use lcm_core::server::LcmServer;
    use lcm_core::stability::Quorum;
    use lcm_storage::MemoryStorage;
    use lcm_tee::world::TeeWorld;
    use std::sync::Arc;

    fn setup() -> (LcmServer<KvStore>, KvsClient, KvsClient) {
        let world = TeeWorld::new_deterministic(3);
        let platform = world.platform_deterministic(1);
        let mut server = LcmServer::<KvStore>::new(&platform, Arc::new(MemoryStorage::new()), 16);
        server.boot().unwrap();
        let mut admin = AdminHandle::new_deterministic(
            &world,
            vec![ClientId(1), ClientId(2)],
            Quorum::Majority,
            1,
        );
        admin.bootstrap(&mut server).unwrap();
        let c1 = KvsClient::new(ClientId(1), admin.client_key());
        let c2 = KvsClient::new(ClientId(2), admin.client_key());
        (server, c1, c2)
    }

    #[test]
    fn typed_put_get_del() {
        let (mut server, mut c1, _c2) = setup();
        c1.put(&mut server, b"name", b"lcm").unwrap();
        assert_eq!(c1.get(&mut server, b"name").unwrap(), Some(b"lcm".to_vec()));
        assert!(c1.del(&mut server, b"name").unwrap());
        assert_eq!(c1.get(&mut server, b"name").unwrap(), None);
        assert!(!c1.del(&mut server, b"name").unwrap());
    }

    #[test]
    fn two_clients_share_the_store() {
        let (mut server, mut c1, mut c2) = setup();
        c1.put(&mut server, b"shared", b"from-c1").unwrap();
        assert_eq!(
            c2.get(&mut server, b"shared").unwrap(),
            Some(b"from-c1".to_vec())
        );
    }

    #[test]
    fn stability_metadata_flows_through() {
        let (mut server, mut c1, mut c2) = setup();
        let p1 = c1.put(&mut server, b"a", b"1").unwrap();
        assert_eq!(p1.stable.0, 0);
        c2.put(&mut server, b"b", b"2").unwrap();
        // Second round: acknowledgements advance stability.
        let p2 = c1.put(&mut server, b"a", b"2").unwrap();
        assert!(p2.stable.0 >= 1, "stable = {}", p2.stable.0);
    }

    #[test]
    fn typed_scan_returns_ordered_range() {
        let (mut server, mut c1, _c2) = setup();
        for i in [3u8, 1, 4, 1, 5, 9, 2, 6] {
            c1.put(&mut server, &[b'k', b'0' + i], &[i]).unwrap();
        }
        let range = c1.scan(&mut server, b"k3", 3).unwrap();
        let keys: Vec<&[u8]> = range.iter().map(|(k, _)| k.as_slice()).collect();
        assert_eq!(keys, vec![&b"k3"[..], b"k4", b"k5"]);
        // Scan past the end returns what exists.
        let tail = c1.scan(&mut server, b"k9", 10).unwrap();
        assert_eq!(tail.len(), 1);
        // Empty store region.
        assert!(c1.scan(&mut server, b"z", 5).unwrap().is_empty());
    }

    #[test]
    fn refresh_stability_advances_watermark() {
        let (mut server, mut c1, mut c2) = setup();
        c1.put(&mut server, b"a", b"1").unwrap();
        c2.put(&mut server, b"b", b"2").unwrap();
        // Without further writes, dummy ops still propagate stability.
        let s1 = c1.refresh_stability(&mut server).unwrap();
        let s2 = c2.refresh_stability(&mut server).unwrap();
        assert!(s2 >= s1);
        assert!(s2.0 >= 1, "watermark after refreshes: {s2}");
    }

    #[test]
    fn verified_read_on_single_replica() {
        let (mut server, mut c1, _c2) = setup();
        c1.put(&mut server, b"name", b"lcm").unwrap();
        // Replica 0 is the sole member on an unreplicated deployment.
        assert_eq!(
            c1.get_at(&mut server, b"name", 0).unwrap(),
            Some(b"lcm".to_vec())
        );
        // Reads never advance the write context.
        let tc_before = c1.lcm().last_seq();
        c1.get_at(&mut server, b"name", 0).unwrap();
        assert_eq!(c1.lcm().last_seq(), tc_before);
        // The write path still works afterwards.
        c1.put(&mut server, b"name", b"v2").unwrap();
        assert_eq!(
            c1.get_at(&mut server, b"name", 0).unwrap(),
            Some(b"v2".to_vec())
        );
    }

    #[test]
    fn lcm_accessors() {
        let (_server, c1, _c2) = setup();
        assert_eq!(c1.lcm().id(), ClientId(1));
        assert!(!c1.lcm().has_pending());
    }
}
