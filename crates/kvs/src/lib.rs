//! Key-value store application for LCM, plus the paper's baselines.
//!
//! The paper demonstrates LCM by protecting *"a simple persistent
//! key-value store (KVS) running in an enclave"* (§5.3): clients invoke
//! `GET`, `PUT` and `DEL` through a KVS client that instantiates the
//! LCM client library; the enclave runs the KVS behind the LCM
//! protocol.
//!
//! This crate provides:
//!
//! * [`ops`] — the KVS operation/result wire formats;
//! * [`store`] — [`store::KvStore`], an ordered-map KVS implementing
//!   [`lcm_core::functionality::Functionality`] (the paper uses C++
//!   `std::map`; we use `BTreeMap`, the same ordered-tree shape, and
//!   account for its memory with the §6.2 model);
//! * [`client`] — a typed KVS client over the LCM client library;
//! * [`baseline`] — the evaluation baselines: a native (unprotected)
//!   KVS, an SGX-sealed KVS *without* rollback protection, an SGX KVS
//!   gated by a trusted monotonic counter, and a Redis-like
//!   append-only-file KVS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod client;
pub mod ops;
pub mod store;
