//! The in-enclave key-value store: the functionality `F`.

use std::collections::BTreeMap;

use lcm_core::codec::{CodecError, Reader, WireCodec, Writer};
use lcm_core::functionality::Functionality;
use lcm_tee::epc::MapMemoryModel;

use crate::ops::{KvOp, KvResult};

/// An ordered-map key-value store implementing the LCM
/// [`Functionality`] interface.
///
/// The paper's prototype stores `std::map<std::string, std::string>`
/// inside the enclave (§5.3) — an ordered red-black tree. `BTreeMap`
/// is the Rust analogue; its per-object bookkeeping is accounted by
/// the [`MapMemoryModel`] so that [`Functionality::heap_bytes`] feeds
/// the §6.2 EPC paging model faithfully.
///
/// # Example
///
/// ```
/// use lcm_core::codec::WireCodec;
/// use lcm_core::functionality::Functionality;
/// use lcm_kvs::ops::{KvOp, KvResult};
/// use lcm_kvs::store::KvStore;
///
/// let mut store = KvStore::default();
/// let result = store.exec(&KvOp::Put(b"k".to_vec(), b"v".to_vec()).to_bytes());
/// assert_eq!(KvResult::from_bytes(&result).unwrap(), KvResult::Stored);
/// let result = store.exec(&KvOp::Get(b"k".to_vec()).to_bytes());
/// assert_eq!(
///     KvResult::from_bytes(&result).unwrap(),
///     KvResult::Value(Some(b"v".to_vec()))
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    memory_model: MemoryModelWrapper,
}

/// Wrapper so `KvStore` can derive `PartialEq` while carrying the
/// memory model configuration.
#[derive(Debug, Clone, Copy, Default)]
struct MemoryModelWrapper(MapMemoryModel);

impl PartialEq for MemoryModelWrapper {
    fn eq(&self, _other: &Self) -> bool {
        true // configuration, not state
    }
}
impl Eq for MemoryModelWrapper {}

impl KvStore {
    /// Applies a typed operation directly (in-enclave fast path; the
    /// byte-level entry point is [`Functionality::exec`]).
    pub fn apply(&mut self, op: &KvOp) -> KvResult {
        match op {
            KvOp::Get(key) => KvResult::Value(self.map.get(key).cloned()),
            KvOp::Put(key, value) => {
                self.map.insert(key.clone(), value.clone());
                KvResult::Stored
            }
            KvOp::Del(key) => KvResult::Deleted(self.map.remove(key).is_some()),
            KvOp::Scan { start, limit } | KvOp::ScanShard { start, limit, .. } => KvResult::Range(
                self.map
                    .range(start.clone()..)
                    .take(*limit as usize)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
            ),
        }
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Direct read access for assertions.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(|v| v.as_slice())
    }
}

impl Functionality for KvStore {
    fn exec(&mut self, op: &[u8]) -> Vec<u8> {
        match KvOp::from_bytes(op) {
            Ok(op) => self.apply(&op).to_bytes(),
            Err(_) => KvResult::Malformed.to_bytes(),
        }
    }

    /// The KVS partitions by record key. A plain scan routes by its
    /// range start (single-shard semantics); a pinned scan leg
    /// ([`KvOp::ScanShard`]) routes by its pin, which is how the
    /// client's scatter-gather read addresses every shard for the same
    /// range.
    fn shard_key(op: &[u8]) -> Option<&[u8]> {
        match *op.first()? {
            crate::ops::OP_GET | crate::ops::OP_DEL => op.get(1..),
            crate::ops::OP_PUT | crate::ops::OP_SCAN_SHARD => {
                let len = u32::from_be_bytes(op.get(1..5)?.try_into().ok()?) as usize;
                op.get(5..5 + len)
            }
            crate::ops::OP_SCAN => op.get(5..),
            _ => None,
        }
    }

    /// GET and both scan flavours leave the store untouched, so a
    /// replica group may serve them on the follower read path. PUT/DEL
    /// (and anything malformed) must take the write path.
    fn is_readonly(op: &[u8]) -> bool {
        matches!(
            op.first(),
            Some(&crate::ops::OP_GET)
                | Some(&crate::ops::OP_SCAN)
                | Some(&crate::ops::OP_SCAN_SHARD)
        )
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(self.map.len() as u32);
        for (k, v) in &self.map {
            w.put_bytes(k);
            w.put_bytes(v);
        }
        w.into_bytes()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), CodecError> {
        let mut r = Reader::new(snapshot);
        let n = r.get_u32()? as usize;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let k = r.get_bytes()?.to_vec();
            let v = r.get_bytes()?.to_vec();
            map.insert(k, v);
        }
        r.finish()?;
        self.map = map;
        Ok(())
    }

    fn heap_bytes(&self) -> usize {
        self.map
            .iter()
            .map(|(k, v)| self.memory_model.0.bytes_per_object(k.len(), v.len()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_del_cycle() {
        let mut s = KvStore::default();
        assert_eq!(s.apply(&KvOp::Get(b"k".to_vec())), KvResult::Value(None));
        assert_eq!(
            s.apply(&KvOp::Put(b"k".to_vec(), b"v1".to_vec())),
            KvResult::Stored
        );
        assert_eq!(
            s.apply(&KvOp::Get(b"k".to_vec())),
            KvResult::Value(Some(b"v1".to_vec()))
        );
        assert_eq!(
            s.apply(&KvOp::Put(b"k".to_vec(), b"v2".to_vec())),
            KvResult::Stored
        );
        assert_eq!(
            s.apply(&KvOp::Get(b"k".to_vec())),
            KvResult::Value(Some(b"v2".to_vec()))
        );
        assert_eq!(s.apply(&KvOp::Del(b"k".to_vec())), KvResult::Deleted(true));
        assert_eq!(s.apply(&KvOp::Del(b"k".to_vec())), KvResult::Deleted(false));
        assert!(s.is_empty());
    }

    #[test]
    fn exec_rejects_malformed_bytes() {
        let mut s = KvStore::default();
        let out = s.exec(&[0xff, 0x01]);
        assert_eq!(KvResult::from_bytes(&out).unwrap(), KvResult::Malformed);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut s = KvStore::default();
        for i in 0..50u32 {
            s.apply(&KvOp::Put(
                format!("key-{i}").into_bytes(),
                format!("value-{i}").into_bytes(),
            ));
        }
        let snap = s.snapshot();
        let mut restored = KvStore::default();
        restored.restore(&snap).unwrap();
        assert_eq!(restored, s);
        assert_eq!(restored.get(b"key-7"), Some(&b"value-7"[..]));
    }

    #[test]
    fn restore_replaces_existing_state() {
        let mut a = KvStore::default();
        a.apply(&KvOp::Put(b"only-in-a".to_vec(), b"x".to_vec()));
        let empty = KvStore::default().snapshot();
        a.restore(&empty).unwrap();
        assert!(a.is_empty());
    }

    #[test]
    fn heap_accounting_matches_paper_scale() {
        // §6.2: 300k objects with 40 B keys and 100 B values ≈ 93 MB.
        // Check the per-object cost without inserting 300k entries.
        let mut s = KvStore::default();
        s.apply(&KvOp::Put(vec![b'k'; 40], vec![b'v'; 100]));
        let per_object = s.heap_bytes();
        let total_300k = per_object * 300_000;
        let mb = total_300k as f64 / 1e6;
        assert!((85.0..=105.0).contains(&mb), "mb = {mb}");
    }

    #[test]
    fn shard_key_extracts_the_record_key() {
        assert_eq!(
            KvStore::shard_key(&KvOp::Get(b"k1".to_vec()).to_bytes()),
            Some(&b"k1"[..])
        );
        assert_eq!(
            KvStore::shard_key(&KvOp::Put(b"k2".to_vec(), b"v".to_vec()).to_bytes()),
            Some(&b"k2"[..])
        );
        assert_eq!(
            KvStore::shard_key(&KvOp::Del(b"k3".to_vec()).to_bytes()),
            Some(&b"k3"[..])
        );
        assert_eq!(
            KvStore::shard_key(
                &KvOp::Scan {
                    start: b"k4".to_vec(),
                    limit: 9,
                }
                .to_bytes()
            ),
            Some(&b"k4"[..])
        );
        assert_eq!(KvStore::shard_key(&[0x7f, 1]), None);
        assert_eq!(KvStore::shard_key(&[]), None);
    }

    #[test]
    fn restore_rejects_truncated_snapshot() {
        let mut s = KvStore::default();
        s.apply(&KvOp::Put(b"k".to_vec(), b"v".to_vec()));
        let snap = s.snapshot();
        let mut t = KvStore::default();
        assert!(t.restore(&snap[..snap.len() - 1]).is_err());
    }
}
