//! The in-enclave key-value store: the functionality `F`.

use std::collections::{BTreeMap, BTreeSet};

use lcm_core::codec::{CodecError, Reader, WireCodec, Writer};
use lcm_core::functionality::Functionality;
use lcm_tee::epc::MapMemoryModel;

use crate::ops::{KvOp, KvResult};

/// An ordered-map key-value store implementing the LCM
/// [`Functionality`] interface.
///
/// The paper's prototype stores `std::map<std::string, std::string>`
/// inside the enclave (§5.3) — an ordered red-black tree. `BTreeMap`
/// is the Rust analogue; its per-object bookkeeping is accounted by
/// the [`MapMemoryModel`] so that [`Functionality::heap_bytes`] feeds
/// the §6.2 EPC paging model faithfully.
///
/// # Example
///
/// ```
/// use lcm_core::codec::WireCodec;
/// use lcm_core::functionality::Functionality;
/// use lcm_kvs::ops::{KvOp, KvResult};
/// use lcm_kvs::store::KvStore;
///
/// let mut store = KvStore::default();
/// let result = store.exec(&KvOp::Put(b"k".to_vec(), b"v".to_vec()).to_bytes());
/// assert_eq!(KvResult::from_bytes(&result).unwrap(), KvResult::Stored);
/// let result = store.exec(&KvOp::Get(b"k".to_vec()).to_bytes());
/// assert_eq!(
///     KvResult::from_bytes(&result).unwrap(),
///     KvResult::Value(Some(b"v".to_vec()))
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct KvStore {
    map: BTreeMap<Vec<u8>, Vec<u8>>,
    memory_model: MemoryModelWrapper,
    dirty: DirtyWrapper,
}

/// Wrapper so `KvStore` can derive `PartialEq` while carrying the
/// memory model configuration.
#[derive(Debug, Clone, Copy, Default)]
struct MemoryModelWrapper(MapMemoryModel);

impl PartialEq for MemoryModelWrapper {
    fn eq(&self, _other: &Self) -> bool {
        true // configuration, not state
    }
}
impl Eq for MemoryModelWrapper {}

/// Keys touched since the last [`Functionality::take_delta`] — the
/// diff the sealed delta log persists instead of a full snapshot.
/// Excluded from equality like the memory model: two stores holding
/// the same records are the same store regardless of how recently
/// their contents were persisted.
#[derive(Debug, Clone, Default)]
struct DirtyWrapper(BTreeSet<Vec<u8>>);

impl PartialEq for DirtyWrapper {
    fn eq(&self, _other: &Self) -> bool {
        true // persistence bookkeeping, not state
    }
}
impl Eq for DirtyWrapper {}

/// Upper bound on a single [`KvOp::Fill`]'s record count: large enough
/// for the million-object benchmark preload, small enough that a
/// malformed count cannot wedge the enclave allocating forever.
const FILL_MAX_COUNT: u32 = 1 << 24;

/// Upper bound on a [`KvOp::Fill`] filler-value length.
const FILL_MAX_VALUE_LEN: u32 = 1 << 20;

impl KvStore {
    /// Applies a typed operation directly (in-enclave fast path; the
    /// byte-level entry point is [`Functionality::exec`]).
    pub fn apply(&mut self, op: &KvOp) -> KvResult {
        match op {
            KvOp::Get(key) => KvResult::Value(self.map.get(key).cloned()),
            KvOp::Put(key, value) => {
                self.map.insert(key.clone(), value.clone());
                self.dirty.0.insert(key.clone());
                KvResult::Stored
            }
            KvOp::Del(key) => {
                let existed = self.map.remove(key).is_some();
                self.dirty.0.insert(key.clone());
                KvResult::Deleted(existed)
            }
            KvOp::Scan { start, limit } | KvOp::ScanShard { start, limit, .. } => KvResult::Range(
                self.map
                    .range(start.clone()..)
                    .take(*limit as usize)
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
            ),
            KvOp::Fill {
                start,
                count,
                value_len,
                ..
            } => {
                if *count > FILL_MAX_COUNT || *value_len > FILL_MAX_VALUE_LEN {
                    return KvResult::Malformed;
                }
                let value = vec![b'x'; *value_len as usize];
                for i in 0..u64::from(*count) {
                    let key = format!("{:016x}", start.wrapping_add(i)).into_bytes();
                    self.map.insert(key.clone(), value.clone());
                    self.dirty.0.insert(key);
                }
                KvResult::Stored
            }
        }
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Direct read access for assertions.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        self.map.get(key).map(|v| v.as_slice())
    }
}

impl Functionality for KvStore {
    fn exec(&mut self, op: &[u8]) -> Vec<u8> {
        match KvOp::from_bytes(op) {
            Ok(op) => self.apply(&op).to_bytes(),
            Err(_) => KvResult::Malformed.to_bytes(),
        }
    }

    /// The KVS partitions by record key. A plain scan routes by its
    /// range start (single-shard semantics); a pinned scan leg
    /// ([`KvOp::ScanShard`]) routes by its pin, which is how the
    /// client's scatter-gather read addresses every shard for the same
    /// range.
    fn shard_key(op: &[u8]) -> Option<&[u8]> {
        match *op.first()? {
            crate::ops::OP_GET | crate::ops::OP_DEL => op.get(1..),
            crate::ops::OP_PUT | crate::ops::OP_SCAN_SHARD | crate::ops::OP_FILL => {
                let len = u32::from_be_bytes(op.get(1..5)?.try_into().ok()?) as usize;
                op.get(5..5 + len)
            }
            crate::ops::OP_SCAN => op.get(5..),
            _ => None,
        }
    }

    /// GET and both scan flavours leave the store untouched, so a
    /// replica group may serve them on the follower read path.
    /// PUT/DEL/FILL (and anything malformed) must take the write path.
    fn is_readonly(op: &[u8]) -> bool {
        matches!(
            op.first(),
            Some(&crate::ops::OP_GET)
                | Some(&crate::ops::OP_SCAN)
                | Some(&crate::ops::OP_SCAN_SHARD)
        )
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(self.map.len() as u32);
        for (k, v) in &self.map {
            w.put_bytes(k);
            w.put_bytes(v);
        }
        w.into_bytes()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), CodecError> {
        let mut r = Reader::new(snapshot);
        let n = r.get_u32()? as usize;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let k = r.get_bytes()?.to_vec();
            let v = r.get_bytes()?.to_vec();
            map.insert(k, v);
        }
        r.finish()?;
        self.map = map;
        // The snapshot is the new persistence baseline; pending diffs
        // against the pre-restore contents are meaningless now.
        self.dirty.0.clear();
        Ok(())
    }

    /// Drains the keys touched since the last persist into a compact
    /// diff: `count` entries of `key ‖ present ‖ value?`. Deletions
    /// travel as `present = false`. Always returns `Some` — the KVS
    /// supports delta persistence even when the diff happens to be
    /// empty (the empty delta is a valid no-op replay record).
    fn take_delta(&mut self) -> Option<Vec<u8>> {
        let dirty = std::mem::take(&mut self.dirty.0);
        let mut w = Writer::new();
        w.put_u32(dirty.len() as u32);
        for key in &dirty {
            w.put_bytes(key);
            match self.map.get(key) {
                Some(v) => {
                    w.put_bool(true);
                    w.put_bytes(v);
                }
                None => w.put_bool(false),
            }
        }
        Some(w.into_bytes())
    }

    fn apply_delta(&mut self, delta: &[u8]) -> Result<(), CodecError> {
        let mut r = Reader::new(delta);
        let n = r.get_u32()? as usize;
        // Decode fully before mutating so a malformed delta cannot
        // leave the store half-updated.
        let mut entries = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let k = r.get_bytes()?.to_vec();
            let v = if r.get_bool()? {
                Some(r.get_bytes()?.to_vec())
            } else {
                None
            };
            entries.push((k, v));
        }
        r.finish()?;
        for (k, v) in entries {
            match v {
                Some(v) => {
                    self.map.insert(k, v);
                }
                None => {
                    self.map.remove(&k);
                }
            }
        }
        Ok(())
    }

    /// Extracts and removes the records whose keys satisfy `belongs` —
    /// the record key IS the partition key ([`KvStore`]'s `shard_key`
    /// routes by it), so the predicate selects exactly the routing
    /// slice's state. Removed keys are also dropped from the dirty set
    /// so later deltas cannot resurrect them on the exporting shard.
    fn take_partition(&mut self, belongs: &dyn Fn(&[u8]) -> bool) -> Option<Vec<u8>> {
        let moved: Vec<Vec<u8>> = self.map.keys().filter(|k| belongs(k)).cloned().collect();
        let mut w = Writer::new();
        w.put_u32(moved.len() as u32);
        for key in &moved {
            let value = self.map.remove(key).expect("key just listed");
            self.dirty.0.remove(key);
            w.put_bytes(key);
            w.put_bytes(&value);
        }
        Some(w.into_bytes())
    }

    /// Merges a partition exported by another shard. The adopted keys
    /// are marked dirty: the importing shard's next delta must carry
    /// them, since ITS persisted baseline has never seen them.
    fn apply_partition(&mut self, partition: &[u8]) -> Result<(), CodecError> {
        let mut r = Reader::new(partition);
        let n = r.get_u32()? as usize;
        // Decode fully before mutating so a malformed partition cannot
        // leave the store half-updated.
        let mut entries = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let k = r.get_bytes()?.to_vec();
            let v = r.get_bytes()?.to_vec();
            entries.push((k, v));
        }
        r.finish()?;
        for (k, v) in entries {
            self.dirty.0.insert(k.clone());
            self.map.insert(k, v);
        }
        Ok(())
    }

    fn heap_bytes(&self) -> usize {
        self.map
            .iter()
            .map(|(k, v)| self.memory_model.0.bytes_per_object(k.len(), v.len()))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_del_cycle() {
        let mut s = KvStore::default();
        assert_eq!(s.apply(&KvOp::Get(b"k".to_vec())), KvResult::Value(None));
        assert_eq!(
            s.apply(&KvOp::Put(b"k".to_vec(), b"v1".to_vec())),
            KvResult::Stored
        );
        assert_eq!(
            s.apply(&KvOp::Get(b"k".to_vec())),
            KvResult::Value(Some(b"v1".to_vec()))
        );
        assert_eq!(
            s.apply(&KvOp::Put(b"k".to_vec(), b"v2".to_vec())),
            KvResult::Stored
        );
        assert_eq!(
            s.apply(&KvOp::Get(b"k".to_vec())),
            KvResult::Value(Some(b"v2".to_vec()))
        );
        assert_eq!(s.apply(&KvOp::Del(b"k".to_vec())), KvResult::Deleted(true));
        assert_eq!(s.apply(&KvOp::Del(b"k".to_vec())), KvResult::Deleted(false));
        assert!(s.is_empty());
    }

    #[test]
    fn exec_rejects_malformed_bytes() {
        let mut s = KvStore::default();
        let out = s.exec(&[0xff, 0x01]);
        assert_eq!(KvResult::from_bytes(&out).unwrap(), KvResult::Malformed);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut s = KvStore::default();
        for i in 0..50u32 {
            s.apply(&KvOp::Put(
                format!("key-{i}").into_bytes(),
                format!("value-{i}").into_bytes(),
            ));
        }
        let snap = s.snapshot();
        let mut restored = KvStore::default();
        restored.restore(&snap).unwrap();
        assert_eq!(restored, s);
        assert_eq!(restored.get(b"key-7"), Some(&b"value-7"[..]));
    }

    #[test]
    fn restore_replaces_existing_state() {
        let mut a = KvStore::default();
        a.apply(&KvOp::Put(b"only-in-a".to_vec(), b"x".to_vec()));
        let empty = KvStore::default().snapshot();
        a.restore(&empty).unwrap();
        assert!(a.is_empty());
    }

    #[test]
    fn heap_accounting_matches_paper_scale() {
        // §6.2: 300k objects with 40 B keys and 100 B values ≈ 93 MB.
        // Check the per-object cost without inserting 300k entries.
        let mut s = KvStore::default();
        s.apply(&KvOp::Put(vec![b'k'; 40], vec![b'v'; 100]));
        let per_object = s.heap_bytes();
        let total_300k = per_object * 300_000;
        let mb = total_300k as f64 / 1e6;
        assert!((85.0..=105.0).contains(&mb), "mb = {mb}");
    }

    #[test]
    fn shard_key_extracts_the_record_key() {
        assert_eq!(
            KvStore::shard_key(&KvOp::Get(b"k1".to_vec()).to_bytes()),
            Some(&b"k1"[..])
        );
        assert_eq!(
            KvStore::shard_key(&KvOp::Put(b"k2".to_vec(), b"v".to_vec()).to_bytes()),
            Some(&b"k2"[..])
        );
        assert_eq!(
            KvStore::shard_key(&KvOp::Del(b"k3".to_vec()).to_bytes()),
            Some(&b"k3"[..])
        );
        assert_eq!(
            KvStore::shard_key(
                &KvOp::Scan {
                    start: b"k4".to_vec(),
                    limit: 9,
                }
                .to_bytes()
            ),
            Some(&b"k4"[..])
        );
        assert_eq!(KvStore::shard_key(&[0x7f, 1]), None);
        assert_eq!(KvStore::shard_key(&[]), None);
    }

    #[test]
    fn fill_bulk_loads_synthetic_records() {
        let mut s = KvStore::default();
        assert_eq!(
            s.apply(&KvOp::Fill {
                pin: b"p".to_vec(),
                start: 5,
                count: 3,
                value_len: 4,
            }),
            KvResult::Stored
        );
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(b"0000000000000005"), Some(&b"xxxx"[..]));
        assert_eq!(s.get(b"0000000000000007"), Some(&b"xxxx"[..]));
        assert_eq!(s.get(b"0000000000000008"), None);
    }

    #[test]
    fn fill_rejects_absurd_counts() {
        let mut s = KvStore::default();
        assert_eq!(
            s.apply(&KvOp::Fill {
                pin: vec![],
                start: 0,
                count: u32::MAX,
                value_len: 1,
            }),
            KvResult::Malformed
        );
        assert!(s.is_empty());
    }

    #[test]
    fn delta_replays_to_the_same_state() {
        let mut s = KvStore::default();
        s.apply(&KvOp::Put(b"stable".to_vec(), b"s".to_vec()));
        let _ = s.take_delta(); // reset the diff baseline
        let mut follower = s.clone();

        s.apply(&KvOp::Put(b"a".to_vec(), b"1".to_vec()));
        s.apply(&KvOp::Put(b"a".to_vec(), b"2".to_vec()));
        s.apply(&KvOp::Put(b"gone".to_vec(), b"x".to_vec()));
        s.apply(&KvOp::Del(b"gone".to_vec()));
        s.apply(&KvOp::Del(b"stable".to_vec()));
        s.apply(&KvOp::Fill {
            pin: vec![],
            start: 10,
            count: 2,
            value_len: 1,
        });

        let delta = s.take_delta().unwrap();
        follower.apply_delta(&delta).unwrap();
        assert_eq!(follower, s);
        assert_eq!(follower.get(b"a"), Some(&b"2"[..]));
        assert_eq!(follower.get(b"stable"), None);
        assert_eq!(follower.get(b"000000000000000a"), Some(&b"x"[..]));
    }

    #[test]
    fn take_delta_drains_the_dirty_set() {
        let mut s = KvStore::default();
        s.apply(&KvOp::Put(b"k".to_vec(), b"v".to_vec()));
        let first = s.take_delta().unwrap();
        let second = s.take_delta().unwrap();
        assert_ne!(first, second);
        // The second delta is empty (count = 0) and replays as a no-op.
        let mut t = KvStore::default();
        t.apply_delta(&second).unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn take_partition_moves_records_and_their_dirt() {
        let mut a = KvStore::default();
        a.apply(&KvOp::Put(b"a1".to_vec(), b"1".to_vec()));
        a.apply(&KvOp::Put(b"b1".to_vec(), b"2".to_vec()));
        a.apply(&KvOp::Put(b"a2".to_vec(), b"3".to_vec()));
        let part = a.take_partition(&|k| k.starts_with(b"a")).unwrap();
        // The exporter no longer holds the moved records...
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(b"b1"), Some(&b"2"[..]));
        // ...and its next delta no longer mentions them (a later delta
        // replay must not resurrect the slice on the old owner).
        let mut replay = KvStore::default();
        replay.apply_delta(&a.take_delta().unwrap()).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay.get(b"b1"), Some(&b"2"[..]));

        // The importer merges them alongside its own records...
        let mut b = KvStore::default();
        b.apply(&KvOp::Put(b"c".to_vec(), b"x".to_vec()));
        let _ = b.take_delta(); // persisted baseline without the slice
        b.apply_partition(&part).unwrap();
        assert_eq!(b.get(b"a1"), Some(&b"1"[..]));
        assert_eq!(b.get(b"a2"), Some(&b"3"[..]));
        assert_eq!(b.get(b"c"), Some(&b"x"[..]));
        // ...and its next delta carries the adopted keys: the
        // importer's persisted baseline has never seen them.
        let mut replay = KvStore::default();
        replay.apply_delta(&b.take_delta().unwrap()).unwrap();
        assert_eq!(replay.get(b"a1"), Some(&b"1"[..]));
        assert_eq!(replay.get(b"a2"), Some(&b"3"[..]));
    }

    #[test]
    fn take_partition_with_no_matches_is_an_empty_transfer() {
        let mut a = KvStore::default();
        a.apply(&KvOp::Put(b"k".to_vec(), b"v".to_vec()));
        let part = a.take_partition(&|_| false).unwrap();
        assert_eq!(a.len(), 1);
        let mut b = KvStore::default();
        b.apply_partition(&part).unwrap();
        assert!(b.is_empty());
    }

    #[test]
    fn apply_partition_rejects_malformed_bytes_without_mutating() {
        let mut s = KvStore::default();
        s.apply(&KvOp::Put(b"k".to_vec(), b"v".to_vec()));
        let before = s.clone();
        let mut w = Writer::new();
        w.put_u32(3); // promise three records, deliver none
        assert!(s.apply_partition(&w.into_bytes()).is_err());
        assert_eq!(s, before);
    }

    #[test]
    fn reads_do_not_dirty_the_store() {
        let mut s = KvStore::default();
        s.apply(&KvOp::Put(b"k".to_vec(), b"v".to_vec()));
        let _ = s.take_delta();
        s.apply(&KvOp::Get(b"k".to_vec()));
        s.apply(&KvOp::Scan {
            start: vec![],
            limit: 5,
        });
        let delta = s.take_delta().unwrap();
        let mut t = KvStore::default();
        t.apply_delta(&delta).unwrap();
        assert!(t.is_empty(), "reads must not appear in the diff");
    }

    #[test]
    fn apply_delta_rejects_malformed_bytes_without_mutating() {
        let mut s = KvStore::default();
        s.apply(&KvOp::Put(b"k".to_vec(), b"v".to_vec()));
        let before = s.clone();
        // Promise two entries, deliver none.
        let mut w = Writer::new();
        w.put_u32(2);
        assert!(s.apply_delta(&w.into_bytes()).is_err());
        assert_eq!(s, before);
        assert_eq!(s.get(b"k"), Some(&b"v"[..]));
    }

    #[test]
    fn restore_clears_pending_diff() {
        let mut s = KvStore::default();
        s.apply(&KvOp::Put(b"pre".to_vec(), b"x".to_vec()));
        let snap = KvStore::default().snapshot();
        s.restore(&snap).unwrap();
        let delta = s.take_delta().unwrap();
        let mut t = KvStore::default();
        t.apply_delta(&delta).unwrap();
        assert!(t.is_empty(), "restore must reset the diff baseline");
    }

    #[test]
    fn fill_shard_key_is_the_pin() {
        let op = KvOp::Fill {
            pin: b"pin-2".to_vec(),
            start: 0,
            count: 1,
            value_len: 1,
        };
        assert_eq!(KvStore::shard_key(&op.to_bytes()), Some(&b"pin-2"[..]));
        assert!(!KvStore::is_readonly(&op.to_bytes()));
    }

    #[test]
    fn restore_rejects_truncated_snapshot() {
        let mut s = KvStore::default();
        s.apply(&KvOp::Put(b"k".to_vec(), b"v".to_vec()));
        let snap = s.snapshot();
        let mut t = KvStore::default();
        assert!(t.restore(&snap[..snap.len() - 1]).is_err());
    }
}
