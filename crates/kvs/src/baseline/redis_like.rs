//! The Redis-like baseline: unprotected KVS with append-only-file
//! persistence.
//!
//! The paper benchmarks Redis configured with an append log and
//! Stunnel-encrypted transport (§6.1: *"We configured Redis to use an
//! append log strategy for persistence"*). Redis itself is out of
//! scope here; this server reproduces the two properties the
//! evaluation uses: append-only persistence (cheap incremental writes
//! instead of full snapshots) and no security machinery in the server
//! process.

use std::sync::Arc;

use lcm_core::codec::{Reader, WireCodec, Writer};
use lcm_core::functionality::Functionality;
use lcm_storage::StableStorage;

use crate::ops::{KvOp, KvResult};
use crate::store::KvStore;

/// Storage slot holding the append-only file.
pub const SLOT_AOF: &str = "redis-like.aof";

/// An append-only-file key-value server.
pub struct RedisLikeKvsServer {
    store: KvStore,
    storage: Arc<dyn StableStorage>,
    aof: Vec<u8>,
    /// Rewrite threshold: when the AOF exceeds this many bytes, it is
    /// compacted into a snapshot entry (Redis' AOF rewrite).
    rewrite_threshold: usize,
}

impl std::fmt::Debug for RedisLikeKvsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RedisLikeKvsServer")
            .field("objects", &self.store.len())
            .field("aof_bytes", &self.aof.len())
            .finish()
    }
}

const ENTRY_OP: u8 = 1;
const ENTRY_SNAPSHOT: u8 = 2;

impl RedisLikeKvsServer {
    /// Creates a server persisting its AOF to `storage`.
    pub fn new(storage: Arc<dyn StableStorage>) -> Self {
        RedisLikeKvsServer {
            store: KvStore::default(),
            storage,
            aof: Vec::new(),
            rewrite_threshold: 1 << 20,
        }
    }

    /// Executes one operation, appending mutations to the AOF.
    pub fn handle(&mut self, op: &KvOp) -> KvResult {
        let result = self.store.apply(op);
        if !matches!(op, KvOp::Get(_)) {
            let mut w = Writer::new();
            w.put_u8(ENTRY_OP);
            w.put_bytes(&op.to_bytes());
            self.aof.extend_from_slice(&w.into_bytes());
            if self.aof.len() > self.rewrite_threshold {
                self.rewrite_aof();
            }
            let _ = self.storage.store(SLOT_AOF, &self.aof);
        }
        result
    }

    fn rewrite_aof(&mut self) {
        let mut w = Writer::new();
        w.put_u8(ENTRY_SNAPSHOT);
        w.put_bytes(&self.store.snapshot());
        self.aof = w.into_bytes();
    }

    /// Replays the AOF after a crash.
    pub fn recover(&mut self) {
        self.store = KvStore::default();
        self.aof = match self.storage.load(SLOT_AOF) {
            Ok(Some(aof)) => aof,
            _ => Vec::new(),
        };
        let aof = std::mem::take(&mut self.aof);
        let mut r = Reader::new(&aof);
        while r.remaining() > 0 {
            let Ok(tag) = r.get_u8() else { break };
            match tag {
                ENTRY_OP => {
                    let Ok(bytes) = r.get_bytes() else { break };
                    if let Ok(op) = KvOp::from_bytes(bytes) {
                        self.store.apply(&op);
                    }
                }
                ENTRY_SNAPSHOT => {
                    let Ok(bytes) = r.get_bytes() else { break };
                    let _ = self.store.restore(bytes);
                }
                _ => break,
            }
        }
        self.aof = aof;
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Current AOF size in bytes (per-op write cost for the simulator
    /// is the op entry size, not the full state).
    pub fn aof_bytes(&self) -> usize {
        self.aof.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_storage::MemoryStorage;

    #[test]
    fn basic_ops_and_recovery() {
        let storage = Arc::new(MemoryStorage::new());
        let mut s = RedisLikeKvsServer::new(storage.clone());
        s.handle(&KvOp::Put(b"a".to_vec(), b"1".to_vec()));
        s.handle(&KvOp::Put(b"b".to_vec(), b"2".to_vec()));
        s.handle(&KvOp::Del(b"a".to_vec()));

        let mut s2 = RedisLikeKvsServer::new(storage);
        s2.recover();
        assert_eq!(s2.handle(&KvOp::Get(b"a".to_vec())), KvResult::Value(None));
        assert_eq!(
            s2.handle(&KvOp::Get(b"b".to_vec())),
            KvResult::Value(Some(b"2".to_vec()))
        );
    }

    #[test]
    fn aof_grows_incrementally() {
        let mut s = RedisLikeKvsServer::new(Arc::new(MemoryStorage::new()));
        s.handle(&KvOp::Put(b"k".to_vec(), vec![0; 100]));
        let after_one = s.aof_bytes();
        s.handle(&KvOp::Put(b"k".to_vec(), vec![0; 100]));
        let after_two = s.aof_bytes();
        // Each op appends roughly the same entry size.
        assert!((after_two - after_one).abs_diff(after_one) < 32);
    }

    #[test]
    fn reads_do_not_touch_the_aof() {
        let mut s = RedisLikeKvsServer::new(Arc::new(MemoryStorage::new()));
        s.handle(&KvOp::Put(b"k".to_vec(), b"v".to_vec()));
        let before = s.aof_bytes();
        s.handle(&KvOp::Get(b"k".to_vec()));
        assert_eq!(s.aof_bytes(), before);
    }

    #[test]
    fn aof_rewrite_compacts() {
        let storage = Arc::new(MemoryStorage::new());
        let mut s = RedisLikeKvsServer::new(storage);
        s.rewrite_threshold = 512;
        for i in 0..100u32 {
            // Repeatedly overwrite one key: the log grows, the state
            // doesn't — rewrite should compact it.
            s.handle(&KvOp::Put(b"hot".to_vec(), i.to_be_bytes().to_vec()));
        }
        assert!(s.aof_bytes() < 4096, "aof = {}", s.aof_bytes());
        s.recover();
        assert_eq!(
            s.handle(&KvOp::Get(b"hot".to_vec())),
            KvResult::Value(Some(99u32.to_be_bytes().to_vec()))
        );
    }
}
