//! The SGX + trusted monotonic counter baseline (§6.5).
//!
//! Rollback protection by brute force: every request increments a
//! hardware monotonic counter and binds the counter value into the
//! sealed state. Detection is immediate — and throughput collapses to
//! `1 / increment_latency` (the paper measures ≈ 12 ops/s at 60 ms per
//! increment, with batching disabled since every state change must be
//! counter-bound).

use std::sync::Arc;
use std::time::Duration;

use lcm_storage::StableStorage;
use lcm_tee::platform::TeePlatform;
use lcm_tee::tmc::{Tmc, TmcConfig};

use crate::baseline::sgx::{SecureKvsClient, SgxKvsServer};
use crate::ops::{KvOp, KvResult};

/// The SGX KVS gated by a trusted monotonic counter.
///
/// Functionally identical to [`SgxKvsServer`] (the counter-binding of
/// sealed state is modelled, not bit-encoded — its performance effect
/// is what the §6.5 experiment studies); every mutation pays one TMC
/// increment, and the accumulated simulated latency is exposed for the
/// cost model.
pub struct SgxTmcKvsServer {
    inner: SgxKvsServer,
    tmc: Tmc,
    simulated_latency: Duration,
}

impl std::fmt::Debug for SgxTmcKvsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SgxTmcKvsServer")
            .field("tmc", &self.tmc)
            .field("simulated_latency", &self.simulated_latency)
            .finish()
    }
}

impl SgxTmcKvsServer {
    /// Creates the server with the given TMC cost configuration.
    pub fn new(
        platform: &TeePlatform,
        storage: Arc<dyn StableStorage>,
        tmc_config: TmcConfig,
    ) -> Self {
        SgxTmcKvsServer {
            // Batching disabled: each op is counter-bound individually.
            inner: SgxKvsServer::new(platform, storage, 1),
            tmc: Tmc::new(tmc_config),
            simulated_latency: Duration::ZERO,
        }
    }

    /// Boots the underlying enclave. On recovery the counter value
    /// would be compared against the sealed state; the emulated counter
    /// read is charged.
    ///
    /// # Errors
    ///
    /// Propagates the underlying server's boot errors.
    pub fn boot(&mut self) -> Result<(), String> {
        self.inner.boot()?;
        let (_, read_cost) = self.tmc.read();
        self.simulated_latency += read_cost;
        Ok(())
    }

    /// Runs one operation, charging a TMC increment for every request
    /// (the paper's TMC baseline consults the counter on *every*
    /// request so that even reads detect rollbacks immediately).
    ///
    /// # Errors
    ///
    /// Propagates transport errors and counter wear-out.
    pub fn run(&mut self, client: &SecureKvsClient, op: &KvOp) -> Result<KvResult, String> {
        let (_, cost) = self.tmc.increment().map_err(|e| e.to_string())?;
        self.simulated_latency += cost;
        client.run(&mut self.inner, op)
    }

    /// Total simulated TMC latency accumulated so far.
    pub fn simulated_latency(&self) -> Duration {
        self.simulated_latency
    }

    /// Current counter value (wear tracking).
    pub fn counter(&self) -> u64 {
        self.tmc.read().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_storage::MemoryStorage;
    use lcm_tee::world::TeeWorld;

    fn setup(latency_ms: u64) -> (SgxTmcKvsServer, SecureKvsClient) {
        let world = TeeWorld::new_deterministic(9);
        let platform = world.platform_deterministic(1);
        let config = TmcConfig {
            increment_latency: Duration::from_millis(latency_ms),
            ..TmcConfig::default()
        };
        let mut server = SgxTmcKvsServer::new(&platform, Arc::new(MemoryStorage::new()), config);
        server.boot().unwrap();
        let client = SecureKvsClient::new(SgxKvsServer::session_key_for(&platform));
        (server, client)
    }

    #[test]
    fn operations_work_and_charge_latency() {
        let (mut server, client) = setup(60);
        server
            .run(&client, &KvOp::Put(b"k".to_vec(), b"v".to_vec()))
            .unwrap();
        server.run(&client, &KvOp::Get(b"k".to_vec())).unwrap();
        assert_eq!(server.counter(), 2);
        // 2 increments × 60 ms, plus the boot-time read.
        assert!(server.simulated_latency() >= Duration::from_millis(120));
    }

    #[test]
    fn throughput_ceiling_matches_paper() {
        // At 60 ms per increment the theoretical ceiling is ~16.7 ops/s;
        // the paper measures ~12 ops/s including processing overhead.
        let (mut server, client) = setup(60);
        let n = 25u32;
        for i in 0..n {
            server
                .run(&client, &KvOp::Put(vec![i as u8], b"v".to_vec()))
                .unwrap();
        }
        let tmc_seconds = server.simulated_latency().as_secs_f64();
        let ceiling = n as f64 / tmc_seconds;
        assert!(
            (10.0..=17.0).contains(&ceiling),
            "ops/s ceiling = {ceiling}"
        );
    }

    #[test]
    fn counter_survives_enclave_restart() {
        let (mut server, client) = setup(1);
        server
            .run(&client, &KvOp::Put(b"k".to_vec(), b"v".to_vec()))
            .unwrap();
        let before = server.counter();
        server.inner.crash();
        server.boot().unwrap();
        assert_eq!(server.counter(), before, "TMC is non-volatile");
    }
}
