//! The unprotected native KVS baseline.

use std::sync::Arc;

use lcm_core::functionality::Functionality;
use lcm_storage::StableStorage;

use crate::ops::{KvOp, KvResult};
use crate::store::KvStore;

/// Storage slot the native server persists its snapshot under.
pub const SLOT_NATIVE_STATE: &str = "native.state";

/// The paper's "Native" baseline: the same KVS with no enclave, no
/// sealing, no protocol metadata. Transport security (Stunnel in the
/// paper) lives outside the server; persistence is a plain snapshot.
///
/// # Example
///
/// ```
/// use lcm_kvs::baseline::NativeKvsServer;
/// use lcm_kvs::ops::{KvOp, KvResult};
/// use lcm_storage::MemoryStorage;
/// use std::sync::Arc;
///
/// let mut server = NativeKvsServer::new(Arc::new(MemoryStorage::new()));
/// let result = server.handle(&KvOp::Put(b"k".to_vec(), b"v".to_vec()));
/// assert_eq!(result, KvResult::Stored);
/// ```
pub struct NativeKvsServer {
    store: KvStore,
    storage: Arc<dyn StableStorage>,
    ops_since_persist: usize,
    /// Persist after this many mutations (1 = per-op persistence).
    persist_every: usize,
}

impl std::fmt::Debug for NativeKvsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeKvsServer")
            .field("objects", &self.store.len())
            .finish()
    }
}

impl NativeKvsServer {
    /// Creates a server persisting snapshots to `storage` after every
    /// mutation.
    pub fn new(storage: Arc<dyn StableStorage>) -> Self {
        Self::with_persist_interval(storage, 1)
    }

    /// Creates a server persisting after every `persist_every`
    /// mutations (coarser persistence, like async snapshotting).
    pub fn with_persist_interval(storage: Arc<dyn StableStorage>, persist_every: usize) -> Self {
        NativeKvsServer {
            store: KvStore::default(),
            storage,
            ops_since_persist: 0,
            persist_every: persist_every.max(1),
        }
    }

    /// Executes one operation.
    pub fn handle(&mut self, op: &KvOp) -> KvResult {
        let result = self.store.apply(op);
        if !matches!(op, KvOp::Get(_)) {
            self.ops_since_persist += 1;
            if self.ops_since_persist >= self.persist_every {
                let _ = self
                    .storage
                    .store(SLOT_NATIVE_STATE, &self.store.snapshot());
                self.ops_since_persist = 0;
            }
        }
        result
    }

    /// Recovers the store from the persisted snapshot (crash restart).
    pub fn recover(&mut self) {
        if let Ok(Some(snapshot)) = self.storage.load(SLOT_NATIVE_STATE) {
            let _ = self.store.restore(&snapshot);
        } else {
            self.store = KvStore::default();
        }
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_storage::MemoryStorage;

    #[test]
    fn basic_ops() {
        let mut s = NativeKvsServer::new(Arc::new(MemoryStorage::new()));
        assert_eq!(s.handle(&KvOp::Get(b"k".to_vec())), KvResult::Value(None));
        s.handle(&KvOp::Put(b"k".to_vec(), b"v".to_vec()));
        assert_eq!(
            s.handle(&KvOp::Get(b"k".to_vec())),
            KvResult::Value(Some(b"v".to_vec()))
        );
    }

    #[test]
    fn recovery_restores_state() {
        let storage = Arc::new(MemoryStorage::new());
        let mut s = NativeKvsServer::new(storage.clone());
        s.handle(&KvOp::Put(b"k".to_vec(), b"v".to_vec()));
        // "Crash": new server over the same storage.
        let mut s2 = NativeKvsServer::new(storage);
        assert!(s2.is_empty());
        s2.recover();
        assert_eq!(
            s2.handle(&KvOp::Get(b"k".to_vec())),
            KvResult::Value(Some(b"v".to_vec()))
        );
    }

    #[test]
    fn native_has_no_rollback_protection() {
        // The defining weakness: after a rollback of storage, the
        // native server silently serves stale data.
        let storage = Arc::new(lcm_storage::RollbackStorage::new());
        let mut s = NativeKvsServer::new(storage.clone());
        s.handle(&KvOp::Put(b"balance".to_vec(), b"100".to_vec()));
        s.handle(&KvOp::Put(b"balance".to_vec(), b"0".to_vec()));

        storage.set_mode(lcm_storage::AdversaryMode::ServeVersion(
            lcm_storage::Version(0),
        ));
        let mut rolled_back = NativeKvsServer::new(storage);
        rolled_back.recover();
        // Stale balance accepted with no error — the attack succeeds.
        assert_eq!(
            rolled_back.handle(&KvOp::Get(b"balance".to_vec())),
            KvResult::Value(Some(b"100".to_vec()))
        );
    }

    #[test]
    fn persist_interval_batches_snapshots() {
        let storage = Arc::new(MemoryStorage::new());
        let mut s = NativeKvsServer::with_persist_interval(storage.clone(), 10);
        for i in 0..5u8 {
            s.handle(&KvOp::Put(vec![i], vec![i]));
        }
        // Below the interval: nothing persisted yet.
        assert_eq!(storage.load(SLOT_NATIVE_STATE).unwrap(), None);
        for i in 5..10u8 {
            s.handle(&KvOp::Put(vec![i], vec![i]));
        }
        assert!(storage.load(SLOT_NATIVE_STATE).unwrap().is_some());
    }
}
