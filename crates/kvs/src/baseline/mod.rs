//! The evaluation baselines of the paper (§6.1, §6.4, §6.5).
//!
//! | Series in Fig. 5/6 | Type here | Protection |
//! |--------------------|-----------|------------|
//! | "Native"           | [`NativeKvsServer`] | none (Stunnel-style transport encryption is modelled at the transport/cost layer) |
//! | "Redis TLS"        | [`RedisLikeKvsServer`] | none; append-only-file persistence (see [`FileAofKvsServer`] for the real-file, fsync-batching variant) |
//! | "SGX"              | [`SgxKvsServer`] | enclave isolation + sealing, **no rollback/fork detection** |
//! | "SGX + TMC"        | [`SgxTmcKvsServer`] | enclave + trusted monotonic counter per request |
//! | "LCM"              | [`lcm_core::server::LcmServer`] over [`crate::store::KvStore`] | rollback + fork detection, fork-linearizability |

mod aof;
mod native;
mod redis_like;
mod sgx;
mod tmc;

pub use aof::{FileAofKvsServer, FsyncPolicy};
pub use native::NativeKvsServer;
pub use redis_like::RedisLikeKvsServer;
pub use sgx::{SecureKvsClient, SgxKvsServer};
pub use tmc::SgxTmcKvsServer;
