//! File-backed append-only-file baseline with fsync batching (group
//! commit).
//!
//! [`crate::baseline::RedisLikeKvsServer`] models Redis' AOF strategy
//! against the abstract blob-store interface; this variant grounds it
//! further: a **real file**, appended incrementally, with the three
//! durability policies Redis exposes as `appendfsync`
//! (`always` / `everysec`-style batching / `no`). Group commit is the
//! baseline counterpart of the LCM server's seal batching — one fsync
//! amortized over N operations — and anchors the Fig. 6 fsync-bound
//! series to a real disk.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};

use lcm_core::codec::WireCodec;
use lcm_storage::framing;

use crate::ops::{KvOp, KvResult};
use crate::store::KvStore;

/// When the append-only file is forced to the medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `appendfsync always`: every mutating operation fsyncs.
    EveryOp,
    /// Group commit: fsync once per `n` mutating operations (min 1).
    EveryN(usize),
    /// `appendfsync no`: never fsync explicitly; the OS decides.
    Never,
}

/// An append-only-file key-value server persisting to a real file.
pub struct FileAofKvsServer {
    store: KvStore,
    path: PathBuf,
    file: File,
    policy: FsyncPolicy,
    /// Mutations appended since the last fsync.
    unsynced_ops: usize,
    fsyncs: u64,
    appended_bytes: u64,
}

impl std::fmt::Debug for FileAofKvsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileAofKvsServer")
            .field("objects", &self.store.len())
            .field("policy", &self.policy)
            .field("fsyncs", &self.fsyncs)
            .finish()
    }
}

impl FileAofKvsServer {
    /// Opens (creating if necessary) a server whose AOF lives at
    /// `path`, replaying any existing log.
    ///
    /// # Errors
    ///
    /// Fails on file I/O errors.
    pub fn open(path: impl AsRef<Path>, policy: FsyncPolicy) -> std::io::Result<Self> {
        let path = path.as_ref().to_owned();
        let mut store = KvStore::default();
        let mut valid_len = None;
        if let Ok(mut existing) = File::open(&path) {
            let mut aof = Vec::new();
            existing.read_to_end(&mut aof)?;
            let valid = replay(&aof, &mut store);
            if valid < aof.len() {
                valid_len = Some(valid as u64);
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        // Truncate a torn tail entry (crash mid-append) so future
        // appends land after the valid prefix, not after garbage that
        // would end every later replay early.
        if let Some(len) = valid_len {
            file.set_len(len)?;
        }
        Ok(FileAofKvsServer {
            store,
            path,
            file,
            policy,
            unsynced_ops: 0,
            fsyncs: 0,
            appended_bytes: 0,
        })
    }

    /// Executes one operation, appending mutations to the AOF and
    /// fsyncing per the configured policy.
    ///
    /// # Errors
    ///
    /// Fails on file I/O errors (the mutation is still applied in
    /// memory — matching Redis, which replies before the AOF write is
    /// guaranteed durable).
    pub fn handle(&mut self, op: &KvOp) -> std::io::Result<KvResult> {
        let result = self.store.apply(op);
        if !matches!(op, KvOp::Get(_)) {
            // Entries use the same length-prefixed CRC framing as the
            // sealed delta log's segments, so torn-tail detection is
            // one shared scanner rather than two hand-rolled parsers.
            let mut entry = Vec::new();
            framing::append_frame(&mut entry, &op.to_bytes());
            self.file.write_all(&entry)?;
            self.appended_bytes += entry.len() as u64;
            self.unsynced_ops += 1;
            match self.policy {
                FsyncPolicy::EveryOp => self.fsync()?,
                FsyncPolicy::EveryN(n) => {
                    if self.unsynced_ops >= n.max(1) {
                        self.fsync()?;
                    }
                }
                FsyncPolicy::Never => {}
            }
        }
        Ok(result)
    }

    /// Forces everything appended so far to the medium (end-of-batch
    /// group commit).
    ///
    /// # Errors
    ///
    /// Fails on file I/O errors.
    pub fn fsync(&mut self) -> std::io::Result<()> {
        self.file.sync_data()?;
        self.fsyncs += 1;
        self.unsynced_ops = 0;
        Ok(())
    }

    /// Drops in-memory state and replays the AOF from disk — crash
    /// recovery.
    ///
    /// # Errors
    ///
    /// Fails on file I/O errors.
    pub fn recover(&mut self) -> std::io::Result<()> {
        self.store = KvStore::default();
        let mut aof = Vec::new();
        File::open(&self.path)?.read_to_end(&mut aof)?;
        let valid = replay(&aof, &mut self.store);
        if valid < aof.len() {
            self.file.set_len(valid as u64)?;
        }
        self.unsynced_ops = 0;
        Ok(())
    }

    /// Number of fsyncs performed — the group-commit amortization
    /// signal: `ops / fsyncs` is the effective batch size.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Bytes appended to the AOF so far.
    pub fn appended_bytes(&self) -> u64 {
        self.appended_bytes
    }

    /// Number of stored objects.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }
}

/// Replays `aof` into `store`, returning the length of the valid
/// prefix — everything past it is a torn tail entry (crash mid-append)
/// the caller should truncate away.
fn replay(aof: &[u8], store: &mut KvStore) -> usize {
    let scanned = framing::scan(aof);
    let mut valid = 0;
    for payload in scanned.payloads {
        // A CRC-valid frame that is not a decodable op means the log
        // was produced by something else (or corrupted in a way CRC
        // happens to miss); stop at the last decodable record.
        let Ok(op) = KvOp::from_bytes(payload) else {
            break;
        };
        store.apply(&op);
        valid += framing::FRAME_HEADER + payload.len();
    }
    valid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_aof(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lcm-kvs-aof-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("server.aof")
    }

    #[test]
    fn ops_survive_recovery() {
        let path = temp_aof("recovery");
        let mut s = FileAofKvsServer::open(&path, FsyncPolicy::EveryOp).unwrap();
        s.handle(&KvOp::Put(b"a".to_vec(), b"1".to_vec())).unwrap();
        s.handle(&KvOp::Put(b"b".to_vec(), b"2".to_vec())).unwrap();
        s.handle(&KvOp::Del(b"a".to_vec())).unwrap();
        s.recover().unwrap();
        assert_eq!(
            s.handle(&KvOp::Get(b"a".to_vec())).unwrap(),
            KvResult::Value(None)
        );
        assert_eq!(
            s.handle(&KvOp::Get(b"b".to_vec())).unwrap(),
            KvResult::Value(Some(b"2".to_vec()))
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn reopen_replays_the_file() {
        let path = temp_aof("reopen");
        {
            let mut s = FileAofKvsServer::open(&path, FsyncPolicy::EveryOp).unwrap();
            s.handle(&KvOp::Put(b"k".to_vec(), b"v".to_vec())).unwrap();
        }
        let mut s = FileAofKvsServer::open(&path, FsyncPolicy::EveryOp).unwrap();
        assert_eq!(
            s.handle(&KvOp::Get(b"k".to_vec())).unwrap(),
            KvResult::Value(Some(b"v".to_vec()))
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn group_commit_amortizes_fsyncs() {
        let path = temp_aof("group");
        let mut every_op = FileAofKvsServer::open(&path, FsyncPolicy::EveryOp).unwrap();
        for i in 0..32u32 {
            every_op
                .handle(&KvOp::Put(b"k".to_vec(), i.to_be_bytes().to_vec()))
                .unwrap();
        }
        assert_eq!(every_op.fsyncs(), 32);

        let path8 = temp_aof("group8");
        let mut batched = FileAofKvsServer::open(&path8, FsyncPolicy::EveryN(8)).unwrap();
        for i in 0..32u32 {
            batched
                .handle(&KvOp::Put(b"k".to_vec(), i.to_be_bytes().to_vec()))
                .unwrap();
        }
        assert_eq!(batched.fsyncs(), 4, "one group commit per 8 ops");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
        let _ = std::fs::remove_dir_all(path8.parent().unwrap());
    }

    #[test]
    fn reads_do_not_append_or_fsync() {
        let path = temp_aof("reads");
        let mut s = FileAofKvsServer::open(&path, FsyncPolicy::EveryOp).unwrap();
        s.handle(&KvOp::Put(b"k".to_vec(), b"v".to_vec())).unwrap();
        let (bytes, fsyncs) = (s.appended_bytes(), s.fsyncs());
        s.handle(&KvOp::Get(b"k".to_vec())).unwrap();
        assert_eq!(s.appended_bytes(), bytes);
        assert_eq!(s.fsyncs(), fsyncs);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn fsynced_entries_after_a_torn_tail_survive_the_next_replay() {
        let path = temp_aof("torn-then-append");
        {
            let mut s = FileAofKvsServer::open(&path, FsyncPolicy::EveryOp).unwrap();
            s.handle(&KvOp::Put(b"old".to_vec(), b"1".to_vec()))
                .unwrap();
        }
        // Crash mid-append leaves garbage at the tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            // A frame header promising 16 payload bytes, then power
            // loss after only one landed.
            f.write_all(&[0, 0, 0, 16, 0xde, 0xad, 0xbe, 0xef, 0xff])
                .unwrap();
        }
        // Reopen truncates the torn tail; a new durable entry follows.
        {
            let mut s = FileAofKvsServer::open(&path, FsyncPolicy::EveryOp).unwrap();
            s.handle(&KvOp::Put(b"new".to_vec(), b"2".to_vec()))
                .unwrap();
        }
        // The next replay must see BOTH entries — nothing fsynced lost.
        let mut s = FileAofKvsServer::open(&path, FsyncPolicy::EveryOp).unwrap();
        assert_eq!(
            s.handle(&KvOp::Get(b"old".to_vec())).unwrap(),
            KvResult::Value(Some(b"1".to_vec()))
        );
        assert_eq!(
            s.handle(&KvOp::Get(b"new".to_vec())).unwrap(),
            KvResult::Value(Some(b"2".to_vec()))
        );
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_entry_is_truncated_on_replay() {
        let path = temp_aof("torn");
        {
            let mut s = FileAofKvsServer::open(&path, FsyncPolicy::Never).unwrap();
            s.handle(&KvOp::Put(b"good".to_vec(), b"v".to_vec()))
                .unwrap();
        }
        // Simulate a crash mid-append: garbage half-entry at the tail.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            // A frame header promising 16 payload bytes, then power
            // loss after only one landed.
            f.write_all(&[0, 0, 0, 16, 0xde, 0xad, 0xbe, 0xef, 0xff])
                .unwrap();
        }
        let mut s = FileAofKvsServer::open(&path, FsyncPolicy::Never).unwrap();
        assert_eq!(
            s.handle(&KvOp::Get(b"good".to_vec())).unwrap(),
            KvResult::Value(Some(b"v".to_vec()))
        );
        assert_eq!(s.len(), 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
