//! The SGX-secured KVS baseline: enclave isolation and sealing, but
//! **no rollback or forking detection**.
//!
//! This is the paper's primary comparison point ("SGX" in Figs. 4–6):
//! client messages are encrypted, state is sealed before it leaves the
//! enclave — yet a host that restarts the enclave from a stale sealed
//! blob goes completely undetected, because nothing ties the client's
//! view to the enclave's history.

use std::collections::VecDeque;
use std::sync::Arc;

use lcm_core::codec::{CodecError, Reader, WireCodec, Writer};
use lcm_core::functionality::Functionality;
use lcm_crypto::aead::{self, AeadKey};
use lcm_crypto::keys::SecretKey;
use lcm_storage::StableStorage;
use lcm_tee::enclave::{Enclave, EnclaveProgram};
use lcm_tee::measurement::Measurement;
use lcm_tee::platform::{TeePlatform, TeeServices};

use crate::ops::{KvOp, KvResult};
use crate::store::KvStore;

/// AAD label for client→enclave messages.
const LABEL_REQ: &[u8] = b"sgx-kvs.req";
/// AAD label for enclave→client messages.
const LABEL_RES: &[u8] = b"sgx-kvs.res";
/// AAD label for the sealed state.
const LABEL_STATE: &[u8] = b"sgx-kvs.state";

/// Storage slot for the sealed KVS state.
pub const SLOT_SGX_STATE: &str = "sgx-kvs.state";

enum ProgramCall {
    Init(Option<Vec<u8>>),
    Batch(Vec<Vec<u8>>),
}

impl ProgramCall {
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            ProgramCall::Init(blob) => {
                w.put_u8(1);
                match blob {
                    None => w.put_bool(false),
                    Some(b) => {
                        w.put_bool(true);
                        w.put_bytes(b);
                    }
                }
            }
            ProgramCall::Batch(msgs) => {
                w.put_u8(2);
                w.put_u32(msgs.len() as u32);
                for m in msgs {
                    w.put_bytes(m);
                }
            }
        }
        w.into_bytes()
    }

    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let out = match r.get_u8()? {
            1 => {
                let blob = if r.get_bool()? {
                    Some(r.get_bytes()?.to_vec())
                } else {
                    None
                };
                ProgramCall::Init(blob)
            }
            2 => {
                let n = r.get_u32()? as usize;
                let mut msgs = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    msgs.push(r.get_bytes()?.to_vec());
                }
                ProgramCall::Batch(msgs)
            }
            other => return Err(CodecError::InvalidTag(other)),
        };
        r.finish()?;
        Ok(out)
    }
}

/// The enclave program: a sealed KVS without history metadata.
pub struct SecureKvsProgram {
    services: TeeServices,
    store: KvStore,
    session: AeadKey,
    nonce_counter: u64,
}

impl SecureKvsProgram {
    fn seal_state(&mut self) -> Vec<u8> {
        let seal = AeadKey::from_secret(&self.services.sealing_key());
        let nonce = self.next_nonce();
        aead::auth_encrypt_with_nonce(&seal, &nonce, &self.store.snapshot(), LABEL_STATE)
            .expect("sealing cannot fail for snapshot-sized payloads")
    }

    fn next_nonce(&mut self) -> [u8; 12] {
        use rand::RngCore;
        self.nonce_counter += 1;
        let mut rng = self.services.rng();
        let mut base = [0u8; 12];
        rng.fill_bytes(&mut base);
        for (i, b) in self.nonce_counter.to_be_bytes().iter().enumerate() {
            base[i + 4] ^= b;
        }
        base
    }
}

impl EnclaveProgram for SecureKvsProgram {
    fn measurement() -> Measurement {
        Measurement::of_program("sgx-kvs", "1")
    }

    fn boot(services: TeeServices) -> Self {
        // The session key is derived from the sealing key in this
        // baseline: clients of the SGX KVS are assumed to have obtained
        // it via attestation; the baseline's security properties are
        // not the object of study.
        let session = AeadKey::from_secret(&lcm_crypto::hkdf::derive_key(
            &services.sealing_key(),
            b"sgx-kvs",
            b"session",
        ));
        SecureKvsProgram {
            services,
            store: KvStore::default(),
            session,
            nonce_counter: 0,
        }
    }

    fn ecall(&mut self, input: &[u8]) -> Vec<u8> {
        let Ok(call) = ProgramCall::from_bytes(input) else {
            return Vec::new();
        };
        match call {
            ProgramCall::Init(blob) => {
                if let Some(blob) = blob {
                    let seal = AeadKey::from_secret(&self.services.sealing_key());
                    // No freshness check is POSSIBLE here: any correctly
                    // sealed blob unseals, however stale. That is the
                    // vulnerability LCM exists to close.
                    if let Ok(snapshot) = aead::auth_decrypt(&seal, &blob, LABEL_STATE) {
                        let _ = self.store.restore(&snapshot);
                    }
                }
                Vec::new()
            }
            ProgramCall::Batch(msgs) => {
                let mut w = Writer::new();
                w.put_u32(msgs.len() as u32);
                for msg in msgs {
                    let reply = match aead::auth_decrypt(&self.session, &msg, LABEL_REQ) {
                        Ok(plain) => match KvOp::from_bytes(&plain) {
                            Ok(op) => self.store.apply(&op),
                            Err(_) => KvResult::Malformed,
                        },
                        Err(_) => KvResult::Malformed,
                    };
                    let nonce = self.next_nonce();
                    let sealed = aead::auth_encrypt_with_nonce(
                        &self.session,
                        &nonce,
                        &reply.to_bytes(),
                        LABEL_RES,
                    )
                    .expect("reply encryption");
                    w.put_bytes(&sealed);
                }
                w.put_bytes(&self.seal_state());
                w.into_bytes()
            }
        }
    }
}

/// Host server for the SGX KVS baseline: enclave + sealed persistence +
/// batching, mirroring [`lcm_core::server::LcmServer`] minus LCM.
pub struct SgxKvsServer {
    enclave: Enclave<SecureKvsProgram>,
    storage: Arc<dyn StableStorage>,
    batch_limit: usize,
    queue: VecDeque<Vec<u8>>,
}

impl std::fmt::Debug for SgxKvsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SgxKvsServer")
            .field("running", &self.enclave.is_running())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl SgxKvsServer {
    /// Creates the server on `platform`, persisting sealed snapshots to
    /// `storage`, batching up to `batch_limit` ops per seal.
    pub fn new(
        platform: &TeePlatform,
        storage: Arc<dyn StableStorage>,
        batch_limit: usize,
    ) -> Self {
        SgxKvsServer {
            enclave: Enclave::create(platform),
            storage,
            batch_limit: batch_limit.max(1),
            queue: VecDeque::new(),
        }
    }

    /// Starts (or restarts) the enclave and loads the sealed state.
    ///
    /// # Errors
    ///
    /// Propagates TEE and storage failures as strings.
    pub fn boot(&mut self) -> Result<(), String> {
        if self.enclave.is_running() {
            self.enclave.stop();
        }
        self.enclave.start().map_err(|e| e.to_string())?;
        let blob = self
            .storage
            .load(SLOT_SGX_STATE)
            .map_err(|e| e.to_string())?;
        self.enclave
            .ecall(&ProgramCall::Init(blob).to_bytes())
            .map_err(|e| e.to_string())?;
        Ok(())
    }

    /// Simulates a crash.
    pub fn crash(&mut self) {
        self.enclave.stop();
        self.queue.clear();
    }

    /// Enqueues an encrypted request.
    pub fn submit(&mut self, wire: Vec<u8>) {
        self.queue.push_back(wire);
    }

    /// Processes all queued requests, returning encrypted replies in
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates TEE and storage failures as strings.
    pub fn process_all(&mut self) -> Result<Vec<Vec<u8>>, String> {
        let mut out = Vec::new();
        while !self.queue.is_empty() {
            let take = self.batch_limit.min(self.queue.len());
            let batch: Vec<Vec<u8>> = self.queue.drain(..take).collect();
            let raw = self
                .enclave
                .ecall(&ProgramCall::Batch(batch).to_bytes())
                .map_err(|e| e.to_string())?;
            let mut r = Reader::new(&raw);
            let n = r.get_u32().map_err(|e| e.to_string())? as usize;
            for _ in 0..n {
                out.push(r.get_bytes().map_err(|e| e.to_string())?.to_vec());
            }
            let state = r.get_bytes().map_err(|e| e.to_string())?;
            self.storage
                .store(SLOT_SGX_STATE, state)
                .map_err(|e| e.to_string())?;
        }
        Ok(out)
    }

    /// The session key clients use (obtained via attestation in a real
    /// deployment; exposed here for the baseline client).
    pub fn session_key_for(platform: &TeePlatform) -> AeadKey {
        let services = TeeServices::for_tests(platform.clone(), SecureKvsProgram::measurement(), 0);
        AeadKey::from_secret(&lcm_crypto::hkdf::derive_key(
            &services.sealing_key(),
            b"sgx-kvs",
            b"session",
        ))
    }
}

/// Client for the SGX KVS baseline.
#[derive(Clone)]
pub struct SecureKvsClient {
    key: AeadKey,
}

impl std::fmt::Debug for SecureKvsClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SecureKvsClient")
    }
}

impl SecureKvsClient {
    /// Creates a client holding the session key.
    pub fn new(key: AeadKey) -> Self {
        SecureKvsClient { key }
    }

    /// Encrypts one operation.
    ///
    /// # Errors
    ///
    /// Fails only on pathological payload sizes.
    pub fn encrypt_op(&self, op: &KvOp) -> Result<Vec<u8>, String> {
        aead::auth_encrypt(&self.key, &op.to_bytes(), LABEL_REQ).map_err(|e| e.to_string())
    }

    /// Decrypts one reply.
    ///
    /// # Errors
    ///
    /// Fails on tampered replies.
    pub fn decrypt_reply(&self, wire: &[u8]) -> Result<KvResult, String> {
        let plain = aead::auth_decrypt(&self.key, wire, LABEL_RES).map_err(|e| e.to_string())?;
        KvResult::from_bytes(&plain).map_err(|e| e.to_string())
    }

    /// Convenience: run one op to completion against an in-process
    /// server.
    ///
    /// # Errors
    ///
    /// Propagates transport and decryption failures.
    pub fn run(&self, server: &mut SgxKvsServer, op: &KvOp) -> Result<KvResult, String> {
        server.submit(self.encrypt_op(op)?);
        let replies = server.process_all()?;
        let last = replies.last().ok_or("no reply")?;
        self.decrypt_reply(last)
    }
}

/// Wrap `SecretKey` derivation for the session, used by keys module.
pub(crate) fn _session_secret(_k: &SecretKey) {}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_storage::{AdversaryMode, MemoryStorage, RollbackStorage, Version};
    use lcm_tee::world::TeeWorld;

    fn setup() -> (SgxKvsServer, SecureKvsClient) {
        let world = TeeWorld::new_deterministic(8);
        let platform = world.platform_deterministic(1);
        let mut server = SgxKvsServer::new(&platform, Arc::new(MemoryStorage::new()), 16);
        server.boot().unwrap();
        let client = SecureKvsClient::new(SgxKvsServer::session_key_for(&platform));
        (server, client)
    }

    #[test]
    fn put_get_cycle() {
        let (mut server, client) = setup();
        assert_eq!(
            client
                .run(&mut server, &KvOp::Put(b"k".to_vec(), b"v".to_vec()))
                .unwrap(),
            KvResult::Stored
        );
        assert_eq!(
            client.run(&mut server, &KvOp::Get(b"k".to_vec())).unwrap(),
            KvResult::Value(Some(b"v".to_vec()))
        );
    }

    #[test]
    fn crash_recovery_from_sealed_state() {
        let (mut server, client) = setup();
        client
            .run(&mut server, &KvOp::Put(b"k".to_vec(), b"v".to_vec()))
            .unwrap();
        server.crash();
        server.boot().unwrap();
        assert_eq!(
            client.run(&mut server, &KvOp::Get(b"k".to_vec())).unwrap(),
            KvResult::Value(Some(b"v".to_vec()))
        );
    }

    #[test]
    fn tampered_message_rejected() {
        let (mut server, client) = setup();
        let mut wire = client.encrypt_op(&KvOp::Get(b"k".to_vec())).unwrap();
        wire[5] ^= 0xff;
        server.submit(wire);
        let replies = server.process_all().unwrap();
        assert_eq!(
            client.decrypt_reply(&replies[0]).unwrap(),
            KvResult::Malformed
        );
    }

    #[test]
    fn rollback_attack_succeeds_against_sgx_baseline() {
        // THE motivating experiment: the SGX KVS accepts a stale sealed
        // state with no way to notice.
        let world = TeeWorld::new_deterministic(8);
        let platform = world.platform_deterministic(1);
        let storage = Arc::new(RollbackStorage::new());
        let mut server = SgxKvsServer::new(&platform, storage.clone(), 1);
        server.boot().unwrap();
        let client = SecureKvsClient::new(SgxKvsServer::session_key_for(&platform));

        client
            .run(
                &mut server,
                &KvOp::Put(b"balance".to_vec(), b"100".to_vec()),
            )
            .unwrap();
        client
            .run(&mut server, &KvOp::Put(b"balance".to_vec(), b"0".to_vec()))
            .unwrap();

        // Malicious host: restart the enclave from the first version.
        storage.set_mode(AdversaryMode::ServeVersion(Version(0)));
        server.crash();
        server.boot().unwrap();

        // The stale balance is served without any error.
        assert_eq!(
            client
                .run(&mut server, &KvOp::Get(b"balance".to_vec()))
                .unwrap(),
            KvResult::Value(Some(b"100".to_vec()))
        );
    }
}
