//! # The LCM protocol
//!
//! Implementation of *Lightweight Collective Memory* (Brandenburger,
//! Cachin, Lorenz, Kapitza — DSN 2017): a protocol that lets a group of
//! mutually-trusting clients detect **rollback** and **forking**
//! attacks against a stateful service running in a trusted execution
//! context *T* on an untrusted server, while guaranteeing
//! **fork-linearizability** and reporting **operation stability**.
//!
//! ## Protocol recap (paper Alg. 1 + Alg. 2)
//!
//! Each client keeps three words of state: its last sequence number
//! `tc`, its last majority-stable sequence number `ts`, and the hash
//! chain value `hc` returned by its last operation. To invoke an
//! operation `o`, client `Ci` sends `auth-encrypt([INVOKE, tc, hc, o,
//! i], kC)`. The trusted context verifies `V[i] = (*, tc, hc)` — this
//! simultaneously acknowledges Ci's previous operation, filters
//! replays, and (crucially) detects any rollback or fork, because a
//! rolled-back `T` cannot have Ci's latest `(tc, hc)` in its map. `T`
//! then executes the operation, extends the hash chain `h ←
//! hash(h ‖ o ‖ t ‖ i)`, updates `V[i]`, computes the majority-stable
//! sequence number `q`, seals its full state for the host to persist,
//! and replies `[REPLY, t, h, r, q, hc]`. The client checks the echoed
//! `hc` and adopts `(t, h)`.
//!
//! ## Crate layout
//!
//! * [`types`] — identifiers, sequence numbers, chain values.
//! * [`codec`] — the deterministic binary wire codec.
//! * [`wire`] — INVOKE/REPLY message formats (paper §4.2 / §6.3).
//! * [`functionality`] — the trait for the application `F` running
//!   inside `T`.
//! * [`client`] — the client state machine (Alg. 1) with retry support.
//! * [`context`] — the trusted-context state machine (Alg. 2) with
//!   batching, recovery, migration, and membership extensions (§4.6).
//! * [`program`] — packaging of the trusted context as an
//!   [`lcm_tee::enclave::EnclaveProgram`] plus the host-call ABI.
//! * [`server`] — an honest host server: enclave + stable storage +
//!   request batching (paper §5.2/§5.3 architecture), plus the
//!   [`server::BatchServer`] trait the rest of the stack programs
//!   against.
//! * [`pipeline`] — the asynchronous-write execution pipeline:
//!   [`pipeline::PipelinedServer`] persists sealed state on a
//!   background writer thread while the enclave executes the next
//!   batch (the mode behind the paper's Figs. 4/5).
//! * [`shard`] — sharded multi-enclave execution:
//!   [`shard::ShardedServer`] runs N server instances behind a
//!   key-partitioned router so stage 2 (execute + seal) parallelizes
//!   across enclaves.
//! * [`routing`] — the epoch-versioned slice table behind that
//!   router: an attested, rebalanceable key→shard map whose epoch is
//!   bound into every wire's AEAD so stale or malicious routes stay
//!   detectable in-enclave.
//! * [`replica`] — replicated shard groups:
//!   [`replica::ReplicaGroup`] runs one shard as 2f+1 replicas with
//!   quorum-gated reply release, crash failover, and follower-served
//!   verified reads.
//! * [`admin`] — the trusted admin: bootstrapping, attestation,
//!   membership changes, migration orchestration (§4.3, §4.6).
//! * [`stability`] — the `majority-stable` function and stability
//!   tracking (§4.5).
//! * [`verify`] — omniscient history checkers used by tests to validate
//!   fork-linearizability and stability claims on recorded runs.
//!
//! ## Example
//!
//! See `lcm` crate examples; the shortest end-to-end flow is in
//! `examples/quickstart.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod admission;
pub mod client;
pub mod codec;
pub mod context;
pub mod functionality;
pub mod pipeline;
pub mod program;
pub mod replica;
pub mod routing;
pub mod server;
pub mod shard;
pub mod stability;
pub mod transport;
pub mod types;
pub mod verify;
pub mod wire;

mod error;

pub use error::{LcmError, Violation};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, LcmError>;
