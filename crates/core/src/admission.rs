//! Multi-tenant admission control for the host's ingress plane: the
//! production "front door" in front of the sharded deployment.
//!
//! The paper's model (§2.3) already grants the server-side host every
//! power over messages, so admission control adds **no trust** — it is
//! pure host-side traffic engineering layered under
//! [`crate::transport::TransportPlane::try_submit`]:
//!
//! ```text
//!             ┌ tenant A: token bucket ─ WFQ credits ┐
//!  clients ──▶┤ tenant B: token bucket ─ WFQ credits ├─▶ ingress lanes ─▶ shards
//!   (wires)   └ unregistered: measured, not limited  ┘      │
//!             retry dedup (authenticated seq) ──────────────┘
//!             p50/p99/p999 histograms per tenant × shard × mode
//! ```
//!
//! * **Token-bucket rate limiting** — each [`TenantConfig`] names a
//!   set of [`ClientId`]s and grants them a sustained `rate` (ops/s)
//!   with a `burst` allowance. An exhausted bucket produces a typed
//!   [`RetryAfter`] rejection instead of blocking the submitter.
//! * **Weighted fair queueing** — the deployment-wide in-flight budget
//!   ([`AdmissionConfig::max_in_flight`]) is split between tenants in
//!   proportion to their `weight`s; a greedy tenant exhausts *its own*
//!   credits and backs off while other tenants' shares stay free. This
//!   is the bound behind the isolation criterion: a flooding tenant
//!   cannot occupy another tenant's queue slots.
//! * **Idempotent retry dedup** — the wire's plaintext envelope
//!   carries the client sequence number `tc`
//!   ([`crate::wire::RouteHint::seq`]), *bound into the INVOKE's AEAD
//!   associated data and cross-checked by the enclave against the
//!   encrypted copy*, so the host can recognize a retried submission
//!   without decrypting anything. A retry of an op whose reply was
//!   already released is answered from the reply book's cached copy
//!   (replay, not re-execution); a retry of an op still in flight is
//!   absorbed. The enclave's own §4.6.1 retry handling remains the
//!   correctness backstop — host dedup is an optimization the enclave
//!   never has to trust.
//! * **Latency observability** — every ticket is timestamped from
//!   admission to reply release; per-(tenant, shard) HDR-style
//!   histograms surface p50/p99/p999 through [`HealthSnapshot`]
//!   (reachable via `Frontend::health_snapshot`,
//!   `ShardedServer::health_snapshot`, and
//!   [`crate::transport::TransportStats::latency`]).
//!
//! # Trust boundary
//!
//! Everything in this module runs **outside** the enclave and is
//! *untrusted*. Nothing here weakens the protocol:
//!
//! * The enclave's AAD checks are unchanged — the envelope fields
//!   (client, route, seq) are authenticated end-to-end, and the
//!   enclave cross-checks `seq == tc` and the attested shard route on
//!   every INVOKE ([`crate::context`]).
//! * A replayed reply is byte-identical to the released original; the
//!   client verifies it against its hash chain exactly as it would the
//!   first copy.
//! * A malicious host refusing service (rejecting everything) is the
//!   model's permitted denial of service; admission control makes the
//!   *honest* host's refusals typed, bounded, and observable.
//!
//! Clients not named by any tenant are measured under the implicit
//! [`TenantId::UNMETERED`] tenant but never rate-limited — existing
//! single-tenant deployments keep working with admission enabled.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use crate::types::ClientId;

/// Identifies one tenant of the deployment's front door.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The implicit tenant of clients not named by any
    /// [`TenantConfig`]: measured in the latency histograms, never
    /// rate-limited.
    pub const UNMETERED: TenantId = TenantId(u32::MAX);
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if *self == TenantId::UNMETERED {
            write!(f, "tenant(unmetered)")
        } else {
            write!(f, "tenant({})", self.0)
        }
    }
}

/// One tenant's admission policy: which clients belong to it and how
/// much traffic they may push collectively.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// The tenant's identity (must not be [`TenantId::UNMETERED`]).
    pub id: TenantId,
    /// The clients whose wires this policy governs. A client named by
    /// two tenants belongs to the first that names it.
    pub clients: Vec<ClientId>,
    /// Sustained admission rate in operations per second
    /// (`f64::INFINITY` disables the bucket).
    pub rate: f64,
    /// Token-bucket depth: how many ops may be admitted back-to-back
    /// beyond the sustained rate.
    pub burst: u32,
    /// Weighted-fair-queueing weight: this tenant's share of
    /// [`AdmissionConfig::max_in_flight`] is
    /// `weight / sum-of-weights` (minimum one slot).
    pub weight: u32,
}

impl TenantConfig {
    /// A tenant with no rate limit, only its fair-queueing share.
    pub fn unlimited(id: TenantId, clients: Vec<ClientId>, weight: u32) -> Self {
        TenantConfig {
            id,
            clients,
            rate: f64::INFINITY,
            burst: u32::MAX,
            weight,
        }
    }

    /// A tenant metered to `rate` ops/s with a `burst` allowance.
    pub fn metered(
        id: TenantId,
        clients: Vec<ClientId>,
        rate: f64,
        burst: u32,
        weight: u32,
    ) -> Self {
        TenantConfig {
            id,
            clients,
            rate,
            burst,
            weight,
        }
    }
}

/// The whole front door's admission policy.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// The registered tenants.
    pub tenants: Vec<TenantConfig>,
    /// Deployment-wide in-flight budget split between tenants by
    /// weight. Unregistered clients are not counted against it.
    pub max_in_flight: usize,
}

impl AdmissionConfig {
    /// A config with the given tenants and a default in-flight budget
    /// sized like the ingress plane
    /// ([`crate::shard::DEFAULT_INGRESS_CAPACITY`]).
    pub fn new(tenants: Vec<TenantConfig>) -> Self {
        AdmissionConfig {
            tenants,
            max_in_flight: crate::shard::DEFAULT_INGRESS_CAPACITY,
        }
    }
}

/// What happened to a wire offered to
/// [`crate::transport::TransportPlane::try_submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Accepted: ticketed and enqueued toward its shard.
    Enqueued,
    /// Recognized as a retry of an operation whose reply was already
    /// released: the cached reply was re-queued for delivery and the
    /// wire was **not** re-executed.
    ReplayedReply,
    /// Recognized as a retry of an operation still in flight: absorbed
    /// (the original submission will produce the reply).
    DuplicateInFlight,
}

/// Why a wire was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's token bucket is empty.
    RateLimited,
    /// The tenant's weighted share of the in-flight budget is
    /// exhausted.
    QueueFull,
}

/// A typed back-pressure rejection: the wire was **not** accepted, and
/// the submitter should wait roughly [`RetryAfter::retry_after`]
/// before re-offering it. Carries the rejected wire back to the
/// caller so nothing is cloned on the hot path.
#[derive(Debug)]
pub struct RetryAfter {
    /// The tenant whose budget rejected the wire (`None` when the
    /// client could not be attributed).
    pub tenant: Option<TenantId>,
    /// Why the wire was rejected.
    pub reason: RejectReason,
    /// Suggested back-off before re-offering the wire.
    pub retry_after: Duration,
    /// The rejected wire, returned untouched.
    pub wire: Vec<u8>,
}

impl std::fmt::Display for RetryAfter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let who = self
            .tenant
            .map_or_else(|| "unattributed".to_string(), |t| t.to_string());
        let why = match self.reason {
            RejectReason::RateLimited => "rate limited",
            RejectReason::QueueFull => "queue share full",
        };
        write!(f, "{who} {why}; retry after {:?}", self.retry_after)
    }
}

impl std::error::Error for RetryAfter {}

/// A ticket leaving the reply book, reported back to the admission
/// state: returns the tenant's in-flight credit and records the
/// end-to-end latency (when the ticket settled with a reply rather
/// than a write-off).
#[derive(Debug)]
pub struct SettledTicket {
    /// The envelope client the ticket belonged to.
    pub client: ClientId,
    /// The shard that executed (or wrote off) the ticket.
    pub shard: u32,
    /// Admission-to-release latency; `None` for write-offs (crash,
    /// shed), which record no latency sample.
    pub latency: Option<Duration>,
    /// Whether the ticket holds one of its tenant's WFQ credits.
    pub credited: bool,
}

/// Number of linear sub-buckets per power-of-two octave (8 ⇒ ≤ 12.5 %
/// relative quantile error — tight enough that a 3× p99 isolation
/// bound is not blurred by bucketing).
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;
const BUCKETS: usize = SUB * (64 - SUB_BITS as usize + 1);

/// A fixed-footprint HDR-style (log-linear) histogram over
/// microsecond latencies: 8 linear sub-buckets per power-of-two
/// octave, covering the full `u64` range in 496 counters.
#[derive(Clone)]
pub struct LatencyHistogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.total)
            .field("p50_us", &self.quantile(0.50))
            .field("p99_us", &self.quantile(0.99))
            .finish()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            counts: Box::new([0u64; BUCKETS]),
            total: 0,
        }
    }

    fn index(value_us: u64) -> usize {
        if value_us < SUB as u64 {
            return value_us as usize;
        }
        let msb = 63 - value_us.leading_zeros();
        let octave = msb - SUB_BITS;
        let sub = ((value_us >> octave) as usize) & (SUB - 1);
        (octave as usize + 1) * SUB + sub
    }

    /// The midpoint latency (µs) a bucket index stands for.
    fn value_at(index: usize) -> u64 {
        if index < SUB {
            return index as u64;
        }
        let octave = (index / SUB - 1) as u32;
        let sub = (index % SUB) as u64;
        let lower = (SUB as u64 + sub) << octave;
        lower + (1u64 << octave) / 2
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.counts[Self::index(us)] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The latency (µs) at quantile `q` (clamped to `0.0..=1.0`);
    /// `0` when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::value_at(i);
            }
        }
        Self::value_at(BUCKETS - 1)
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The standard percentile cell for snapshots.
    fn cell(&self, shard: u32) -> LatencyCell {
        LatencyCell {
            shard,
            count: self.total,
            p50_us: self.quantile(0.50),
            p99_us: self.quantile(0.99),
            p999_us: self.quantile(0.999),
        }
    }
}

/// One (tenant, shard) latency cell of a [`HealthSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyCell {
    /// The shard the samples were executed on (`u32::MAX` in the
    /// all-shards rollup cell).
    pub shard: u32,
    /// Number of settled operations behind the percentiles.
    pub count: u64,
    /// Median admission-to-release latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// 99.9th-percentile latency, microseconds.
    pub p999_us: u64,
}

/// One tenant's row of a [`HealthSnapshot`].
#[derive(Debug, Clone)]
pub struct TenantHealth {
    /// Which tenant ([`TenantId::UNMETERED`] for unregistered
    /// clients).
    pub tenant: TenantId,
    /// Wires admitted (ticketed) for this tenant.
    pub admitted: u64,
    /// Wires rejected with [`RetryAfter`].
    pub rejected: u64,
    /// Retries answered from the reply book without re-execution.
    pub replayed: u64,
    /// Retries absorbed because the original was still in flight.
    pub deduped: u64,
    /// Credits currently held (admitted, not yet settled).
    pub in_flight: usize,
    /// This tenant's credit cap (its weighted share; `usize::MAX`
    /// when unmetered).
    pub in_flight_cap: usize,
    /// Per-shard latency percentiles.
    pub cells: Vec<LatencyCell>,
    /// All shards merged (`shard == u32::MAX`).
    pub overall: LatencyCell,
}

/// A point-in-time health view of the front door: per-tenant
/// admission counters and latency percentiles, labelled with the
/// deployment mode.
#[derive(Debug, Clone)]
pub struct HealthSnapshot {
    /// Deployment mode label (`"sync"` / `"pipelined"`), set by the
    /// deployment builder.
    pub mode: String,
    /// Whether admission control (metering + dedup) is active.
    pub admission_enabled: bool,
    /// One row per tenant that has seen traffic or is registered.
    pub tenants: Vec<TenantHealth>,
}

impl HealthSnapshot {
    /// The row for `tenant`, if present.
    pub fn tenant(&self, tenant: TenantId) -> Option<&TenantHealth> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }
}

/// Per-tenant runtime: the token bucket, the WFQ credit account, and
/// the admission counters.
#[derive(Debug)]
struct TenantRuntime {
    cfg: TenantConfig,
    tokens: f64,
    last_refill: Instant,
    in_flight: usize,
    cap: usize,
    admitted: u64,
    rejected: u64,
    replayed: u64,
    deduped: u64,
}

#[derive(Debug, Default)]
struct Observed {
    admitted: u64,
    replayed: u64,
    deduped: u64,
    in_flight: usize,
}

#[derive(Debug)]
struct AdmissionInner {
    tenant_of: BTreeMap<ClientId, usize>,
    tenants: Vec<TenantRuntime>,
    /// Counters for unregistered clients (never limited).
    unmetered: Observed,
    /// Latency histograms keyed by (tenant, shard);
    /// [`TenantId::UNMETERED`] collects unregistered clients.
    histograms: BTreeMap<(TenantId, u32), LatencyHistogram>,
    mode: String,
}

/// The shared, thread-safe admission state of one deployment's
/// ingress: owned by the sharded core, configured through
/// `ShardedServer::configure_admission` (or the deployment builder),
/// and observable while traffic flows.
///
/// With no configuration installed the state is *passive*: every wire
/// is admitted, no dedup map is maintained, and only the latency
/// histograms fill (under [`TenantId::UNMETERED`]).
pub struct AdmissionState {
    enabled: AtomicBool,
    inner: Mutex<AdmissionInner>,
}

impl std::fmt::Debug for AdmissionState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionState")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for AdmissionState {
    fn default() -> Self {
        Self::new()
    }
}

impl AdmissionState {
    /// A passive (unconfigured) admission state.
    pub fn new() -> Self {
        AdmissionState {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(AdmissionInner {
                tenant_of: BTreeMap::new(),
                tenants: Vec::new(),
                unmetered: Observed::default(),
                histograms: BTreeMap::new(),
                mode: String::new(),
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, AdmissionInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether metering + dedup are active (a config is installed).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::SeqCst)
    }

    /// Installs (or replaces) the admission policy and activates
    /// metering + retry dedup. Histograms and counters restart.
    pub fn configure(&self, config: AdmissionConfig) {
        let mut inner = self.lock();
        let total_weight: u64 = config
            .tenants
            .iter()
            .map(|t| u64::from(t.weight.max(1)))
            .sum::<u64>()
            .max(1);
        let budget = config.max_in_flight as u64;
        let now = Instant::now();
        inner.tenant_of.clear();
        inner.tenants = config
            .tenants
            .into_iter()
            .map(|cfg| {
                let share = budget.saturating_mul(u64::from(cfg.weight.max(1))) / total_weight;
                TenantRuntime {
                    tokens: f64::from(cfg.burst.max(1)).min(1e18),
                    last_refill: now,
                    in_flight: 0,
                    cap: (share as usize).max(1),
                    admitted: 0,
                    rejected: 0,
                    replayed: 0,
                    deduped: 0,
                    cfg,
                }
            })
            .collect();
        let registrations: Vec<(usize, Vec<ClientId>)> = inner
            .tenants
            .iter()
            .enumerate()
            .map(|(idx, t)| (idx, t.cfg.clients.clone()))
            .collect();
        for (idx, clients) in registrations {
            for c in clients {
                // First registration wins when a client is named twice.
                inner.tenant_of.entry(c).or_insert(idx);
            }
        }
        inner.unmetered = Observed::default();
        inner.histograms.clear();
        self.enabled.store(true, Ordering::SeqCst);
    }

    /// Deactivates metering + dedup; histograms keep filling under
    /// the last registration (or [`TenantId::UNMETERED`]).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::SeqCst);
    }

    /// Sets the deployment-mode label reported by snapshots.
    pub fn set_mode(&self, mode: &str) {
        self.lock().mode = mode.to_string();
    }

    /// One admission decision for `client`. On success the tenant's
    /// token and in-flight credit are taken; the caller **must**
    /// eventually report the ticket back through
    /// [`AdmissionState::settle`] with `credited = true`. Returns a
    /// wire-less [`RetryAfter`] on rejection (the caller re-attaches
    /// the wire).
    pub fn admit(&self, client: ClientId) -> std::result::Result<bool, RetryAfter> {
        if !self.is_enabled() {
            return Ok(false);
        }
        let mut inner = self.lock();
        let Some(&idx) = inner.tenant_of.get(&client) else {
            inner.unmetered.admitted += 1;
            inner.unmetered.in_flight += 1;
            return Ok(true);
        };
        let t = &mut inner.tenants[idx];
        // Refill the bucket from wall time.
        if t.cfg.rate.is_finite() {
            let now = Instant::now();
            let elapsed = now.duration_since(t.last_refill).as_secs_f64();
            t.last_refill = now;
            t.tokens = (t.tokens + elapsed * t.cfg.rate).min(f64::from(t.cfg.burst.max(1)));
            if t.tokens < 1.0 {
                t.rejected += 1;
                let wait = ((1.0 - t.tokens) / t.cfg.rate.max(1e-9)).min(1.0);
                return Err(RetryAfter {
                    tenant: Some(t.cfg.id),
                    reason: RejectReason::RateLimited,
                    retry_after: Duration::from_secs_f64(wait.max(50e-6)),
                    wire: Vec::new(),
                });
            }
        }
        // Weighted fair queueing: the tenant spends its own share of
        // the deployment's in-flight budget.
        if t.in_flight >= t.cap {
            t.rejected += 1;
            return Err(RetryAfter {
                tenant: Some(t.cfg.id),
                reason: RejectReason::QueueFull,
                retry_after: Duration::from_micros(200),
                wire: Vec::new(),
            });
        }
        if t.cfg.rate.is_finite() {
            t.tokens -= 1.0;
        }
        t.in_flight += 1;
        t.admitted += 1;
        Ok(true)
    }

    /// Records a retry answered from the reply book.
    pub fn note_replayed(&self, client: ClientId) {
        let mut inner = self.lock();
        match inner.tenant_of.get(&client).copied() {
            Some(idx) => inner.tenants[idx].replayed += 1,
            None => inner.unmetered.replayed += 1,
        }
    }

    /// Records a retry absorbed while the original is in flight.
    pub fn note_deduped(&self, client: ClientId) {
        let mut inner = self.lock();
        match inner.tenant_of.get(&client).copied() {
            Some(idx) => inner.tenants[idx].deduped += 1,
            None => inner.unmetered.deduped += 1,
        }
    }

    /// Reports settled tickets: returns WFQ credits and records
    /// latency samples into the (tenant, shard) histograms.
    pub fn settle(&self, settled: &[SettledTicket]) {
        if settled.is_empty() {
            return;
        }
        let mut inner = self.lock();
        for s in settled {
            let tenant = match inner.tenant_of.get(&s.client).copied() {
                Some(idx) => {
                    if s.credited {
                        let t = &mut inner.tenants[idx];
                        t.in_flight = t.in_flight.saturating_sub(1);
                    }
                    inner.tenants[idx].cfg.id
                }
                None => {
                    if s.credited {
                        inner.unmetered.in_flight = inner.unmetered.in_flight.saturating_sub(1);
                    }
                    TenantId::UNMETERED
                }
            };
            if let Some(latency) = s.latency {
                inner
                    .histograms
                    .entry((tenant, s.shard))
                    .or_default()
                    .record(latency);
            }
        }
    }

    /// Records a latency sample for an uncredited ticket (the plain
    /// `submit` path with admission passive): observability without
    /// metering.
    pub fn observe(&self, client: ClientId, shard: u32, latency: Duration) {
        self.settle(&[SettledTicket {
            client,
            shard,
            latency: Some(latency),
            credited: false,
        }]);
    }

    /// Zeroes every in-flight credit account (the deployment
    /// crash-stopped: all outstanding tickets died wholesale).
    pub fn reset_in_flight(&self) {
        let mut inner = self.lock();
        for t in &mut inner.tenants {
            t.in_flight = 0;
        }
        inner.unmetered.in_flight = 0;
    }

    /// A point-in-time health view: per-tenant counters and
    /// p50/p99/p999 latency per shard plus an all-shard rollup.
    pub fn health_snapshot(&self) -> HealthSnapshot {
        let inner = self.lock();
        let mut tenants: Vec<TenantHealth> = Vec::with_capacity(inner.tenants.len() + 1);
        let row = |tenant: TenantId,
                   admitted: u64,
                   rejected: u64,
                   replayed: u64,
                   deduped: u64,
                   in_flight: usize,
                   cap: usize| {
            let mut cells = Vec::new();
            let mut merged = LatencyHistogram::new();
            for ((t, shard), h) in inner.histograms.iter() {
                if *t == tenant {
                    cells.push(h.cell(*shard));
                    merged.merge(h);
                }
            }
            TenantHealth {
                tenant,
                admitted,
                rejected,
                replayed,
                deduped,
                in_flight,
                in_flight_cap: cap,
                cells,
                overall: merged.cell(u32::MAX),
            }
        };
        for t in &inner.tenants {
            tenants.push(row(
                t.cfg.id,
                t.admitted,
                t.rejected,
                t.replayed,
                t.deduped,
                t.in_flight,
                t.cap,
            ));
        }
        let u = &inner.unmetered;
        let unmetered_has_samples = inner
            .histograms
            .keys()
            .any(|(t, _)| *t == TenantId::UNMETERED);
        if u.admitted > 0 || u.replayed > 0 || u.deduped > 0 || unmetered_has_samples {
            tenants.push(row(
                TenantId::UNMETERED,
                u.admitted,
                u.replayed,
                u.deduped,
                0,
                u.in_flight,
                usize::MAX,
            ));
        }
        HealthSnapshot {
            mode: inner.mode.clone(),
            admission_enabled: self.is_enabled(),
            tenants,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_are_tight() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.50) as f64;
        let p99 = h.quantile(0.99) as f64;
        // Log-linear with 8 sub-buckets: ≤ 12.5 % relative error.
        assert!((p50 - 500.0).abs() / 500.0 < 0.13, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.13, "p99 {p99}");
        assert_eq!(h.quantile(0.0).min(1), 1);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        b.record(Duration::from_micros(1_000_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!(a.quantile(1.0) >= 900_000);
    }

    #[test]
    fn unconfigured_state_admits_everything() {
        let adm = AdmissionState::new();
        assert!(!adm.is_enabled());
        assert!(!adm.admit(ClientId(1)).unwrap());
    }

    #[test]
    fn token_bucket_rejects_past_burst_and_refills() {
        let adm = AdmissionState::new();
        adm.configure(AdmissionConfig::new(vec![TenantConfig::metered(
            TenantId(1),
            vec![ClientId(1)],
            1000.0,
            3,
            1,
        )]));
        // Burst admits back-to-back…
        for _ in 0..3 {
            assert!(adm.admit(ClientId(1)).is_ok());
        }
        // …then the empty bucket rejects with a sensible hint.
        let rej = adm.admit(ClientId(1)).unwrap_err();
        assert_eq!(rej.reason, RejectReason::RateLimited);
        assert_eq!(rej.tenant, Some(TenantId(1)));
        assert!(rej.retry_after <= Duration::from_millis(2));
        // At 1000 ops/s a token accrues within a few ms.
        std::thread::sleep(Duration::from_millis(5));
        assert!(adm.admit(ClientId(1)).is_ok());
    }

    #[test]
    fn wfq_shares_split_by_weight() {
        let adm = AdmissionState::new();
        adm.configure(AdmissionConfig {
            tenants: vec![
                TenantConfig::unlimited(TenantId(1), vec![ClientId(1)], 3),
                TenantConfig::unlimited(TenantId(2), vec![ClientId(2)], 1),
            ],
            max_in_flight: 8,
        });
        // Tenant 1 (weight 3 of 4) gets 6 slots; tenant 2 gets 2.
        for _ in 0..6 {
            assert!(adm.admit(ClientId(1)).is_ok());
        }
        let rej = adm.admit(ClientId(1)).unwrap_err();
        assert_eq!(rej.reason, RejectReason::QueueFull);
        // Tenant 2's share is untouched by tenant 1's saturation.
        for _ in 0..2 {
            assert!(adm.admit(ClientId(2)).is_ok());
        }
        assert!(adm.admit(ClientId(2)).is_err());
        // Settling returns credits.
        adm.settle(&[SettledTicket {
            client: ClientId(1),
            shard: 0,
            latency: Some(Duration::from_micros(250)),
            credited: true,
        }]);
        assert!(adm.admit(ClientId(1)).is_ok());
        let snap = adm.health_snapshot();
        let t1 = snap.tenant(TenantId(1)).unwrap();
        assert_eq!(t1.in_flight_cap, 6);
        assert_eq!(t1.overall.count, 1);
        assert!(t1.rejected >= 1);
    }

    #[test]
    fn unregistered_clients_are_measured_not_limited() {
        let adm = AdmissionState::new();
        adm.configure(AdmissionConfig {
            tenants: vec![TenantConfig::metered(
                TenantId(1),
                vec![ClientId(1)],
                10.0,
                1,
                1,
            )],
            max_in_flight: 4,
        });
        for _ in 0..100 {
            assert!(adm.admit(ClientId(99)).is_ok());
        }
        adm.observe(ClientId(99), 2, Duration::from_micros(300));
        let snap = adm.health_snapshot();
        let un = snap.tenant(TenantId::UNMETERED).unwrap();
        assert_eq!(un.overall.count, 1);
        assert_eq!(un.cells[0].shard, 2);
    }

    #[test]
    fn snapshot_carries_mode_label() {
        let adm = AdmissionState::new();
        adm.set_mode("pipelined");
        assert_eq!(adm.health_snapshot().mode, "pipelined");
    }
}
