//! The application functionality `F` executed inside the trusted
//! context.
//!
//! Mirrors the paper's two enclave-application interfaces (§5.2): *"an
//! operation processor, that receives a client operation and returns
//! the operation result; and ... a serialization interface that returns
//! the application state as a byte sequence"*.

use crate::codec::CodecError;

/// A deterministic stateful service run by the trusted context.
///
/// Operations and results are opaque byte strings; LCM never inspects
/// them. Implementations must be deterministic in `exec` only to the
/// extent the *application* needs — LCM itself (unlike the 2-phase
/// TMC schemes the paper criticises in §3.1) does **not** require
/// determinism for crash tolerance, because the last reply is cached
/// verbatim rather than re-executed.
pub trait Functionality: Default {
    /// Executes one operation against the state, returning the result
    /// (the paper's `(r, s) ← execF(s, o)`).
    fn exec(&mut self, op: &[u8]) -> Vec<u8>;

    /// Serializes the full service state `s`.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the state with a previously serialized snapshot.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the snapshot is malformed. (A
    /// malformed snapshot can only result from a bug, never from an
    /// attack: snapshots are sealed and authenticated before they reach
    /// this method.)
    fn restore(&mut self, snapshot: &[u8]) -> Result<(), CodecError>;

    /// Approximate in-enclave heap footprint of the current state, in
    /// bytes. Used by the EPC paging model; the default of 0 disables
    /// paging effects.
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// A trivial functionality for tests: an append-only register that
/// echoes each operation index.
///
/// Operation encoding: any byte string; it is appended to the log.
/// Result: the 8-byte big-endian index the entry received.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppendLog {
    entries: Vec<Vec<u8>>,
}

impl AppendLog {
    /// The log contents.
    pub fn entries(&self) -> &[Vec<u8>] {
        &self.entries
    }
}

impl Functionality for AppendLog {
    fn exec(&mut self, op: &[u8]) -> Vec<u8> {
        self.entries.push(op.to_vec());
        ((self.entries.len() - 1) as u64).to_be_bytes().to_vec()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = crate::codec::Writer::new();
        w.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            w.put_bytes(e);
        }
        w.into_bytes()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), CodecError> {
        let mut r = crate::codec::Reader::new(snapshot);
        let n = r.get_u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            entries.push(r.get_bytes()?.to_vec());
        }
        r.finish()?;
        self.entries = entries;
        Ok(())
    }

    fn heap_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.len() + 32).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_log_execution() {
        let mut log = AppendLog::default();
        assert_eq!(log.exec(b"a"), 0u64.to_be_bytes());
        assert_eq!(log.exec(b"b"), 1u64.to_be_bytes());
        assert_eq!(log.entries(), &[b"a".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut log = AppendLog::default();
        log.exec(b"one");
        log.exec(b"two");
        let snap = log.snapshot();
        let mut restored = AppendLog::default();
        restored.restore(&snap).unwrap();
        assert_eq!(restored, log);
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut log = AppendLog::default();
        assert!(log.restore(&[0xff, 0xff]).is_err());
    }

    #[test]
    fn empty_snapshot_roundtrip() {
        let log = AppendLog::default();
        let mut restored = AppendLog::default();
        restored.exec(b"stale");
        restored.restore(&log.snapshot()).unwrap();
        assert_eq!(restored, log);
    }

    #[test]
    fn heap_bytes_grows() {
        let mut log = AppendLog::default();
        let before = log.heap_bytes();
        log.exec(&[0u8; 100]);
        assert!(log.heap_bytes() > before);
    }
}
