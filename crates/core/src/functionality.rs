//! The application functionality `F` executed inside the trusted
//! context.
//!
//! Mirrors the paper's two enclave-application interfaces (§5.2): *"an
//! operation processor, that receives a client operation and returns
//! the operation result; and ... a serialization interface that returns
//! the application state as a byte sequence"*.

use crate::codec::CodecError;

/// A deterministic stateful service run by the trusted context.
///
/// Operations and results are opaque byte strings; LCM never inspects
/// them. Implementations must be deterministic in `exec` only to the
/// extent the *application* needs — LCM itself (unlike the 2-phase
/// TMC schemes the paper criticises in §3.1) does **not** require
/// determinism for crash tolerance, because the last reply is cached
/// verbatim rather than re-executed.
///
/// `Send` is required so servers hosting the functionality can be
/// driven from worker threads (the sharded multi-enclave host,
/// [`crate::shard::ShardedServer`]).
pub trait Functionality: Default + Send {
    /// Executes one operation against the state, returning the result
    /// (the paper's `(r, s) ← execF(s, o)`).
    fn exec(&mut self, op: &[u8]) -> Vec<u8>;

    /// The partition key of an *encoded* operation, if this
    /// functionality's state is partitionable by it.
    ///
    /// A sharded deployment ([`crate::shard::ShardedServer`]) routes
    /// every operation whose key hashes to the same value to the same
    /// shard, so each shard owns a disjoint slice of the state. The
    /// client library calls this on the plaintext op before encrypting
    /// (the host only ever sees the resulting hash).
    ///
    /// Returning `None` (the default) partitions by *client* instead:
    /// all of one client's operations land on one shard, which is
    /// always protocol-correct but does not split shared state.
    fn shard_key(op: &[u8]) -> Option<&[u8]> {
        let _ = op;
        None
    }

    /// Serializes the full service state `s`.
    fn snapshot(&self) -> Vec<u8>;

    /// Replaces the state with a previously serialized snapshot.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the snapshot is malformed. (A
    /// malformed snapshot can only result from a bug, never from an
    /// attack: snapshots are sealed and authenticated before they reach
    /// this method.)
    fn restore(&mut self, snapshot: &[u8]) -> Result<(), CodecError>;

    /// Approximate in-enclave heap footprint of the current state, in
    /// bytes. Used by the EPC paging model; the default of 0 disables
    /// paging effects.
    fn heap_bytes(&self) -> usize {
        0
    }

    /// Drains and serializes the state *changes* accumulated since the
    /// last successful [`Functionality::take_delta`] (or since the
    /// last [`Functionality::snapshot`]/[`Functionality::restore`]
    /// baseline), for incremental persistence: applying the returned
    /// delta via [`Functionality::apply_delta`] to a copy restored at
    /// that baseline must reproduce the current state.
    ///
    /// The default returns `None` — "this functionality does not track
    /// changes" — and callers fall back to a full snapshot. Unlike
    /// `snapshot`, this takes `&mut self` so implementations can reset
    /// their dirty tracking when the delta is handed off.
    fn take_delta(&mut self) -> Option<Vec<u8>> {
        None
    }

    /// Applies a delta produced by [`Functionality::take_delta`] on
    /// top of the state it was taken against.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the delta is malformed or the
    /// functionality does not support deltas (the default). Like a
    /// malformed snapshot this can only result from a bug: deltas are
    /// sealed and chain-verified before they reach this method.
    fn apply_delta(&mut self, delta: &[u8]) -> Result<(), CodecError> {
        let _ = delta;
        Err(CodecError::InvalidTag(0xff))
    }

    /// Extracts **and removes** the subset of the state whose
    /// partition keys satisfy `belongs`, serialized for
    /// [`Functionality::apply_partition`] on another instance — the
    /// state-transfer half of a live slice migration
    /// ([`crate::context::TrustedContext::export_slice`]).
    ///
    /// `belongs` is called with the same byte strings
    /// [`Functionality::shard_key`] exposes for routing, so the
    /// extracted partition is exactly the state the routing slice
    /// covers. Implementations must also drop the removed entries from
    /// any delta dirty-tracking (the exporting context checkpoints
    /// immediately, but the tracking must not resurrect them).
    ///
    /// The default returns `None` — "this functionality cannot be
    /// partitioned" — without touching the state, and slice migration
    /// fails cleanly for such services. Supporting implementations
    /// return `Some` even when no entry matches.
    fn take_partition(&mut self, belongs: &dyn Fn(&[u8]) -> bool) -> Option<Vec<u8>> {
        let _ = belongs;
        None
    }

    /// Installs a partition produced by
    /// [`Functionality::take_partition`] on another instance, merging
    /// it into the current state (the adopted keys are disjoint from
    /// the local ones by the routing invariant).
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the partition is malformed or the
    /// functionality does not support partitions (the default). Like a
    /// malformed snapshot this can only result from a bug: partitions
    /// travel in sealed, authenticated tickets.
    fn apply_partition(&mut self, partition: &[u8]) -> Result<(), CodecError> {
        let _ = partition;
        Err(CodecError::InvalidTag(0xfe))
    }

    /// Whether an *encoded* operation is a pure read.
    ///
    /// Contract: if this returns `true`, [`Functionality::exec`] on
    /// that operation MUST NOT modify the service state. Read-only
    /// operations are eligible for follower-served verified reads in a
    /// replicated shard group ([`crate::replica`]) — everything else
    /// must flow through the leader's quorum path, and a follower
    /// enclave halts with [`crate::Violation::MutationOnReadPath`] if
    /// the host delivers a non-read-only op on a read leg.
    ///
    /// The conservative default classifies every operation as a write.
    fn is_readonly(op: &[u8]) -> bool {
        let _ = op;
        false
    }
}

/// A trivial functionality for tests: an append-only register that
/// echoes each operation index.
///
/// Operation encoding: any byte string; it is appended to the log.
/// Result: the 8-byte big-endian index the entry received.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppendLog {
    entries: Vec<Vec<u8>>,
}

impl AppendLog {
    /// The log contents.
    pub fn entries(&self) -> &[Vec<u8>] {
        &self.entries
    }
}

impl Functionality for AppendLog {
    fn exec(&mut self, op: &[u8]) -> Vec<u8> {
        self.entries.push(op.to_vec());
        ((self.entries.len() - 1) as u64).to_be_bytes().to_vec()
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = crate::codec::Writer::new();
        w.put_u32(self.entries.len() as u32);
        for e in &self.entries {
            w.put_bytes(e);
        }
        w.into_bytes()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), CodecError> {
        let mut r = crate::codec::Reader::new(snapshot);
        let n = r.get_u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            entries.push(r.get_bytes()?.to_vec());
        }
        r.finish()?;
        self.entries = entries;
        Ok(())
    }

    fn heap_bytes(&self) -> usize {
        self.entries.iter().map(|e| e.len() + 32).sum()
    }
}

/// A named-counter functionality: the second partitionable example
/// service next to the KVS, with counters as the shard key.
///
/// Operation encoding:
///
/// ```text
/// INC:  0x01 ‖ name_len(4) ‖ name ‖ delta(8, BE)
/// READ: 0x02 ‖ name
/// ```
///
/// Both return the counter's value after the operation as 8 big-endian
/// bytes (a never-touched counter reads 0). Malformed operations
/// return the empty byte string.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    counters: std::collections::BTreeMap<Vec<u8>, u64>,
    dirty: DirtyNames,
}

/// Names incremented since the last delta baseline. Wrapped so it
/// stays out of `Eq`: two counters with the same values are the same
/// state regardless of what a host has or has not persisted yet.
#[derive(Debug, Clone, Default)]
struct DirtyNames(std::collections::BTreeSet<Vec<u8>>);

impl PartialEq for DirtyNames {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for DirtyNames {}

/// Tag byte of a [`Counter`] increment operation.
pub const COUNTER_OP_INC: u8 = 0x01;
/// Tag byte of a [`Counter`] read operation.
pub const COUNTER_OP_READ: u8 = 0x02;

impl Counter {
    /// Encodes an increment of `name` by `delta` (wrapping).
    pub fn inc_op(name: &[u8], delta: u64) -> Vec<u8> {
        let mut w = crate::codec::Writer::with_capacity(1 + 4 + name.len() + 8);
        w.put_u8(COUNTER_OP_INC);
        w.put_bytes(name);
        w.put_u64(delta);
        w.into_bytes()
    }

    /// Encodes a read of `name`.
    pub fn read_op(name: &[u8]) -> Vec<u8> {
        let mut w = crate::codec::Writer::with_capacity(1 + name.len());
        w.put_u8(COUNTER_OP_READ);
        w.put_raw(name);
        w.into_bytes()
    }

    /// Decodes a result produced by [`Functionality::exec`].
    pub fn decode_result(result: &[u8]) -> Option<u64> {
        Some(u64::from_be_bytes(result.try_into().ok()?))
    }

    /// The current value of `name` (0 if never incremented).
    pub fn value(&self, name: &[u8]) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

impl Functionality for Counter {
    fn exec(&mut self, op: &[u8]) -> Vec<u8> {
        let mut r = crate::codec::Reader::new(op);
        let parsed = (|| -> Result<u64, CodecError> {
            match r.get_u8()? {
                COUNTER_OP_INC => {
                    let name = r.get_bytes()?.to_vec();
                    let delta = r.get_u64()?;
                    r.finish()?;
                    self.dirty.0.insert(name.clone());
                    let slot = self.counters.entry(name).or_insert(0);
                    *slot = slot.wrapping_add(delta);
                    Ok(*slot)
                }
                COUNTER_OP_READ => {
                    let name = r.get_rest();
                    Ok(self.value(name))
                }
                other => Err(CodecError::InvalidTag(other)),
            }
        })();
        match parsed {
            Ok(v) => v.to_be_bytes().to_vec(),
            Err(_) => Vec::new(),
        }
    }

    fn shard_key(op: &[u8]) -> Option<&[u8]> {
        match *op.first()? {
            COUNTER_OP_INC => {
                let len = u32::from_be_bytes(op.get(1..5)?.try_into().ok()?) as usize;
                op.get(5..5 + len)
            }
            COUNTER_OP_READ => op.get(1..),
            _ => None,
        }
    }

    fn is_readonly(op: &[u8]) -> bool {
        op.first() == Some(&COUNTER_OP_READ)
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = crate::codec::Writer::new();
        w.put_u32(self.counters.len() as u32);
        for (name, value) in &self.counters {
            w.put_bytes(name);
            w.put_u64(*value);
        }
        w.into_bytes()
    }

    fn restore(&mut self, snapshot: &[u8]) -> Result<(), CodecError> {
        let mut r = crate::codec::Reader::new(snapshot);
        let n = r.get_u32()? as usize;
        let mut counters = std::collections::BTreeMap::new();
        for _ in 0..n {
            let name = r.get_bytes()?.to_vec();
            let value = r.get_u64()?;
            counters.insert(name, value);
        }
        r.finish()?;
        self.counters = counters;
        self.dirty.0.clear();
        Ok(())
    }

    fn heap_bytes(&self) -> usize {
        self.counters.keys().map(|k| k.len() + 8 + 32).sum()
    }

    /// A counter delta is upserts-only: `count ‖ (name ‖ value)*`,
    /// carrying the *absolute* value of every name incremented since
    /// the baseline. No tombstones are needed — normal operation never
    /// deletes a counter, and the one path that does
    /// ([`Functionality::take_partition`]) both clears the removed
    /// names from the dirty set and is followed by a full checkpoint,
    /// so no delta taken afterwards can mention them.
    fn take_delta(&mut self) -> Option<Vec<u8>> {
        let mut w = crate::codec::Writer::new();
        w.put_u32(self.dirty.0.len() as u32);
        for name in std::mem::take(&mut self.dirty.0) {
            let value = self.counters.get(&name).copied().unwrap_or(0);
            w.put_bytes(&name);
            w.put_u64(value);
        }
        Some(w.into_bytes())
    }

    fn apply_delta(&mut self, delta: &[u8]) -> Result<(), CodecError> {
        let mut r = crate::codec::Reader::new(delta);
        let n = r.get_u32()? as usize;
        // Decode fully before mutating, so a malformed delta leaves
        // the state untouched.
        let mut upserts = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let name = r.get_bytes()?.to_vec();
            let value = r.get_u64()?;
            upserts.push((name, value));
        }
        r.finish()?;
        for (name, value) in upserts {
            self.counters.insert(name, value);
        }
        Ok(())
    }

    fn take_partition(&mut self, belongs: &dyn Fn(&[u8]) -> bool) -> Option<Vec<u8>> {
        let names: Vec<Vec<u8>> = self
            .counters
            .keys()
            .filter(|name| belongs(name))
            .cloned()
            .collect();
        let mut w = crate::codec::Writer::new();
        w.put_u32(names.len() as u32);
        for name in names {
            let value = self.counters.remove(&name).expect("collected above");
            self.dirty.0.remove(&name);
            w.put_bytes(&name);
            w.put_u64(value);
        }
        Some(w.into_bytes())
    }

    fn apply_partition(&mut self, partition: &[u8]) -> Result<(), CodecError> {
        let mut r = crate::codec::Reader::new(partition);
        let n = r.get_u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let name = r.get_bytes()?.to_vec();
            let value = r.get_u64()?;
            entries.push((name, value));
        }
        r.finish()?;
        for (name, value) in entries {
            self.dirty.0.insert(name.clone());
            self.counters.insert(name, value);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_log_execution() {
        let mut log = AppendLog::default();
        assert_eq!(log.exec(b"a"), 0u64.to_be_bytes());
        assert_eq!(log.exec(b"b"), 1u64.to_be_bytes());
        assert_eq!(log.entries(), &[b"a".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut log = AppendLog::default();
        log.exec(b"one");
        log.exec(b"two");
        let snap = log.snapshot();
        let mut restored = AppendLog::default();
        restored.restore(&snap).unwrap();
        assert_eq!(restored, log);
    }

    #[test]
    fn restore_rejects_garbage() {
        let mut log = AppendLog::default();
        assert!(log.restore(&[0xff, 0xff]).is_err());
    }

    #[test]
    fn empty_snapshot_roundtrip() {
        let log = AppendLog::default();
        let mut restored = AppendLog::default();
        restored.exec(b"stale");
        restored.restore(&log.snapshot()).unwrap();
        assert_eq!(restored, log);
    }

    #[test]
    fn heap_bytes_grows() {
        let mut log = AppendLog::default();
        let before = log.heap_bytes();
        log.exec(&[0u8; 100]);
        assert!(log.heap_bytes() > before);
    }

    #[test]
    fn append_log_routes_by_client() {
        assert_eq!(AppendLog::shard_key(b"anything"), None);
    }

    #[test]
    fn counter_inc_and_read() {
        let mut c = Counter::default();
        let r = c.exec(&Counter::inc_op(b"hits", 2));
        assert_eq!(Counter::decode_result(&r), Some(2));
        let r = c.exec(&Counter::inc_op(b"hits", 3));
        assert_eq!(Counter::decode_result(&r), Some(5));
        let r = c.exec(&Counter::read_op(b"hits"));
        assert_eq!(Counter::decode_result(&r), Some(5));
        let r = c.exec(&Counter::read_op(b"misses"));
        assert_eq!(Counter::decode_result(&r), Some(0));
    }

    #[test]
    fn counter_malformed_op_is_rejected_not_panicking() {
        let mut c = Counter::default();
        assert!(c.exec(&[0x7f, 1, 2]).is_empty());
        assert!(c.exec(&[]).is_empty());
        assert!(c.exec(&[COUNTER_OP_INC, 0, 0, 0, 9]).is_empty());
    }

    #[test]
    fn counter_shard_key_is_the_name() {
        assert_eq!(
            Counter::shard_key(&Counter::inc_op(b"hits", 1)),
            Some(&b"hits"[..])
        );
        assert_eq!(
            Counter::shard_key(&Counter::read_op(b"hits")),
            Some(&b"hits"[..])
        );
        assert_eq!(Counter::shard_key(&[0x7f]), None);
        assert_eq!(Counter::shard_key(&[]), None);
    }

    #[test]
    fn counter_read_is_readonly_inc_is_not() {
        assert!(Counter::is_readonly(&Counter::read_op(b"hits")));
        assert!(!Counter::is_readonly(&Counter::inc_op(b"hits", 1)));
        assert!(!Counter::is_readonly(&[]));
        // The default classification is conservative.
        assert!(!AppendLog::is_readonly(b"anything"));
    }

    #[test]
    fn counter_delta_reproduces_state() {
        let mut c = Counter::default();
        c.exec(&Counter::inc_op(b"a", 1));
        c.exec(&Counter::inc_op(b"b", 7));
        let baseline = c.snapshot();
        let first = c.take_delta().expect("counters track changes");

        c.exec(&Counter::inc_op(b"b", 2));
        c.exec(&Counter::inc_op(b"c", 5));
        let delta = c.take_delta().unwrap();

        let mut replica = Counter::default();
        replica.restore(&baseline).unwrap();
        replica.apply_delta(&delta).unwrap();
        assert_eq!(replica, c);
        // The baseline delta drained the dirty set: it only carries
        // names touched before the snapshot.
        let mut r = crate::codec::Reader::new(&first);
        assert_eq!(r.get_u32().unwrap(), 2);
    }

    #[test]
    fn counter_delta_is_drained_and_empty_when_clean() {
        let mut c = Counter::default();
        c.exec(&Counter::inc_op(b"a", 1));
        assert!(!c.take_delta().unwrap().is_empty());
        let clean = c.take_delta().unwrap();
        let mut r = crate::codec::Reader::new(&clean);
        assert_eq!(r.get_u32().unwrap(), 0);
        assert!(Counter::default().apply_delta(&[0xff]).is_err());
    }

    #[test]
    fn counter_partition_moves_matching_names() {
        let mut c = Counter::default();
        c.exec(&Counter::inc_op(b"apple", 3));
        c.exec(&Counter::inc_op(b"banana", 4));
        let part = c
            .take_partition(&|name| name.starts_with(b"a"))
            .expect("counters support partitions");
        assert_eq!(c.value(b"apple"), 0);
        assert_eq!(c.value(b"banana"), 4);

        let mut target = Counter::default();
        target.exec(&Counter::inc_op(b"cherry", 1));
        target.apply_partition(&part).unwrap();
        assert_eq!(target.value(b"apple"), 3);
        assert_eq!(target.value(b"cherry"), 1);
        assert!(Counter::default().apply_partition(&[0xff]).is_err());
        // The default implementation reports "unsupported".
        assert!(AppendLog::default().take_partition(&|_| true).is_none());
    }

    #[test]
    fn counter_snapshot_restore_roundtrip() {
        let mut c = Counter::default();
        c.exec(&Counter::inc_op(b"a", 1));
        c.exec(&Counter::inc_op(b"b", 7));
        let snap = c.snapshot();
        let mut restored = Counter::default();
        restored.restore(&snap).unwrap();
        assert_eq!(restored, c);
        assert!(restored.heap_bytes() > 0);
        assert!(Counter::default().restore(&[0xff]).is_err());
    }
}
