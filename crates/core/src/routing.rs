//! Epoch-versioned slice routing: the dynamic key→shard map.
//!
//! The static router (`shard_index(route, count)` in [`crate::shard`])
//! fixes every key's shard for the lifetime of the deployment, so a
//! skewed workload pins its whole hot set to one enclave and the
//! deployment scales no further. This module replaces that with a
//! **slice table**: the 32-bit route-hash space is folded into
//! [`SLICE_COUNT`] slices (`route % SLICE_COUNT`), and an explicit
//! epoch-stamped assignment maps each slice to a shard. Rebalancing is
//! then a *slice move*: a new table differing in one slice, with the
//! epoch incremented.
//!
//! The table is trusted state. Every enclave of a deployment holds a
//! copy inside its [`crate::context::TrustedContext`] (installed at
//! provisioning, updated only by the attested slice-migration ecalls,
//! persisted inside the sealed checkpoint), and every wire envelope
//! carries the epoch the sender routed under, bound into the AEAD
//! associated data. That gives the enclave a three-way decision on an
//! authenticated wire it does not own:
//!
//! * **same epoch** — the host misdelivered (or the sender's envelope
//!   lies about its own operation): [`crate::Violation::WrongShard`].
//! * **wire epoch newer than the enclave's** — the enclave has been
//!   rolled back past a slice migration (or was forked off before
//!   one): also [`crate::Violation::WrongShard`]. This is the
//!   rollback-detection hook that makes *live* rebalancing safe under
//!   the paper's threat model.
//! * **wire epoch older** — an honest in-flight message that raced a
//!   migration: the enclave answers with an authenticated *redirect*
//!   carrying the current table so the client can re-route.
//!
//! Genesis compatibility: [`SliceTable::uniform`]`(n)` assigns slice
//! `s` to shard `s % n`, which for every shard count dividing
//! [`SLICE_COUNT`] is exactly the static map `route % n`. Deployments
//! that never migrate a slice behave bit-for-bit as before.

use crate::codec::{CodecError, Reader, WireCodec, Writer};

/// Number of routing slices the 32-bit route-hash space folds into.
///
/// A power of two so that `uniform(n)` coincides with the legacy
/// `route % n` router for every power-of-two shard count up to 64 —
/// and the migration granularity: a deployment of `n` shards has
/// `64 / n` independently movable slices per shard.
pub const SLICE_COUNT: u32 = 64;

/// The slice a route hash falls into.
pub fn slice_of(route: u32) -> u32 {
    route % SLICE_COUNT
}

/// An epoch-stamped assignment of the [`SLICE_COUNT`] routing slices
/// to the shards of one deployment.
///
/// Immutable by design: a migration produces a *new* table via
/// [`SliceTable::moved`] with the epoch incremented, so every version
/// that ever routed traffic stays addressable by its epoch (the host
/// side of [`crate::shard::ShardedServer`] keeps the history to route
/// in-flight wires).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceTable {
    epoch: u64,
    count: u32,
    assign: Vec<u32>,
}

impl SliceTable {
    /// The genesis table of an `count`-shard deployment: slice `s` on
    /// shard `s % count`, epoch 0. Equals the legacy static router
    /// `route % count` whenever `count` divides [`SLICE_COUNT`].
    pub fn uniform(count: u32) -> Self {
        let count = count.max(1);
        SliceTable {
            epoch: 0,
            count,
            assign: (0..SLICE_COUNT).map(|s| s % count).collect(),
        }
    }

    /// The table's epoch (0 for genesis; +1 per slice move).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards this table assigns slices over.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// The shard that owns `slice`.
    pub fn owner(&self, slice: u32) -> u32 {
        self.assign[(slice % SLICE_COUNT) as usize]
    }

    /// The shard a route hash maps to under this table.
    pub fn shard_of(&self, route: u32) -> u32 {
        self.owner(slice_of(route))
    }

    /// Whether `shard` owns `route` under this table.
    pub fn owns(&self, shard: u32, route: u32) -> bool {
        self.shard_of(route) == shard
    }

    /// The slices assigned to `shard`.
    pub fn slices_of(&self, shard: u32) -> Vec<u32> {
        (0..SLICE_COUNT)
            .filter(|&s| self.owner(s) == shard)
            .collect()
    }

    /// The successor table with `slice` reassigned to shard `to` and
    /// the epoch incremented. `None` when `slice` or `to` is out of
    /// range, or when `to` already owns the slice (a no-op move must
    /// not burn an epoch).
    pub fn moved(&self, slice: u32, to: u32) -> Option<SliceTable> {
        if slice >= SLICE_COUNT || to >= self.count || self.owner(slice) == to {
            return None;
        }
        let mut assign = self.assign.clone();
        assign[slice as usize] = to;
        Some(SliceTable {
            epoch: self.epoch + 1,
            count: self.count,
            assign,
        })
    }
}

impl WireCodec for SliceTable {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.epoch);
        w.put_u32(self.count);
        for &shard in &self.assign {
            w.put_u32(shard);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let epoch = r.get_u64()?;
        let count = r.get_u32()?;
        if count == 0 {
            return Err(CodecError::InvalidTag(0));
        }
        let mut assign = Vec::with_capacity(SLICE_COUNT as usize);
        for _ in 0..SLICE_COUNT {
            let shard = r.get_u32()?;
            if shard >= count {
                return Err(CodecError::InvalidTag(1));
            }
            assign.push(shard);
        }
        Ok(SliceTable {
            epoch,
            count,
            assign,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_legacy_static_router() {
        // For every shard count dividing SLICE_COUNT the genesis table
        // IS the legacy `route % count` map — deployments that never
        // migrate behave bit-for-bit as before.
        for count in [1u32, 2, 4, 8, 16, 32, 64] {
            let table = SliceTable::uniform(count);
            assert_eq!(table.epoch(), 0);
            for route in [0u32, 1, 63, 64, 1000, 0xdead_beef, u32::MAX] {
                assert_eq!(table.shard_of(route), route % count, "count {count}");
            }
        }
    }

    #[test]
    fn uniform_covers_every_shard() {
        for count in [1u32, 2, 3, 4, 5, 8] {
            let table = SliceTable::uniform(count);
            for shard in 0..count {
                assert!(
                    !table.slices_of(shard).is_empty(),
                    "shard {shard} of {count} owns no slice"
                );
            }
        }
    }

    #[test]
    fn moved_bumps_epoch_and_reassigns_exactly_one_slice() {
        let t0 = SliceTable::uniform(4);
        let t1 = t0.moved(0, 3).unwrap();
        assert_eq!(t1.epoch(), 1);
        assert_eq!(t1.owner(0), 3);
        for s in 1..SLICE_COUNT {
            assert_eq!(t1.owner(s), t0.owner(s), "slice {s} must not move");
        }
        // Total: every route still maps to exactly one in-range shard.
        for route in 0..(4 * SLICE_COUNT) {
            assert!(t1.shard_of(route) < t1.count());
        }
    }

    #[test]
    fn moved_rejects_out_of_range_and_noop() {
        let t = SliceTable::uniform(4);
        assert!(t.moved(SLICE_COUNT, 1).is_none(), "slice out of range");
        assert!(t.moved(0, 4).is_none(), "target shard out of range");
        assert!(t.moved(0, 0).is_none(), "no-op move must not burn an epoch");
    }

    #[test]
    fn codec_roundtrip() {
        let t = SliceTable::uniform(8)
            .moved(5, 0)
            .unwrap()
            .moved(13, 2)
            .unwrap();
        let decoded = SliceTable::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(decoded, t);
        assert_eq!(decoded.epoch(), 2);
    }

    #[test]
    fn decode_rejects_malformed_tables() {
        // Zero shard count.
        let mut w = Writer::new();
        w.put_u64(0);
        w.put_u32(0);
        for _ in 0..SLICE_COUNT {
            w.put_u32(0);
        }
        assert!(SliceTable::from_bytes(&w.into_bytes()).is_err());
        // Assignment out of range.
        let mut w = Writer::new();
        w.put_u64(0);
        w.put_u32(2);
        for _ in 0..SLICE_COUNT {
            w.put_u32(7);
        }
        assert!(SliceTable::from_bytes(&w.into_bytes()).is_err());
        // Truncated.
        let bytes = SliceTable::uniform(2).to_bytes();
        assert!(SliceTable::from_bytes(&bytes[..bytes.len() - 2]).is_err());
    }

    #[test]
    fn slices_of_partition_the_space() {
        let t = SliceTable::uniform(4).moved(2, 0).unwrap();
        let mut seen = vec![false; SLICE_COUNT as usize];
        for shard in 0..t.count() {
            for s in t.slices_of(shard) {
                assert!(!seen[s as usize], "slice {s} owned twice");
                seen[s as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "every slice owned");
    }
}
