//! The event-driven execution pipeline: asynchronous writes under real
//! concurrency.
//!
//! The paper's headline throughput numbers (Figs. 4/5) come from the
//! *asynchronous-write* mode, where sealing persistence overlaps
//! request execution. [`PipelinedServer`] realizes that mode as a
//! three-stage pipeline:
//!
//! ```text
//!            stage 1 — intake          stage 2 — execution        stage 3 — persistence
//!   clients ──────────────────▶ queue ────────────────────▶ seal ──────────────────────▶ disk
//!            transport::Hub            enclave ecall              background writer
//!            (caller thread)           (caller thread)            (StageWorker thread)
//! ```
//!
//! Stages 1–2 run on the caller's thread exactly like [`LcmServer`];
//! stage 3 runs on a dedicated [`lcm_runtime::stage::StageWorker`]
//! thread fed through a **bounded** queue. While the writer persists
//! batch *n*, the enclave executes batch *n+1* — replies leave the
//! server before their sealed state hits the disk.
//!
//! ## Back-pressure
//!
//! The writer queue holds at most `queue_capacity` sealed snapshots
//! (default [`DEFAULT_WRITER_QUEUE`]). When the disk falls that far
//! behind, [`PipelinedServer::step`] blocks in `submit` until a slot
//! frees up: a slow disk throttles the enclave instead of buffering
//! unbounded sealed state in host memory.
//! [`PipelinedServer::backpressure_events`] counts how often that
//! happened.
//!
//! ## Crash semantics — the durability window
//!
//! Queued-but-unwritten blobs model data handed to the OS page cache:
//!
//! * [`PipelinedServer::crash`] — the server *process* dies. The
//!   kernel still completes accepted writes, so the writer drains its
//!   queue before the enclave stops; recovery sees the latest state.
//! * [`PipelinedServer::crash_power_failure`] — the machine dies.
//!   Queued blobs are lost, recovery boots from whatever had actually
//!   reached the medium. Operations whose persistence was lost are
//!   rolled back — which LCM clients *detect* on their next operation
//!   (`V[i]` mismatch). This is exactly the paper's trade: async mode
//!   buys throughput, and the stability watermark (§4.5) tells each
//!   client which operations were guaranteed durable.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lcm_runtime::stage::StageWorker;
use lcm_storage::StableStorage;

use crate::context::PersistBlobs;
use crate::functionality::Functionality;
use crate::server::{BatchServer, LcmServer, SLOT_KEY_BLOB, SLOT_STATE_BLOB};
use crate::types::ClientId;
use crate::{LcmError, Result};

/// Default bound on the writer queue: how many sealed snapshots may be
/// in flight before execution blocks on persistence.
pub const DEFAULT_WRITER_QUEUE: usize = 4;

/// Shared state between the server and its persistence stage.
struct WriterShared {
    /// Fast-path flag for "the writer hit a storage error" — checked
    /// lock-free on every step so the hot path never contends with
    /// in-flight I/O.
    failed: AtomicBool,
    /// First storage error the writer hit; everything after it is
    /// skipped and the error surfaces on the next server call.
    error: Mutex<Option<String>>,
    /// Snapshots fully persisted (both slots stored).
    persisted: AtomicU64,
}

/// An [`LcmServer`] whose persistence stage runs on a background
/// writer thread — the paper's asynchronous-write mode under real
/// concurrency. Construct via [`LcmServer::into_pipelined`].
///
/// The full [`BatchServer`] surface is available; control-plane
/// operations that read or write storage directly (boot, provision,
/// admin, migration) flush the writer first so they always observe
/// ordered state.
pub struct PipelinedServer<F: Functionality> {
    inner: LcmServer<F>,
    writer: StageWorker<PersistBlobs>,
    shared: Arc<WriterShared>,
}

impl<F: Functionality> std::fmt::Debug for PipelinedServer<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelinedServer")
            .field("inner", &self.inner)
            .field("pending_persists", &self.writer.pending())
            .finish()
    }
}

impl<F: Functionality> PipelinedServer<F> {
    /// Wraps `server`, spawning the persistence stage with the default
    /// writer-queue capacity.
    pub fn new(server: LcmServer<F>) -> Self {
        Self::with_queue_capacity(server, DEFAULT_WRITER_QUEUE)
    }

    /// Wraps `server` with an explicit writer-queue bound (min 1).
    pub fn with_queue_capacity(server: LcmServer<F>, queue_capacity: usize) -> Self {
        let storage: Arc<dyn StableStorage> = server.storage();
        let shared = Arc::new(WriterShared {
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
            persisted: AtomicU64::new(0),
        });
        let writer_shared = shared.clone();
        let writer = StageWorker::spawn(
            "lcm-persist-writer",
            queue_capacity,
            move |blobs: PersistBlobs| {
                if writer_shared.failed.load(Ordering::SeqCst) {
                    return;
                }
                // State before keys, and no key store for delta
                // persists — matching the synchronous server's persist
                // (a crash between the stores must never leave keys
                // without state, which `init` reads as tampering).
                let stored = storage
                    .store(SLOT_STATE_BLOB, &blobs.state_blob)
                    .and_then(|()| {
                        if blobs.key_blob.is_empty() {
                            Ok(())
                        } else {
                            storage.store(SLOT_KEY_BLOB, &blobs.key_blob)
                        }
                    });
                match stored {
                    Ok(()) => {
                        writer_shared.persisted.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(e) => {
                        *writer_shared
                            .error
                            .lock()
                            .unwrap_or_else(|p| p.into_inner()) = Some(e.to_string());
                        writer_shared.failed.store(true, Ordering::SeqCst);
                    }
                }
            },
        );
        PipelinedServer {
            inner: server,
            writer,
            shared,
        }
    }

    /// Shuts the pipeline down (draining the writer) and returns the
    /// synchronous server.
    pub fn into_inner(self) -> LcmServer<F> {
        // Dropping the writer closes + drains its queue and joins the
        // thread; destructure afterwards.
        let PipelinedServer { inner, writer, .. } = self;
        drop(writer);
        inner
    }

    fn check_writer(&self) -> Result<()> {
        if !self.shared.failed.load(Ordering::SeqCst) {
            return Ok(());
        }
        let error = self.shared.error.lock().unwrap_or_else(|e| e.into_inner());
        let msg = error.as_deref().unwrap_or("unknown storage failure");
        Err(LcmError::Storage(format!("async persist failed: {msg}")))
    }

    /// Blocks until every sealed snapshot handed to the writer has been
    /// persisted, then surfaces any storage error the writer hit.
    ///
    /// # Errors
    ///
    /// [`LcmError::Storage`] if an asynchronous persist failed.
    pub fn flush(&mut self) -> Result<()> {
        self.writer.flush();
        self.check_writer()
    }

    /// Simulates a crash of the server *process*: the enclave's
    /// volatile memory is lost, but writes already handed to the OS
    /// complete. Call [`PipelinedServer::boot`] to recover.
    ///
    /// A pending writer error is cleared: the restarted process gets a
    /// fresh writer, and the write that failed is simply lost — if it
    /// mattered, clients detect the resulting rollback.
    pub fn crash(&mut self) {
        self.writer.flush();
        self.clear_writer_error();
        self.inner.crash();
    }

    /// Simulates a power failure: the enclave dies *and* sealed
    /// snapshots still queued for writing are lost. Returns how many
    /// snapshots were dropped. Recovery boots from the last state that
    /// reached the medium; clients whose acknowledged operations were
    /// rolled back detect the gap on their next operation.
    pub fn crash_power_failure(&mut self) -> usize {
        let dropped = self.writer.discard_pending();
        self.clear_writer_error();
        self.inner.crash();
        dropped
    }

    fn clear_writer_error(&mut self) {
        *self.shared.error.lock().unwrap_or_else(|e| e.into_inner()) = None;
        self.shared.failed.store(false, Ordering::SeqCst);
    }

    /// Boots (or recovers) the enclave from stable storage. Flushes the
    /// writer first so recovery sees every completed persist.
    ///
    /// # Errors
    ///
    /// Same as [`LcmServer::boot`], plus deferred writer errors.
    pub fn boot(&mut self) -> Result<bool> {
        self.flush()?;
        self.inner.boot()
    }

    /// Processes one batch: the enclave executes on the calling thread,
    /// the sealed state is queued for the background writer, and the
    /// replies return immediately — before the disk write completes.
    ///
    /// Blocks only when the writer queue is full (back-pressure).
    ///
    /// # Errors
    ///
    /// Context violations, plus deferred writer errors from earlier
    /// batches.
    pub fn step(&mut self) -> Result<Vec<(ClientId, Vec<u8>)>> {
        self.check_writer()?;
        let (replies, blobs) = self.inner.execute_batch()?;
        if let Some(blobs) = blobs {
            if self.writer.submit(blobs).is_err() {
                return Err(LcmError::Storage("persist writer stopped".into()));
            }
        }
        Ok(replies)
    }

    /// Processes all queued messages, batch by batch, without waiting
    /// for persistence.
    ///
    /// # Errors
    ///
    /// Same as [`PipelinedServer::step`].
    pub fn process_all(&mut self) -> Result<Vec<(ClientId, Vec<u8>)>> {
        let mut out = Vec::new();
        while self.inner.queued() > 0 {
            out.extend(self.step()?);
        }
        Ok(out)
    }

    /// Sealed snapshots fully persisted by the writer so far.
    pub fn persists_completed(&self) -> u64 {
        self.shared.persisted.load(Ordering::SeqCst)
    }

    /// Sealed snapshots currently waiting in the writer queue.
    pub fn pending_persists(&self) -> usize {
        self.writer.pending()
    }

    /// How many times execution blocked because the writer queue was
    /// full — the back-pressure signal.
    pub fn backpressure_events(&self) -> u64 {
        self.writer.queue_stats().blocked_pushes
    }

    /// Direct access to the wrapped synchronous server. Persists issued
    /// through it bypass the writer queue; flush first if ordering
    /// matters.
    pub fn inner(&mut self) -> &mut LcmServer<F> {
        &mut self.inner
    }
}

impl<F: Functionality> BatchServer for PipelinedServer<F> {
    fn boot(&mut self) -> Result<bool> {
        PipelinedServer::boot(self)
    }
    fn crash(&mut self) {
        PipelinedServer::crash(self);
    }
    fn is_running(&self) -> bool {
        self.inner.is_running()
    }
    fn provision(&mut self, sealed_payload: Vec<u8>) -> Result<()> {
        self.flush()?;
        self.inner.provision(sealed_payload)
    }
    fn attest(
        &mut self,
        user_data: lcm_crypto::sha256::Digest,
    ) -> Result<lcm_tee::attestation::Quote> {
        self.inner.attest(user_data)
    }
    fn submit(&mut self, invoke_wire: Vec<u8>) {
        self.inner.submit(invoke_wire);
    }
    fn queued(&self) -> usize {
        self.inner.queued()
    }
    fn batch_limit(&self) -> usize {
        BatchServer::batch_limit(&self.inner)
    }
    fn step(&mut self) -> Result<Vec<(ClientId, Vec<u8>)>> {
        PipelinedServer::step(self)
    }
    fn process_all(&mut self) -> Result<Vec<(ClientId, Vec<u8>)>> {
        PipelinedServer::process_all(self)
    }
    fn admin(&mut self, admin_wire: Vec<u8>) -> Result<Vec<u8>> {
        self.flush()?;
        self.inner.admin(admin_wire)
    }
    fn export_migration(&mut self) -> Result<Vec<u8>> {
        self.flush()?;
        self.inner.export_migration()
    }
    fn import_migration(&mut self, ticket: Vec<u8>) -> Result<()> {
        self.flush()?;
        self.inner.import_migration(ticket)
    }
    fn batches_processed(&self) -> u64 {
        self.inner.batches_processed()
    }
    fn ops_processed(&self) -> u64 {
        self.inner.ops_processed()
    }
    fn flush_persists(&mut self) -> Result<()> {
        PipelinedServer::flush(self)
    }
    fn serve_read(&mut self, read_wire: Vec<u8>) -> Result<Vec<u8>> {
        self.inner.serve_read(read_wire)
    }
    fn apply_replica(&mut self, state_blob: Vec<u8>) -> Result<lcm_crypto::sha256::Digest> {
        self.flush()?;
        self.inner.apply_replica(state_blob)
    }
    fn kill_member(&mut self, shard: u32, replica: u32, power_failure: bool) -> Result<()> {
        if shard == 0 && replica == 0 {
            if power_failure {
                self.crash_power_failure();
            } else {
                self.crash();
            }
            Ok(())
        } else {
            Err(LcmError::Tee(format!(
                "kill_member(shard {shard}, replica {replica}) on a single-enclave server"
            )))
        }
    }
    fn import_migration_as(&mut self, ticket: Vec<u8>, replica: u32, replicas: u32) -> Result<()> {
        self.flush()?;
        self.inner.import_migration_as(ticket, replica, replicas)
    }
    fn export_slice(&mut self, slice: u32, to: u32) -> Result<(Vec<u8>, Vec<u8>)> {
        // The export's checkpoint supersedes everything queued behind
        // the writer; drain first so storage cannot end up with a
        // stale post-export blob.
        self.flush()?;
        self.inner.export_slice(slice, to)
    }
    fn import_slice(&mut self, ticket: Vec<u8>) -> Result<()> {
        self.flush()?;
        self.inner.import_slice(ticket)
    }
    fn adopt_table(&mut self, bulletin: Vec<u8>) -> Result<()> {
        self.flush()?;
        self.inner.adopt_table(bulletin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::AdminHandle;
    use crate::client::LcmClient;
    use crate::functionality::AppendLog;
    use crate::stability::Quorum;
    use lcm_storage::MemoryStorage;
    use lcm_tee::world::TeeWorld;

    fn setup(
        n_clients: u32,
        batch: usize,
    ) -> (PipelinedServer<AppendLog>, AdminHandle, Vec<LcmClient>) {
        let world = TeeWorld::new_deterministic(42);
        let platform = world.platform_deterministic(1);
        let storage = Arc::new(MemoryStorage::new());
        let mut server = LcmServer::<AppendLog>::new(&platform, storage, batch).into_pipelined();
        assert!(server.boot().unwrap());

        let clients: Vec<ClientId> = (1..=n_clients).map(ClientId).collect();
        let mut admin =
            AdminHandle::new_deterministic(&world, clients.clone(), Quorum::Majority, 7);
        admin.bootstrap(&mut server).unwrap();

        let lcm_clients = clients
            .iter()
            .map(|&id| LcmClient::new(id, admin.client_key()))
            .collect();
        (server, admin, lcm_clients)
    }

    #[test]
    fn end_to_end_single_client() {
        let (mut server, _admin, mut clients) = setup(1, 1);
        let c = &mut clients[0];
        server.submit(c.invoke(b"first").unwrap());
        let replies = server.process_all().unwrap();
        assert_eq!(replies.len(), 1);
        let done = c.handle_reply(&replies[0].1).unwrap();
        assert_eq!(done.seq.0, 1);
        server.flush().unwrap();
        assert_eq!(server.persists_completed(), 1);
    }

    #[test]
    fn replies_can_outrun_persistence() {
        // With a generous queue the reply returns even though nothing
        // forces the persist to have completed yet; flush establishes
        // the durable point.
        let (mut server, _admin, mut clients) = setup(3, 16);
        for c in clients.iter_mut() {
            server.submit(c.invoke(b"op").unwrap());
        }
        let replies = server.process_all().unwrap();
        assert_eq!(replies.len(), 3);
        server.flush().unwrap();
        assert_eq!(server.batches_processed(), 1);
        assert_eq!(server.persists_completed(), 1);
    }

    #[test]
    fn process_crash_preserves_accepted_writes() {
        let (mut server, _admin, mut clients) = setup(1, 1);
        let c = &mut clients[0];
        server.submit(c.invoke(b"durable").unwrap());
        let replies = server.process_all().unwrap();
        c.handle_reply(&replies[0].1).unwrap();

        server.crash();
        assert!(!server.is_running());
        assert!(!server.boot().unwrap(), "no re-provisioning after crash");

        server.submit(c.invoke(b"after").unwrap());
        let replies = server.process_all().unwrap();
        let done = c.handle_reply(&replies[0].1).unwrap();
        assert_eq!(done.seq.0, 2, "sequence continues after recovery");
    }

    /// Storage whose writes block until a gate opens — pins persist
    /// jobs in the writer pipeline at a deterministic point.
    struct GatedStorage {
        inner: MemoryStorage,
        gate: std::sync::Mutex<bool>,
        opened: std::sync::Condvar,
    }

    impl GatedStorage {
        fn new() -> Self {
            GatedStorage {
                inner: MemoryStorage::new(),
                gate: std::sync::Mutex::new(false),
                opened: std::sync::Condvar::new(),
            }
        }

        fn open(&self) {
            *self.gate.lock().unwrap() = true;
            self.opened.notify_all();
        }

        fn close(&self) {
            *self.gate.lock().unwrap() = false;
        }
    }

    impl lcm_storage::StableStorage for GatedStorage {
        fn store(&self, slot: &str, blob: &[u8]) -> lcm_storage::Result<()> {
            let mut open = self.gate.lock().unwrap();
            while !*open {
                open = self.opened.wait(open).unwrap();
            }
            drop(open);
            self.inner.store(slot, blob)
        }
        fn load(&self, slot: &str) -> lcm_storage::Result<Option<Vec<u8>>> {
            self.inner.load(slot)
        }
    }

    #[test]
    fn power_failure_rolls_back_and_clients_detect() {
        let world = TeeWorld::new_deterministic(43);
        let platform = world.platform_deterministic(1);
        let storage = Arc::new(GatedStorage::new());
        storage.open();
        let server = LcmServer::<AppendLog>::new(&platform, storage.clone(), 1);
        let mut server = PipelinedServer::with_queue_capacity(server, 8);
        assert!(server.boot().unwrap());
        let ids = vec![ClientId(1)];
        let mut admin = AdminHandle::new_deterministic(&world, ids, Quorum::Majority, 9);
        admin.bootstrap(&mut server).unwrap();
        let mut c = LcmClient::new(ClientId(1), admin.client_key());

        // First op persists durably.
        server.submit(c.invoke(b"durable").unwrap());
        let replies = server.process_all().unwrap();
        c.handle_reply(&replies[0].1).unwrap();
        server.flush().unwrap();

        // Close the gate: the next two acknowledged ops stall in the
        // persistence stage (one in-flight, one queued).
        storage.close();
        for op in [&b"volatile-1"[..], b"volatile-2"] {
            server.submit(c.invoke(op).unwrap());
            let replies = server.process_all().unwrap();
            c.handle_reply(&replies[0].1).unwrap();
        }
        // Wait until exactly one job is queued behind the in-flight one.
        while server.pending_persists() != 1 {
            std::thread::yield_now();
        }

        // Power failure: the queued snapshot is lost; the in-flight
        // write completes once "the controller" (gate) lets it.
        let dropped = server.crash_power_failure();
        assert_eq!(dropped, 1);
        storage.open();
        server.boot().unwrap();

        // The context recovered without volatile-2; the client's
        // (tc, hc) is ahead — its next operation trips detection.
        server.submit(c.invoke(b"next").unwrap());
        let err = server.process_all().unwrap_err();
        assert!(err.is_violation(), "got {err:?}");
    }

    #[test]
    fn into_inner_round_trip() {
        let (server, _admin, mut clients) = setup(1, 1);
        let mut server = server.into_inner();
        let c = &mut clients[0];
        server.submit(c.invoke(b"sync-again").unwrap());
        let replies = server.process_all().unwrap();
        assert_eq!(c.handle_reply(&replies[0].1).unwrap().seq.0, 1);
    }
}
