//! In-process network hub: clients ⇄ server over adversary-controllable
//! links.
//!
//! The paper's model routes every client⇄T message through the server,
//! which may "intercept, modify, reorder, discard, or replay" them
//! (§2.3). [`Hub`] materializes that topology with [`lcm_net`] links:
//! each client gets a duplex port, and the embedded server only sees
//! what the (possibly adversarial) link controllers let through.
//!
//! The hub is the *intake stage* of the server pipeline: it is generic
//! over [`BatchServer`], so the same topology drives the synchronous
//! [`crate::server::LcmServer`] and the asynchronous-write
//! [`crate::pipeline::PipelinedServer`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use lcm_net::{Duplex, DuplexEnd, LinkController};

use crate::server::BatchServer;
use crate::types::ClientId;
use crate::Result;

/// A client's connection handle.
#[derive(Debug, Clone)]
pub struct ClientPort {
    end: DuplexEnd,
}

impl ClientPort {
    /// Sends an encrypted INVOKE toward the server.
    pub fn send(&self, wire: Vec<u8>) {
        self.end.send(wire);
    }

    /// Receives the next deliverable reply, if any.
    pub fn try_recv(&self) -> Option<Vec<u8>> {
        self.end.try_recv()
    }
}

/// Adversary handles for one client's connection, plus hub-wide
/// routing statistics.
#[derive(Debug, Clone)]
pub struct PortControl {
    /// Controls the client→server direction.
    pub to_server: LinkController,
    /// Controls the server→client direction.
    pub to_client: LinkController,
    /// Shared hub counter of unroutable replies (see
    /// [`PortControl::hub_dropped_replies`]).
    dropped_replies: Arc<AtomicU64>,
}

impl PortControl {
    /// Replies the hub could not route to any connected port since it
    /// was created (hub-wide counter, shared by every port's control).
    /// A reply is dropped — not an error — when its client never
    /// connected or already disconnected; tests assert on this instead
    /// of relying on the absence of panics.
    pub fn hub_dropped_replies(&self) -> u64 {
        self.dropped_replies.load(Ordering::SeqCst)
    }
}

struct Port {
    server_end: DuplexEnd,
    control: PortControl,
}

/// An in-process network connecting a [`BatchServer`] to its clients.
///
/// # Example
///
/// ```
/// use lcm_core::functionality::AppendLog;
/// use lcm_core::server::LcmServer;
/// use lcm_core::transport::Hub;
/// use lcm_core::types::ClientId;
/// use lcm_storage::MemoryStorage;
/// use lcm_tee::world::TeeWorld;
/// use std::sync::Arc;
///
/// let world = TeeWorld::new_deterministic(1);
/// let server = LcmServer::<AppendLog>::new(&world.platform(1), Arc::new(MemoryStorage::new()), 16);
/// let mut hub = Hub::new(server);
/// let port = hub.connect(ClientId(1));
/// # let _ = port;
/// ```
pub struct Hub<S: BatchServer> {
    server: S,
    ports: BTreeMap<ClientId, Port>,
    dropped_replies: Arc<AtomicU64>,
}

impl<S: BatchServer + std::fmt::Debug> std::fmt::Debug for Hub<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hub")
            .field("server", &self.server)
            .field("ports", &self.ports.len())
            .field("dropped_replies", &self.dropped_replies)
            .finish()
    }
}

impl<S: BatchServer> Hub<S> {
    /// Wraps a server into a hub.
    pub fn new(server: S) -> Self {
        Hub {
            server,
            ports: BTreeMap::new(),
            dropped_replies: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Direct access to the server (boot, provision, crash, …).
    pub fn server(&mut self) -> &mut S {
        &mut self.server
    }

    /// Connects a client, returning its port. Links start in honest
    /// (auto-deliver) mode; grab [`Hub::control`] to turn adversarial.
    pub fn connect(&mut self, id: ClientId) -> ClientPort {
        let duplex = Duplex::honest();
        let Duplex {
            client,
            server,
            to_server,
            to_client,
        } = duplex;
        self.ports.insert(
            id,
            Port {
                server_end: server,
                control: PortControl {
                    to_server,
                    to_client,
                    dropped_replies: self.dropped_replies.clone(),
                },
            },
        );
        ClientPort { end: client }
    }

    /// Disconnects a client's port; replies for it are henceforth
    /// counted in [`Hub::dropped_replies`].
    pub fn disconnect(&mut self, id: ClientId) -> bool {
        self.ports.remove(&id).is_some()
    }

    /// The adversary's handles on one client's connection.
    pub fn control(&self, id: ClientId) -> Option<PortControl> {
        self.ports.get(&id).map(|p| p.control.clone())
    }

    /// Replies the hub could not route to any connected port.
    pub fn dropped_replies(&self) -> u64 {
        self.dropped_replies.load(Ordering::SeqCst)
    }

    /// Moves all deliverable client messages into the server, processes
    /// them, and routes the replies back onto the clients' links.
    /// Replies for unknown ports are dropped and counted in
    /// [`Hub::dropped_replies`].
    ///
    /// Returns the number of operations processed.
    ///
    /// # Errors
    ///
    /// Propagates violations detected by the trusted context; an honest
    /// server crash-stops here, a malicious one might swallow it — the
    /// clients find out either way.
    pub fn pump(&mut self) -> Result<usize> {
        // Ingress order: round-robin over ports for fairness, FIFO per
        // port (the correct server forwards FIFO, §2.1).
        loop {
            let mut any = false;
            for port in self.ports.values() {
                if let Some(wire) = port.server_end.try_recv() {
                    self.server.submit(wire);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        let replies = self.server.process_all()?;
        let n = replies.len();
        for (id, wire) in replies {
            match self.ports.get(&id) {
                Some(port) => port.server_end.send(wire),
                None => {
                    self.dropped_replies.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::AdminHandle;
    use crate::client::LcmClient;
    use crate::functionality::AppendLog;
    use crate::server::LcmServer;
    use crate::stability::Quorum;
    use lcm_storage::MemoryStorage;
    use lcm_tee::world::TeeWorld;
    use std::sync::Arc;

    fn hub_with_clients(n: u32) -> (Hub<LcmServer<AppendLog>>, Vec<(LcmClient, ClientPort)>) {
        let world = TeeWorld::new_deterministic(60);
        let platform = world.platform_deterministic(1);
        let mut server = LcmServer::<AppendLog>::new(&platform, Arc::new(MemoryStorage::new()), 16);
        server.boot().unwrap();
        let ids: Vec<ClientId> = (1..=n).map(ClientId).collect();
        let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, 3);
        admin.bootstrap(&mut server).unwrap();
        let mut hub = Hub::new(server);
        let clients = ids
            .iter()
            .map(|&id| {
                let port = hub.connect(id);
                (LcmClient::new(id, admin.client_key()), port)
            })
            .collect();
        (hub, clients)
    }

    #[test]
    fn ops_flow_through_the_hub() {
        let (mut hub, mut clients) = hub_with_clients(2);
        for (client, port) in clients.iter_mut() {
            port.send(client.invoke(b"op").unwrap());
        }
        assert_eq!(hub.pump().unwrap(), 2);
        for (client, port) in clients.iter_mut() {
            let reply = port.try_recv().expect("reply routed");
            client.handle_reply(&reply).unwrap();
        }
        assert_eq!(hub.dropped_replies(), 0);
    }

    #[test]
    fn held_messages_do_not_reach_the_server() {
        let (mut hub, mut clients) = hub_with_clients(1);
        let (client, port) = &mut clients[0];
        let ctl = hub.control(client.id()).unwrap();
        ctl.to_server.set_auto_deliver(false);
        port.send(client.invoke(b"op").unwrap());
        assert_eq!(hub.pump().unwrap(), 0);
        assert_eq!(ctl.to_server.held(), 1);
        // Release it.
        ctl.to_server.deliver_all();
        assert_eq!(hub.pump().unwrap(), 1);
        let reply = port.try_recv().unwrap();
        client.handle_reply(&reply).unwrap();
    }

    #[test]
    fn tampering_on_the_link_is_detected() {
        let (mut hub, mut clients) = hub_with_clients(1);
        let (client, port) = &mut clients[0];
        let ctl = hub.control(client.id()).unwrap();
        ctl.to_server.set_auto_deliver(false);
        port.send(client.invoke(b"op").unwrap());
        ctl.to_server.tamper_next(|m| m[0] ^= 0xff);
        ctl.to_server.deliver_all();
        let err = hub.pump().unwrap_err();
        assert!(err.is_violation());
    }

    #[test]
    fn replay_on_the_link_is_detected() {
        let (mut hub, mut clients) = hub_with_clients(1);
        let (client, port) = &mut clients[0];
        let ctl = hub.control(client.id()).unwrap();
        ctl.to_server.set_auto_deliver(false);
        port.send(client.invoke(b"op").unwrap());
        ctl.to_server.duplicate_next();
        ctl.to_server.deliver_all();
        let err = hub.pump().unwrap_err();
        assert!(err.is_violation());
    }

    #[test]
    fn unknown_port_reply_is_counted_not_panicked() {
        // Replies to clients without a connected port are dropped (the
        // honest hub cannot route them) — and the drop is observable.
        let (mut hub, mut clients) = hub_with_clients(2);
        let (client2, _port2) = &mut clients[1];
        let wire = client2.invoke(b"orphan").unwrap();
        assert!(hub.disconnect(client2.id()));
        // The request reaches the server out of band; the reply has no
        // port to return on.
        hub.server().submit(wire);
        assert_eq!(hub.pump().unwrap(), 1);
        assert_eq!(hub.dropped_replies(), 1);
        // The stat is visible through any port's adversary control too.
        let ctl = hub.control(clients[0].0.id()).unwrap();
        assert_eq!(ctl.hub_dropped_replies(), 1);
    }
}
