//! The transport layer between clients and the host server: the
//! single-threaded adversarial [`Hub`] and the multi-producer
//! concurrent [`Frontend`].
//!
//! The paper's model routes every client⇄T message through the server,
//! which may "intercept, modify, reorder, discard, or replay" them
//! (§2.3). Two front-ends materialize that topology:
//!
//! * [`Hub`] — the adversarial test harness: each client gets a duplex
//!   [`lcm_net`] link whose controllers can hold, tamper with, or
//!   replay messages, and one caller thread pumps ingress → server →
//!   replies. Use it when the *links* are the subject of the test.
//! * [`Frontend`] — the deployment-scale front-end: a thread-safe
//!   ingress plane (any number of producer threads submit through
//!   [`FrontendPort::send`] / [`Frontend::submit`]), per-shard driver
//!   loops running on an [`lcm_runtime::WorkerPool`], and a reply
//!   demux plane that routes each released reply to its client's port
//!   in that client's submission order. The untrusted host becomes a
//!   concurrent message pump between clients and the enclaves — the
//!   paper's host architecture at deployment scale.
//!
//! Both are generic over [`BatchServer`], so the same topology drives
//! the synchronous [`crate::server::LcmServer`], the asynchronous-write
//! [`crate::pipeline::PipelinedServer`], and the sharded
//! [`crate::shard::ShardedServer`]. Shared drop/flow counters are
//! atomic ([`TransportStats`]) and readable from `&self` while other
//! threads keep pumping.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

use lcm_net::{Duplex, DuplexEnd, LinkController};
use lcm_runtime::queue::BoundedQueue;
use lcm_runtime::WorkerPool;

use crate::admission::{AdmissionState, AdmitOutcome, HealthSnapshot, RetryAfter};
use crate::server::{BatchServer, Replies};
use crate::types::ClientId;
use crate::{LcmError, Result};

/// Shared transport counters. Every field is atomic and every reader
/// takes `&self`, so a port control, a test, or an operator dashboard
/// can observe drops and flow while pump threads keep running — no
/// `&mut` window required.
#[derive(Debug, Default)]
pub struct TransportStats {
    submitted: AtomicU64,
    delivered: AtomicU64,
    buffered: AtomicU64,
    dropped_replies: AtomicU64,
    rejected: AtomicU64,
    replayed: AtomicU64,
    /// The plane's admission controller, installed once when the
    /// front-end binds to a plane that has one — the hook behind
    /// [`TransportStats::latency`].
    admission: std::sync::OnceLock<Arc<AdmissionState>>,
}

impl TransportStats {
    /// Wires accepted into the ingress plane.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::SeqCst)
    }

    /// Replies delivered onto a connected client port.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::SeqCst)
    }

    /// Replies buffered for collection (clients without a port).
    pub fn buffered(&self) -> u64 {
        self.buffered.load(Ordering::SeqCst)
    }

    /// Replies that could not be routed to any connected port and were
    /// dropped (client disconnected). A drop is not an error — the
    /// affected client simply retries — but it must be observable;
    /// tests assert on this instead of relying on the absence of
    /// panics.
    pub fn dropped_replies(&self) -> u64 {
        self.dropped_replies.load(Ordering::SeqCst)
    }

    /// Submissions bounced by admission control with a typed
    /// [`RetryAfter`] (counted by [`FrontendPort::try_send`]; the
    /// blocking [`FrontendPort::send`] counts each bounce it absorbs).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::SeqCst)
    }

    /// Retries answered from the host reply cache instead of
    /// re-executed ([`AdmitOutcome::ReplayedReply`]).
    pub fn replayed(&self) -> u64 {
        self.replayed.load(Ordering::SeqCst)
    }

    /// Per-tenant × shard p50/p99/p999 latency and admission health,
    /// when the bound plane has an admission controller (see
    /// [`AdmissionState::health_snapshot`]).
    pub fn latency(&self) -> Option<HealthSnapshot> {
        self.admission.get().map(|a| a.health_snapshot())
    }
}

/// Outcome of one [`TransportPlane::drive`] attempt on a lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveStatus {
    /// No work on this lane.
    Idle,
    /// Another driver (or a control-plane operation) currently owns
    /// the lane; it will make the progress.
    Busy,
    /// The lane holds less than one batch and its oldest wire has not
    /// lingered long enough — worth revisiting in roughly this long
    /// (batch forming; see [`BATCH_LINGER`]).
    Waiting(Duration),
    /// Work was done: wires fed, a batch executed, replies released,
    /// or tickets written off.
    Progress,
}

/// How long a [`DriveMode::Continuous`] driver lets a sub-batch-size
/// lane fill before executing it anyway (override per front-end with
/// [`Frontend::set_linger`]). Free-running drivers would otherwise
/// execute one-wire batches the moment each producer's wire lands,
/// squandering the seal-and-store amortization; a fraction of a
/// typical store round-trip recovers full batches at a latency cost
/// one batch cycle amortizes away.
pub const BATCH_LINGER: Duration = Duration::from_micros(600);

/// The thread-safe `&self` surface of a server's ingress, execution,
/// and reply planes — what a concurrent [`Frontend`] drives.
///
/// Implemented by [`crate::shard::ShardedServer`]'s shared core (one
/// lane per shard; a one-shard deployment is the solo case). All
/// methods take `&self`: any number of producer threads may `submit`
/// while any number of driver threads `drive` lanes; each lane is
/// stepped by at most one driver at a time.
pub trait TransportPlane: Send + Sync {
    /// Number of independently drivable lanes (server shards).
    fn lanes(&self) -> u32;

    /// Routes and enqueues one encrypted INVOKE wire (multi-producer
    /// safe). Blocks for back-pressure when the target lane's ingress
    /// is full and drivers are attached; with no drivers attached the
    /// submitting thread relieves the lane inline instead.
    fn submit(&self, invoke_wire: Vec<u8>);

    /// Enqueues a wire to an *explicit* lane, ignoring the routing
    /// envelope (the host-power misdelivery hook).
    ///
    /// # Panics
    ///
    /// Panics when `lane` is out of range.
    fn submit_to_lane(&self, lane: u32, invoke_wire: Vec<u8>);

    /// One drive of `lane`: feed its ingress into the server, execute
    /// one batch, book the replies (or write the lane's in-flight
    /// tickets off on a crash-stop). A lane another driver currently
    /// owns reports [`DriveStatus::Busy`] instead of waiting. With
    /// `gate = Some(linger)`, a lane holding less than one batch is
    /// left to fill until its oldest wire has waited `linger`
    /// ([`DriveStatus::Waiting`]).
    fn drive(&self, lane: u32, gate: Option<Duration>) -> DriveStatus;

    /// Wires accepted but not yet executed (ingress + lane queues).
    fn queued(&self) -> usize;

    /// Tickets issued but not yet settled (reply released or written
    /// off).
    fn unsettled(&self) -> u64;

    /// Blocks until every issued ticket has settled.
    fn wait_quiescent(&self);

    /// Drains the released replies, in release (global ticket) order —
    /// per-client FIFO.
    fn take_ready(&self) -> Replies;

    /// Takes the first lane failure recorded since the last call.
    fn take_error(&self) -> Option<LcmError>;

    /// Wakes driver threads parked in [`TransportPlane::wait_work`].
    fn notify_work(&self);

    /// Parks the caller until the work epoch moves past `last_epoch`,
    /// at most `timeout`; returns the current epoch either way.
    fn wait_work(&self, last_epoch: u64, timeout: Duration) -> u64;

    /// Registers `n` driver threads as willing to drain the ingress
    /// (switches a full ingress from inline relief to submitter
    /// back-pressure).
    fn attach_drivers(&self, n: usize);

    /// Deregisters `n` driver threads.
    fn detach_drivers(&self, n: usize);

    /// Drains every lane's ingress without executing it, writing the
    /// drained tickets off. Called by a shutting-down front-end after
    /// detaching its drivers: a producer blocked in back-pressure
    /// `push` would otherwise wait forever on a queue nobody will
    /// drain again.
    fn shed_ingress(&self);

    /// Admission-controlled submission: like
    /// [`TransportPlane::submit`], but consults the plane's
    /// multi-tenant admission controller first. A rejected wire comes
    /// back inside the typed [`RetryAfter`] (no clone, no silent
    /// drop); an accepted one reports whether it was enqueued,
    /// answered from the host reply cache, or coalesced with an
    /// in-flight duplicate. Planes without admission control accept
    /// everything (this default).
    fn try_submit(&self, invoke_wire: Vec<u8>) -> std::result::Result<AdmitOutcome, RetryAfter> {
        self.submit(invoke_wire);
        Ok(AdmitOutcome::Enqueued)
    }

    /// The plane's admission controller, when it has one. The default
    /// is `None`: admission is an opt-in layer of the sharded core,
    /// not a requirement of the plane contract.
    fn admission(&self) -> Option<Arc<AdmissionState>> {
        None
    }
}

// ---------------------------------------------------------------------------
// The concurrent front-end.
// ---------------------------------------------------------------------------

/// When the [`Frontend`]'s driver threads are allowed to pump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveMode {
    /// Drivers pump whenever work arrives — the deployment posture:
    /// replies stream back to ports while producers keep submitting.
    Continuous,
    /// Drivers pump only inside [`Frontend::process_all`] /
    /// [`Frontend::pump`]. Submissions queue up unprocessed until the
    /// caller asks, which keeps batch-count arithmetic and
    /// crash-scheduling deterministic — the mode the `all_modes!`
    /// scenario suites run through (the driving is still concurrent
    /// across lanes *inside* the pump).
    OnDemand,
}

/// One client's reply queue inside the demux plane.
type PortRx = Arc<BoundedQueue<Vec<u8>>>;

/// Capacity of each client port's reply queue. Deep enough that a
/// draining client never stalls a driver; a client that stops draining
/// eventually exerts back-pressure on the demux instead of growing
/// host memory unboundedly.
const PORT_CAPACITY: usize = 4096;

struct Demux {
    ports: BTreeMap<ClientId, PortRx>,
    /// Replies for clients without a connected port, awaiting
    /// collection by [`Frontend::process_all`].
    buffer: VecDeque<(ClientId, Vec<u8>)>,
}

struct FrontendShared {
    shutdown: AtomicBool,
    /// Whether drivers may pump right now (always `true` in
    /// [`DriveMode::Continuous`]).
    window: AtomicBool,
    /// Drivers currently inside a sweep window (registered *before*
    /// they read `window`): after closing the window, an OnDemand pump
    /// waits for this to reach zero, so a driver acting on a stale
    /// open-window read can never execute work submitted after the
    /// pump returned.
    sweepers: AtomicUsize,
    /// Batch-forming linger in nanoseconds (see [`BATCH_LINGER`]).
    linger_nanos: AtomicU64,
    demux: Mutex<Demux>,
    stats: Arc<TransportStats>,
}

impl FrontendShared {
    fn lock_demux(&self) -> MutexGuard<'_, Demux> {
        self.demux.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Moves every released reply out of the plane and onto its
    /// client's port (or the collection buffer). The demux lock makes
    /// take-and-route atomic, so two drivers can never reorder one
    /// client's replies between taking and routing them.
    fn dispatch(&self, plane: &dyn TransportPlane) {
        let mut demux = self.lock_demux();
        for (client, wire) in plane.take_ready() {
            match demux.ports.get(&client) {
                Some(rx) => {
                    // Count BEFORE the push: the receiving client may
                    // consume the reply and a joiner may read the
                    // stats before this thread runs another
                    // instruction.
                    self.stats.delivered.fetch_add(1, Ordering::SeqCst);
                    if rx.push(wire).is_err() {
                        // The port was disconnected (queue closed)
                        // after lookup: the reply has nowhere to go.
                        self.stats.delivered.fetch_sub(1, Ordering::SeqCst);
                        self.stats.dropped_replies.fetch_add(1, Ordering::SeqCst);
                    }
                }
                None => {
                    demux.buffer.push_back((client, wire));
                    self.stats.buffered.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
    }
}

/// A client's handle on the concurrent front-end: `&self` submission
/// into the ingress plane and a private reply queue fed by the demux
/// plane. Clone it freely; send it to the client's own thread.
#[derive(Clone)]
pub struct FrontendPort {
    id: ClientId,
    plane: Arc<dyn TransportPlane>,
    rx: PortRx,
    stats: Arc<TransportStats>,
}

impl std::fmt::Debug for FrontendPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontendPort")
            .field("id", &self.id)
            .field("pending_replies", &self.rx.len())
            .finish()
    }
}

impl FrontendPort {
    /// The client this port belongs to.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Submits an encrypted INVOKE toward the deployment
    /// (multi-producer safe; blocks only for ingress back-pressure).
    ///
    /// With admission control configured on the plane, a rejected wire
    /// is retried after the controller's suggested back-off until it
    /// is accepted — the blocking convenience over
    /// [`FrontendPort::try_send`]. Each absorbed bounce still counts
    /// in [`TransportStats::rejected`].
    pub fn send(&self, wire: Vec<u8>) {
        /// Cap on one blocking-send back-off nap, so a shutdown or a
        /// policy change never strands the sender in a long sleep.
        const MAX_BACKOFF: Duration = Duration::from_millis(5);
        let mut wire = wire;
        loop {
            match self.try_send(wire) {
                Ok(_) => return,
                Err(rejection) => {
                    wire = rejection.wire;
                    std::thread::sleep(rejection.retry_after.min(MAX_BACKOFF));
                }
            }
        }
    }

    /// Admission-aware submission: consults the plane's multi-tenant
    /// admission controller and returns without blocking on policy.
    /// `Ok` reports what happened to the wire (enqueued, replayed from
    /// the host reply cache, or coalesced with an in-flight
    /// duplicate); `Err` carries the wire back together with the
    /// typed back-pressure ([`RetryAfter::retry_after`] is the
    /// suggested nap). On planes without admission control this is
    /// exactly [`FrontendPort::send`].
    pub fn try_send(&self, wire: Vec<u8>) -> std::result::Result<AdmitOutcome, RetryAfter> {
        match self.plane.try_submit(wire) {
            Ok(outcome) => {
                // `submitted` counts wires the ingress plane accepted,
                // matching `delivered` at quiescence — replayed and
                // coalesced retries produce (at most) cached replies,
                // not fresh tickets, so they are tracked separately.
                match outcome {
                    AdmitOutcome::Enqueued => {
                        self.stats.submitted.fetch_add(1, Ordering::SeqCst);
                    }
                    AdmitOutcome::ReplayedReply => {
                        self.stats.replayed.fetch_add(1, Ordering::SeqCst);
                    }
                    AdmitOutcome::DuplicateInFlight => {}
                }
                Ok(outcome)
            }
            Err(rejection) => {
                self.stats.rejected.fetch_add(1, Ordering::SeqCst);
                Err(rejection)
            }
        }
    }

    /// Receives the next reply, if one has been delivered.
    pub fn try_recv(&self) -> Option<Vec<u8>> {
        self.rx.try_pop()
    }

    /// Blocks up to `timeout` for the next reply. `None` on timeout —
    /// the client's cue to retry (crash-tolerance extension §4.6.1).
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Vec<u8>> {
        self.rx.pop_timeout(timeout)
    }
}

/// The concurrent transport front-end: a multi-producer ingress plane,
/// per-shard driver loops on a [`WorkerPool`], and a reply demux plane
/// — the multi-threaded replacement for driving a server with one
/// `submit`/`process_all` thread.
///
/// ```text
///  producer threads ──┐                ┌─ driver 0 ─▶ lane 0 ─┐
///  (FrontendPort::send├─▶ ingress plane┼─ driver 1 ─▶ lane 1 ─┼─▶ reply book ─▶ demux ─▶ ports
///   / Frontend::submit┘   (per-shard   └─ driver …  ▶ lane …  ┘   (global        (per-client
///        , &self)          BoundedQueues)                          ticket order)   FIFO queues)
/// ```
///
/// Ordering guarantee: replies to any one client leave the demux in
/// that client's submission order (global-ticket release order from
/// the shared [`TransportPlane`]); tickets of a crash-stopped shard
/// are written off so they can never dam up the client's later
/// replies — the client retries those operations and the retries get
/// fresh tickets.
///
/// The front-end itself implements [`BatchServer`], so admin
/// bootstrap, scenario suites, and the `Hub` run on top unchanged:
/// control-plane calls forward to the wrapped server (serialized
/// against the drivers by the per-lane locks), `submit` feeds the
/// ingress plane, and `process_all` pumps to quiescence and returns
/// the replies of clients without a connected port.
pub struct Frontend<S: BatchServer + 'static> {
    server: S,
    plane: Arc<dyn TransportPlane>,
    shared: Arc<FrontendShared>,
    mode: DriveMode,
    threads: usize,
    /// Driver threads; the pool's `Drop` joins them after
    /// `Frontend::drop` signals shutdown.
    drivers: Option<WorkerPool>,
}

impl<S: BatchServer + 'static> std::fmt::Debug for Frontend<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frontend")
            .field("lanes", &self.plane.lanes())
            .field("threads", &self.threads)
            .field("mode", &self.mode)
            .field("queued", &self.plane.queued())
            .finish()
    }
}

fn driver_loop(plane: Arc<dyn TransportPlane>, shared: Arc<FrontendShared>, mode: DriveMode) {
    // Continuous drivers form batches (linger gate); OnDemand pumps
    // run with everything already queued, so gating would only slow
    // the deterministic suites down.
    let gate = || match mode {
        DriveMode::Continuous => Some(Duration::from_nanos(
            shared.linger_nanos.load(Ordering::SeqCst),
        )),
        DriveMode::OnDemand => None,
    };
    let mut epoch = 0u64;
    loop {
        epoch = plane.wait_work(epoch, Duration::from_millis(25));
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Enter the sweep window: register BEFORE reading the window
        // flag, so a pump that closes the window can wait for every
        // driver whose (possibly stale) open-window read lets it keep
        // sweeping — without this handshake a wire submitted right
        // after `pump` returns could be executed outside any pump,
        // breaking `DriveMode::OnDemand`'s contract.
        shared.sweepers.fetch_add(1, Ordering::SeqCst);
        if !shared.window.load(Ordering::SeqCst) {
            shared.sweepers.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        // Pump every lane until a full sweep makes no progress (or the
        // window closes); lanes another driver currently owns are
        // skipped, not waited on; lanes still forming a batch are
        // revisited when ripe.
        loop {
            let mut progress = false;
            let mut forming: Option<Duration> = None;
            for lane in 0..plane.lanes() {
                if !shared.window.load(Ordering::SeqCst) {
                    break;
                }
                match plane.drive(lane, gate()) {
                    DriveStatus::Progress => {
                        progress = true;
                        // Demux NOW, before touching the next lane: a
                        // drive can block a store round-trip, and
                        // replies sitting in the book that long would
                        // stall their producers' closed loops (and
                        // fragment the next batch).
                        shared.dispatch(&*plane);
                    }
                    DriveStatus::Waiting(left) => {
                        forming = Some(forming.map_or(left, |f| f.min(left)));
                    }
                    DriveStatus::Idle | DriveStatus::Busy => {}
                }
            }
            shared.dispatch(&*plane);
            if shared.shutdown.load(Ordering::SeqCst) || !shared.window.load(Ordering::SeqCst) {
                break;
            }
            if progress {
                continue;
            }
            match forming {
                // Nap until the nearest forming batch ripens (more
                // wires arriving will ripen it early — the next sweep
                // sees a full batch either way).
                Some(left) => std::thread::sleep(left.min(Duration::from_millis(5))),
                None => break,
            }
        }
        shared.sweepers.fetch_sub(1, Ordering::SeqCst);
    }
}

impl<S: BatchServer + 'static> Frontend<S> {
    /// Lifts `server` into a concurrent front-end with `threads`
    /// driver threads (min 1; more drivers than lanes buys nothing).
    ///
    /// # Errors
    ///
    /// The server must expose a [`TransportPlane`]
    /// ([`BatchServer::transport_plane`]); single-enclave servers do
    /// not — wrap those with [`Frontend::solo`].
    pub fn new(server: S, threads: usize, mode: DriveMode) -> Result<Self> {
        let plane = server.transport_plane().ok_or_else(|| {
            LcmError::Tee(
                "server has no transport plane; wrap it in a one-shard \
                 ShardedServer (Frontend::solo) to drive it concurrently"
                    .into(),
            )
        })?;
        let threads = threads.max(1);
        let shared = Arc::new(FrontendShared {
            shutdown: AtomicBool::new(false),
            window: AtomicBool::new(matches!(mode, DriveMode::Continuous)),
            sweepers: AtomicUsize::new(0),
            linger_nanos: AtomicU64::new(BATCH_LINGER.as_nanos() as u64),
            demux: Mutex::new(Demux {
                ports: BTreeMap::new(),
                buffer: VecDeque::new(),
            }),
            stats: Arc::new(TransportStats::default()),
        });
        if let Some(admission) = plane.admission() {
            // Bind the plane's admission controller into the shared
            // stats so `TransportStats::latency` works from any clone.
            let _ = shared.stats.admission.set(admission);
        }
        if matches!(mode, DriveMode::Continuous) {
            plane.attach_drivers(threads);
        }
        let pool = WorkerPool::new("lcm-frontend", threads, threads);
        for _ in 0..threads {
            let plane = plane.clone();
            let shared = shared.clone();
            pool.execute(move || driver_loop(plane, shared, mode));
        }
        Ok(Frontend {
            server,
            plane,
            shared,
            mode,
            threads,
            drivers: Some(pool),
        })
    }

    /// Direct access to the wrapped server (boot, crash, shard hooks,
    /// stats). Control-plane calls made through it serialize against
    /// the drivers on the per-lane locks.
    pub fn server_mut(&mut self) -> &mut S {
        &mut self.server
    }

    /// Shared access to the wrapped server's `&self` surface.
    pub fn server(&self) -> &S {
        &self.server
    }

    /// The shared flow/drop counters (atomic, `&self`).
    pub fn stats(&self) -> Arc<TransportStats> {
        self.shared.stats.clone()
    }

    /// Wires accepted but not yet settled (reply released or written
    /// off) — the front-end's in-flight depth; `0` means quiescent.
    pub fn in_flight(&self) -> u64 {
        self.plane.unsettled()
    }

    /// Overrides the batch-forming linger (default [`BATCH_LINGER`]).
    /// `Duration::ZERO` disables batch forming entirely: drivers
    /// execute whatever is queued the moment they see it.
    pub fn set_linger(&self, linger: Duration) {
        self.shared
            .linger_nanos
            .store(linger.as_nanos() as u64, Ordering::SeqCst);
    }

    /// Installs (or replaces) the multi-tenant admission policy on the
    /// underlying plane. No-op `false` when the plane has no admission
    /// controller.
    pub fn set_admission(&self, config: crate::admission::AdmissionConfig) -> bool {
        match self.plane.admission() {
            Some(admission) => {
                admission.configure(config);
                true
            }
            None => false,
        }
    }

    /// Point-in-time admission/latency health of the underlying plane
    /// (`None` when it has no admission controller): per-tenant admit
    /// and reject counters plus p50/p99/p999 end-to-end latency per
    /// tenant × shard.
    pub fn health_snapshot(&self) -> Option<HealthSnapshot> {
        self.plane.admission().map(|a| a.health_snapshot())
    }

    /// Connects a client, returning its thread-safe port. Replies for
    /// this client are henceforth routed to the port instead of the
    /// collection buffer. Reconnecting replaces (and closes) the
    /// previous port.
    pub fn connect(&self, id: ClientId) -> FrontendPort {
        let rx: PortRx = Arc::new(BoundedQueue::new(PORT_CAPACITY));
        let mut demux = self.shared.lock_demux();
        if let Some(old) = demux.ports.insert(id, rx.clone()) {
            old.close();
        }
        FrontendPort {
            id,
            plane: self.plane.clone(),
            rx,
            stats: self.shared.stats.clone(),
        }
    }

    /// Disconnects a client's port; replies for it are henceforth
    /// buffered (or, if the port queue was closed mid-dispatch,
    /// counted in [`TransportStats::dropped_replies`]).
    pub fn disconnect(&self, id: ClientId) -> bool {
        let mut demux = self.shared.lock_demux();
        match demux.ports.remove(&id) {
            Some(rx) => {
                rx.close();
                true
            }
            None => false,
        }
    }

    /// Submits one wire into the ingress plane (`&self`,
    /// multi-producer safe) without needing a port.
    pub fn submit_shared(&self, invoke_wire: Vec<u8>) {
        self.shared.stats.submitted.fetch_add(1, Ordering::SeqCst);
        self.plane.submit(invoke_wire);
    }

    /// Pumps the deployment to quiescence: wakes the drivers, waits
    /// until every accepted wire has settled (reply released or
    /// written off), and returns the buffered replies of clients
    /// without a connected port.
    ///
    /// # Errors
    ///
    /// Surfaces the first lane failure recorded since the last pump;
    /// buffered replies survive the error for the next call.
    pub fn pump(&mut self) -> Result<Replies> {
        if matches!(self.mode, DriveMode::OnDemand) {
            self.shared.window.store(true, Ordering::SeqCst);
        }
        self.plane.notify_work();
        self.plane.wait_quiescent();
        if matches!(self.mode, DriveMode::OnDemand) {
            self.shared.window.store(false, Ordering::SeqCst);
            // Wait out every driver still inside a sweep window: one
            // may hold a stale open-window read, and returning before
            // it re-checks would let it execute wires submitted after
            // this pump. Sweeps exit quickly post-quiescence.
            while self.shared.sweepers.load(Ordering::SeqCst) > 0 {
                std::thread::yield_now();
            }
        }
        // The drive that settled the last ticket dispatched after it,
        // but dispatch defensively: a driver may have been parked
        // between its final drive and its dispatch when we observed
        // quiescence.
        self.shared.dispatch(&*self.plane);
        if let Some(e) = self.plane.take_error() {
            return Err(e);
        }
        let mut demux = self.shared.lock_demux();
        Ok(demux.buffer.drain(..).collect())
    }
}

impl<S: BatchServer + 'static> Frontend<crate::shard::ShardedServer<S>> {
    /// Lifts a single-enclave server into the concurrent front-end by
    /// wrapping it in a one-shard [`crate::shard::ShardedServer`] (the
    /// solo lane gets the shared ingress/reply core for free).
    ///
    /// **Note:** the `lcm` facade crate's `DeploymentBuilder` (with
    /// `.shards(1)`) assembles this plus the admin bootstrap in one
    /// call; `solo` remains for callers lifting a pre-built server.
    pub fn solo(server: S, threads: usize, mode: DriveMode) -> Self {
        Self::new(
            crate::shard::ShardedServer::new(vec![server]),
            threads,
            mode,
        )
        .expect("a sharded core always provides a transport plane")
    }
}

impl<S: BatchServer + 'static> Drop for Frontend<S> {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.plane.notify_work();
        if matches!(self.mode, DriveMode::Continuous) {
            self.plane.detach_drivers(self.threads);
        }
        // Free any producer blocked in back-pressure `push`: with the
        // drivers gone, nobody would ever drain the full queue it is
        // waiting on (later submits fall back to inline relief, since
        // no drivers are attached anymore).
        self.plane.shed_ingress();
        // Join the drivers before the wrapped server is torn down.
        drop(self.drivers.take());
    }
}

impl<S: BatchServer + 'static> BatchServer for Frontend<S> {
    fn boot(&mut self) -> Result<bool> {
        self.server.boot()
    }
    fn crash(&mut self) {
        self.server.crash();
        // Replies already demuxed into the collection buffer died with
        // the host process, exactly like the sharded out-buffer.
        self.shared.lock_demux().buffer.clear();
    }
    fn is_running(&self) -> bool {
        self.server.is_running()
    }
    fn provision(&mut self, sealed_payload: Vec<u8>) -> Result<()> {
        self.server.provision(sealed_payload)
    }
    fn attest(
        &mut self,
        user_data: lcm_crypto::sha256::Digest,
    ) -> Result<lcm_tee::attestation::Quote> {
        self.server.attest(user_data)
    }
    fn shard_count(&self) -> u32 {
        self.server.shard_count()
    }
    fn attest_shard(
        &mut self,
        shard: u32,
        user_data: lcm_crypto::sha256::Digest,
    ) -> Result<lcm_tee::attestation::Quote> {
        self.server.attest_shard(shard, user_data)
    }
    fn provision_shard(&mut self, shard: u32, sealed_payload: Vec<u8>) -> Result<()> {
        self.server.provision_shard(shard, sealed_payload)
    }
    fn submit(&mut self, invoke_wire: Vec<u8>) {
        self.submit_shared(invoke_wire);
    }
    fn submit_to_shard(&mut self, shard: u32, invoke_wire: Vec<u8>) {
        self.shared.stats.submitted.fetch_add(1, Ordering::SeqCst);
        self.plane.submit_to_lane(shard, invoke_wire);
    }
    fn queued(&self) -> usize {
        self.plane.queued()
    }
    fn batch_limit(&self) -> usize {
        self.server.batch_limit()
    }
    /// One pump to quiescence (the front-end has no single-batch
    /// granularity: its drivers pump lanes independently).
    fn step(&mut self) -> Result<Replies> {
        self.pump()
    }
    fn process_all(&mut self) -> Result<Replies> {
        self.pump()
    }
    fn admin(&mut self, admin_wire: Vec<u8>) -> Result<Vec<u8>> {
        self.server.admin(admin_wire)
    }
    fn export_migration(&mut self) -> Result<Vec<u8>> {
        self.server.export_migration()
    }
    fn import_migration(&mut self, ticket: Vec<u8>) -> Result<()> {
        self.server.import_migration(ticket)
    }
    /// Live slice migration on the wrapped plane: the front-end shares
    /// the deployment's slice table through the ingress router, so the
    /// move is visible to wires routed by either path the moment the
    /// new epoch installs.
    fn migrate_slice(&mut self, slice: u32, to: u32) -> Result<()> {
        self.server.migrate_slice(slice, to)
    }
    fn routing_epoch(&self) -> u64 {
        self.server.routing_epoch()
    }
    fn take_slice_heat(&self) -> Vec<u64> {
        self.server.take_slice_heat()
    }
    fn batches_processed(&self) -> u64 {
        self.server.batches_processed()
    }
    fn ops_processed(&self) -> u64 {
        self.server.ops_processed()
    }
    fn flush_persists(&mut self) -> Result<()> {
        self.server.flush_persists()
    }
    fn replica_count(&self) -> u32 {
        self.server.replica_count()
    }
    fn apply_replica(&mut self, state_blob: Vec<u8>) -> Result<lcm_crypto::sha256::Digest> {
        self.server.apply_replica(state_blob)
    }
    /// Serves a verified read against the wrapped plane. Reads bypass
    /// the ingress queue entirely — they never mutate state, so they
    /// need no ticket, no admission slot, and no driver; this is what
    /// lets them scale out across follower replicas while the write
    /// lanes keep executing.
    fn serve_read(&mut self, read_wire: Vec<u8>) -> Result<Vec<u8>> {
        self.server.serve_read(read_wire)
    }
    fn read_port(&self) -> Option<std::sync::Arc<dyn crate::server::ReadPort>> {
        self.server.read_port()
    }
    fn group_leader(&self, shard: u32) -> u32 {
        self.server.group_leader(shard)
    }
    fn attest_member(
        &mut self,
        shard: u32,
        replica: u32,
        user_data: lcm_crypto::sha256::Digest,
    ) -> Result<lcm_tee::attestation::Quote> {
        self.server.attest_member(shard, replica, user_data)
    }
    fn provision_member(
        &mut self,
        shard: u32,
        replica: u32,
        sealed_payload: Vec<u8>,
    ) -> Result<()> {
        self.server.provision_member(shard, replica, sealed_payload)
    }
    fn kill_member(&mut self, shard: u32, replica: u32, power_failure: bool) -> Result<()> {
        self.server.kill_member(shard, replica, power_failure)
    }
    fn reboot_member(&mut self, shard: u32, replica: u32) -> Result<bool> {
        self.server.reboot_member(shard, replica)
    }
    fn import_migration_as(&mut self, ticket: Vec<u8>, replica: u32, replicas: u32) -> Result<()> {
        self.server.import_migration_as(ticket, replica, replicas)
    }
}

// ---------------------------------------------------------------------------
// The single-threaded adversarial hub.
// ---------------------------------------------------------------------------

/// A client's connection handle.
#[derive(Debug, Clone)]
pub struct ClientPort {
    end: DuplexEnd,
}

impl ClientPort {
    /// Sends an encrypted INVOKE toward the server.
    pub fn send(&self, wire: Vec<u8>) {
        self.end.send(wire);
    }

    /// Receives the next deliverable reply, if any.
    pub fn try_recv(&self) -> Option<Vec<u8>> {
        self.end.try_recv()
    }
}

/// Adversary handles for one client's connection, plus the shared
/// transport statistics.
#[derive(Debug, Clone)]
pub struct PortControl {
    /// Controls the client→server direction.
    pub to_server: LinkController,
    /// Controls the server→client direction.
    pub to_client: LinkController,
    /// Shared hub counters (see [`PortControl::stats`]).
    stats: Arc<TransportStats>,
}

impl PortControl {
    /// Replies the hub could not route to any connected port since it
    /// was created (hub-wide counter, shared by every port's control).
    pub fn hub_dropped_replies(&self) -> u64 {
        self.stats.dropped_replies()
    }

    /// The hub's shared transport counters — atomic, readable from
    /// `&self` while the pump keeps running.
    pub fn stats(&self) -> Arc<TransportStats> {
        self.stats.clone()
    }
}

struct Port {
    server_end: DuplexEnd,
    control: PortControl,
}

/// An in-process network connecting a [`BatchServer`] to its clients
/// over adversary-controllable links, pumped by one caller thread.
///
/// For the multi-threaded deployment front-end, see [`Frontend`]; the
/// hub remains the harness for link-level attacks (hold, tamper,
/// replay) because a single pump thread makes their schedules exact.
///
/// # Example
///
/// ```
/// use lcm_core::functionality::AppendLog;
/// use lcm_core::server::LcmServer;
/// use lcm_core::transport::Hub;
/// use lcm_core::types::ClientId;
/// use lcm_storage::MemoryStorage;
/// use lcm_tee::world::TeeWorld;
/// use std::sync::Arc;
///
/// let world = TeeWorld::new_deterministic(1);
/// let server = LcmServer::<AppendLog>::new(&world.platform(1), Arc::new(MemoryStorage::new()), 16);
/// let mut hub = Hub::new(server);
/// let port = hub.connect(ClientId(1));
/// # let _ = port;
/// ```
pub struct Hub<S: BatchServer> {
    server: S,
    ports: BTreeMap<ClientId, Port>,
    stats: Arc<TransportStats>,
}

impl<S: BatchServer + std::fmt::Debug> std::fmt::Debug for Hub<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hub")
            .field("server", &self.server)
            .field("ports", &self.ports.len())
            .field("dropped_replies", &self.stats.dropped_replies())
            .finish()
    }
}

impl<S: BatchServer> Hub<S> {
    /// Wraps a server into a hub.
    pub fn new(server: S) -> Self {
        Hub {
            server,
            ports: BTreeMap::new(),
            stats: Arc::new(TransportStats::default()),
        }
    }

    /// Direct access to the server (boot, provision, crash, …).
    pub fn server(&mut self) -> &mut S {
        &mut self.server
    }

    /// Connects a client, returning its port. Links start in honest
    /// (auto-deliver) mode; grab [`Hub::control`] to turn adversarial.
    pub fn connect(&mut self, id: ClientId) -> ClientPort {
        let duplex = Duplex::honest();
        let Duplex {
            client,
            server,
            to_server,
            to_client,
        } = duplex;
        self.ports.insert(
            id,
            Port {
                server_end: server,
                control: PortControl {
                    to_server,
                    to_client,
                    stats: self.stats.clone(),
                },
            },
        );
        ClientPort { end: client }
    }

    /// Disconnects a client's port; replies for it are henceforth
    /// counted in [`Hub::dropped_replies`].
    pub fn disconnect(&mut self, id: ClientId) -> bool {
        self.ports.remove(&id).is_some()
    }

    /// The adversary's handles on one client's connection.
    pub fn control(&self, id: ClientId) -> Option<PortControl> {
        self.ports.get(&id).map(|p| p.control.clone())
    }

    /// Replies the hub could not route to any connected port.
    pub fn dropped_replies(&self) -> u64 {
        self.stats.dropped_replies()
    }

    /// The hub's shared transport counters — atomic, readable from
    /// `&self` (clone the `Arc` into an observer thread to watch drops
    /// without stopping the pump).
    pub fn stats(&self) -> Arc<TransportStats> {
        self.stats.clone()
    }

    /// Moves all deliverable client messages into the server, processes
    /// them, and routes the replies back onto the clients' links.
    /// Replies for unknown ports are dropped and counted in
    /// [`Hub::dropped_replies`].
    ///
    /// Returns the number of operations processed.
    ///
    /// # Errors
    ///
    /// Propagates violations detected by the trusted context; an honest
    /// server crash-stops here, a malicious one might swallow it — the
    /// clients find out either way.
    pub fn pump(&mut self) -> Result<usize> {
        // Ingress order: round-robin over ports for fairness, FIFO per
        // port (the correct server forwards FIFO, §2.1).
        loop {
            let mut any = false;
            for port in self.ports.values() {
                if let Some(wire) = port.server_end.try_recv() {
                    self.server.submit(wire);
                    self.stats.submitted.fetch_add(1, Ordering::SeqCst);
                    any = true;
                }
            }
            if !any {
                break;
            }
        }
        let replies = self.server.process_all()?;
        let n = replies.len();
        for (id, wire) in replies {
            match self.ports.get(&id) {
                Some(port) => {
                    port.server_end.send(wire);
                    self.stats.delivered.fetch_add(1, Ordering::SeqCst);
                }
                None => {
                    self.stats.dropped_replies.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::AdminHandle;
    use crate::client::LcmClient;
    use crate::functionality::{AppendLog, Counter};
    use crate::server::LcmServer;
    use crate::shard::{build_sharded, route_hash, shard_index};
    use crate::stability::Quorum;
    use lcm_storage::MemoryStorage;
    use lcm_tee::world::TeeWorld;
    use std::sync::Arc;

    fn hub_with_clients(n: u32) -> (Hub<LcmServer<AppendLog>>, Vec<(LcmClient, ClientPort)>) {
        let world = TeeWorld::new_deterministic(60);
        let platform = world.platform_deterministic(1);
        let mut server = LcmServer::<AppendLog>::new(&platform, Arc::new(MemoryStorage::new()), 16);
        server.boot().unwrap();
        let ids: Vec<ClientId> = (1..=n).map(ClientId).collect();
        let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, 3);
        admin.bootstrap(&mut server).unwrap();
        let mut hub = Hub::new(server);
        let clients = ids
            .iter()
            .map(|&id| {
                let port = hub.connect(id);
                (LcmClient::new(id, admin.client_key()), port)
            })
            .collect();
        (hub, clients)
    }

    #[test]
    fn ops_flow_through_the_hub() {
        let (mut hub, mut clients) = hub_with_clients(2);
        for (client, port) in clients.iter_mut() {
            port.send(client.invoke(b"op").unwrap());
        }
        assert_eq!(hub.pump().unwrap(), 2);
        for (client, port) in clients.iter_mut() {
            let reply = port.try_recv().expect("reply routed");
            client.handle_reply(&reply).unwrap();
        }
        assert_eq!(hub.dropped_replies(), 0);
        let stats = hub.stats();
        assert_eq!(stats.submitted(), 2);
        assert_eq!(stats.delivered(), 2);
    }

    #[test]
    fn held_messages_do_not_reach_the_server() {
        let (mut hub, mut clients) = hub_with_clients(1);
        let (client, port) = &mut clients[0];
        let ctl = hub.control(client.id()).unwrap();
        ctl.to_server.set_auto_deliver(false);
        port.send(client.invoke(b"op").unwrap());
        assert_eq!(hub.pump().unwrap(), 0);
        assert_eq!(ctl.to_server.held(), 1);
        // Release it.
        ctl.to_server.deliver_all();
        assert_eq!(hub.pump().unwrap(), 1);
        let reply = port.try_recv().unwrap();
        client.handle_reply(&reply).unwrap();
    }

    #[test]
    fn tampering_on_the_link_is_detected() {
        let (mut hub, mut clients) = hub_with_clients(1);
        let (client, port) = &mut clients[0];
        let ctl = hub.control(client.id()).unwrap();
        ctl.to_server.set_auto_deliver(false);
        port.send(client.invoke(b"op").unwrap());
        ctl.to_server.tamper_next(|m| m[0] ^= 0xff);
        ctl.to_server.deliver_all();
        let err = hub.pump().unwrap_err();
        assert!(err.is_violation());
    }

    #[test]
    fn replay_on_the_link_is_detected() {
        let (mut hub, mut clients) = hub_with_clients(1);
        let (client, port) = &mut clients[0];
        let ctl = hub.control(client.id()).unwrap();
        ctl.to_server.set_auto_deliver(false);
        port.send(client.invoke(b"op").unwrap());
        ctl.to_server.duplicate_next();
        ctl.to_server.deliver_all();
        let err = hub.pump().unwrap_err();
        assert!(err.is_violation());
    }

    #[test]
    fn unknown_port_reply_is_counted_not_panicked() {
        // Replies to clients without a connected port are dropped (the
        // honest hub cannot route them) — and the drop is observable.
        let (mut hub, mut clients) = hub_with_clients(2);
        let (client2, _port2) = &mut clients[1];
        let wire = client2.invoke(b"orphan").unwrap();
        assert!(hub.disconnect(client2.id()));
        // The request reaches the server out of band; the reply has no
        // port to return on.
        hub.server().submit(wire);
        assert_eq!(hub.pump().unwrap(), 1);
        assert_eq!(hub.dropped_replies(), 1);
        // The stat is visible through any port's adversary control too.
        let ctl = hub.control(clients[0].0.id()).unwrap();
        assert_eq!(ctl.hub_dropped_replies(), 1);
    }

    #[test]
    fn stats_are_readable_from_another_thread_mid_pump() {
        // The satellite regression: drop/flow statistics are atomic
        // and shared — an observer thread holding only the stats Arc
        // sees them move while the pump owner keeps the `&mut Hub`.
        let (mut hub, mut clients) = hub_with_clients(1);
        let stats = hub.stats();
        let observer = std::thread::spawn(move || {
            // Wait (bounded) until a delivery becomes visible.
            for _ in 0..10_000 {
                if stats.delivered() >= 1 {
                    return true;
                }
                std::thread::yield_now();
            }
            false
        });
        let (client, port) = &mut clients[0];
        port.send(client.invoke(b"op").unwrap());
        hub.pump().unwrap();
        assert!(observer.join().unwrap(), "observer saw the delivery");
    }

    // -- Frontend ----------------------------------------------------------

    fn frontend_counter(
        shards: u32,
        n_clients: u32,
        threads: usize,
        mode: DriveMode,
    ) -> (
        Frontend<crate::shard::ShardedServer<Box<dyn BatchServer>>>,
        Vec<LcmClient>,
    ) {
        let world = TeeWorld::new_deterministic(70 + u64::from(shards));
        let server =
            build_sharded::<Counter>(&world, 1, Arc::new(MemoryStorage::new()), 16, shards, false);
        let mut fe = Frontend::new(server, threads, mode).unwrap();
        assert!(fe.boot().unwrap());
        let ids: Vec<ClientId> = (1..=n_clients).map(ClientId).collect();
        let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, 7);
        admin.bootstrap(&mut fe).unwrap();
        let clients = ids
            .iter()
            .map(|&id| LcmClient::new_sharded(id, admin.client_key(), shards))
            .collect();
        (fe, clients)
    }

    #[test]
    fn frontend_requires_a_transport_plane() {
        let world = TeeWorld::new_deterministic(71);
        let platform = world.platform_deterministic(1);
        let solo = LcmServer::<AppendLog>::new(&platform, Arc::new(MemoryStorage::new()), 16);
        let err = Frontend::new(solo, 2, DriveMode::Continuous).unwrap_err();
        assert!(err.to_string().contains("transport plane"), "{err}");
    }

    #[test]
    fn solo_server_runs_behind_the_frontend() {
        let world = TeeWorld::new_deterministic(72);
        let platform = world.platform_deterministic(1);
        let solo = LcmServer::<AppendLog>::new(&platform, Arc::new(MemoryStorage::new()), 16);
        let mut fe = Frontend::solo(solo, 2, DriveMode::OnDemand);
        assert!(fe.boot().unwrap());
        let mut admin =
            AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 8);
        admin.bootstrap(&mut fe).unwrap();
        let mut client = LcmClient::new(ClientId(1), admin.client_key());
        fe.submit(client.invoke(b"hello").unwrap());
        let replies = fe.process_all().unwrap();
        assert_eq!(replies.len(), 1);
        assert_eq!(client.handle_reply(&replies[0].1).unwrap().seq.0, 1);
    }

    #[test]
    fn frontend_ports_deliver_replies_to_their_clients() {
        let (fe, mut clients) = frontend_counter(4, 3, 2, DriveMode::Continuous);
        let ports: Vec<FrontendPort> = clients.iter().map(|c| fe.connect(c.id())).collect();
        for (i, (client, port)) in clients.iter_mut().zip(&ports).enumerate() {
            let name = format!("ctr-{i}").into_bytes();
            port.send(
                client
                    .invoke_for::<Counter>(&Counter::inc_op(&name, 1 + i as u64))
                    .unwrap(),
            );
        }
        for (i, (client, port)) in clients.iter_mut().zip(&ports).enumerate() {
            let reply = port
                .recv_timeout(Duration::from_secs(10))
                .expect("reply delivered to this client's port");
            let done = client.handle_reply(&reply).unwrap();
            assert_eq!(Counter::decode_result(&done.result), Some(1 + i as u64));
        }
        let stats = fe.stats();
        assert_eq!(stats.submitted(), 3);
        assert_eq!(stats.delivered(), 3);
        assert_eq!(stats.dropped_replies(), 0);
    }

    #[test]
    fn ondemand_frontend_defers_processing_until_pumped() {
        let (mut fe, mut clients) = frontend_counter(2, 1, 2, DriveMode::OnDemand);
        let wire = clients[0]
            .invoke_for::<Counter>(&Counter::inc_op(b"n", 1))
            .unwrap();
        fe.submit(wire);
        // Nothing processed until the pump asks — the property the
        // deterministic crash-scheduling suites depend on.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(fe.ops_processed(), 0);
        assert_eq!(fe.queued(), 1);
        let replies = fe.process_all().unwrap();
        assert_eq!(replies.len(), 1);
        assert_eq!(fe.ops_processed(), 1);
    }

    #[test]
    fn frontend_disconnect_counts_dropped_replies() {
        let (mut fe, mut clients) = frontend_counter(2, 1, 1, DriveMode::OnDemand);
        let port = fe.connect(clients[0].id());
        port.send(
            clients[0]
                .invoke_for::<Counter>(&Counter::inc_op(b"x", 1))
                .unwrap(),
        );
        assert!(fe.disconnect(clients[0].id()));
        let replies = fe.process_all().unwrap();
        // With the port gone before the pump, the reply lands in the
        // collection buffer instead (never silently vanishing).
        assert_eq!(replies.len(), 1);
        assert!(!fe.disconnect(clients[0].id()));
    }

    #[test]
    fn frontend_violation_surfaces_from_pump() {
        let (mut fe, mut clients) = frontend_counter(2, 1, 2, DriveMode::Continuous);
        let mut wire = clients[0]
            .invoke_for::<Counter>(&Counter::inc_op(b"bad", 1))
            .unwrap();
        let last = wire.len() - 1;
        wire[last] ^= 0xff;
        fe.submit(wire);
        let err = fe.process_all().unwrap_err();
        assert!(err.is_violation(), "got {err:?}");
    }

    #[test]
    fn frontend_preserves_per_client_order_across_lanes() {
        let (fe, mut clients) = frontend_counter(4, 1, 4, DriveMode::Continuous);
        let client = &mut clients[0];
        let port = fe.connect(client.id());
        // Up to four ops pipelined across distinct shards.
        let mut names = Vec::new();
        let mut covered = [false; 4];
        for i in 0..64u32 {
            let name = format!("k{i}").into_bytes();
            let shard = shard_index(route_hash(&name), 4) as usize;
            if !covered[shard] {
                covered[shard] = true;
                names.push(name);
            }
        }
        client.set_recording(true);
        for (i, name) in names.iter().enumerate() {
            port.send(
                client
                    .invoke_for::<Counter>(&Counter::inc_op(name, 1 + i as u64))
                    .unwrap(),
            );
        }
        for _ in 0..names.len() {
            let reply = port.recv_timeout(Duration::from_secs(10)).expect("reply");
            client.handle_reply(&reply).unwrap();
        }
        // Replies arrived in submission order: the recorded completions
        // carry the ops in exactly the order they were invoked.
        let recorded: Vec<Vec<u8>> = client.records().iter().map(|r| r.op.clone()).collect();
        let submitted: Vec<Vec<u8>> = names
            .iter()
            .enumerate()
            .map(|(i, n)| Counter::inc_op(n, 1 + i as u64))
            .collect();
        assert_eq!(recorded, submitted);
        assert!(!client.has_pending());
    }
}
