//! Packaging of the trusted context as an enclave program, plus the
//! host-call ABI.
//!
//! This is the analogue of the paper's EDL-generated ecall boundary
//! (§5.1): the untrusted host talks to the enclave exclusively through
//! serialized [`HostCall`]s and gets serialized [`HostReply`]s back.
//! Batching lives here too — one `InvokeBatch` ecall processes many
//! client messages and returns one aggregated state blob, the §5.2
//! optimization that amortizes seal-and-store costs.

use lcm_crypto::sha256::Digest;
use lcm_tee::enclave::EnclaveProgram;
use lcm_tee::measurement::Measurement;
use lcm_tee::platform::TeeServices;

use crate::codec::{CodecError, Reader, WireCodec, Writer};
use crate::context::{InitOutcome, PersistBlobs, TrustedContext};
use crate::functionality::Functionality;
use crate::types::ClientId;
use crate::{LcmError, Violation};

/// Name under which LCM programs are measured.
pub const PROGRAM_NAME: &str = "lcm";
/// Version string folded into the measurement. Version 5 introduces
/// epoch-versioned routing: the enclave holds a
/// [`crate::routing::SliceTable`], every wire envelope and AAD carries
/// the sender's routing epoch, and three new ecalls move slices
/// between live enclaves ([`HostCall::ExportSlice`],
/// [`HostCall::ImportSlice`], [`HostCall::AdoptTable`]). Version 4
/// added incremental persistence: every sealed blob carries a
/// storage-facing kind byte, per-batch persists may emit
/// anchor-chained delta blobs instead of whole-state checkpoints, and
/// `init` accepts delta-log recovery bundles (see
/// [`lcm_storage::DeltaLogStorage`]). Version 3 was the
/// replicated-shard-group protocol: identities carry `(shard,
/// replica)` coordinates, the enclave installs sibling state blobs
/// ([`HostCall::ApplyReplica`]) and serves replica-pinned verified
/// reads ([`HostCall::ServeRead`]). Version 2 introduced the shard
/// identity binding into attestation reports; version 1 was
/// identity-less. Each is distinguishable by measurement.
pub const PROGRAM_VERSION: &str = "5";

/// The LCM measurement: identical for every `LcmProgram<F>` so that the
/// sealing key survives restarts of the same service.
///
/// Note: in real SGX the functionality `F` is part of the enclave image
/// and thus of MRENCLAVE; here the measurement is per-protocol. Tests
/// that need distinct measurements per application can wrap
/// [`LcmProgram`] behind their own [`EnclaveProgram`] with a custom
/// measurement.
pub fn lcm_measurement() -> Measurement {
    Measurement::of_program(PROGRAM_NAME, PROGRAM_VERSION)
}

/// Calls the host can make into the enclave.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostCall {
    /// Deliver the blobs loaded from stable storage (or their absence).
    Init {
        /// Sealed key blob, if storage had one.
        key_blob: Option<Vec<u8>>,
        /// Sealed state blob, if storage had one.
        state_blob: Option<Vec<u8>>,
        /// Whether the host's storage understands sealed delta blobs
        /// (see [`TrustedContext::init`]); untrusted, performance-only.
        want_deltas: bool,
    },
    /// Deliver the admin's encrypted provisioning payload.
    Provision(Vec<u8>),
    /// Process a batch of encrypted INVOKE messages.
    InvokeBatch(Vec<Vec<u8>>),
    /// Process an encrypted admin message.
    Admin(Vec<u8>),
    /// Produce an attestation report for the given challenge digest.
    /// The report's user data binds the enclave's provisioned shard
    /// identity to the challenge (see
    /// [`crate::context::attest_user_data`]).
    Attest(Digest),
    /// Export a migration ticket (origin side).
    ExportMigration,
    /// Import a migration ticket (target side).
    ImportMigration(Vec<u8>),
    /// Install a sibling's sealed state blob on this replica-group
    /// member (see [`crate::context::TrustedContext::apply_replica`]).
    ApplyReplica(Vec<u8>),
    /// Serve a replica-pinned verified read leg (see
    /// [`crate::context::TrustedContext::serve_read`]).
    ServeRead(Vec<u8>),
    /// Import a migration ticket under a host-assigned replica slot
    /// `(replica, replicas)` of the ticket's shard group.
    ImportMigrationAs {
        /// The encrypted migration ticket.
        ticket: Vec<u8>,
        /// Replica slot the target occupies.
        replica: u32,
        /// Size of the target group.
        replicas: u32,
    },
    /// Export one routing slice to another shard (origin side of a
    /// live slice migration; see
    /// [`crate::context::TrustedContext::export_slice`]).
    ExportSlice {
        /// The slice index to move.
        slice: u32,
        /// The shard index taking ownership.
        to: u32,
    },
    /// Import a sealed slice ticket (target side of a live slice
    /// migration).
    ImportSlice(Vec<u8>),
    /// Adopt the sealed routing-table bulletin of a completed slice
    /// migration on a bystander shard.
    AdoptTable(Vec<u8>),
}

const CALL_INIT: u8 = 1;
const CALL_PROVISION: u8 = 2;
const CALL_INVOKE_BATCH: u8 = 3;
const CALL_ADMIN: u8 = 4;
const CALL_ATTEST: u8 = 5;
const CALL_EXPORT_MIG: u8 = 6;
const CALL_IMPORT_MIG: u8 = 7;
const CALL_APPLY_REPLICA: u8 = 8;
const CALL_SERVE_READ: u8 = 9;
const CALL_IMPORT_MIG_AS: u8 = 10;
const CALL_EXPORT_SLICE: u8 = 11;
const CALL_IMPORT_SLICE: u8 = 12;
const CALL_ADOPT_TABLE: u8 = 13;

impl WireCodec for HostCall {
    fn encode(&self, w: &mut Writer) {
        match self {
            HostCall::Init {
                key_blob,
                state_blob,
                want_deltas,
            } => {
                w.put_u8(CALL_INIT);
                encode_opt_bytes(w, key_blob.as_deref());
                encode_opt_bytes(w, state_blob.as_deref());
                w.put_bool(*want_deltas);
            }
            HostCall::Provision(payload) => {
                w.put_u8(CALL_PROVISION);
                w.put_bytes(payload);
            }
            HostCall::InvokeBatch(batch) => HostCall::encode_invoke_batch_into(w, batch),
            HostCall::Admin(msg) => {
                w.put_u8(CALL_ADMIN);
                w.put_bytes(msg);
            }
            HostCall::Attest(user_data) => {
                w.put_u8(CALL_ATTEST);
                w.put_digest(user_data);
            }
            HostCall::ExportMigration => w.put_u8(CALL_EXPORT_MIG),
            HostCall::ImportMigration(ticket) => {
                w.put_u8(CALL_IMPORT_MIG);
                w.put_bytes(ticket);
            }
            HostCall::ApplyReplica(blob) => {
                w.put_u8(CALL_APPLY_REPLICA);
                w.put_bytes(blob);
            }
            HostCall::ServeRead(wire) => {
                w.put_u8(CALL_SERVE_READ);
                w.put_bytes(wire);
            }
            HostCall::ImportMigrationAs {
                ticket,
                replica,
                replicas,
            } => {
                w.put_u8(CALL_IMPORT_MIG_AS);
                w.put_bytes(ticket);
                w.put_u32(*replica);
                w.put_u32(*replicas);
            }
            HostCall::ExportSlice { slice, to } => {
                w.put_u8(CALL_EXPORT_SLICE);
                w.put_u32(*slice);
                w.put_u32(*to);
            }
            HostCall::ImportSlice(ticket) => {
                w.put_u8(CALL_IMPORT_SLICE);
                w.put_bytes(ticket);
            }
            HostCall::AdoptTable(bulletin) => {
                w.put_u8(CALL_ADOPT_TABLE);
                w.put_bytes(bulletin);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            CALL_INIT => Ok(HostCall::Init {
                key_blob: decode_opt_bytes(r)?,
                state_blob: decode_opt_bytes(r)?,
                want_deltas: r.get_bool()?,
            }),
            CALL_PROVISION => Ok(HostCall::Provision(r.get_bytes()?.to_vec())),
            CALL_INVOKE_BATCH => {
                let n = r.get_u32()? as usize;
                let mut batch = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    batch.push(r.get_bytes()?.to_vec());
                }
                Ok(HostCall::InvokeBatch(batch))
            }
            CALL_ADMIN => Ok(HostCall::Admin(r.get_bytes()?.to_vec())),
            CALL_ATTEST => Ok(HostCall::Attest(r.get_digest()?)),
            CALL_EXPORT_MIG => Ok(HostCall::ExportMigration),
            CALL_IMPORT_MIG => Ok(HostCall::ImportMigration(r.get_bytes()?.to_vec())),
            CALL_APPLY_REPLICA => Ok(HostCall::ApplyReplica(r.get_bytes()?.to_vec())),
            CALL_SERVE_READ => Ok(HostCall::ServeRead(r.get_bytes()?.to_vec())),
            CALL_IMPORT_MIG_AS => Ok(HostCall::ImportMigrationAs {
                ticket: r.get_bytes()?.to_vec(),
                replica: r.get_u32()?,
                replicas: r.get_u32()?,
            }),
            CALL_EXPORT_SLICE => Ok(HostCall::ExportSlice {
                slice: r.get_u32()?,
                to: r.get_u32()?,
            }),
            CALL_IMPORT_SLICE => Ok(HostCall::ImportSlice(r.get_bytes()?.to_vec())),
            CALL_ADOPT_TABLE => Ok(HostCall::AdoptTable(r.get_bytes()?.to_vec())),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

/// Replies the enclave returns to the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostReply {
    /// Init completed.
    InitOk {
        /// Whether the admin must provision keys.
        need_provision: bool,
    },
    /// Provisioning (or migration import) succeeded; persist the blobs.
    ProvisionOk(PersistBlobs),
    /// A batch was processed. Replies are in submission order; the
    /// client id tells the host where to route each one.
    BatchOk {
        /// `(routing id, encrypted REPLY)` per input message.
        replies: Vec<(ClientId, Vec<u8>)>,
        /// The aggregated sealed state to persist.
        blobs: PersistBlobs,
    },
    /// An admin message was processed.
    AdminOk {
        /// The encrypted admin reply.
        reply: Vec<u8>,
        /// Sealed state to persist.
        blobs: PersistBlobs,
    },
    /// An attestation report (serialized; feed to the quoting enclave).
    AttestOk(Vec<u8>),
    /// A migration ticket (origin side).
    MigrationTicket(Vec<u8>),
    /// A sibling state blob was installed on this member.
    ApplyOk {
        /// In-enclave digest of the installed blob — the member's
        /// acknowledgement the host counts toward replica-quorum
        /// stability.
        digest: Digest,
        /// This member's re-sealed blobs to persist.
        blobs: PersistBlobs,
    },
    /// A verified read leg was served; the encrypted read reply.
    ReadOk(Vec<u8>),
    /// A routing slice was exported (origin side of a live slice
    /// migration).
    SliceExported {
        /// Sealed slice ticket for the target shard.
        ticket: Vec<u8>,
        /// Sealed table bulletin for bystander shards.
        bulletin: Vec<u8>,
        /// The origin's re-sealed blobs to persist (full checkpoint;
        /// the moved keys are already gone from it).
        blobs: PersistBlobs,
    },
    /// The call failed. The context may now be halted.
    Err(ReplyError),
}

/// Serializable projection of [`LcmError`] across the ecall boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyError {
    /// Discriminant mirroring [`LcmError`] variants.
    pub code: u8,
    /// Human-readable rendering of the original error.
    pub message: String,
}

/// Error code: violation detected, context halted.
pub const ERR_VIOLATION: u8 = 1;
/// Error code: context already halted.
pub const ERR_HALTED: u8 = 2;
/// Error code: context not provisioned.
pub const ERR_NOT_PROVISIONED: u8 = 3;
/// Error code: context already provisioned.
pub const ERR_ALREADY_PROVISIONED: u8 = 4;
/// Error code: other failure.
pub const ERR_OTHER: u8 = 5;

impl From<&LcmError> for ReplyError {
    fn from(e: &LcmError) -> Self {
        let code = match e {
            LcmError::Violation(_) | LcmError::UnknownClient(_) => ERR_VIOLATION,
            LcmError::Halted => ERR_HALTED,
            LcmError::NotProvisioned => ERR_NOT_PROVISIONED,
            LcmError::AlreadyProvisioned => ERR_ALREADY_PROVISIONED,
            _ => ERR_OTHER,
        };
        // For violations, carry the evidence text itself — the
        // receiving side re-wraps it in its own error prefix.
        let message = match e {
            LcmError::Violation(v) => v.to_string(),
            other => other.to_string(),
        };
        ReplyError { code, message }
    }
}

impl ReplyError {
    /// Reconstructs an [`LcmError`] (lossy: the message is preserved,
    /// structured fields are not).
    pub fn into_lcm_error(self) -> LcmError {
        match self.code {
            ERR_VIOLATION => LcmError::Violation(Violation::Reported(self.message)),
            ERR_HALTED => LcmError::Halted,
            ERR_NOT_PROVISIONED => LcmError::NotProvisioned,
            ERR_ALREADY_PROVISIONED => LcmError::AlreadyProvisioned,
            _ => LcmError::Tee(self.message),
        }
    }
}

const REPLY_INIT: u8 = 1;
const REPLY_PROVISION: u8 = 2;
const REPLY_BATCH: u8 = 3;
const REPLY_ADMIN: u8 = 4;
const REPLY_ATTEST: u8 = 5;
const REPLY_MIG: u8 = 6;
const REPLY_ERR: u8 = 7;
const REPLY_APPLY: u8 = 8;
const REPLY_READ: u8 = 9;
const REPLY_SLICE_EXPORTED: u8 = 10;

fn encode_blobs(w: &mut Writer, blobs: &PersistBlobs) {
    w.put_bytes(&blobs.key_blob);
    w.put_bytes(&blobs.state_blob);
}

fn decode_blobs(r: &mut Reader<'_>) -> Result<PersistBlobs, CodecError> {
    Ok(PersistBlobs {
        key_blob: r.get_bytes()?.to_vec(),
        state_blob: r.get_bytes()?.to_vec(),
    })
}

fn encode_opt_bytes(w: &mut Writer, bytes: Option<&[u8]>) {
    match bytes {
        None => w.put_bool(false),
        Some(b) => {
            w.put_bool(true);
            w.put_bytes(b);
        }
    }
}

fn decode_opt_bytes(r: &mut Reader<'_>) -> Result<Option<Vec<u8>>, CodecError> {
    Ok(if r.get_bool()? {
        Some(r.get_bytes()?.to_vec())
    } else {
        None
    })
}

impl WireCodec for HostReply {
    fn encode(&self, w: &mut Writer) {
        match self {
            HostReply::InitOk { need_provision } => {
                w.put_u8(REPLY_INIT);
                w.put_bool(*need_provision);
            }
            HostReply::ProvisionOk(blobs) => {
                w.put_u8(REPLY_PROVISION);
                encode_blobs(w, blobs);
            }
            HostReply::BatchOk { replies, blobs } => {
                w.put_u8(REPLY_BATCH);
                w.put_u32(replies.len() as u32);
                for (id, reply) in replies {
                    id.encode(w);
                    w.put_bytes(reply);
                }
                encode_blobs(w, blobs);
            }
            HostReply::AdminOk { reply, blobs } => {
                w.put_u8(REPLY_ADMIN);
                w.put_bytes(reply);
                encode_blobs(w, blobs);
            }
            HostReply::AttestOk(report) => {
                w.put_u8(REPLY_ATTEST);
                w.put_bytes(report);
            }
            HostReply::MigrationTicket(ticket) => {
                w.put_u8(REPLY_MIG);
                w.put_bytes(ticket);
            }
            HostReply::ApplyOk { digest, blobs } => {
                w.put_u8(REPLY_APPLY);
                w.put_digest(digest);
                encode_blobs(w, blobs);
            }
            HostReply::ReadOk(reply) => {
                w.put_u8(REPLY_READ);
                w.put_bytes(reply);
            }
            HostReply::SliceExported {
                ticket,
                bulletin,
                blobs,
            } => {
                w.put_u8(REPLY_SLICE_EXPORTED);
                w.put_bytes(ticket);
                w.put_bytes(bulletin);
                encode_blobs(w, blobs);
            }
            HostReply::Err(e) => {
                w.put_u8(REPLY_ERR);
                w.put_u8(e.code);
                w.put_str(&e.message);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            REPLY_INIT => Ok(HostReply::InitOk {
                need_provision: r.get_bool()?,
            }),
            REPLY_PROVISION => Ok(HostReply::ProvisionOk(decode_blobs(r)?)),
            REPLY_BATCH => {
                let n = r.get_u32()? as usize;
                let mut replies = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let id = ClientId::decode(r)?;
                    replies.push((id, r.get_bytes()?.to_vec()));
                }
                Ok(HostReply::BatchOk {
                    replies,
                    blobs: decode_blobs(r)?,
                })
            }
            REPLY_ADMIN => Ok(HostReply::AdminOk {
                reply: r.get_bytes()?.to_vec(),
                blobs: decode_blobs(r)?,
            }),
            REPLY_ATTEST => Ok(HostReply::AttestOk(r.get_bytes()?.to_vec())),
            REPLY_MIG => Ok(HostReply::MigrationTicket(r.get_bytes()?.to_vec())),
            REPLY_APPLY => Ok(HostReply::ApplyOk {
                digest: r.get_digest()?,
                blobs: decode_blobs(r)?,
            }),
            REPLY_READ => Ok(HostReply::ReadOk(r.get_bytes()?.to_vec())),
            REPLY_SLICE_EXPORTED => Ok(HostReply::SliceExported {
                ticket: r.get_bytes()?.to_vec(),
                bulletin: r.get_bytes()?.to_vec(),
                blobs: decode_blobs(r)?,
            }),
            REPLY_ERR => Ok(HostReply::Err(ReplyError {
                code: r.get_u8()?,
                message: r.get_str()?.to_owned(),
            })),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

/// The enclave program wrapping a [`TrustedContext`] over `F`.
pub struct LcmProgram<F: Functionality> {
    context: TrustedContext<F>,
}

impl HostCall {
    /// Encodes an `InvokeBatch` call directly into `w` from borrowed
    /// wires — the host's hot path, avoiding the intermediate
    /// [`HostCall`] value and a fresh buffer per batch.
    pub fn encode_invoke_batch_into(w: &mut Writer, batch: &[Vec<u8>]) {
        w.put_u8(CALL_INVOKE_BATCH);
        w.put_u32(batch.len() as u32);
        for m in batch {
            w.put_bytes(m);
        }
    }
}

impl<F: Functionality> LcmProgram<F> {
    /// Read access to the inner context (in-enclave only; the host
    /// boundary is [`EnclaveProgram::ecall`]).
    pub fn context(&self) -> &TrustedContext<F> {
        &self.context
    }

    fn dispatch(&mut self, call: HostCall) -> HostReply {
        match call {
            HostCall::Init {
                key_blob,
                state_blob,
                want_deltas,
            } => match self
                .context
                .init(key_blob.as_deref(), state_blob.as_deref(), want_deltas)
            {
                Ok(outcome) => HostReply::InitOk {
                    need_provision: outcome == InitOutcome::NeedProvision,
                },
                Err(e) => HostReply::Err((&e).into()),
            },
            HostCall::Provision(payload) => match self.context.provision(&payload) {
                Ok(blobs) => HostReply::ProvisionOk(blobs),
                Err(e) => HostReply::Err((&e).into()),
            },
            HostCall::InvokeBatch(batch) => {
                let mut replies = Vec::with_capacity(batch.len());
                for msg in &batch {
                    match self.context.handle_invoke(msg) {
                        Ok(pair) => replies.push(pair),
                        Err(e) => return HostReply::Err((&e).into()),
                    }
                }
                match self.context.persist_batch_blobs() {
                    Ok(blobs) => HostReply::BatchOk { replies, blobs },
                    Err(e) => HostReply::Err((&e).into()),
                }
            }
            HostCall::Admin(msg) => match self.context.handle_admin(&msg) {
                Ok((reply, blobs)) => HostReply::AdminOk { reply, blobs },
                Err(e) => HostReply::Err((&e).into()),
            },
            HostCall::Attest(user_data) => {
                HostReply::AttestOk(self.context.attest(user_data).to_bytes())
            }
            HostCall::ExportMigration => match self.context.export_migration() {
                Ok(ticket) => HostReply::MigrationTicket(ticket),
                Err(e) => HostReply::Err((&e).into()),
            },
            HostCall::ImportMigration(ticket) => match self.context.import_migration(&ticket) {
                Ok(blobs) => HostReply::ProvisionOk(blobs),
                Err(e) => HostReply::Err((&e).into()),
            },
            HostCall::ApplyReplica(blob) => match self.context.apply_replica(&blob) {
                Ok((digest, blobs)) => HostReply::ApplyOk { digest, blobs },
                Err(e) => HostReply::Err((&e).into()),
            },
            HostCall::ServeRead(wire) => match self.context.serve_read(&wire) {
                Ok(reply) => HostReply::ReadOk(reply),
                Err(e) => HostReply::Err((&e).into()),
            },
            HostCall::ImportMigrationAs {
                ticket,
                replica,
                replicas,
            } => match self
                .context
                .import_migration_with(&ticket, Some((replica, replicas)))
            {
                Ok(blobs) => HostReply::ProvisionOk(blobs),
                Err(e) => HostReply::Err((&e).into()),
            },
            HostCall::ExportSlice { slice, to } => match self.context.export_slice(slice, to) {
                Ok(export) => HostReply::SliceExported {
                    ticket: export.ticket,
                    bulletin: export.bulletin,
                    blobs: export.blobs,
                },
                Err(e) => HostReply::Err((&e).into()),
            },
            HostCall::ImportSlice(ticket) => match self.context.import_slice(&ticket) {
                Ok(blobs) => HostReply::ProvisionOk(blobs),
                Err(e) => HostReply::Err((&e).into()),
            },
            HostCall::AdoptTable(bulletin) => match self.context.adopt_table(&bulletin) {
                Ok(blobs) => HostReply::ProvisionOk(blobs),
                Err(e) => HostReply::Err((&e).into()),
            },
        }
    }
}

impl<F: Functionality> EnclaveProgram for LcmProgram<F> {
    fn measurement() -> Measurement {
        lcm_measurement()
    }

    fn boot(services: TeeServices) -> Self {
        LcmProgram {
            context: TrustedContext::new(services),
        }
    }

    fn ecall(&mut self, input: &[u8]) -> Vec<u8> {
        let reply = match HostCall::from_bytes(input) {
            Ok(call) => self.dispatch(call),
            Err(e) => HostReply::Err(ReplyError {
                code: ERR_OTHER,
                message: format!("malformed host call: {e}"),
            }),
        };
        reply.to_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_call_roundtrips() {
        let calls = vec![
            HostCall::Init {
                key_blob: Some(b"kb".to_vec()),
                state_blob: None,
                want_deltas: true,
            },
            HostCall::Provision(b"payload".to_vec()),
            HostCall::InvokeBatch(vec![b"m1".to_vec(), b"m2".to_vec()]),
            HostCall::Admin(b"admin".to_vec()),
            HostCall::Attest(lcm_crypto::sha256::digest(b"challenge")),
            HostCall::ExportMigration,
            HostCall::ImportMigration(b"ticket".to_vec()),
            HostCall::ApplyReplica(b"blob".to_vec()),
            HostCall::ServeRead(b"leg".to_vec()),
            HostCall::ImportMigrationAs {
                ticket: b"ticket".to_vec(),
                replica: 2,
                replicas: 3,
            },
            HostCall::ExportSlice { slice: 17, to: 3 },
            HostCall::ImportSlice(b"slice-ticket".to_vec()),
            HostCall::AdoptTable(b"bulletin".to_vec()),
        ];
        for call in calls {
            assert_eq!(HostCall::from_bytes(&call.to_bytes()).unwrap(), call);
        }
    }

    #[test]
    fn host_reply_roundtrips() {
        let blobs = PersistBlobs {
            key_blob: b"kb".to_vec(),
            state_blob: b"sb".to_vec(),
        };
        let replies = vec![
            HostReply::InitOk {
                need_provision: true,
            },
            HostReply::ProvisionOk(blobs.clone()),
            HostReply::BatchOk {
                replies: vec![(ClientId(1), b"r1".to_vec()), (ClientId(2), b"r2".to_vec())],
                blobs: blobs.clone(),
            },
            HostReply::AdminOk {
                reply: b"ar".to_vec(),
                blobs,
            },
            HostReply::AttestOk(b"report".to_vec()),
            HostReply::MigrationTicket(b"ticket".to_vec()),
            HostReply::ApplyOk {
                digest: lcm_crypto::sha256::digest(b"blob"),
                blobs: PersistBlobs {
                    key_blob: b"kb".to_vec(),
                    state_blob: b"sb".to_vec(),
                },
            },
            HostReply::ReadOk(b"read-reply".to_vec()),
            HostReply::SliceExported {
                ticket: b"ticket".to_vec(),
                bulletin: b"bulletin".to_vec(),
                blobs: PersistBlobs {
                    key_blob: b"kb".to_vec(),
                    state_blob: b"sb".to_vec(),
                },
            },
            HostReply::Err(ReplyError {
                code: ERR_VIOLATION,
                message: "boom".to_owned(),
            }),
        ];
        for reply in replies {
            assert_eq!(HostReply::from_bytes(&reply.to_bytes()).unwrap(), reply);
        }
    }

    #[test]
    fn malformed_host_call_is_reported_not_panicking() {
        use crate::functionality::AppendLog;
        use lcm_tee::world::TeeWorld;

        let world = TeeWorld::new_deterministic(1);
        let platform = world.platform_deterministic(1);
        let mut enclave = lcm_tee::enclave::Enclave::<LcmProgram<AppendLog>>::create(&platform);
        enclave.start().unwrap();
        let out = enclave.ecall(&[0xff, 0x00]).unwrap();
        match HostReply::from_bytes(&out).unwrap() {
            HostReply::Err(e) => assert_eq!(e.code, ERR_OTHER),
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn reply_error_reconstruction() {
        let e = ReplyError {
            code: ERR_HALTED,
            message: "halted".into(),
        };
        assert_eq!(e.into_lcm_error(), LcmError::Halted);
        let e = ReplyError {
            code: ERR_NOT_PROVISIONED,
            message: String::new(),
        };
        assert_eq!(e.into_lcm_error(), LcmError::NotProvisioned);
    }
}
