//! The trusted admin: bootstrapping, membership, and migration
//! orchestration (paper §4.3, §4.6).
//!
//! Bootstrapping (§4.3) has three phases: (1) the admin instructs the
//! server to create `T`; (2) remote attestation convinces the admin
//! that `T` runs LCM on a genuine TEE; (3) the admin generates `kC` and
//! `kP`, injects them through the attested secure channel, and
//! distributes `kC` to the clients.

use lcm_crypto::aead::{self, AeadKey};
use lcm_crypto::keys::SecretKey;
use lcm_crypto::sha256::{self, Digest};
use lcm_tee::attestation::{Quote, QuoteVerifier};
use lcm_tee::measurement::Measurement;
use lcm_tee::world::TeeWorld;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::codec::{Reader, WireCodec, Writer};
use crate::context::{
    attest_user_data, AdminOp, AdminReply, ProvisionPayload, ShardIdentity, LABEL_ADMIN,
    LABEL_PROVISION,
};
use crate::program::lcm_measurement;
use crate::server::BatchServer;
use crate::stability::Quorum;
use crate::types::ClientId;
use crate::{LcmError, Result, Violation};

/// The verified shape of a deployment: one identity-bound attestation
/// quote per *member* — every replica of every shard group — in
/// shard-major, replica-minor order.
///
/// Produced by [`AdminHandle::bootstrap`] and
/// [`AdminHandle::verify_deployment`]. Quote `i*replicas + r` proves
/// that a genuine LCM enclave answered a fresh challenge *while
/// holding identity `(i, shards, r, replicas)`* — so the manifest as a
/// whole says the admin's keys live in exactly `shards × replicas`
/// enclaves, one per seat of the deployment, with no member
/// represented by a sibling (not even by another replica of its own
/// group: the replica coordinate is bound into the quote).
#[derive(Debug, Clone)]
pub struct DeploymentManifest {
    /// Number of shards the deployment was verified at.
    pub shards: u32,
    /// Number of replicas per shard group (1 when unreplicated).
    pub replicas: u32,
    /// The per-member quotes: index `i*replicas + r` bound to identity
    /// `(i, shards, r, replicas)`.
    pub quotes: Vec<Quote>,
}

impl DeploymentManifest {
    /// A compact fingerprint of the attested deployment: digest over
    /// the shape and every quote's measurement and (identity-bound)
    /// user data, in member order. Two manifests with the same digest
    /// attest the same program at the same identities.
    pub fn digest(&self) -> Digest {
        let mut buf = Vec::with_capacity(8 + self.quotes.len() * 64);
        buf.extend_from_slice(&self.shards.to_be_bytes());
        buf.extend_from_slice(&self.replicas.to_be_bytes());
        for q in &self.quotes {
            buf.extend_from_slice(q.measurement.as_bytes());
            buf.extend_from_slice(q.user_data.as_bytes());
        }
        sha256::digest(&buf)
    }
}

/// The special admin client of the paper: generates and distributes
/// keys, verifies attestation, manages membership.
pub struct AdminHandle {
    provision_channel: AeadKey,
    verifier: QuoteVerifier,
    expected_measurement: Measurement,
    k_p: SecretKey,
    k_c: SecretKey,
    k_a: SecretKey,
    admin_key: AeadKey,
    clients: Vec<ClientId>,
    quorum: Quorum,
    admin_seq: u64,
    rng: StdRng,
}

impl std::fmt::Debug for AdminHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdminHandle")
            .field("clients", &self.clients)
            .field("admin_seq", &self.admin_seq)
            .finish()
    }
}

impl AdminHandle {
    /// Creates an admin for the LCM program in `world`, with the given
    /// initial client group and stability quorum. Keys are drawn from
    /// the OS RNG.
    pub fn new(world: &TeeWorld, clients: Vec<ClientId>, quorum: Quorum) -> Self {
        let mut seed = [0u8; 8];
        rand::thread_rng().fill_bytes(&mut seed);
        Self::build(
            world,
            clients,
            quorum,
            StdRng::seed_from_u64(u64::from_be_bytes(seed)),
        )
    }

    /// Deterministic variant for tests and simulations.
    pub fn new_deterministic(
        world: &TeeWorld,
        clients: Vec<ClientId>,
        quorum: Quorum,
        seed: u64,
    ) -> Self {
        Self::build(
            world,
            clients,
            quorum,
            StdRng::seed_from_u64(seed ^ 0xad_417),
        )
    }

    fn build(world: &TeeWorld, clients: Vec<ClientId>, quorum: Quorum, mut rng: StdRng) -> Self {
        let measurement = lcm_measurement();
        let k_p = SecretKey::generate_with(&mut rng);
        let k_c = SecretKey::generate_with(&mut rng);
        let k_a = SecretKey::generate_with(&mut rng);
        AdminHandle {
            provision_channel: AeadKey::from_secret(&world.admin_provision_key(&measurement)),
            verifier: world.authority().verifier(),
            expected_measurement: measurement,
            admin_key: AeadKey::from_secret(&k_a),
            k_p,
            k_c,
            k_a,
            clients,
            quorum,
            admin_seq: 0,
            rng,
        }
    }

    /// The communication key `kC` to distribute to group clients over
    /// the admin's secure channels to them.
    pub fn client_key(&self) -> &SecretKey {
        &self.k_c
    }

    /// The current client group, as the admin believes it to be.
    pub fn clients(&self) -> &[ClientId] {
        &self.clients
    }

    /// Performs phases 2–3 of bootstrapping against `server`, for
    /// *every* shard of the deployment: challenge and attest each
    /// still-unprovisioned lane, inject each lane's keys **and shard
    /// identity** through the attested channel, then re-attest the
    /// whole deployment with identity binding.
    ///
    /// Returns the verified [`DeploymentManifest`] — one quote per
    /// shard, quote `i` bound to identity `(i, n)` — so the admin holds
    /// evidence that every member, not just a representative, runs LCM
    /// on a genuine platform under the identity it was assigned.
    ///
    /// # Errors
    ///
    /// * [`LcmError::Tee`] — attestation failed on some shard: that
    ///   lane is not running LCM on a genuine platform, or claims a
    ///   different identity than assigned (e.g. the host swapped
    ///   provisioning payloads between lanes).
    /// * Context errors from provisioning.
    pub fn bootstrap<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
    ) -> Result<DeploymentManifest> {
        let n = server.shard_count();
        let r = server.replica_count();
        // Phase 2: attest every member with a fresh challenge before
        // any key material moves. An unprovisioned enclave binds "no
        // identity" into its report; anything else here means the
        // member already holds state and must not be re-provisioned.
        for shard in 0..n {
            for replica in 0..r {
                let challenge = self.fresh_challenge();
                let quote = server.attest_member(shard, replica, challenge)?;
                self.verifier.verify(
                    &quote,
                    &self.expected_measurement,
                    &attest_user_data(&challenge, None),
                )?;
            }
        }

        // Phase 3: inject keys through the attested channel — one
        // payload per member, identical keys, each naming its own
        // identity (i, n, r', r).
        for shard in 0..n {
            for replica in 0..r {
                let payload = ProvisionPayload {
                    k_p: self.k_p.clone(),
                    k_c: self.k_c.clone(),
                    k_a: self.k_a.clone(),
                    clients: self.clients.clone(),
                    quorum: self.quorum,
                    identity: ShardIdentity::new(shard, n).with_replica(replica, r),
                };
                let sealed = aead::auth_encrypt(
                    &self.provision_channel,
                    &payload.to_bytes(),
                    LABEL_PROVISION,
                )
                .map_err(|e| LcmError::Tee(e.to_string()))?;
                server.provision_member(shard, replica, sealed)?;
            }
        }

        // Whole-deployment attestation: every member proves it holds
        // the identity it was just assigned.
        self.verify_deployment(server)
    }

    /// Attests every member of `server` and verifies each quote
    /// against the identity that member must hold — `(i, n, r', r)`
    /// for replica `r'` of lane `i` of an `n`-shard, `r`-replica
    /// deployment. Run after bootstrap (automatic), after a
    /// migration import ([`AdminHandle::migrate`] does this), or any
    /// time an operator wants fresh evidence that no member was
    /// swapped, cloned, or re-homed.
    ///
    /// # Errors
    ///
    /// * [`LcmError::Tee`] — some lane failed attestation or holds the
    ///   wrong identity.
    pub fn verify_deployment<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
    ) -> Result<DeploymentManifest> {
        let n = server.shard_count();
        let r = server.replica_count();
        let mut quotes = Vec::with_capacity((n * r) as usize);
        for shard in 0..n {
            for replica in 0..r {
                let challenge = self.fresh_challenge();
                let quote = server.attest_member(shard, replica, challenge)?;
                self.verifier.verify(
                    &quote,
                    &self.expected_measurement,
                    &attest_user_data(
                        &challenge,
                        Some(ShardIdentity::new(shard, n).with_replica(replica, r)),
                    ),
                )?;
                quotes.push(quote);
            }
        }
        Ok(DeploymentManifest {
            shards: n,
            replicas: r,
            quotes,
        })
    }

    fn fresh_challenge(&mut self) -> Digest {
        let mut nonce = [0u8; 32];
        self.rng.fill_bytes(&mut nonce);
        sha256::digest(&nonce)
    }

    /// Adds `id` to the group (§4.6.3). On success the admin sends the
    /// (unchanged) `kC` to the new client out of band.
    ///
    /// # Errors
    ///
    /// * [`LcmError::Violation`] — the admin reply failed verification.
    /// * The context's rejection is surfaced as [`LcmError::Tee`] with
    ///   the rejection message.
    pub fn add_client<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
        id: ClientId,
    ) -> Result<()> {
        let reply = self.roundtrip(server, AdminOp::AddClient(id))?;
        match reply {
            AdminReply::Ok => {
                self.clients.push(id);
                Ok(())
            }
            AdminReply::Rejected(msg) => Err(LcmError::Tee(msg)),
            other => Err(LcmError::Tee(format!("unexpected admin reply {other:?}"))),
        }
    }

    /// Removes `id` from the group and rotates `kC` so the removed
    /// client is locked out (§4.6.3). Returns the fresh `kC` that must
    /// be distributed to all remaining clients.
    ///
    /// # Errors
    ///
    /// Same classes as [`AdminHandle::add_client`].
    pub fn remove_client<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
        id: ClientId,
    ) -> Result<SecretKey> {
        let new_kc = SecretKey::generate_with(&mut self.rng);
        let reply = self.roundtrip(server, AdminOp::RemoveClient(id, new_kc.clone()))?;
        match reply {
            AdminReply::Ok => {
                self.clients.retain(|&c| c != id);
                self.k_c = new_kc.clone();
                Ok(new_kc)
            }
            AdminReply::Rejected(msg) => Err(LcmError::Tee(msg)),
            other => Err(LcmError::Tee(format!("unexpected admin reply {other:?}"))),
        }
    }

    /// Queries the context's `(t, q, n)` status.
    ///
    /// # Errors
    ///
    /// Same classes as [`AdminHandle::add_client`].
    pub fn status<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
    ) -> Result<(crate::types::SeqNo, crate::types::SeqNo, u32)> {
        match self.roundtrip(server, AdminOp::Status)? {
            AdminReply::Status { t, q, n } => Ok((t, q, n)),
            other => Err(LcmError::Tee(format!("unexpected admin reply {other:?}"))),
        }
    }

    /// Orchestrates migration origin → target (§4.6.2): exports the
    /// ticket from `origin`, imports it into a booted, unprovisioned
    /// `target`, then **re-verifies the whole target deployment** —
    /// each imported lane must attest the shard identity its slice of
    /// the ticket carried, so a host that reshuffles ticket parts
    /// between lanes is caught here instead of at some later client's
    /// misrouted operation. Clients keep working unchanged — their
    /// `(tc, hc)` context verifies against the migrated `V`.
    ///
    /// # Errors
    ///
    /// Propagates context errors from either side; attestation errors
    /// from the post-import verification.
    pub fn migrate<A: BatchServer + ?Sized, B: BatchServer + ?Sized>(
        &mut self,
        origin: &mut A,
        target: &mut B,
    ) -> Result<DeploymentManifest> {
        let ticket = origin.export_migration()?;
        target.import_migration(ticket)?;
        self.verify_deployment(target)
    }

    /// Orchestrates a live slice move on a running deployment — the
    /// slice-level sibling of [`AdminHandle::migrate`]: drives the
    /// export → import → adopt handshake through
    /// [`BatchServer::migrate_slice`], then probes the deployment
    /// with an authenticated status roundtrip so the operator learns
    /// immediately whether the lanes still answer under the advanced
    /// epoch. Unlike whole-deployment migration there is nothing to
    /// re-attest: no new enclave identity joins, and the ticket and
    /// table bulletin of the handshake are already authenticated
    /// shard-to-shard inside the enclaves. Returns the routing epoch
    /// after the move.
    ///
    /// # Errors
    ///
    /// Propagates migration errors (single-shard deployments reject —
    /// there is nowhere to move a slice to) and context errors from
    /// the status probe.
    pub fn reshard<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
        slice: u32,
        to: u32,
    ) -> Result<u64> {
        server.migrate_slice(slice, to)?;
        self.status(server)?;
        Ok(server.routing_epoch())
    }

    fn roundtrip<S: BatchServer + ?Sized>(
        &mut self,
        server: &mut S,
        op: AdminOp,
    ) -> Result<AdminReply> {
        let seq = self.admin_seq + 1;
        let mut w = Writer::new();
        w.put_u64(seq);
        op.encode(&mut w);
        let wire = aead::auth_encrypt(&self.admin_key, &w.into_bytes(), LABEL_ADMIN)
            .map_err(|e| LcmError::Tee(e.to_string()))?;
        let reply_wire = server.admin(wire)?;
        self.admin_seq = seq;

        let plain = aead::auth_decrypt(&self.admin_key, &reply_wire, LABEL_ADMIN)
            .map_err(|_| LcmError::Violation(Violation::BadAuthentication))?;
        let mut r = Reader::new(&plain);
        let echoed_seq = r.get_u64()?;
        if echoed_seq != seq {
            return Err(Violation::AdminReplay.into());
        }
        let reply = AdminReply::decode(&mut r)?;
        r.finish()?;
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::LcmClient;
    use crate::functionality::AppendLog;
    use crate::server::LcmServer;
    use lcm_storage::MemoryStorage;
    use std::sync::Arc;

    fn fresh() -> (TeeWorld, LcmServer<AppendLog>) {
        let world = TeeWorld::new_deterministic(5);
        let platform = world.platform_deterministic(1);
        let mut server = LcmServer::<AppendLog>::new(&platform, Arc::new(MemoryStorage::new()), 16);
        assert!(server.boot().unwrap());
        (world, server)
    }

    #[test]
    fn bootstrap_succeeds_on_genuine_platform() {
        let (world, mut server) = fresh();
        let mut admin =
            AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 1);
        let manifest = admin.bootstrap(&mut server).unwrap();
        // One identity-bound quote per shard (unsharded: exactly one).
        assert_eq!(manifest.shards, 1);
        assert_eq!(manifest.quotes.len(), 1);
        // Re-verification on demand succeeds and attests the same
        // program; the digest differs only through the fresh challenge.
        let again = admin.verify_deployment(&mut server).unwrap();
        assert_eq!(again.shards, 1);
        assert_eq!(manifest.quotes[0].measurement, again.quotes[0].measurement);
        assert_ne!(manifest.digest(), again.digest());
    }

    #[test]
    fn bootstrap_attests_every_shard_of_a_deployment() {
        use crate::functionality::Counter;
        use crate::shard::build_sharded;

        let world = TeeWorld::new_deterministic(6);
        let mut server =
            build_sharded::<Counter>(&world, 1, Arc::new(MemoryStorage::new()), 8, 4, false);
        assert!(server.boot().unwrap());
        let mut admin =
            AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 6);
        let manifest = admin.bootstrap(&mut server).unwrap();
        assert_eq!(manifest.shards, 4);
        assert_eq!(manifest.quotes.len(), 4);
        // Quotes are distinguishable per shard: each binds a different
        // identity into its user data (challenges are fresh anyway,
        // but identity alone already separates them for a fixed
        // challenge — see context::attest_user_data tests).
        let unique: std::collections::BTreeSet<_> = manifest
            .quotes
            .iter()
            .map(|q| q.user_data.as_bytes().to_vec())
            .collect();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn bootstrap_refuses_an_already_provisioned_deployment() {
        // Re-running bootstrap against a provisioned server fails at
        // phase 2 already: the enclave's quote binds its identity, not
        // the "unprovisioned" marker a fresh lane would bind.
        let (world, mut server) = fresh();
        let mut admin =
            AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 1);
        admin.bootstrap(&mut server).unwrap();
        assert!(admin.bootstrap(&mut server).is_err());
    }

    #[test]
    fn bootstrap_fails_against_foreign_world() {
        // The server's platform belongs to a different world than the
        // admin trusts: attestation must fail.
        let world_evil = TeeWorld::new_deterministic(66);
        let platform = world_evil.platform_deterministic(1);
        let mut server = LcmServer::<AppendLog>::new(&platform, Arc::new(MemoryStorage::new()), 16);
        server.boot().unwrap();

        let world_good = TeeWorld::new_deterministic(5);
        let mut admin =
            AdminHandle::new_deterministic(&world_good, vec![ClientId(1)], Quorum::Majority, 1);
        assert!(admin.bootstrap(&mut server).is_err());
    }

    #[test]
    fn membership_add_remove_flow() {
        let (world, mut server) = fresh();
        let mut admin = AdminHandle::new_deterministic(
            &world,
            vec![ClientId(1), ClientId(2)],
            Quorum::Majority,
            1,
        );
        admin.bootstrap(&mut server).unwrap();

        // Add a third client.
        admin.add_client(&mut server, ClientId(3)).unwrap();
        assert_eq!(admin.clients().len(), 3);
        let mut c3 = LcmClient::new(ClientId(3), admin.client_key());
        server.submit(c3.invoke(b"hello").unwrap());
        let replies = server.process_all().unwrap();
        c3.handle_reply(&replies[0].1).unwrap();

        // Adding twice is rejected without halting.
        assert!(admin.add_client(&mut server, ClientId(3)).is_err());
        let (_, _, n) = admin.status(&mut server).unwrap();
        assert_eq!(n, 3);

        // Remove client 3; kC rotates.
        let new_kc = admin.remove_client(&mut server, ClientId(3)).unwrap();
        let (_, _, n) = admin.status(&mut server).unwrap();
        assert_eq!(n, 2);

        // Remaining client with the rotated key still works.
        let mut c1 = LcmClient::new(ClientId(1), &new_kc);
        server.submit(c1.invoke(b"post-rotation").unwrap());
        let replies = server.process_all().unwrap();
        c1.handle_reply(&replies[0].1).unwrap();
    }

    #[test]
    fn status_reports_progress() {
        let (world, mut server) = fresh();
        let mut admin =
            AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 1);
        admin.bootstrap(&mut server).unwrap();
        let (t, q, n) = admin.status(&mut server).unwrap();
        assert_eq!((t.0, q.0, n), (0, 0, 1));

        let mut c = LcmClient::new(ClientId(1), admin.client_key());
        server.submit(c.invoke(b"x").unwrap());
        let replies = server.process_all().unwrap();
        c.handle_reply(&replies[0].1).unwrap();
        let (t, _q, _n) = admin.status(&mut server).unwrap();
        assert_eq!(t.0, 1);
    }

    #[test]
    fn migration_via_admin() {
        let (world, mut origin) = fresh();
        let mut admin =
            AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 1);
        admin.bootstrap(&mut origin).unwrap();

        let mut c = LcmClient::new(ClientId(1), admin.client_key());
        origin.submit(c.invoke(b"pre-migration").unwrap());
        let replies = origin.process_all().unwrap();
        c.handle_reply(&replies[0].1).unwrap();

        // Target server on a different platform, same world.
        let target_platform = world.platform_deterministic(2);
        let mut target =
            LcmServer::<AppendLog>::new(&target_platform, Arc::new(MemoryStorage::new()), 16);
        assert!(target.boot().unwrap());

        admin.migrate(&mut origin, &mut target).unwrap();

        // The client continues against the target, unaware.
        target.submit(c.invoke(b"post-migration").unwrap());
        let replies = target.process_all().unwrap();
        let done = c.handle_reply(&replies[0].1).unwrap();
        assert_eq!(done.seq.0, 2);

        // The origin refuses service after migrating away.
        origin.submit(c.invoke(b"never-answered").unwrap());
        assert!(origin.process_all().is_err());
    }

    #[test]
    fn resharding_via_admin() {
        use crate::client::WriteOutcome;
        use crate::functionality::Counter;
        use crate::routing::slice_of;
        use crate::shard::{self, build_sharded};

        let world = TeeWorld::new_deterministic(7);
        let mut server =
            build_sharded::<Counter>(&world, 1, Arc::new(MemoryStorage::new()), 8, 2, false);
        assert!(server.boot().unwrap());
        let mut admin =
            AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 7);
        admin.bootstrap(&mut server).unwrap();

        // A counter pinned to a genesis slice of shard 0.
        let name = shard::nth_key_routing_to(0, 2, "adm-", 0);
        let op = Counter::inc_op(&name, 1);
        let mut c = LcmClient::new_sharded(ClientId(1), admin.client_key(), 2);
        let bump = |server: &mut shard::ShardedServer<Box<dyn BatchServer>>, c: &mut LcmClient| {
            server.submit(c.invoke_for::<Counter>(&op).unwrap());
            let mut replies = server.process_all().unwrap();
            loop {
                match c.handle_reply_on(&replies[0].1).unwrap() {
                    (_, WriteOutcome::Done(done)) => {
                        break Counter::decode_result(&done.result).unwrap()
                    }
                    // Stale table: chase the redirect under the newer
                    // one it taught us.
                    (_, WriteOutcome::Redirected { .. }) => {
                        server.submit(c.invoke_for::<Counter>(&op).unwrap());
                        replies = server.process_all().unwrap();
                    }
                }
            }
        };
        assert_eq!(bump(&mut server, &mut c), 1);

        // The admin drives the live move and the status probe answers
        // under the advanced epoch.
        let slice = slice_of(shard::route_hash(&name));
        let epoch = admin.reshard(&mut server, slice, 1).unwrap();
        assert_eq!(epoch, 1);
        assert_eq!(server.current_table().owner(slice), 1);

        // The counter's state moved with its slice: exactly-once
        // continuation on the new owner.
        assert_eq!(bump(&mut server, &mut c), 2);
    }
}
