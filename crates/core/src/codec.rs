//! Deterministic binary wire codec.
//!
//! The workspace's sanctioned dependency list has no binary serde
//! format, so wire messages and sealed state use this small,
//! deterministic, length-prefixed codec. Determinism matters: sealed
//! state must re-encode byte-identically for tests that compare blobs,
//! and the §6.3 message-overhead experiment counts exact bytes.

use std::error::Error;
use std::fmt;

use lcm_crypto::sha256::{Digest, DIGEST_LEN};

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A tag or enum discriminant had an unknown value.
    InvalidTag(u8),
    /// A length prefix exceeded the remaining input (or a sanity bound).
    LengthOutOfRange(u64),
    /// Trailing bytes remained after the value was decoded.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "unexpected end of input"),
            CodecError::InvalidTag(t) => write!(f, "invalid tag byte {t:#04x}"),
            CodecError::LengthOutOfRange(n) => write!(f, "length {n} out of range"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after value"),
        }
    }
}

impl Error for CodecError {}

/// Incremental encoder producing a byte vector.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a writer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a 32-byte digest verbatim (no length prefix).
    pub fn put_digest(&mut self, d: &Digest) {
        self.buf.extend_from_slice(d.as_bytes());
    }

    /// Appends raw bytes verbatim (no length prefix); the reader must
    /// know the length from context.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends bytes with a u32 length prefix.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a string with a u32 length prefix.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Finishes encoding, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Empties the writer while keeping its allocation — the scratch
    /// reuse primitive for per-batch hot paths.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// The bytes encoded so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Current encoded length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Incremental decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails with [`CodecError::TrailingBytes`] unless fully consumed.
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEnd);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a bool (strictly 0 or 1).
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CodecError::InvalidTag(other)),
        }
    }

    /// Reads a 32-byte digest.
    pub fn get_digest(&mut self) -> Result<Digest, CodecError> {
        let b = self.take(DIGEST_LEN)?;
        let mut arr = [0u8; DIGEST_LEN];
        arr.copy_from_slice(b);
        Ok(Digest(arr))
    }

    /// Reads all remaining bytes.
    pub fn get_rest(&mut self) -> &'a [u8] {
        let out = &self.buf[self.pos..];
        self.pos = self.buf.len();
        out
    }

    /// Reads a u32-length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.get_u32()? as usize;
        if len > self.remaining() {
            return Err(CodecError::LengthOutOfRange(len as u64));
        }
        self.take(len)
    }

    /// Reads a u32-length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, CodecError> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| CodecError::InvalidTag(0xff))
    }
}

/// Types with a canonical binary encoding.
pub trait WireCodec: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Encodes this value to a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decodes a value from `bytes`, requiring full consumption.
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] on malformed or trailing input.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcm_crypto::sha256;

    #[test]
    fn scalar_roundtrips() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(0x0123_4567_89ab_cdef);
        w.put_bool(true);
        w.put_bool(false);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        r.finish().unwrap();
    }

    #[test]
    fn bytes_and_str_roundtrip() {
        let mut w = Writer::new();
        w.put_bytes(b"payload");
        w.put_str("name");
        w.put_bytes(b"");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_bytes().unwrap(), b"payload");
        assert_eq!(r.get_str().unwrap(), "name");
        assert_eq!(r.get_bytes().unwrap(), b"");
        r.finish().unwrap();
    }

    #[test]
    fn digest_roundtrip() {
        let d = sha256::digest(b"x");
        let mut w = Writer::new();
        w.put_digest(&d);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 32);
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_digest().unwrap(), d);
    }

    #[test]
    fn rest_consumes_everything() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_raw(b"tail");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.get_u8().unwrap();
        assert_eq!(r.get_rest(), b"tail");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_input_errors() {
        let mut r = Reader::new(&[0x01, 0x02]);
        assert_eq!(r.get_u32(), Err(CodecError::UnexpectedEnd));
    }

    #[test]
    fn oversized_length_prefix_errors() {
        let mut w = Writer::new();
        w.put_u32(1000); // claims 1000 bytes follow
        w.put_raw(b"short");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_bytes(), Err(CodecError::LengthOutOfRange(1000)));
    }

    #[test]
    fn bad_bool_errors() {
        let mut r = Reader::new(&[2]);
        assert_eq!(r.get_bool(), Err(CodecError::InvalidTag(2)));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut r = Reader::new(&[1, 2]);
        r.get_u8().unwrap();
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(r.get_str().is_err());
    }

    #[test]
    fn writer_len_tracks() {
        let mut w = Writer::with_capacity(16);
        assert!(w.is_empty());
        w.put_u64(1);
        assert_eq!(w.len(), 8);
    }
}
