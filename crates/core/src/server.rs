//! The host server: enclave + stable storage + request batching.
//!
//! [`LcmServer`] is the *correct* server of the paper's model (§4.2.4):
//! it restarts the enclave after crashes, persists sealed blobs, and
//! forwards messages FIFO. A malicious server is modelled in tests by
//! driving the same pieces directly — restarting the enclave from stale
//! storage ([`lcm_storage::RollbackStorage`]), running two enclaves
//! over forked storage, or tampering with links — because the adversary
//! has exactly the host's powers, no more.

use std::collections::VecDeque;
use std::sync::Arc;

use lcm_crypto::sha256::Digest;
use lcm_storage::StableStorage;
use lcm_tee::attestation::{Quote, QuotingEnclave, Report};
use lcm_tee::enclave::Enclave;
use lcm_tee::platform::TeePlatform;

use crate::codec::WireCodec;
use crate::context::PersistBlobs;
use crate::functionality::Functionality;
use crate::program::{HostCall, HostReply, LcmProgram};
use crate::types::ClientId;
use crate::{LcmError, Result};

/// Storage slot for the sealed key blob.
pub const SLOT_KEY_BLOB: &str = "lcm.keyblob";
/// Storage slot for the sealed state blob.
pub const SLOT_STATE_BLOB: &str = "lcm.state";

/// Default batch limit, matching the paper's evaluation configuration
/// ("batching of up to 16 operations", §6.4).
pub const DEFAULT_BATCH_LIMIT: usize = 16;

/// Replies produced by one processing step, routed per client.
pub type Replies = Vec<(ClientId, Vec<u8>)>;

/// An honest host server for an LCM-protected service.
///
/// # Example
///
/// See `examples/quickstart.rs` for the full bootstrap + operation
/// flow; construction is
///
/// ```
/// use lcm_core::functionality::AppendLog;
/// use lcm_core::server::LcmServer;
/// use lcm_storage::MemoryStorage;
/// use lcm_tee::world::TeeWorld;
/// use std::sync::Arc;
///
/// let world = TeeWorld::new_deterministic(1);
/// let platform = world.platform(1);
/// let storage = Arc::new(MemoryStorage::new());
/// let server = LcmServer::<AppendLog>::new(&platform, storage, 16);
/// # let _ = server;
/// ```
pub struct LcmServer<F: Functionality> {
    enclave: Enclave<LcmProgram<F>>,
    quoting: QuotingEnclave,
    storage: Arc<dyn StableStorage>,
    batch_limit: usize,
    queue: VecDeque<Vec<u8>>,
    /// Total batches processed (one sealed store each) — used by the
    /// batching experiments.
    batches_processed: u64,
    /// Total invoke messages processed.
    ops_processed: u64,
    /// Reusable host-call encode buffer: one ecall per batch reuses the
    /// same allocation instead of building a fresh `Vec` each time.
    call_scratch: crate::codec::Writer,
    /// Reusable batch container for the wires drained out of the queue.
    batch_scratch: Vec<Vec<u8>>,
}

impl<F: Functionality> std::fmt::Debug for LcmServer<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LcmServer")
            .field("running", &self.enclave.is_running())
            .field("queued", &self.queue.len())
            .field("batch_limit", &self.batch_limit)
            .finish()
    }
}

impl<F: Functionality> LcmServer<F> {
    /// Creates a server on `platform` persisting to `storage`,
    /// batching up to `batch_limit` operations per seal-and-store
    /// cycle (1 disables batching).
    pub fn new(
        platform: &TeePlatform,
        storage: Arc<dyn StableStorage>,
        batch_limit: usize,
    ) -> Self {
        LcmServer {
            enclave: Enclave::create(platform),
            quoting: QuotingEnclave::new(platform),
            storage,
            batch_limit: batch_limit.max(1),
            queue: VecDeque::new(),
            batches_processed: 0,
            ops_processed: 0,
            call_scratch: crate::codec::Writer::new(),
            batch_scratch: Vec::new(),
        }
    }

    /// Starts (or restarts after a crash) the enclave and runs `init`
    /// with whatever blobs stable storage currently returns.
    ///
    /// Returns `true` when the context needs provisioning (first boot).
    ///
    /// # Errors
    ///
    /// Propagates TEE, storage, and context errors.
    pub fn boot(&mut self) -> Result<bool> {
        if self.enclave.is_running() {
            self.enclave.stop();
        }
        self.enclave.start()?;
        let key_blob = self.storage.load(SLOT_KEY_BLOB)?;
        let state_blob = self.storage.load(SLOT_STATE_BLOB)?;
        let reply = self.call(HostCall::Init {
            key_blob,
            state_blob,
            want_deltas: self.storage.delta_capable(),
        })?;
        match reply {
            HostReply::InitOk { need_provision } => Ok(need_provision),
            HostReply::Err(e) => Err(e.into_lcm_error()),
            other => Err(unexpected(other)),
        }
    }

    /// Simulates a crash: the enclave's volatile memory is lost.
    /// Call [`LcmServer::boot`] to recover.
    pub fn crash(&mut self) {
        self.enclave.stop();
        self.queue.clear();
    }

    /// Whether the enclave is currently running.
    pub fn is_running(&self) -> bool {
        self.enclave.is_running()
    }

    /// Number of seal-and-store cycles performed.
    pub fn batches_processed(&self) -> u64 {
        self.batches_processed
    }

    /// Number of INVOKE messages processed.
    pub fn ops_processed(&self) -> u64 {
        self.ops_processed
    }

    /// Forwards the admin's provisioning payload and persists the
    /// returned blobs.
    ///
    /// # Errors
    ///
    /// Propagates context errors (e.g. already provisioned).
    pub fn provision(&mut self, sealed_payload: Vec<u8>) -> Result<()> {
        let reply = self.call(HostCall::Provision(sealed_payload))?;
        match reply {
            HostReply::ProvisionOk(blobs) => self.persist(&blobs),
            HostReply::Err(e) => Err(e.into_lcm_error()),
            other => Err(unexpected(other)),
        }
    }

    /// Produces an attestation [`Quote`] over `user_data` for a remote
    /// verifier.
    ///
    /// # Errors
    ///
    /// Propagates TEE errors (enclave stopped, quoting failure).
    pub fn attest(&mut self, user_data: Digest) -> Result<Quote> {
        let reply = self.call(HostCall::Attest(user_data))?;
        let report_bytes = match reply {
            HostReply::AttestOk(bytes) => bytes,
            HostReply::Err(e) => return Err(e.into_lcm_error()),
            other => return Err(unexpected(other)),
        };
        let report = Report::from_bytes(&report_bytes)
            .ok_or_else(|| LcmError::Tee("malformed report".into()))?;
        Ok(self.quoting.quote(&report)?)
    }

    /// Enqueues an encrypted INVOKE message (paper §5.3: requests are
    /// collected in a bounded queue).
    pub fn submit(&mut self, invoke_wire: Vec<u8>) {
        self.queue.push_back(invoke_wire);
    }

    /// Number of queued, unprocessed messages.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Processes one batch (up to the batch limit): a single ecall, a
    /// single seal-and-store, replies routed per client.
    ///
    /// # Errors
    ///
    /// Propagates violations detected inside the context — an honest
    /// server would crash-stop at this point.
    pub fn step(&mut self) -> Result<Vec<(ClientId, Vec<u8>)>> {
        let (replies, blobs) = self.execute_batch()?;
        if let Some(blobs) = blobs {
            self.persist(&blobs)?;
        }
        Ok(replies)
    }

    /// The *execution* stage of [`LcmServer::step`]: runs one batch
    /// through the enclave and returns the replies together with the
    /// sealed blobs that still need persisting — without touching
    /// stable storage. The synchronous [`LcmServer::step`] persists
    /// them inline; [`crate::pipeline::PipelinedServer`] hands them to
    /// its background writer instead.
    pub(crate) fn execute_batch(&mut self) -> Result<(Replies, Option<PersistBlobs>)> {
        if self.queue.is_empty() {
            return Ok((Vec::new(), None));
        }
        let take = self.batch_limit.min(self.queue.len());
        // Hot path: reuse the batch container and the call encode
        // buffer across batches instead of allocating per step.
        self.batch_scratch.clear();
        self.batch_scratch.extend(self.queue.drain(..take));
        let n_ops = self.batch_scratch.len() as u64;
        self.call_scratch.clear();
        HostCall::encode_invoke_batch_into(&mut self.call_scratch, &self.batch_scratch);
        let out = self.enclave.ecall(self.call_scratch.as_slice())?;
        let reply = HostReply::from_bytes(&out)?;
        match reply {
            HostReply::BatchOk { replies, blobs } => {
                self.batches_processed += 1;
                self.ops_processed += n_ops;
                Ok((replies, Some(blobs)))
            }
            HostReply::Err(e) => Err(e.into_lcm_error()),
            other => Err(unexpected(other)),
        }
    }

    /// A clone of the stable-storage handle this server persists to.
    pub(crate) fn storage(&self) -> Arc<dyn StableStorage> {
        self.storage.clone()
    }

    /// Converts this synchronous server into a
    /// [`crate::pipeline::PipelinedServer`] whose persistence stage
    /// runs on a background writer thread (the paper's
    /// asynchronous-write mode), with the default writer-queue
    /// capacity.
    pub fn into_pipelined(self) -> crate::pipeline::PipelinedServer<F> {
        crate::pipeline::PipelinedServer::new(self)
    }

    /// Processes all queued messages, batch by batch.
    ///
    /// # Errors
    ///
    /// Same as [`LcmServer::step`].
    pub fn process_all(&mut self) -> Result<Vec<(ClientId, Vec<u8>)>> {
        let mut out = Vec::new();
        while !self.queue.is_empty() {
            out.extend(self.step()?);
        }
        Ok(out)
    }

    /// Forwards an encrypted admin message and persists the resulting
    /// state.
    ///
    /// # Errors
    ///
    /// Propagates context errors.
    pub fn admin(&mut self, admin_wire: Vec<u8>) -> Result<Vec<u8>> {
        let reply = self.call(HostCall::Admin(admin_wire))?;
        match reply {
            HostReply::AdminOk { reply, blobs } => {
                self.persist(&blobs)?;
                Ok(reply)
            }
            HostReply::Err(e) => Err(e.into_lcm_error()),
            other => Err(unexpected(other)),
        }
    }

    /// Origin side of migration (§4.6.2): exports the ticket and stops
    /// serving.
    ///
    /// # Errors
    ///
    /// Propagates context errors.
    pub fn export_migration(&mut self) -> Result<Vec<u8>> {
        let reply = self.call(HostCall::ExportMigration)?;
        match reply {
            HostReply::MigrationTicket(t) => Ok(t),
            HostReply::Err(e) => Err(e.into_lcm_error()),
            other => Err(unexpected(other)),
        }
    }

    /// Target side of migration: imports the ticket into a freshly
    /// booted, unprovisioned enclave and persists the re-sealed blobs.
    ///
    /// # Errors
    ///
    /// Propagates context errors.
    pub fn import_migration(&mut self, ticket: Vec<u8>) -> Result<()> {
        let reply = self.call(HostCall::ImportMigration(ticket))?;
        match reply {
            HostReply::ProvisionOk(blobs) => self.persist(&blobs),
            HostReply::Err(e) => Err(e.into_lcm_error()),
            other => Err(unexpected(other)),
        }
    }

    /// [`LcmServer::import_migration`] under a host-assigned replica
    /// slot: the enclave adopts the ticket's shard slot as member
    /// `replica` of a group of `replicas`. Used when a migration
    /// ticket fans out to every member of a replicated target group.
    ///
    /// # Errors
    ///
    /// Propagates context errors.
    pub fn import_migration_as(
        &mut self,
        ticket: Vec<u8>,
        replica: u32,
        replicas: u32,
    ) -> Result<()> {
        let reply = self.call(HostCall::ImportMigrationAs {
            ticket,
            replica,
            replicas,
        })?;
        match reply {
            HostReply::ProvisionOk(blobs) => self.persist(&blobs),
            HostReply::Err(e) => Err(e.into_lcm_error()),
            other => Err(unexpected(other)),
        }
    }

    /// Installs a sibling's sealed state blob into this server's
    /// enclave and persists the re-sealed result, returning the
    /// in-enclave digest of the installed blob (the acknowledgement a
    /// replica group counts toward quorum stability). See
    /// [`crate::context::TrustedContext::apply_replica`].
    ///
    /// # Errors
    ///
    /// Propagates context errors.
    pub fn apply_replica(&mut self, state_blob: Vec<u8>) -> Result<Digest> {
        let reply = self.call(HostCall::ApplyReplica(state_blob))?;
        match reply {
            HostReply::ApplyOk { digest, blobs } => {
                self.persist(&blobs)?;
                Ok(digest)
            }
            HostReply::Err(e) => Err(e.into_lcm_error()),
            other => Err(unexpected(other)),
        }
    }

    /// Origin side of a live slice migration: the enclave extracts
    /// routing slice `slice`, bumps its table to assign it to shard
    /// `to`, and hands back `(ticket, bulletin)` — the sealed slice
    /// ticket for the target and the sealed table bulletin for every
    /// bystander shard. The re-sealed full checkpoint (already missing
    /// the moved keys) is persisted here. See
    /// [`crate::context::TrustedContext::export_slice`].
    ///
    /// # Errors
    ///
    /// Propagates context errors.
    pub fn export_slice(&mut self, slice: u32, to: u32) -> Result<(Vec<u8>, Vec<u8>)> {
        let reply = self.call(HostCall::ExportSlice { slice, to })?;
        match reply {
            HostReply::SliceExported {
                ticket,
                bulletin,
                blobs,
            } => {
                self.persist(&blobs)?;
                Ok((ticket, bulletin))
            }
            HostReply::Err(e) => Err(e.into_lcm_error()),
            other => Err(unexpected(other)),
        }
    }

    /// Target side of a live slice migration: the enclave validates
    /// the sealed slice ticket, absorbs the keys, installs the bumped
    /// table, and re-seals; the checkpoint is persisted here. See
    /// [`crate::context::TrustedContext::import_slice`].
    ///
    /// # Errors
    ///
    /// Propagates context errors.
    pub fn import_slice(&mut self, ticket: Vec<u8>) -> Result<()> {
        let reply = self.call(HostCall::ImportSlice(ticket))?;
        match reply {
            HostReply::ProvisionOk(blobs) => self.persist(&blobs),
            HostReply::Err(e) => Err(e.into_lcm_error()),
            other => Err(unexpected(other)),
        }
    }

    /// Bystander side of a live slice migration: the enclave adopts
    /// the sealed table bulletin (idempotent for tables it already
    /// has) and re-seals. See
    /// [`crate::context::TrustedContext::adopt_table`].
    ///
    /// # Errors
    ///
    /// Propagates context errors.
    pub fn adopt_table(&mut self, bulletin: Vec<u8>) -> Result<()> {
        let reply = self.call(HostCall::AdoptTable(bulletin))?;
        match reply {
            HostReply::ProvisionOk(blobs) => self.persist(&blobs),
            HostReply::Err(e) => Err(e.into_lcm_error()),
            other => Err(unexpected(other)),
        }
    }

    /// Serves a replica-pinned verified read leg against this server's
    /// enclave, returning the encrypted read reply. Reads mutate no
    /// protocol state and persist nothing. See
    /// [`crate::context::TrustedContext::serve_read`].
    ///
    /// # Errors
    ///
    /// Propagates context errors (a solo server answers legs pinned to
    /// replica 0; legs pinned elsewhere fail authentication inside the
    /// enclave).
    pub fn serve_read(&mut self, read_wire: Vec<u8>) -> Result<Vec<u8>> {
        let reply = self.call(HostCall::ServeRead(read_wire))?;
        match reply {
            HostReply::ReadOk(wire) => Ok(wire),
            HostReply::Err(e) => Err(e.into_lcm_error()),
            other => Err(unexpected(other)),
        }
    }

    fn persist(&mut self, blobs: &PersistBlobs) -> Result<()> {
        // State before keys: a crash between the two stores must not
        // leave a key blob without any state — `init` treats that
        // combination as storage tampering. State-without-keys on the
        // very first persist is harmless (nothing was acknowledged; the
        // admin just re-provisions), and on every later persist both
        // blobs seal with the same keys, so either surviving alone is
        // consistent. Delta persists carry no key blob at all (keys
        // cannot change on the batch path); skip the redundant store.
        self.storage.store(SLOT_STATE_BLOB, &blobs.state_blob)?;
        if !blobs.key_blob.is_empty() {
            self.storage.store(SLOT_KEY_BLOB, &blobs.key_blob)?;
        }
        Ok(())
    }

    fn call(&mut self, call: HostCall) -> Result<HostReply> {
        self.call_scratch.clear();
        call.encode(&mut self.call_scratch);
        let out = self.enclave.ecall(self.call_scratch.as_slice())?;
        Ok(HostReply::from_bytes(&out)?)
    }
}

fn unexpected(reply: HostReply) -> LcmError {
    LcmError::Tee(format!("unexpected enclave reply: {reply:?}"))
}

/// The host-server surface the rest of the stack programs against:
/// everything a client library, admin handle, transport hub, or test
/// scenario needs, independent of whether persistence is synchronous
/// ([`LcmServer`]) or pipelined onto a background writer
/// ([`crate::pipeline::PipelinedServer`]).
///
/// The trait is object-safe so scenarios can run the same code against
/// `Box<dyn BatchServer>` in both modes. `Send` is part of the
/// contract so servers can be driven from worker threads — the sharded
/// host ([`crate::shard::ShardedServer`]) executes its shards on an
/// [`lcm_runtime::WorkerPool`].
pub trait BatchServer: Send {
    /// Starts (or restarts after a crash) the enclave; `true` means the
    /// context needs provisioning. See [`LcmServer::boot`].
    ///
    /// # Errors
    ///
    /// Propagates TEE, storage, and context errors.
    fn boot(&mut self) -> Result<bool>;

    /// Simulates a crash of the server process; volatile state is lost.
    fn crash(&mut self);

    /// Whether the enclave is currently running.
    fn is_running(&self) -> bool;

    /// Forwards the admin's provisioning payload. See
    /// [`LcmServer::provision`].
    ///
    /// # Errors
    ///
    /// Propagates context errors.
    fn provision(&mut self, sealed_payload: Vec<u8>) -> Result<()>;

    /// Produces an attestation quote over `user_data`. See
    /// [`LcmServer::attest`].
    ///
    /// # Errors
    ///
    /// Propagates TEE errors.
    fn attest(&mut self, user_data: Digest) -> Result<Quote>;

    /// Number of enclave shards behind this server: 1 for the
    /// single-enclave servers, N for the sharded fan-out
    /// ([`crate::shard::ShardedServer`]). Drives the admin's per-shard
    /// provisioning and whole-deployment attestation.
    fn shard_count(&self) -> u32 {
        1
    }

    /// Produces an attestation quote from shard `shard`'s enclave —
    /// the admin attests *every* member of a deployment, not a
    /// representative.
    ///
    /// # Errors
    ///
    /// Propagates TEE errors; `shard` out of range is an error.
    fn attest_shard(&mut self, shard: u32, user_data: Digest) -> Result<Quote> {
        if shard == 0 {
            self.attest(user_data)
        } else {
            Err(LcmError::Tee(format!(
                "attest_shard({shard}) on a single-enclave server"
            )))
        }
    }

    /// Delivers the admin's sealed provisioning payload to shard
    /// `shard`'s enclave. Each shard of a deployment receives its own
    /// payload (carrying its [`crate::context::ShardIdentity`]); the
    /// payloads are opaque to the host.
    ///
    /// # Errors
    ///
    /// Propagates context errors; `shard` out of range is an error.
    fn provision_shard(&mut self, shard: u32, sealed_payload: Vec<u8>) -> Result<()> {
        if shard == 0 {
            self.provision(sealed_payload)
        } else {
            Err(LcmError::Tee(format!(
                "provision_shard({shard}) on a single-enclave server"
            )))
        }
    }

    /// Enqueues an encrypted INVOKE message.
    fn submit(&mut self, invoke_wire: Vec<u8>);

    /// Delivers a wire to an *explicit* shard, ignoring the routing
    /// envelope — the host has this power (the honest router is just
    /// software it runs), so adversarial tests model misdelivery
    /// through it. On single-enclave servers this is `submit`. The
    /// enclave's attested-identity check makes a misdirected intact
    /// wire a detected violation, not a misplaced write.
    fn submit_to_shard(&mut self, shard: u32, invoke_wire: Vec<u8>) {
        let _ = shard;
        self.submit(invoke_wire);
    }

    /// The thread-safe `&self`-submission surface of this server, if
    /// it has one: a handle through which independent producer threads
    /// submit wires and driver threads pump lanes concurrently (see
    /// [`crate::transport::TransportPlane`] /
    /// [`crate::transport::Frontend`]).
    ///
    /// Single-enclave servers return `None` (their owner is their only
    /// driver); [`crate::shard::ShardedServer`] returns its shared
    /// core. Wrap a solo server in a one-shard `ShardedServer` (or use
    /// [`crate::transport::Frontend::solo`]) to drive it through the
    /// concurrent front-end.
    fn transport_plane(&self) -> Option<std::sync::Arc<dyn crate::transport::TransportPlane>> {
        None
    }

    /// Number of queued, unprocessed messages.
    fn queued(&self) -> usize;

    /// The server's batch limit (operations per seal-and-store
    /// cycle) — a *hint* for batch-forming front-ends: driving a lane
    /// with far fewer queued wires than this wastes seal/store cycles
    /// the single-threaded loop would have amortized.
    fn batch_limit(&self) -> usize {
        1
    }

    /// Processes one batch. See [`LcmServer::step`].
    ///
    /// # Errors
    ///
    /// Propagates violations detected inside the context.
    fn step(&mut self) -> Result<Vec<(ClientId, Vec<u8>)>>;

    /// Processes all queued messages, batch by batch.
    ///
    /// # Errors
    ///
    /// Same as [`BatchServer::step`].
    fn process_all(&mut self) -> Result<Vec<(ClientId, Vec<u8>)>> {
        let mut out = Vec::new();
        while self.queued() > 0 {
            out.extend(self.step()?);
        }
        Ok(out)
    }

    /// Forwards an encrypted admin message. See [`LcmServer::admin`].
    ///
    /// # Errors
    ///
    /// Propagates context errors.
    fn admin(&mut self, admin_wire: Vec<u8>) -> Result<Vec<u8>>;

    /// Origin side of migration. See [`LcmServer::export_migration`].
    ///
    /// # Errors
    ///
    /// Propagates context errors.
    fn export_migration(&mut self) -> Result<Vec<u8>>;

    /// Target side of migration. See [`LcmServer::import_migration`].
    ///
    /// # Errors
    ///
    /// Propagates context errors.
    fn import_migration(&mut self, ticket: Vec<u8>) -> Result<()>;

    /// Number of seal-and-store cycles performed.
    fn batches_processed(&self) -> u64;

    /// Number of INVOKE messages processed.
    fn ops_processed(&self) -> u64;

    /// Blocks until every persist issued so far has reached stable
    /// storage. A no-op for fully synchronous servers; the pipelined
    /// server drains its writer queue. Test scenarios call this before
    /// inspecting or tampering with storage so in-flight writes cannot
    /// race the inspection.
    ///
    /// # Errors
    ///
    /// Surfaces asynchronous storage failures.
    fn flush_persists(&mut self) -> Result<()> {
        Ok(())
    }

    /// Number of replicas in each shard's group: 1 for unreplicated
    /// servers, 2f+1 for [`crate::replica::ReplicaGroup`]-backed
    /// deployments. Groups are uniform across shards.
    fn replica_count(&self) -> u32 {
        1
    }

    /// Installs a sibling replica's sealed state blob into this
    /// server's enclave, returning the in-enclave digest of the
    /// installed blob. The replication driver counts the digest as
    /// this member's acknowledgement of the batch. See
    /// [`LcmServer::apply_replica`].
    ///
    /// # Errors
    ///
    /// Propagates context errors; servers outside a replica group
    /// reject.
    fn apply_replica(&mut self, state_blob: Vec<u8>) -> Result<Digest> {
        let _ = state_blob;
        Err(LcmError::Tee(
            "apply_replica on a server without a replication path".into(),
        ))
    }

    /// Serves a replica-pinned verified read leg (see
    /// [`crate::context::TrustedContext::serve_read`]) and returns the
    /// encrypted reply. The routing envelope on the wire picks the
    /// shard; the replica pin inside the AEAD picks the group member.
    ///
    /// # Errors
    ///
    /// Propagates context errors; servers without a read path reject.
    fn serve_read(&mut self, read_wire: Vec<u8>) -> Result<Vec<u8>> {
        let _ = read_wire;
        Err(LcmError::Tee(
            "verified reads are not supported by this server".into(),
        ))
    }

    /// The thread-safe `&self` read surface of this server, if it has
    /// one: reader threads call [`ReadPort::serve_read`] concurrently
    /// with the write path, which is what lets read throughput scale
    /// with replica count. Single-enclave servers return `None` (their
    /// owner drives reads through [`BatchServer::serve_read`]).
    fn read_port(&self) -> Option<Arc<dyn ReadPort>> {
        None
    }

    /// Index of the group member currently executing shard `shard`'s
    /// writes. Starts at 0; changes when a failover promotes a
    /// follower. Unreplicated servers always report 0.
    fn group_leader(&self, shard: u32) -> u32 {
        let _ = shard;
        0
    }

    /// Produces an attestation quote from member `replica` of shard
    /// `shard`'s group — the admin attests every replica of every
    /// group, not a representative per shard.
    ///
    /// # Errors
    ///
    /// Propagates TEE errors; out-of-range coordinates are an error.
    fn attest_member(&mut self, shard: u32, replica: u32, user_data: Digest) -> Result<Quote> {
        if replica == 0 {
            self.attest_shard(shard, user_data)
        } else {
            Err(LcmError::Tee(format!(
                "attest_member(shard {shard}, replica {replica}) on an unreplicated server"
            )))
        }
    }

    /// Delivers the admin's sealed provisioning payload to member
    /// `replica` of shard `shard`'s group. Each member receives its own
    /// payload carrying its `(shard, replica)` identity coordinates.
    ///
    /// # Errors
    ///
    /// Propagates context errors; out-of-range coordinates are an
    /// error.
    fn provision_member(
        &mut self,
        shard: u32,
        replica: u32,
        sealed_payload: Vec<u8>,
    ) -> Result<()> {
        if replica == 0 {
            self.provision_shard(shard, sealed_payload)
        } else {
            Err(LcmError::Tee(format!(
                "provision_member(shard {shard}, replica {replica}) on an unreplicated server"
            )))
        }
    }

    /// Crash-stops member `replica` of shard `shard`'s group (the
    /// fault-injection hook for replica-failure tests). `power_failure`
    /// additionally discards persists still queued behind the member's
    /// write pipeline, modelling a power cut rather than a process
    /// kill. On unreplicated servers replica 0 maps to
    /// [`BatchServer::crash`].
    ///
    /// # Errors
    ///
    /// Out-of-range coordinates are an error.
    fn kill_member(&mut self, shard: u32, replica: u32, power_failure: bool) -> Result<()> {
        let _ = power_failure;
        if shard == 0 && replica == 0 {
            self.crash();
            Ok(())
        } else {
            Err(LcmError::Tee(format!(
                "kill_member(shard {shard}, replica {replica}) on an unreplicated server"
            )))
        }
    }

    /// Reboots a previously killed member of shard `shard`'s group and
    /// re-admits it to replication; returns the enclave's
    /// needs-provisioning flag (see [`BatchServer::boot`]). If the
    /// group's leader seat was vacated, the group promotes before the
    /// rebooted member rejoins, so a reboot never demotes a working
    /// leader.
    ///
    /// # Errors
    ///
    /// Propagates boot errors; out-of-range coordinates are an error.
    fn reboot_member(&mut self, shard: u32, replica: u32) -> Result<bool> {
        if shard == 0 && replica == 0 {
            self.boot()
        } else {
            Err(LcmError::Tee(format!(
                "reboot_member(shard {shard}, replica {replica}) on an unreplicated server"
            )))
        }
    }

    /// Target side of migration under a host-assigned replica slot:
    /// like [`BatchServer::import_migration`], but the importing
    /// enclave adopts the ticket as member `replica` of a group of
    /// `replicas`. A replicated target fans one ticket out to every
    /// member through this.
    ///
    /// # Errors
    ///
    /// Propagates context errors.
    fn import_migration_as(&mut self, ticket: Vec<u8>, replica: u32, replicas: u32) -> Result<()> {
        if replica == 0 && replicas == 1 {
            self.import_migration(ticket)
        } else {
            Err(LcmError::Tee(format!(
                "import_migration_as(replica {replica}/{replicas}) on an unreplicated server"
            )))
        }
    }

    /// Origin side of a live slice migration on this lane's enclave:
    /// returns the sealed `(ticket, bulletin)` pair. See
    /// [`LcmServer::export_slice`]. Replicated lanes run this on the
    /// leader and ship the post-export checkpoint to followers.
    ///
    /// # Errors
    ///
    /// Propagates context errors; servers without the slice path
    /// reject.
    fn export_slice(&mut self, slice: u32, to: u32) -> Result<(Vec<u8>, Vec<u8>)> {
        let _ = (slice, to);
        Err(LcmError::Tee(
            "export_slice on a server without a slice-migration path".into(),
        ))
    }

    /// Target side of a live slice migration on this lane's enclave.
    /// See [`LcmServer::import_slice`].
    ///
    /// # Errors
    ///
    /// Propagates context errors; servers without the slice path
    /// reject.
    fn import_slice(&mut self, ticket: Vec<u8>) -> Result<()> {
        let _ = ticket;
        Err(LcmError::Tee(
            "import_slice on a server without a slice-migration path".into(),
        ))
    }

    /// Bystander side of a live slice migration on this lane's
    /// enclave. See [`LcmServer::adopt_table`].
    ///
    /// # Errors
    ///
    /// Propagates context errors; servers without the slice path
    /// reject.
    fn adopt_table(&mut self, bulletin: Vec<u8>) -> Result<()> {
        let _ = bulletin;
        Err(LcmError::Tee(
            "adopt_table on a server without a slice-migration path".into(),
        ))
    }

    /// Moves one routing slice from its current owner shard to shard
    /// `to` while both stay live, driving the export → import → adopt
    /// handshake end to end (see
    /// [`crate::shard::ShardedServer::migrate_slice`]). Servers
    /// without a multi-shard topology reject: with one shard there is
    /// nowhere to move a slice to.
    ///
    /// # Errors
    ///
    /// Propagates context errors; single-enclave servers reject.
    fn migrate_slice(&mut self, slice: u32, to: u32) -> Result<()> {
        let _ = (slice, to);
        Err(LcmError::Tee(
            "migrate_slice on a server without a multi-shard topology".into(),
        ))
    }

    /// The current routing epoch of the deployment as the host sees
    /// it: the epoch of the newest slice table any shard has
    /// installed. Static deployments stay at 0.
    fn routing_epoch(&self) -> u64 {
        0
    }

    /// Per-slice operation counts observed by the host's routing
    /// front-end since the last call, drained (heat telemetry for
    /// rebalancing). Servers without a routing front-end report an
    /// empty heat map.
    fn take_slice_heat(&self) -> Vec<u64> {
        Vec::new()
    }
}

/// A thread-safe verified-read surface: reader threads serve
/// replica-pinned read legs through `&self` while the write path runs,
/// so a 2f+1 group answers reads on all members concurrently.
///
/// Implementations lock only the addressed member (or the addressed
/// lane), never the whole deployment — that independence is the whole
/// point of follower reads.
pub trait ReadPort: Send + Sync {
    /// Serves one encrypted read leg; see [`BatchServer::serve_read`].
    ///
    /// # Errors
    ///
    /// Propagates context errors.
    fn serve_read(&self, read_wire: Vec<u8>) -> Result<Vec<u8>>;
}

impl<S: BatchServer + ?Sized> BatchServer for Box<S> {
    fn boot(&mut self) -> Result<bool> {
        (**self).boot()
    }
    fn crash(&mut self) {
        (**self).crash();
    }
    fn is_running(&self) -> bool {
        (**self).is_running()
    }
    fn provision(&mut self, sealed_payload: Vec<u8>) -> Result<()> {
        (**self).provision(sealed_payload)
    }
    fn attest(&mut self, user_data: Digest) -> Result<Quote> {
        (**self).attest(user_data)
    }
    fn shard_count(&self) -> u32 {
        (**self).shard_count()
    }
    fn attest_shard(&mut self, shard: u32, user_data: Digest) -> Result<Quote> {
        (**self).attest_shard(shard, user_data)
    }
    fn provision_shard(&mut self, shard: u32, sealed_payload: Vec<u8>) -> Result<()> {
        (**self).provision_shard(shard, sealed_payload)
    }
    fn submit(&mut self, invoke_wire: Vec<u8>) {
        (**self).submit(invoke_wire);
    }
    fn submit_to_shard(&mut self, shard: u32, invoke_wire: Vec<u8>) {
        (**self).submit_to_shard(shard, invoke_wire);
    }
    fn transport_plane(&self) -> Option<std::sync::Arc<dyn crate::transport::TransportPlane>> {
        (**self).transport_plane()
    }
    fn queued(&self) -> usize {
        (**self).queued()
    }
    fn batch_limit(&self) -> usize {
        (**self).batch_limit()
    }
    fn step(&mut self) -> Result<Vec<(ClientId, Vec<u8>)>> {
        (**self).step()
    }
    fn process_all(&mut self) -> Result<Vec<(ClientId, Vec<u8>)>> {
        (**self).process_all()
    }
    fn admin(&mut self, admin_wire: Vec<u8>) -> Result<Vec<u8>> {
        (**self).admin(admin_wire)
    }
    fn export_migration(&mut self) -> Result<Vec<u8>> {
        (**self).export_migration()
    }
    fn import_migration(&mut self, ticket: Vec<u8>) -> Result<()> {
        (**self).import_migration(ticket)
    }
    fn batches_processed(&self) -> u64 {
        (**self).batches_processed()
    }
    fn ops_processed(&self) -> u64 {
        (**self).ops_processed()
    }
    fn flush_persists(&mut self) -> Result<()> {
        (**self).flush_persists()
    }
    fn replica_count(&self) -> u32 {
        (**self).replica_count()
    }
    fn apply_replica(&mut self, state_blob: Vec<u8>) -> Result<Digest> {
        (**self).apply_replica(state_blob)
    }
    fn serve_read(&mut self, read_wire: Vec<u8>) -> Result<Vec<u8>> {
        (**self).serve_read(read_wire)
    }
    fn read_port(&self) -> Option<Arc<dyn ReadPort>> {
        (**self).read_port()
    }
    fn group_leader(&self, shard: u32) -> u32 {
        (**self).group_leader(shard)
    }
    fn attest_member(&mut self, shard: u32, replica: u32, user_data: Digest) -> Result<Quote> {
        (**self).attest_member(shard, replica, user_data)
    }
    fn provision_member(
        &mut self,
        shard: u32,
        replica: u32,
        sealed_payload: Vec<u8>,
    ) -> Result<()> {
        (**self).provision_member(shard, replica, sealed_payload)
    }
    fn kill_member(&mut self, shard: u32, replica: u32, power_failure: bool) -> Result<()> {
        (**self).kill_member(shard, replica, power_failure)
    }
    fn reboot_member(&mut self, shard: u32, replica: u32) -> Result<bool> {
        (**self).reboot_member(shard, replica)
    }
    fn import_migration_as(&mut self, ticket: Vec<u8>, replica: u32, replicas: u32) -> Result<()> {
        (**self).import_migration_as(ticket, replica, replicas)
    }
    fn export_slice(&mut self, slice: u32, to: u32) -> Result<(Vec<u8>, Vec<u8>)> {
        (**self).export_slice(slice, to)
    }
    fn import_slice(&mut self, ticket: Vec<u8>) -> Result<()> {
        (**self).import_slice(ticket)
    }
    fn adopt_table(&mut self, bulletin: Vec<u8>) -> Result<()> {
        (**self).adopt_table(bulletin)
    }
    fn migrate_slice(&mut self, slice: u32, to: u32) -> Result<()> {
        (**self).migrate_slice(slice, to)
    }
    fn routing_epoch(&self) -> u64 {
        (**self).routing_epoch()
    }
    fn take_slice_heat(&self) -> Vec<u64> {
        (**self).take_slice_heat()
    }
}

impl<F: Functionality> BatchServer for LcmServer<F> {
    fn boot(&mut self) -> Result<bool> {
        LcmServer::boot(self)
    }
    fn crash(&mut self) {
        LcmServer::crash(self);
    }
    fn is_running(&self) -> bool {
        LcmServer::is_running(self)
    }
    fn provision(&mut self, sealed_payload: Vec<u8>) -> Result<()> {
        LcmServer::provision(self, sealed_payload)
    }
    fn attest(&mut self, user_data: Digest) -> Result<Quote> {
        LcmServer::attest(self, user_data)
    }
    fn submit(&mut self, invoke_wire: Vec<u8>) {
        LcmServer::submit(self, invoke_wire);
    }
    fn queued(&self) -> usize {
        LcmServer::queued(self)
    }
    fn batch_limit(&self) -> usize {
        self.batch_limit
    }
    fn step(&mut self) -> Result<Vec<(ClientId, Vec<u8>)>> {
        LcmServer::step(self)
    }
    fn process_all(&mut self) -> Result<Vec<(ClientId, Vec<u8>)>> {
        LcmServer::process_all(self)
    }
    fn admin(&mut self, admin_wire: Vec<u8>) -> Result<Vec<u8>> {
        LcmServer::admin(self, admin_wire)
    }
    fn export_migration(&mut self) -> Result<Vec<u8>> {
        LcmServer::export_migration(self)
    }
    fn import_migration(&mut self, ticket: Vec<u8>) -> Result<()> {
        LcmServer::import_migration(self, ticket)
    }
    fn batches_processed(&self) -> u64 {
        LcmServer::batches_processed(self)
    }
    fn ops_processed(&self) -> u64 {
        LcmServer::ops_processed(self)
    }
    fn serve_read(&mut self, read_wire: Vec<u8>) -> Result<Vec<u8>> {
        LcmServer::serve_read(self, read_wire)
    }
    fn apply_replica(&mut self, state_blob: Vec<u8>) -> Result<Digest> {
        LcmServer::apply_replica(self, state_blob)
    }
    fn import_migration_as(&mut self, ticket: Vec<u8>, replica: u32, replicas: u32) -> Result<()> {
        LcmServer::import_migration_as(self, ticket, replica, replicas)
    }
    fn export_slice(&mut self, slice: u32, to: u32) -> Result<(Vec<u8>, Vec<u8>)> {
        LcmServer::export_slice(self, slice, to)
    }
    fn import_slice(&mut self, ticket: Vec<u8>) -> Result<()> {
        LcmServer::import_slice(self, ticket)
    }
    fn adopt_table(&mut self, bulletin: Vec<u8>) -> Result<()> {
        LcmServer::adopt_table(self, bulletin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::AdminHandle;
    use crate::client::LcmClient;
    use crate::functionality::AppendLog;
    use crate::stability::Quorum;
    use lcm_storage::MemoryStorage;
    use lcm_tee::world::TeeWorld;

    fn setup(n_clients: u32, batch: usize) -> (LcmServer<AppendLog>, AdminHandle, Vec<LcmClient>) {
        let world = TeeWorld::new_deterministic(42);
        let platform = world.platform_deterministic(1);
        let storage = Arc::new(MemoryStorage::new());
        let mut server = LcmServer::<AppendLog>::new(&platform, storage, batch);
        assert!(server.boot().unwrap());

        let clients: Vec<ClientId> = (1..=n_clients).map(ClientId).collect();
        let mut admin =
            AdminHandle::new_deterministic(&world, clients.clone(), Quorum::Majority, 7);
        admin.bootstrap(&mut server).unwrap();

        let lcm_clients = clients
            .iter()
            .map(|&id| LcmClient::new(id, admin.client_key()))
            .collect();
        (server, admin, lcm_clients)
    }

    #[test]
    fn end_to_end_single_client() {
        let (mut server, _admin, mut clients) = setup(1, 1);
        let c = &mut clients[0];
        server.submit(c.invoke(b"first").unwrap());
        let replies = server.process_all().unwrap();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].0, c.id());
        let done = c.handle_reply(&replies[0].1).unwrap();
        assert_eq!(done.seq.0, 1);
    }

    #[test]
    fn end_to_end_three_clients_two_rounds() {
        let (mut server, _admin, mut clients) = setup(3, 16);
        // Round 1.
        for c in clients.iter_mut() {
            server.submit(c.invoke(b"round-1").unwrap());
        }
        let replies = server.process_all().unwrap();
        assert_eq!(replies.len(), 3);
        for (id, wire) in &replies {
            let c = clients.iter_mut().find(|c| c.id() == *id).unwrap();
            c.handle_reply(wire).unwrap();
        }
        // Round 2: acknowledgements flow, stability advances.
        for c in clients.iter_mut() {
            server.submit(c.invoke(b"round-2").unwrap());
        }
        let replies = server.process_all().unwrap();
        let mut max_stable = 0;
        for (id, wire) in &replies {
            let c = clients.iter_mut().find(|c| c.id() == *id).unwrap();
            let done = c.handle_reply(wire).unwrap();
            max_stable = max_stable.max(done.stable.0);
        }
        assert!(max_stable >= 1, "stability should advance in round 2");
    }

    #[test]
    fn batching_amortizes_stores() {
        let (mut server, _admin, mut clients) = setup(3, 16);
        for c in clients.iter_mut() {
            server.submit(c.invoke(b"op").unwrap());
        }
        server.process_all().unwrap();
        assert_eq!(server.batches_processed(), 1, "one batch for 3 ops");
        assert_eq!(server.ops_processed(), 3);

        let (mut server2, _admin2, mut clients2) = setup(3, 1);
        for c in clients2.iter_mut() {
            server2.submit(c.invoke(b"op").unwrap());
        }
        server2.process_all().unwrap();
        assert_eq!(server2.batches_processed(), 3, "no batching: 3 stores");
    }

    #[test]
    fn crash_and_recover_preserves_service() {
        let (mut server, _admin, mut clients) = setup(1, 1);
        let c = &mut clients[0];
        server.submit(c.invoke(b"before-crash").unwrap());
        let replies = server.process_all().unwrap();
        c.handle_reply(&replies[0].1).unwrap();

        server.crash();
        assert!(!server.is_running());
        assert!(!server.boot().unwrap(), "recovered, no provisioning needed");

        server.submit(c.invoke(b"after-crash").unwrap());
        let replies = server.process_all().unwrap();
        let done = c.handle_reply(&replies[0].1).unwrap();
        assert_eq!(done.seq.0, 2, "sequence continues after recovery");
    }

    #[test]
    fn crash_with_lost_request_retry_executes() {
        let (mut server, _admin, mut clients) = setup(1, 1);
        let c = &mut clients[0];
        // Request submitted but server crashes before processing.
        server.submit(c.invoke(b"lost").unwrap());
        server.crash();
        server.boot().unwrap();
        // Client times out and retries.
        server.submit(c.retry().unwrap());
        let replies = server.process_all().unwrap();
        let done = c.handle_reply(&replies[0].1).unwrap();
        assert_eq!(done.seq.0, 1);
    }

    #[test]
    fn crash_after_store_retry_resends_cached_reply() {
        let (mut server, _admin, mut clients) = setup(1, 1);
        let c = &mut clients[0];
        // Request processed and stored, but the reply never reaches the
        // client (server crashes right after).
        server.submit(c.invoke(b"answered-but-lost").unwrap());
        let _dropped_replies = server.process_all().unwrap();
        server.crash();
        server.boot().unwrap();
        // Retry: T must resend the cached result, not re-execute.
        server.submit(c.retry().unwrap());
        let replies = server.process_all().unwrap();
        let done = c.handle_reply(&replies[0].1).unwrap();
        assert_eq!(done.seq.0, 1, "same sequence number as the lost reply");
    }
}
