//! The LCM client (paper Alg. 1 + retry extension §4.6.1).
//!
//! A client keeps only small, constant state — `(tc, ts, hc)` plus the
//! communication key — which is the paper's headline simplification
//! over prior fork-linearizable protocols where clients verified every
//! other client's operations.

use lcm_crypto::aead::{self, AeadKey};
use lcm_crypto::keys::SecretKey;

use crate::codec::WireCodec;
use crate::context::{invoke_aad, read_aad, read_reply_aad, reply_aad};
use crate::functionality::Functionality;
use crate::routing::SliceTable;
use crate::shard::route_for;
use crate::types::{ChainValue, ClientId, Completion, SeqNo};
use crate::verify::OpRecord;
use crate::wire::{
    InvokeMsg, ReadHint, ReadMsg, ReadReplyMsg, ReplyMsg, RouteHint, READ_HINT_LEN, ROUTE_HINT_LEN,
};
use crate::{LcmError, Result, Violation};

/// Outcome of a verified read leg ([`LcmClient::handle_read_reply`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The replica held the client's exact context: the result is as
    /// trustworthy as a leader reply (same per-shard history context,
    /// same AEAD channel). The read did not advance `(tc, hc)` — reads
    /// don't extend the hash chain — but may have advanced `ts`.
    Fresh(Completion),
    /// The pinned replica lags the client's last completed operation
    /// (it has not yet applied the quorum round that acknowledged it).
    /// Not a violation: the pending read is cleared so the caller can
    /// re-issue, typically pinning a different replica or falling back
    /// to the write path.
    Behind,
    /// The routing slice the read targets migrated to another shard
    /// under a newer routing epoch, which the client has now adopted.
    /// The pending read is cleared; re-issue it and it will route to
    /// the new owner.
    Moved,
}

/// Outcome of a write reply ([`LcmClient::handle_reply_on`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOutcome {
    /// The operation executed on its owning shard.
    Done(Completion),
    /// The shard answered with a *redirect* instead of executing: the
    /// operation's routing slice migrated away under a newer routing
    /// epoch, which the client has now adopted. The redirect advanced
    /// this shard's context like any operation (it occupies a sequence
    /// number and a link of the hash chain), but the operation itself
    /// did **not** execute — re-invoke `op`, and the adopted table
    /// routes it to its new owner as a fresh invocation under that
    /// shard's own context.
    Redirected {
        /// The original operation, handed back for re-invocation.
        op: Vec<u8>,
    },
}

/// An operation awaiting its reply.
#[derive(Debug, Clone)]
struct Pending {
    op: Vec<u8>,
    /// Context captured at invocation, so retries are byte-faithful.
    tc: SeqNo,
    hc: ChainValue,
    /// Route hash the operation was sent under (part of the AAD, so
    /// retries must reuse it).
    route: u32,
    /// Routing epoch the wire was stamped with (also in the AAD; a
    /// table adopted mid-flight must not re-stamp this operation).
    epoch: u64,
}

/// A verified read leg awaiting its reply (replicated deployments,
/// [`LcmClient::read_routed`]).
#[derive(Debug, Clone)]
struct PendingRead {
    op: Vec<u8>,
    /// Context the read is verified against — the client's latest
    /// completed operation on the shard.
    tc: SeqNo,
    hc: ChainValue,
    route: u32,
    /// The replica the leg is pinned to (inside the AEAD — a host
    /// cannot re-aim the leg or substitute another replica's answer).
    replica: u32,
    /// Routing epoch the leg was stamped with (part of the AAD).
    epoch: u64,
}

/// The client's protocol context against one shard of the service:
/// `(tc, ts, hc)` plus the in-flight operation, exactly the paper's
/// per-client state, kept once per shard (a single entry for an
/// unsharded deployment).
#[derive(Debug, Clone, Default)]
struct ShardCtx {
    tc: SeqNo,
    ts: SeqNo,
    hc: ChainValue,
    pending: Option<Pending>,
    /// At most one read leg in flight per shard, mutually exclusive
    /// with a pending write on the same shard: a write completing
    /// while a read is out would advance `(tc, hc)` past the context
    /// the read is verified against, turning an honest reply into a
    /// false violation.
    pending_read: Option<PendingRead>,
}

/// Identifier of a registered stability watch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WatchId(pub u64);

/// A fired stability notification: the watched threshold and the
/// watermark that satisfied it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilityEvent {
    /// The watch that fired.
    pub watch: WatchId,
    /// The threshold that was registered.
    pub threshold: SeqNo,
    /// The majority-stable watermark that crossed it.
    pub watermark: SeqNo,
}

/// The client-side protocol state machine.
///
/// Sequential use: [`LcmClient::invoke`] produces the wire message for
/// one operation; [`LcmClient::handle_reply`] consumes the reply and
/// returns the [`Completion`]. Invoking while an operation is pending
/// is an error ("each client invokes operations sequentially", §4.1).
/// If no reply arrives, [`LcmClient::retry`] re-produces the message
/// with the retry flag set.
///
/// On any detected violation the client halts permanently: the server
/// has been caught cheating and the out-of-band alarm (outside the
/// protocol) is raised.
///
/// # Example
///
/// ```
/// use lcm_core::client::LcmClient;
/// use lcm_core::types::ClientId;
/// use lcm_crypto::keys::SecretKey;
///
/// let k_c = SecretKey::generate();
/// let mut client = LcmClient::new(ClientId(1), &k_c);
/// let wire = client.invoke(b"PUT k v").unwrap();
/// // send `wire` to the server; feed the reply to handle_reply()
/// # let _ = wire;
/// ```
pub struct LcmClient {
    id: ClientId,
    key: AeadKey,
    /// One protocol context per shard of the deployment (length 1 for
    /// an unsharded server). A sharded service is N independent LCM
    /// instances, so the paper's constant client state exists once per
    /// shard the client actually touches.
    shards: Vec<ShardCtx>,
    /// The routing slice table the client maps routes through. Starts
    /// as the genesis uniform table for the deployment's shard count
    /// and advances as redirects hand the client newer epochs.
    table: SliceTable,
    /// Shard indices of in-flight operations, in submission order.
    /// An honest hub/sharded host delivers replies in this order, but
    /// the client does not depend on it: each reply is attributed to
    /// its operation by AAD authentication (the reply AAD binds the
    /// op's route), so a sibling shard's crash-stop cannot make an
    /// honest out-of-order delivery look like an attack.
    pending_order: std::collections::VecDeque<u32>,
    halted: bool,
    /// Optional completion log for the omniscient history checker.
    recording: Option<Vec<OpRecord>>,
    /// Registered stability watches (paper §4.5's callback-mechanism
    /// extension, as used by Venus): `(id, shard, threshold)`, fired
    /// once. Sequence numbers are per shard, so each watch is bound to
    /// one shard's watermark.
    watches: Vec<(WatchId, u32, SeqNo)>,
    next_watch: u64,
    /// Fired notifications awaiting collection.
    notifications: Vec<StabilityEvent>,
}

impl std::fmt::Debug for LcmClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LcmClient")
            .field("id", &self.id)
            .field("shards", &self.shards.len())
            .field("tc", &self.last_seq())
            .field("ts", &self.stable_seq())
            .field("halted", &self.halted)
            .finish()
    }
}

impl LcmClient {
    /// Creates a client with identity `id` holding the group
    /// communication key `kC`, talking to an unsharded (single-shard)
    /// deployment.
    pub fn new(id: ClientId, k_c: &SecretKey) -> Self {
        Self::new_sharded(id, k_c, 1)
    }

    /// Creates a client for a deployment of `n_shards` server shards
    /// (see [`crate::shard::ShardedServer`]). The client keeps one
    /// `(tc, ts, hc)` context per shard; `n_shards = 1` is exactly the
    /// paper's client.
    pub fn new_sharded(id: ClientId, k_c: &SecretKey, n_shards: u32) -> Self {
        LcmClient {
            id,
            key: AeadKey::from_secret(k_c),
            shards: vec![ShardCtx::default(); n_shards.max(1) as usize],
            table: SliceTable::uniform(n_shards.max(1)),
            pending_order: std::collections::VecDeque::new(),
            halted: false,
            recording: None,
            watches: Vec::new(),
            next_watch: 0,
            notifications: Vec::new(),
        }
    }

    /// This client's identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Number of shard contexts this client maintains.
    pub fn n_shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// The routing epoch of the slice table this client currently
    /// routes by (0 until a redirect hands it a newer table).
    pub fn routing_epoch(&self) -> u64 {
        self.table.epoch()
    }

    /// The shard a route hash maps to under the client's current
    /// slice table.
    pub fn shard_of_route(&self, route: u32) -> u32 {
        self.table.shard_of(route)
    }

    /// The slice table this client currently routes by.
    pub fn slice_table(&self) -> &crate::routing::SliceTable {
        &self.table
    }

    /// Sequence number of the last completed operation — the maximum
    /// over shard contexts (sequence numbers are per shard).
    pub fn last_seq(&self) -> SeqNo {
        self.shards
            .iter()
            .map(|s| s.tc)
            .max()
            .unwrap_or(SeqNo::ZERO)
    }

    /// Latest known majority-stable sequence number — the maximum over
    /// shard contexts.
    pub fn stable_seq(&self) -> SeqNo {
        self.shards
            .iter()
            .map(|s| s.ts)
            .max()
            .unwrap_or(SeqNo::ZERO)
    }

    /// Hash-chain value of the last completed operation on `shard`
    /// (shard 0 is *the* chain value for an unsharded deployment).
    pub fn chain_value_on(&self, shard: u32) -> ChainValue {
        self.shards[shard as usize].hc
    }

    /// Hash-chain value of the last completed operation (shard 0).
    pub fn chain_value(&self) -> ChainValue {
        self.chain_value_on(0)
    }

    /// The `(tc, ts)` pair of one shard context.
    pub fn shard_seqs(&self, shard: u32) -> (SeqNo, SeqNo) {
        let ctx = &self.shards[shard as usize];
        (ctx.tc, ctx.ts)
    }

    /// Whether any operation is awaiting its reply.
    pub fn has_pending(&self) -> bool {
        !self.pending_order.is_empty()
    }

    /// Whether this client has detected a violation and halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Installs a rotated communication key (after a membership change
    /// distributed by the admin, §4.6.3).
    pub fn rotate_key(&mut self, new_k_c: &SecretKey) {
        self.key = AeadKey::from_secret(new_k_c);
    }

    /// Enables completion recording for the history checkers.
    pub fn set_recording(&mut self, on: bool) {
        self.recording = if on { Some(Vec::new()) } else { None };
    }

    /// The recorded completions, if recording is enabled.
    pub fn records(&self) -> &[OpRecord] {
        self.recording.as_deref().unwrap_or(&[])
    }

    /// Registers a one-shot watch that fires when the majority-stable
    /// watermark reaches `threshold` (§4.5: "clients can register for
    /// notifications of stability updates", the Venus mechanism).
    ///
    /// Watches shard 0 — for an unsharded deployment, *the* watermark.
    /// Against a sharded deployment use
    /// [`LcmClient::watch_stability_on`] with the shard of the
    /// operation in question: sequence numbers are per shard, so only
    /// that shard's watermark says anything about the operation's
    /// durability.
    pub fn watch_stability(&mut self, threshold: SeqNo) -> WatchId {
        self.watch_stability_on(0, threshold)
    }

    /// Registers a one-shot watch against one shard's majority-stable
    /// watermark. Fires immediately into the queue if the threshold is
    /// already covered. An application typically watches the sequence
    /// number of a critical operation before acting on it irrevocably.
    pub fn watch_stability_on(&mut self, shard: u32, threshold: SeqNo) -> WatchId {
        let id = WatchId(self.next_watch);
        self.next_watch += 1;
        let ts = self.shards[shard as usize].ts;
        if ts >= threshold {
            self.notifications.push(StabilityEvent {
                watch: id,
                threshold,
                watermark: ts,
            });
        } else {
            self.watches.push((id, shard, threshold));
        }
        id
    }

    /// Drains fired stability notifications.
    pub fn take_notifications(&mut self) -> Vec<StabilityEvent> {
        std::mem::take(&mut self.notifications)
    }

    fn fire_watches(&mut self) {
        let shards = &self.shards;
        let (fired, kept): (Vec<_>, Vec<_>) = std::mem::take(&mut self.watches)
            .into_iter()
            .partition(|&(_, shard, t)| shards[shard as usize].ts >= t);
        self.watches = kept;
        for (watch, shard, threshold) in fired {
            self.notifications.push(StabilityEvent {
                watch,
                threshold,
                watermark: self.shards[shard as usize].ts,
            });
        }
    }

    /// Produces the encrypted INVOKE message for operation `op`
    /// (Alg. 1 `invoke`).
    ///
    /// # Errors
    ///
    /// * [`LcmError::OperationPending`] — the previous operation has
    ///   not completed.
    /// * [`LcmError::Halted`] — a violation was detected earlier.
    pub fn invoke(&mut self, op: &[u8]) -> Result<Vec<u8>> {
        self.invoke_routed(op, None)
    }

    /// [`LcmClient::invoke`] with the functionality's partition key
    /// derived from the plaintext op — the entry point for sharded
    /// deployments: `client.invoke_for::<KvStore>(&op_bytes)`.
    ///
    /// # Errors
    ///
    /// Same as [`LcmClient::invoke`].
    pub fn invoke_for<F: Functionality>(&mut self, op: &[u8]) -> Result<Vec<u8>> {
        self.invoke_routed(op, F::shard_key(op))
    }

    /// Produces the encrypted INVOKE for `op`, routed by `shard_key`
    /// (`None` routes by client identity). The route hash travels in a
    /// plaintext envelope bound into the AAD; the operation is invoked
    /// against the matching shard's context.
    ///
    /// On a sharded deployment the `shard_key` must be the one the
    /// functionality itself derives (use [`LcmClient::invoke_for`]):
    /// the receiving enclave recomputes the route from the decrypted
    /// operation's `Functionality::shard_key` and halts with
    /// [`crate::Violation::WrongShard`] if the envelope disagrees —
    /// an envelope may not lie about its own operation.
    ///
    /// # Errors
    ///
    /// * [`LcmError::OperationPending`] — an operation is already
    ///   pending **on that shard** (per-shard sequential invocation;
    ///   operations on different shards may be pipelined).
    /// * [`LcmError::Halted`] — a violation was detected earlier.
    pub fn invoke_routed(&mut self, op: &[u8], shard_key: Option<&[u8]>) -> Result<Vec<u8>> {
        if self.halted {
            return Err(LcmError::Halted);
        }
        let route = route_for(self.id, shard_key);
        let shard = self.table.shard_of(route);
        let ctx = &self.shards[shard as usize];
        if ctx.pending.is_some() || ctx.pending_read.is_some() {
            return Err(LcmError::OperationPending);
        }
        let pending = Pending {
            op: op.to_vec(),
            tc: ctx.tc,
            hc: ctx.hc,
            route,
            epoch: self.table.epoch(),
        };
        let wire = self.encode_invoke(&pending, false)?;
        self.shards[shard as usize].pending = Some(pending);
        self.pending_order.push_back(shard);
        Ok(wire)
    }

    /// Re-produces the **oldest** pending INVOKE with the retry flag
    /// set (crash-tolerance extension §4.6.1; send after a timeout).
    /// With at most one operation in flight — the paper's sequential
    /// client — "oldest" is simply "the" pending operation.
    ///
    /// # Errors
    ///
    /// * [`LcmError::NothingToRetry`] — no operation is pending.
    /// * [`LcmError::Halted`] — the client has halted.
    pub fn retry(&mut self) -> Result<Vec<u8>> {
        if self.halted {
            return Err(LcmError::Halted);
        }
        let &shard = self.pending_order.front().ok_or(LcmError::NothingToRetry)?;
        let pending = self.shards[shard as usize]
            .pending
            .clone()
            .ok_or(LcmError::NothingToRetry)?;
        self.encode_invoke(&pending, true)
    }

    fn encode_invoke(&self, pending: &Pending, retry: bool) -> Result<Vec<u8>> {
        let msg = InvokeMsg {
            client: self.id,
            tc: pending.tc,
            hc: pending.hc,
            retry,
            op: pending.op.clone(),
        };
        let ciphertext = aead::auth_encrypt(
            &self.key,
            &msg.to_bytes(),
            &invoke_aad(self.id, pending.route, pending.tc.0, pending.epoch),
        )
        .map_err(|e| LcmError::Tee(e.to_string()))?;
        let mut wire = Vec::with_capacity(ROUTE_HINT_LEN + ciphertext.len());
        RouteHint {
            client: self.id,
            route: pending.route,
            // `tc` is fixed when the op is first submitted, so a retry
            // re-encodes the *same* envelope sequence — the property
            // the host-side dedup of `crate::admission` keys on.
            seq: pending.tc.0,
            // Likewise the routing epoch: a retry replays the stamp of
            // the original submission even if the client has adopted a
            // newer table since (the AAD binds it).
            epoch: pending.epoch,
        }
        .encode_to(&mut wire);
        wire.extend_from_slice(&ciphertext);
        Ok(wire)
    }

    /// Produces an encrypted verified-read leg for the read-only
    /// operation `op`, routed by the functionality's partition key and
    /// pinned to `replica` of the target shard's replica group.
    ///
    /// # Errors
    ///
    /// Same as [`LcmClient::read_routed`].
    pub fn read_for<F: Functionality>(&mut self, op: &[u8], replica: u32) -> Result<Vec<u8>> {
        self.read_routed(op, F::shard_key(op), replica)
    }

    /// Produces an encrypted READ leg for the read-only operation
    /// `op`, routed by `shard_key` (`None` routes by client identity)
    /// and pinned to `replica` within the target shard's group.
    ///
    /// The leg carries the client's full context `(tc, hc)` for that
    /// shard; the serving replica answers only if its own recorded
    /// entry for this client matches **exactly** — the same
    /// rollback/fork check a write performs, minus the chain
    /// extension. Replica 0 (the leader) is always a valid pin; higher
    /// slots scale read throughput across followers.
    ///
    /// # Errors
    ///
    /// * [`LcmError::OperationPending`] — a write **or** read is
    ///   already in flight on that shard. Reads and writes on one
    ///   shard are mutually exclusive: a write completing mid-read
    ///   would advance `(tc, hc)` past the context the read is
    ///   verified against, turning an honest follower reply into a
    ///   false violation.
    /// * [`LcmError::Halted`] — a violation was detected earlier.
    pub fn read_routed(
        &mut self,
        op: &[u8],
        shard_key: Option<&[u8]>,
        replica: u32,
    ) -> Result<Vec<u8>> {
        if self.halted {
            return Err(LcmError::Halted);
        }
        let route = route_for(self.id, shard_key);
        let shard = self.table.shard_of(route);
        let ctx = &self.shards[shard as usize];
        if ctx.pending.is_some() || ctx.pending_read.is_some() {
            return Err(LcmError::OperationPending);
        }
        let pending = PendingRead {
            op: op.to_vec(),
            tc: ctx.tc,
            hc: ctx.hc,
            route,
            replica,
            epoch: self.table.epoch(),
        };
        let wire = self.encode_read(&pending)?;
        self.shards[shard as usize].pending_read = Some(pending);
        Ok(wire)
    }

    /// Re-produces the pending read leg on `shard`, optionally
    /// re-pinning it to a different replica (after a timeout or a
    /// [`ReadOutcome::Behind`]-less silence — e.g. the pinned follower
    /// crashed). Reads are idempotent and never advance the context,
    /// so re-pinning is always safe; the new AAD simply addresses a
    /// different group member.
    ///
    /// # Errors
    ///
    /// * [`LcmError::NothingToRetry`] — no read is pending on `shard`.
    /// * [`LcmError::Halted`] — the client has halted.
    pub fn retry_read(&mut self, shard: u32, replica: Option<u32>) -> Result<Vec<u8>> {
        if self.halted {
            return Err(LcmError::Halted);
        }
        let ctx = self
            .shards
            .get_mut(shard as usize)
            .ok_or(LcmError::NothingToRetry)?;
        let pending = ctx.pending_read.as_mut().ok_or(LcmError::NothingToRetry)?;
        if let Some(r) = replica {
            pending.replica = r;
        }
        let pending = pending.clone();
        self.encode_read(&pending)
    }

    /// Abandons the pending read leg on `shard` (e.g. to fall back to
    /// the write path when the group has no live follower). Safe
    /// because reads never advance the client context; a late reply to
    /// the abandoned leg must **not** be fed to
    /// [`LcmClient::handle_read_reply`] afterwards.
    pub fn cancel_read(&mut self, shard: u32) {
        if let Some(ctx) = self.shards.get_mut(shard as usize) {
            ctx.pending_read = None;
        }
    }

    /// Whether a read leg is in flight on `shard`.
    pub fn has_pending_read(&self, shard: u32) -> bool {
        self.shards
            .get(shard as usize)
            .is_some_and(|c| c.pending_read.is_some())
    }

    fn encode_read(&self, pending: &PendingRead) -> Result<Vec<u8>> {
        let msg = ReadMsg {
            client: self.id,
            tc: pending.tc,
            hc: pending.hc,
            op: pending.op.clone(),
        };
        let ciphertext = aead::auth_encrypt(
            &self.key,
            &msg.to_bytes(),
            &read_aad(
                self.id,
                pending.route,
                pending.tc.0,
                pending.replica,
                pending.epoch,
            ),
        )
        .map_err(|e| LcmError::Tee(e.to_string()))?;
        let mut wire = Vec::with_capacity(READ_HINT_LEN + ciphertext.len());
        ReadHint {
            client: self.id,
            route: pending.route,
            seq: pending.tc.0,
            replica: pending.replica,
            epoch: pending.epoch,
        }
        .encode_to(&mut wire);
        wire.extend_from_slice(&ciphertext);
        Ok(wire)
    }

    /// Consumes a READ-REPLY leg, completing the pending read on the
    /// shard it authenticates against.
    ///
    /// A [`ReadOutcome::Fresh`] result passed exactly the context
    /// check a write reply would (`t = tc ∧ h = hc` inside the serving
    /// enclave, echo verified here); [`ReadOutcome::Behind`] clears
    /// the pending read so the caller can re-issue elsewhere.
    ///
    /// # Errors
    ///
    /// * [`LcmError::Violation`] — authentication failure, an echo
    ///   mismatch, a fresh reply whose `(t, h)` differ from the leg's
    ///   context, or a stability regression; the client halts.
    /// * [`LcmError::Violation`] with [`Violation::UnexpectedReply`] —
    ///   no read pending anywhere.
    pub fn handle_read_reply(&mut self, wire: &[u8]) -> Result<ReadOutcome> {
        if self.halted {
            return Err(LcmError::Halted);
        }
        // Identify the read this reply answers by AAD authentication,
        // like handle_reply_on does for writes: at most one read per
        // shard, each under a distinct (route, seq, replica) AAD.
        let mut matched = None;
        for (idx, ctx) in self.shards.iter().enumerate() {
            let Some(pending) = ctx.pending_read.as_ref() else {
                continue;
            };
            let aad = read_reply_aad(
                self.id,
                pending.route,
                pending.tc.0,
                pending.replica,
                pending.epoch,
            );
            if let Ok(p) = aead::auth_decrypt(&self.key, wire, &aad) {
                matched = Some((idx as u32, p));
                break;
            }
        }
        let Some((shard, plain)) = matched else {
            self.halted = true;
            if self.shards.iter().all(|c| c.pending_read.is_none()) {
                return Err(Violation::UnexpectedReply.into());
            }
            return Err(Violation::BadAuthentication.into());
        };
        let pending = self.shards[shard as usize]
            .pending_read
            .clone()
            .expect("matched pending read exists");
        let reply = match ReadReplyMsg::from_bytes(&plain) {
            Ok(m) => m,
            Err(_) => {
                self.halted = true;
                return Err(Violation::BadAuthentication.into());
            }
        };

        // assert h'c = hc — the echo ties the reply to this leg.
        if reply.hc_echo != pending.hc {
            self.halted = true;
            return Err(Violation::ReplyMismatch {
                expected: pending.hc,
                got: reply.hc_echo,
            }
            .into());
        }

        match reply.status {
            crate::wire::ReadStatus::Behind => {
                // The member hasn't applied the round holding our last
                // op yet (or has not adopted the routing table we
                // stamped the leg with). Retryable, not an attack:
                // quorum stability means at least a quorum HAS applied
                // it, just not this member.
                self.shards[shard as usize].pending_read = None;
                return Ok(ReadOutcome::Behind);
            }
            crate::wire::ReadStatus::Moved => {
                // The slice migrated away under a newer table, carried
                // in the result: adopt it and let the caller re-issue
                // against the new owner.
                self.adopt_table(&reply.result)?;
                self.shards[shard as usize].pending_read = None;
                return Ok(ReadOutcome::Moved);
            }
            crate::wire::ReadStatus::Fresh => {}
        }

        // Fresh: the member's recorded entry must BE our context, and
        // its stable watermark can only have moved forward relative to
        // what any earlier reply on this shard told us.
        let ctx = &self.shards[shard as usize];
        if reply.t != pending.tc || reply.h != pending.hc || reply.q < ctx.ts {
            self.halted = true;
            return Err(Violation::ReplyMismatch {
                expected: pending.hc,
                got: reply.h,
            }
            .into());
        }

        let ctx = &mut self.shards[shard as usize];
        ctx.ts = reply.q; // reads piggyback stability, never (tc, hc)
        ctx.pending_read = None;
        self.fire_watches();

        Ok(ReadOutcome::Fresh(Completion {
            result: reply.result,
            seq: reply.t,
            stable: reply.q,
        }))
    }

    /// Adopts a slice table handed back by a redirect or moved-read
    /// reply (already authenticated as part of that reply). Newer
    /// epochs replace the client's table; older or equal epochs are
    /// no-ops (several in-flight redirects can race to deliver the
    /// same bump). A table that fails to decode or names a different
    /// shard count cannot come from an honest enclave of this
    /// deployment: the client halts.
    fn adopt_table(&mut self, encoded: &[u8]) -> Result<()> {
        let table = match SliceTable::from_bytes(encoded) {
            Ok(t) => t,
            Err(_) => {
                self.halted = true;
                return Err(Violation::BadAuthentication.into());
            }
        };
        if table.count() != self.shards.len() as u32 {
            self.halted = true;
            return Err(Violation::BadAuthentication.into());
        }
        if table.epoch() > self.table.epoch() {
            self.table = table;
        }
        Ok(())
    }

    /// Consumes a REPLY message, completing the pending operation
    /// (Alg. 1 `upon receiving reply`).
    ///
    /// # Errors
    ///
    /// * [`LcmError::Violation`] — authentication failure or an echo
    ///   mismatch (`assert h'c = hc`); the client halts.
    /// * [`LcmError::Violation`] with [`Violation::UnexpectedReply`] —
    ///   no operation pending.
    /// * [`LcmError::Tee`] — the reply was a resharding redirect; this
    ///   convenience wrapper cannot hand the operation back, so
    ///   deployments that migrate slices must drive
    ///   [`LcmClient::handle_reply_on`] and re-invoke on
    ///   [`WriteOutcome::Redirected`]. The redirect itself was
    ///   processed (context advanced, table adopted) — only the
    ///   re-invocation is on the caller.
    pub fn handle_reply(&mut self, wire: &[u8]) -> Result<Completion> {
        match self.handle_reply_on(wire)? {
            (_, WriteOutcome::Done(done)) => Ok(done),
            (_, WriteOutcome::Redirected { .. }) => Err(LcmError::Tee(
                "operation redirected during resharding; use handle_reply_on and re-invoke".into(),
            )),
        }
    }

    /// [`LcmClient::handle_reply`], additionally reporting **which
    /// shard's** pending operation the reply completed (identified by
    /// AAD authentication, not by delivery order), and surfacing
    /// resharding redirects as [`WriteOutcome::Redirected`] instead of
    /// an error. Scatter-gather callers use the shard index to pair
    /// each merged leg back to the operation it answers.
    ///
    /// # Errors
    ///
    /// Same as [`LcmClient::handle_reply`], minus the redirect case.
    pub fn handle_reply_on(&mut self, wire: &[u8]) -> Result<(u32, WriteOutcome)> {
        if self.halted {
            return Err(LcmError::Halted);
        }
        if self.pending_order.is_empty() {
            self.halted = true;
            return Err(Violation::UnexpectedReply.into());
        }
        // The reply AAD binds (client, route), and concurrent pendings
        // necessarily carry distinct routes (one pending per shard),
        // so authentication *identifies* the operation being
        // completed: try each in-flight op in submission order and
        // take the one whose AAD verifies. This keeps the client sound
        // when replies cross shards out of order — e.g. after a
        // sibling shard crash-stopped and its reply will never come —
        // while a swapped or foreign reply authenticates under no
        // pending route at all.
        let mut matched = None;
        for (pos, &shard) in self.pending_order.iter().enumerate() {
            let pending = self.shards[shard as usize]
                .pending
                .as_ref()
                .expect("pending_order entries always have a pending op");
            if let Ok(p) = aead::auth_decrypt(
                &self.key,
                wire,
                &reply_aad(self.id, pending.route, pending.epoch),
            ) {
                matched = Some((pos, shard, p));
                break;
            }
        }
        let Some((pos, shard, plain)) = matched else {
            self.halted = true;
            return Err(Violation::BadAuthentication.into());
        };
        let pending = self.shards[shard as usize]
            .pending
            .clone()
            .expect("matched pending exists");
        let reply = match ReplyMsg::from_bytes(&plain) {
            Ok(m) => m,
            Err(_) => {
                self.halted = true;
                return Err(Violation::BadAuthentication.into());
            }
        };

        // assert h'c = hc — against the invocation-time context.
        if reply.hc_echo != pending.hc {
            self.halted = true;
            return Err(Violation::ReplyMismatch {
                expected: pending.hc,
                got: reply.hc_echo,
            }
            .into());
        }

        // (tc, ts, hc) ← (t, q, h). Sequence numbers returned by one
        // shard to one client strictly increase and stability never
        // decreases; a server violating either is caught here.
        let ctx = &self.shards[shard as usize];
        if reply.t <= ctx.tc || reply.q < ctx.ts {
            self.halted = true;
            return Err(Violation::ReplyMismatch {
                expected: ctx.hc,
                got: reply.h,
            }
            .into());
        }

        let ctx = &mut self.shards[shard as usize];
        ctx.tc = reply.t;
        ctx.ts = reply.q;
        ctx.hc = reply.h;
        ctx.pending = None;
        self.pending_order.remove(pos);
        self.fire_watches();

        if reply.redirect {
            // The shard stamped a redirect instead of executing: its
            // context advanced exactly as above (the stamp is a real
            // protocol step on that shard), and the result carries the
            // routing table to adopt. The operation itself has NOT
            // executed — hand it back for re-invocation under the new
            // table. Redirect stamps are deliberately not recorded:
            // the history checkers replay executed operations, and a
            // redirect executes nothing.
            self.adopt_table(&reply.result)?;
            return Ok((shard, WriteOutcome::Redirected { op: pending.op }));
        }

        if let Some(log) = self.recording.as_mut() {
            log.push(OpRecord {
                client: self.id,
                shard,
                seq: reply.t,
                chain: reply.h,
                op: pending.op.clone(),
                result: reply.result.clone(),
                stable: reply.q,
            });
        }

        Ok((
            shard,
            WriteOutcome::Done(Completion {
                result: reply.result,
                seq: reply.t,
                stable: reply.q,
            }),
        ))
    }
}

// A client session is plain `Send` data — independent clients submit
// from independent threads through the concurrent transport front-end
// ([`crate::transport::Frontend`]). This fails to compile if a future
// field change silently breaks that.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<LcmClient>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::ReadStatus;

    fn key() -> SecretKey {
        SecretKey::from_bytes([7u8; 32])
    }

    fn reply_wire(k: &SecretKey, reply: &ReplyMsg) -> Vec<u8> {
        aead::auth_encrypt(
            &AeadKey::from_secret(k),
            &reply.to_bytes(),
            &reply_aad(ClientId(1), crate::shard::route_for(ClientId(1), None), 0),
        )
        .unwrap()
    }

    fn ok_reply(t: u64, q: u64, hc_echo: ChainValue) -> ReplyMsg {
        ReplyMsg {
            t: SeqNo(t),
            q: SeqNo(q),
            h: ChainValue::GENESIS.extend(b"op", SeqNo(t), ClientId(1)),
            hc_echo,
            redirect: false,
            result: b"ok".to_vec(),
        }
    }

    /// Decrypts an enveloped invoke wire at the "T" side.
    fn decrypt_invoke(k: &SecretKey, wire: &[u8]) -> Result<InvokeMsg> {
        let (hint, ct) = RouteHint::peel(wire).expect("envelope present");
        let plain = aead::auth_decrypt(
            &AeadKey::from_secret(k),
            ct,
            &invoke_aad(hint.client, hint.route, hint.seq, hint.epoch),
        )
        .map_err(|_| LcmError::Violation(Violation::BadAuthentication))?;
        Ok(InvokeMsg::from_bytes(&plain).unwrap())
    }

    #[test]
    fn invoke_reply_cycle() {
        let mut c = LcmClient::new(ClientId(1), &key());
        let wire = c.invoke(b"op").unwrap();
        assert!(c.has_pending());
        // Decrypt at "T" side to inspect.
        let msg = decrypt_invoke(&key(), &wire).unwrap();
        assert_eq!(msg.client, ClientId(1));
        assert_eq!(msg.tc, SeqNo::ZERO);
        assert!(!msg.retry);
        // The envelope carries the client and its client-derived route.
        let (hint, _) = RouteHint::peel(&wire).unwrap();
        assert_eq!(hint.client, ClientId(1));
        assert_eq!(hint.route, crate::shard::route_for(ClientId(1), None));

        let completion = c
            .handle_reply(&reply_wire(&key(), &ok_reply(1, 0, ChainValue::GENESIS)))
            .unwrap();
        assert_eq!(completion.seq, SeqNo(1));
        assert_eq!(c.last_seq(), SeqNo(1));
        assert!(!c.has_pending());
    }

    #[test]
    fn sequential_invocation_enforced() {
        let mut c = LcmClient::new(ClientId(1), &key());
        c.invoke(b"a").unwrap();
        assert_eq!(c.invoke(b"b"), Err(LcmError::OperationPending));
    }

    #[test]
    fn retry_requires_pending() {
        let mut c = LcmClient::new(ClientId(1), &key());
        assert_eq!(c.retry(), Err(LcmError::NothingToRetry));
        c.invoke(b"a").unwrap();
        let retry_wire = c.retry().unwrap();
        assert!(decrypt_invoke(&key(), &retry_wire).unwrap().retry);
    }

    #[test]
    fn echo_mismatch_halts() {
        let mut c = LcmClient::new(ClientId(1), &key());
        c.invoke(b"a").unwrap();
        let bad_echo = ChainValue::GENESIS.extend(b"forged", SeqNo(9), ClientId(9));
        let err = c
            .handle_reply(&reply_wire(&key(), &ok_reply(1, 0, bad_echo)))
            .unwrap_err();
        assert!(matches!(
            err,
            LcmError::Violation(Violation::ReplyMismatch { .. })
        ));
        assert!(c.is_halted());
        assert_eq!(c.invoke(b"x"), Err(LcmError::Halted));
    }

    #[test]
    fn tampered_reply_halts() {
        let mut c = LcmClient::new(ClientId(1), &key());
        c.invoke(b"a").unwrap();
        let mut wire = reply_wire(&key(), &ok_reply(1, 0, ChainValue::GENESIS));
        wire[20] ^= 0xff;
        assert!(matches!(
            c.handle_reply(&wire),
            Err(LcmError::Violation(Violation::BadAuthentication))
        ));
        assert!(c.is_halted());
    }

    #[test]
    fn unexpected_reply_halts() {
        let mut c = LcmClient::new(ClientId(1), &key());
        let wire = reply_wire(&key(), &ok_reply(1, 0, ChainValue::GENESIS));
        assert!(matches!(
            c.handle_reply(&wire),
            Err(LcmError::Violation(Violation::UnexpectedReply))
        ));
    }

    #[test]
    fn nonmonotone_seq_halts() {
        let mut c = LcmClient::new(ClientId(1), &key());
        c.invoke(b"a").unwrap();
        let r1 = ok_reply(5, 0, ChainValue::GENESIS);
        c.handle_reply(&reply_wire(&key(), &r1)).unwrap();
        c.invoke(b"b").unwrap();
        // Server returns a SMALLER sequence number: rollback symptom.
        let r2 = ok_reply(3, 0, r1.h);
        assert!(c.handle_reply(&reply_wire(&key(), &r2)).is_err());
        assert!(c.is_halted());
    }

    #[test]
    fn decreasing_stability_halts() {
        let mut c = LcmClient::new(ClientId(1), &key());
        c.invoke(b"a").unwrap();
        let r1 = ok_reply(1, 1, ChainValue::GENESIS);
        c.handle_reply(&reply_wire(&key(), &r1)).unwrap();
        assert_eq!(c.stable_seq(), SeqNo(1));
        c.invoke(b"b").unwrap();
        let mut r2 = ok_reply(2, 0, r1.h);
        r2.q = SeqNo(0); // stability went backwards
        assert!(c.handle_reply(&reply_wire(&key(), &r2)).is_err());
    }

    #[test]
    fn recording_captures_completions() {
        let mut c = LcmClient::new(ClientId(1), &key());
        c.set_recording(true);
        c.invoke(b"a").unwrap();
        c.handle_reply(&reply_wire(&key(), &ok_reply(1, 0, ChainValue::GENESIS)))
            .unwrap();
        assert_eq!(c.records().len(), 1);
        assert_eq!(c.records()[0].seq, SeqNo(1));
        assert_eq!(c.records()[0].op, b"a");
    }

    #[test]
    fn stability_watch_fires_when_threshold_crossed() {
        let mut c = LcmClient::new(ClientId(1), &key());
        let w = c.watch_stability(SeqNo(1));
        assert!(c.take_notifications().is_empty());

        c.invoke(b"a").unwrap();
        c.handle_reply(&reply_wire(&key(), &ok_reply(1, 0, ChainValue::GENESIS)))
            .unwrap();
        assert!(c.take_notifications().is_empty(), "q=0: not yet");

        c.invoke(b"b").unwrap();
        let r1h = ok_reply(1, 0, ChainValue::GENESIS).h;
        c.handle_reply(&reply_wire(&key(), &ok_reply(2, 1, r1h)))
            .unwrap();
        let fired = c.take_notifications();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].watch, w);
        assert_eq!(fired[0].threshold, SeqNo(1));
        assert_eq!(fired[0].watermark, SeqNo(1));
        // One-shot: does not fire again.
        assert!(c.take_notifications().is_empty());
    }

    #[test]
    fn stability_watch_fires_immediately_if_already_stable() {
        let mut c = LcmClient::new(ClientId(1), &key());
        c.invoke(b"a").unwrap();
        c.handle_reply(&reply_wire(&key(), &ok_reply(3, 2, ChainValue::GENESIS)))
            .unwrap();
        let w = c.watch_stability(SeqNo(2));
        let fired = c.take_notifications();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].watch, w);
    }

    #[test]
    fn multiple_watches_fire_in_one_update() {
        let mut c = LcmClient::new(ClientId(1), &key());
        let w1 = c.watch_stability(SeqNo(1));
        let w2 = c.watch_stability(SeqNo(2));
        let w3 = c.watch_stability(SeqNo(50));
        c.invoke(b"a").unwrap();
        c.handle_reply(&reply_wire(&key(), &ok_reply(5, 3, ChainValue::GENESIS)))
            .unwrap();
        let fired: Vec<WatchId> = c.take_notifications().iter().map(|e| e.watch).collect();
        assert!(fired.contains(&w1) && fired.contains(&w2));
        assert!(!fired.contains(&w3));
    }

    #[test]
    fn rotate_key_switches_cipher() {
        let mut c = LcmClient::new(ClientId(1), &key());
        let new_key = SecretKey::from_bytes([8u8; 32]);
        c.rotate_key(&new_key);
        let wire = c.invoke(b"a").unwrap();
        // Old key can no longer decrypt the client's messages.
        assert!(decrypt_invoke(&key(), &wire).is_err());
        assert!(decrypt_invoke(&new_key, &wire).is_ok());
    }

    #[test]
    fn sharded_client_pipelines_across_shards_only() {
        // Two ops with different partition keys that land on different
        // shards may be in flight together; a second op on the SAME
        // shard is refused until the first completes.
        let mut c = LcmClient::new_sharded(ClientId(1), &key(), 2);
        let shard_of = |k: &[u8]| crate::shard::shard_index(crate::shard::route_hash(k), 2);
        // Find keys on both shards.
        let mut by_shard: [Option<Vec<u8>>; 2] = [None, None];
        for i in 0..32u32 {
            let k = format!("key{i}").into_bytes();
            let s = shard_of(&k) as usize;
            if by_shard[s].is_none() {
                by_shard[s] = Some(k);
            }
        }
        let (ka, kb) = (by_shard[0].clone().unwrap(), by_shard[1].clone().unwrap());
        c.invoke_routed(b"op-a", Some(&ka)).unwrap();
        c.invoke_routed(b"op-b", Some(&kb)).unwrap();
        assert!(c.has_pending());
        // Same shard as op-a: refused.
        assert_eq!(
            c.invoke_routed(b"op-a2", Some(&ka)),
            Err(LcmError::OperationPending)
        );
        // Retry re-encodes the OLDEST pending op.
        let retried = decrypt_invoke(&key(), &c.retry().unwrap()).unwrap();
        assert!(retried.retry);
        assert_eq!(retried.op, b"op-a");
    }

    // ---- verified read legs --------------------------------------

    fn read_reply_wire(k: &SecretKey, reply: &ReadReplyMsg, seq: u64, replica: u32) -> Vec<u8> {
        aead::auth_encrypt(
            &AeadKey::from_secret(k),
            &reply.to_bytes(),
            &read_reply_aad(
                ClientId(1),
                crate::shard::route_for(ClientId(1), None),
                seq,
                replica,
                0,
            ),
        )
        .unwrap()
    }

    /// Runs one write so the client context is non-genesis.
    fn client_with_one_op() -> (LcmClient, ChainValue) {
        let mut c = LcmClient::new(ClientId(1), &key());
        c.invoke(b"op").unwrap();
        let r = ok_reply(1, 0, ChainValue::GENESIS);
        c.handle_reply(&reply_wire(&key(), &r)).unwrap();
        (c, r.h)
    }

    #[test]
    fn read_fresh_cycle() {
        let (mut c, hc) = client_with_one_op();
        let wire = c.read_routed(b"GET k", None, 2).unwrap();
        assert!(c.has_pending_read(0));
        // Envelope pins the replica and carries the context seq.
        let (hint, ct) = ReadHint::peel(&wire).unwrap();
        assert_eq!(hint.replica, 2);
        assert_eq!(hint.seq, 1);
        // The leg decrypts only under the pinned member's AAD.
        let route = crate::shard::route_for(ClientId(1), None);
        assert!(aead::auth_decrypt(
            &AeadKey::from_secret(&key()),
            ct,
            &read_aad(ClientId(1), route, 1, 3, 0),
        )
        .is_err());
        let plain = aead::auth_decrypt(
            &AeadKey::from_secret(&key()),
            ct,
            &read_aad(ClientId(1), route, 1, 2, 0),
        )
        .unwrap();
        let msg = ReadMsg::from_bytes(&plain).unwrap();
        assert_eq!(msg.tc, SeqNo(1));
        assert_eq!(msg.hc, hc);

        let reply = ReadReplyMsg {
            t: SeqNo(1),
            q: SeqNo(1),
            h: hc,
            hc_echo: hc,
            status: ReadStatus::Fresh,
            result: b"v".to_vec(),
        };
        let out = c
            .handle_read_reply(&read_reply_wire(&key(), &reply, 1, 2))
            .unwrap();
        let ReadOutcome::Fresh(done) = out else {
            panic!("expected fresh read");
        };
        assert_eq!(done.result, b"v");
        // Reads piggyback stability but never advance (tc, hc).
        assert_eq!(c.stable_seq(), SeqNo(1));
        assert_eq!(c.last_seq(), SeqNo(1));
        assert_eq!(c.chain_value(), hc);
        assert!(!c.has_pending_read(0));
    }

    #[test]
    fn read_behind_clears_pending_for_reissue() {
        let (mut c, hc) = client_with_one_op();
        c.read_routed(b"GET k", None, 1).unwrap();
        let reply = ReadReplyMsg {
            t: SeqNo(0),
            q: SeqNo(0),
            h: ChainValue::GENESIS,
            hc_echo: hc,
            status: ReadStatus::Behind,
            result: Vec::new(),
        };
        let out = c
            .handle_read_reply(&read_reply_wire(&key(), &reply, 1, 1))
            .unwrap();
        assert_eq!(out, ReadOutcome::Behind);
        assert!(!c.is_halted(), "behind is retryable, not a violation");
        // Re-issue to another replica.
        let wire = c.read_routed(b"GET k", None, 2).unwrap();
        assert_eq!(ReadHint::peel(&wire).unwrap().0.replica, 2);
    }

    #[test]
    fn read_and_write_mutually_exclusive_per_shard() {
        let (mut c, _) = client_with_one_op();
        c.read_routed(b"GET k", None, 0).unwrap();
        assert_eq!(c.invoke(b"w"), Err(LcmError::OperationPending));
        assert_eq!(
            c.read_routed(b"GET k2", None, 1),
            Err(LcmError::OperationPending)
        );
        c.cancel_read(0);
        c.invoke(b"w").unwrap();
        assert_eq!(
            c.read_routed(b"GET k", None, 0),
            Err(LcmError::OperationPending)
        );
    }

    #[test]
    fn retry_read_repins_replica() {
        let (mut c, _) = client_with_one_op();
        c.read_routed(b"GET k", None, 1).unwrap();
        let wire = c.retry_read(0, Some(2)).unwrap();
        assert_eq!(ReadHint::peel(&wire).unwrap().0.replica, 2);
        // A reply from the new pin is accepted.
        let hc = c.chain_value();
        let reply = ReadReplyMsg {
            t: SeqNo(1),
            q: SeqNo(0),
            h: hc,
            hc_echo: hc,
            status: ReadStatus::Fresh,
            result: b"v".to_vec(),
        };
        assert!(matches!(
            c.handle_read_reply(&read_reply_wire(&key(), &reply, 1, 2)),
            Ok(ReadOutcome::Fresh(_))
        ));
    }

    #[test]
    fn read_fresh_with_wrong_context_halts() {
        let (mut c, hc) = client_with_one_op();
        c.read_routed(b"GET k", None, 0).unwrap();
        // A "fresh" reply whose recorded entry is NOT the client's
        // context is a rollback symptom on the serving replica.
        let reply = ReadReplyMsg {
            t: SeqNo(9),
            q: SeqNo(0),
            h: ChainValue::GENESIS.extend(b"forged", SeqNo(9), ClientId(1)),
            hc_echo: hc,
            status: ReadStatus::Fresh,
            result: b"v".to_vec(),
        };
        assert!(c
            .handle_read_reply(&read_reply_wire(&key(), &reply, 1, 0))
            .is_err());
        assert!(c.is_halted());
    }

    #[test]
    fn read_reply_from_wrong_replica_halts() {
        let (mut c, hc) = client_with_one_op();
        c.read_routed(b"GET k", None, 0).unwrap();
        let reply = ReadReplyMsg {
            t: SeqNo(1),
            q: SeqNo(0),
            h: hc,
            hc_echo: hc,
            status: ReadStatus::Fresh,
            result: b"v".to_vec(),
        };
        // Encrypted under replica 1's channel but the leg pinned 0:
        // authentication cannot attribute it to any pending read.
        let wire = read_reply_wire(&key(), &reply, 1, 1);
        assert!(matches!(
            c.handle_read_reply(&wire),
            Err(LcmError::Violation(Violation::BadAuthentication))
        ));
        assert!(c.is_halted());
    }

    // ---- epoch-versioned routing ---------------------------------

    /// A moved slice table (epoch 1) for a 2-shard deployment, where
    /// the given route's slice now lives on the other shard.
    fn moved_table(route: u32, from: u32) -> crate::routing::SliceTable {
        let base = crate::routing::SliceTable::uniform(2);
        base.moved(crate::routing::slice_of(route), 1 - from)
            .unwrap()
    }

    #[test]
    fn redirect_reply_adopts_table_and_reroutes() {
        let mut c = LcmClient::new_sharded(ClientId(1), &key(), 2);
        let route = crate::shard::route_for(ClientId(1), Some(b"k"));
        let shard = c.shard_of_route(route);
        c.invoke_routed(b"op", Some(b"k")).unwrap();
        // The shard answers with a redirect stamp carrying the moved
        // table instead of an execution result.
        let table = moved_table(route, shard);
        let reply = ReplyMsg {
            t: SeqNo(1),
            q: SeqNo(0),
            h: ChainValue::GENESIS.extend(b"op", SeqNo(1), ClientId(1)),
            hc_echo: ChainValue::GENESIS,
            redirect: true,
            result: table.to_bytes(),
        };
        let wire = aead::auth_encrypt(
            &AeadKey::from_secret(&key()),
            &reply.to_bytes(),
            &reply_aad(ClientId(1), route, 0),
        )
        .unwrap();
        let (from, out) = c.handle_reply_on(&wire).unwrap();
        assert_eq!(from, shard);
        let WriteOutcome::Redirected { op } = out else {
            panic!("expected redirect outcome");
        };
        assert_eq!(op, b"op");
        assert!(!c.is_halted());
        // The table was adopted: the epoch advanced and the same key
        // now routes to the other shard.
        assert_eq!(c.routing_epoch(), 1);
        assert_eq!(c.shard_of_route(route), 1 - shard);
        // The redirect stamp consumed the pending slot; the op can be
        // re-invoked at the new owner.
        let rewire = c.invoke_routed(&op, Some(b"k")).unwrap();
        let (hint, _) = RouteHint::peel(&rewire).unwrap();
        assert_eq!(hint.epoch, 1);
    }

    #[test]
    fn redirect_reply_with_garbage_table_halts() {
        let mut c = LcmClient::new_sharded(ClientId(1), &key(), 2);
        let route = crate::shard::route_for(ClientId(1), Some(b"k"));
        c.invoke_routed(b"op", Some(b"k")).unwrap();
        let reply = ReplyMsg {
            t: SeqNo(1),
            q: SeqNo(0),
            h: ChainValue::GENESIS.extend(b"op", SeqNo(1), ClientId(1)),
            hc_echo: ChainValue::GENESIS,
            redirect: true,
            result: b"not a table".to_vec(),
        };
        let wire = aead::auth_encrypt(
            &AeadKey::from_secret(&key()),
            &reply.to_bytes(),
            &reply_aad(ClientId(1), route, 0),
        )
        .unwrap();
        assert!(c.handle_reply_on(&wire).is_err());
        assert!(c.is_halted());
    }

    #[test]
    fn moved_read_adopts_table() {
        let mut c2 = LcmClient::new_sharded(ClientId(1), &key(), 2);
        let route = crate::shard::route_for(ClientId(1), Some(b"k"));
        let shard = c2.shard_of_route(route);
        c2.read_routed(b"GET k", Some(b"k"), 0).unwrap();
        let table = moved_table(route, shard);
        let reply = ReadReplyMsg {
            t: SeqNo(0),
            q: SeqNo(0),
            h: ChainValue::GENESIS,
            hc_echo: ChainValue::GENESIS,
            status: ReadStatus::Moved,
            result: table.to_bytes(),
        };
        let wire = aead::auth_encrypt(
            &AeadKey::from_secret(&key()),
            &reply.to_bytes(),
            &read_reply_aad(ClientId(1), route, 0, 0, 0),
        )
        .unwrap();
        let out = c2.handle_read_reply(&wire).unwrap();
        assert_eq!(out, ReadOutcome::Moved);
        assert!(!c2.is_halted(), "moved is retryable, not a violation");
        assert_eq!(c2.routing_epoch(), 1);
        assert_eq!(c2.shard_of_route(route), 1 - shard);
    }

    #[test]
    fn stale_table_is_not_adopted_backwards() {
        let mut c = LcmClient::new_sharded(ClientId(1), &key(), 2);
        let route = crate::shard::route_for(ClientId(1), Some(b"k"));
        let shard = c.shard_of_route(route);
        c.invoke_routed(b"op", Some(b"k")).unwrap();
        let table = moved_table(route, shard);
        let reply = ReplyMsg {
            t: SeqNo(1),
            q: SeqNo(0),
            h: ChainValue::GENESIS.extend(b"op", SeqNo(1), ClientId(1)),
            hc_echo: ChainValue::GENESIS,
            redirect: true,
            result: table.to_bytes(),
        };
        let wire = aead::auth_encrypt(
            &AeadKey::from_secret(&key()),
            &reply.to_bytes(),
            &reply_aad(ClientId(1), route, 0),
        )
        .unwrap();
        c.handle_reply_on(&wire).unwrap();
        assert_eq!(c.routing_epoch(), 1);
        // A second redirect carrying the ORIGINAL epoch-0 table (e.g. a
        // delayed wire) must not roll the client's routing view back.
        // The re-routed op lands on the other shard, whose per-shard
        // context is still at genesis.
        let stale = crate::routing::SliceTable::uniform(2);
        c.invoke_routed(b"op2", Some(b"k")).unwrap();
        let reply2 = ReplyMsg {
            t: SeqNo(1),
            q: SeqNo(0),
            h: ChainValue::GENESIS.extend(b"op2", SeqNo(1), ClientId(1)),
            hc_echo: ChainValue::GENESIS,
            redirect: true,
            result: stale.to_bytes(),
        };
        let wire2 = aead::auth_encrypt(
            &AeadKey::from_secret(&key()),
            &reply2.to_bytes(),
            &reply_aad(ClientId(1), route, 1),
        )
        .unwrap();
        c.handle_reply_on(&wire2).unwrap();
        assert_eq!(c.routing_epoch(), 1, "stale table must be ignored");
    }
}
