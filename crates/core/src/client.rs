//! The LCM client (paper Alg. 1 + retry extension §4.6.1).
//!
//! A client keeps only small, constant state — `(tc, ts, hc)` plus the
//! communication key — which is the paper's headline simplification
//! over prior fork-linearizable protocols where clients verified every
//! other client's operations.

use lcm_crypto::aead::{self, AeadKey};
use lcm_crypto::keys::SecretKey;

use crate::codec::WireCodec;
use crate::context::{reply_aad, LABEL_INVOKE};
use crate::types::{ChainValue, ClientId, Completion, SeqNo};
use crate::verify::OpRecord;
use crate::wire::{InvokeMsg, ReplyMsg};
use crate::{LcmError, Result, Violation};

/// An operation awaiting its reply.
#[derive(Debug, Clone)]
struct Pending {
    op: Vec<u8>,
    /// Context captured at invocation, so retries are byte-faithful.
    tc: SeqNo,
    hc: ChainValue,
}

/// Identifier of a registered stability watch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WatchId(pub u64);

/// A fired stability notification: the watched threshold and the
/// watermark that satisfied it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilityEvent {
    /// The watch that fired.
    pub watch: WatchId,
    /// The threshold that was registered.
    pub threshold: SeqNo,
    /// The majority-stable watermark that crossed it.
    pub watermark: SeqNo,
}

/// The client-side protocol state machine.
///
/// Sequential use: [`LcmClient::invoke`] produces the wire message for
/// one operation; [`LcmClient::handle_reply`] consumes the reply and
/// returns the [`Completion`]. Invoking while an operation is pending
/// is an error ("each client invokes operations sequentially", §4.1).
/// If no reply arrives, [`LcmClient::retry`] re-produces the message
/// with the retry flag set.
///
/// On any detected violation the client halts permanently: the server
/// has been caught cheating and the out-of-band alarm (outside the
/// protocol) is raised.
///
/// # Example
///
/// ```
/// use lcm_core::client::LcmClient;
/// use lcm_core::types::ClientId;
/// use lcm_crypto::keys::SecretKey;
///
/// let k_c = SecretKey::generate();
/// let mut client = LcmClient::new(ClientId(1), &k_c);
/// let wire = client.invoke(b"PUT k v").unwrap();
/// // send `wire` to the server; feed the reply to handle_reply()
/// # let _ = wire;
/// ```
pub struct LcmClient {
    id: ClientId,
    tc: SeqNo,
    ts: SeqNo,
    hc: ChainValue,
    key: AeadKey,
    pending: Option<Pending>,
    halted: bool,
    /// Optional completion log for the omniscient history checker.
    recording: Option<Vec<OpRecord>>,
    /// Registered stability watches (paper §4.5's callback-mechanism
    /// extension, as used by Venus): `(id, threshold)`, fired once.
    watches: Vec<(WatchId, SeqNo)>,
    next_watch: u64,
    /// Fired notifications awaiting collection.
    notifications: Vec<StabilityEvent>,
}

impl std::fmt::Debug for LcmClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LcmClient")
            .field("id", &self.id)
            .field("tc", &self.tc)
            .field("ts", &self.ts)
            .field("halted", &self.halted)
            .finish()
    }
}

impl LcmClient {
    /// Creates a client with identity `id` holding the group
    /// communication key `kC`.
    pub fn new(id: ClientId, k_c: &SecretKey) -> Self {
        LcmClient {
            id,
            tc: SeqNo::ZERO,
            ts: SeqNo::ZERO,
            hc: ChainValue::GENESIS,
            key: AeadKey::from_secret(k_c),
            pending: None,
            halted: false,
            recording: None,
            watches: Vec::new(),
            next_watch: 0,
            notifications: Vec::new(),
        }
    }

    /// This client's identity.
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Sequence number of the last completed operation (`tc`).
    pub fn last_seq(&self) -> SeqNo {
        self.tc
    }

    /// Latest known majority-stable sequence number (`ts`).
    pub fn stable_seq(&self) -> SeqNo {
        self.ts
    }

    /// Hash-chain value of the last completed operation (`hc`).
    pub fn chain_value(&self) -> ChainValue {
        self.hc
    }

    /// Whether an operation is awaiting its reply.
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Whether this client has detected a violation and halted.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Installs a rotated communication key (after a membership change
    /// distributed by the admin, §4.6.3).
    pub fn rotate_key(&mut self, new_k_c: &SecretKey) {
        self.key = AeadKey::from_secret(new_k_c);
    }

    /// Enables completion recording for the history checkers.
    pub fn set_recording(&mut self, on: bool) {
        self.recording = if on { Some(Vec::new()) } else { None };
    }

    /// The recorded completions, if recording is enabled.
    pub fn records(&self) -> &[OpRecord] {
        self.recording.as_deref().unwrap_or(&[])
    }

    /// Registers a one-shot watch that fires when the majority-stable
    /// watermark reaches `threshold` (§4.5: "clients can register for
    /// notifications of stability updates", the Venus mechanism).
    ///
    /// Fires immediately into the queue if the threshold is already
    /// covered. An application typically watches the sequence number of
    /// a critical operation before acting on it irrevocably.
    pub fn watch_stability(&mut self, threshold: SeqNo) -> WatchId {
        let id = WatchId(self.next_watch);
        self.next_watch += 1;
        if self.ts >= threshold {
            self.notifications.push(StabilityEvent {
                watch: id,
                threshold,
                watermark: self.ts,
            });
        } else {
            self.watches.push((id, threshold));
        }
        id
    }

    /// Drains fired stability notifications.
    pub fn take_notifications(&mut self) -> Vec<StabilityEvent> {
        std::mem::take(&mut self.notifications)
    }

    fn fire_watches(&mut self) {
        let ts = self.ts;
        let (fired, kept): (Vec<_>, Vec<_>) = std::mem::take(&mut self.watches)
            .into_iter()
            .partition(|&(_, t)| ts >= t);
        self.watches = kept;
        for (watch, threshold) in fired {
            self.notifications.push(StabilityEvent {
                watch,
                threshold,
                watermark: ts,
            });
        }
    }

    /// Produces the encrypted INVOKE message for operation `op`
    /// (Alg. 1 `invoke`).
    ///
    /// # Errors
    ///
    /// * [`LcmError::OperationPending`] — the previous operation has
    ///   not completed.
    /// * [`LcmError::Halted`] — a violation was detected earlier.
    pub fn invoke(&mut self, op: &[u8]) -> Result<Vec<u8>> {
        if self.halted {
            return Err(LcmError::Halted);
        }
        if self.pending.is_some() {
            return Err(LcmError::OperationPending);
        }
        let pending = Pending {
            op: op.to_vec(),
            tc: self.tc,
            hc: self.hc,
        };
        let wire = self.encode_invoke(&pending, false)?;
        self.pending = Some(pending);
        Ok(wire)
    }

    /// Re-produces the pending INVOKE with the retry flag set
    /// (crash-tolerance extension §4.6.1; send after a timeout).
    ///
    /// # Errors
    ///
    /// * [`LcmError::NothingToRetry`] — no operation is pending.
    /// * [`LcmError::Halted`] — the client has halted.
    pub fn retry(&mut self) -> Result<Vec<u8>> {
        if self.halted {
            return Err(LcmError::Halted);
        }
        let pending = self.pending.clone().ok_or(LcmError::NothingToRetry)?;
        self.encode_invoke(&pending, true)
    }

    fn encode_invoke(&self, pending: &Pending, retry: bool) -> Result<Vec<u8>> {
        let msg = InvokeMsg {
            client: self.id,
            tc: pending.tc,
            hc: pending.hc,
            retry,
            op: pending.op.clone(),
        };
        aead::auth_encrypt(&self.key, &msg.to_bytes(), LABEL_INVOKE)
            .map_err(|e| LcmError::Tee(e.to_string()))
    }

    /// Consumes a REPLY message, completing the pending operation
    /// (Alg. 1 `upon receiving reply`).
    ///
    /// # Errors
    ///
    /// * [`LcmError::Violation`] — authentication failure or an echo
    ///   mismatch (`assert h'c = hc`); the client halts.
    /// * [`LcmError::Violation`] with [`Violation::UnexpectedReply`] —
    ///   no operation pending.
    pub fn handle_reply(&mut self, wire: &[u8]) -> Result<Completion> {
        if self.halted {
            return Err(LcmError::Halted);
        }
        let Some(pending) = self.pending.clone() else {
            self.halted = true;
            return Err(Violation::UnexpectedReply.into());
        };
        let plain = match aead::auth_decrypt(&self.key, wire, &reply_aad(self.id)) {
            Ok(p) => p,
            Err(_) => {
                self.halted = true;
                return Err(Violation::BadAuthentication.into());
            }
        };
        let reply = match ReplyMsg::from_bytes(&plain) {
            Ok(m) => m,
            Err(_) => {
                self.halted = true;
                return Err(Violation::BadAuthentication.into());
            }
        };

        // assert h'c = hc
        if reply.hc_echo != self.hc {
            self.halted = true;
            return Err(Violation::ReplyMismatch {
                expected: self.hc,
                got: reply.hc_echo,
            }
            .into());
        }

        // (tc, ts, hc) ← (t, q, h). Sequence numbers returned at one
        // client strictly increase and stability never decreases; a
        // server violating either is caught here.
        if reply.t <= self.tc || reply.q < self.ts {
            self.halted = true;
            return Err(Violation::ReplyMismatch {
                expected: self.hc,
                got: reply.h,
            }
            .into());
        }

        self.tc = reply.t;
        self.ts = reply.q;
        self.hc = reply.h;
        self.pending = None;
        self.fire_watches();

        if let Some(log) = self.recording.as_mut() {
            log.push(OpRecord {
                client: self.id,
                seq: reply.t,
                chain: reply.h,
                op: pending.op.clone(),
                result: reply.result.clone(),
                stable: reply.q,
            });
        }

        Ok(Completion {
            result: reply.result,
            seq: reply.t,
            stable: reply.q,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> SecretKey {
        SecretKey::from_bytes([7u8; 32])
    }

    fn reply_wire(k: &SecretKey, reply: &ReplyMsg) -> Vec<u8> {
        aead::auth_encrypt(
            &AeadKey::from_secret(k),
            &reply.to_bytes(),
            &reply_aad(ClientId(1)),
        )
        .unwrap()
    }

    fn ok_reply(t: u64, q: u64, hc_echo: ChainValue) -> ReplyMsg {
        ReplyMsg {
            t: SeqNo(t),
            q: SeqNo(q),
            h: ChainValue::GENESIS.extend(b"op", SeqNo(t), ClientId(1)),
            hc_echo,
            result: b"ok".to_vec(),
        }
    }

    #[test]
    fn invoke_reply_cycle() {
        let mut c = LcmClient::new(ClientId(1), &key());
        let wire = c.invoke(b"op").unwrap();
        assert!(c.has_pending());
        // Decrypt at "T" side to inspect.
        let plain = aead::auth_decrypt(&AeadKey::from_secret(&key()), &wire, LABEL_INVOKE).unwrap();
        let msg = InvokeMsg::from_bytes(&plain).unwrap();
        assert_eq!(msg.client, ClientId(1));
        assert_eq!(msg.tc, SeqNo::ZERO);
        assert!(!msg.retry);

        let completion = c
            .handle_reply(&reply_wire(&key(), &ok_reply(1, 0, ChainValue::GENESIS)))
            .unwrap();
        assert_eq!(completion.seq, SeqNo(1));
        assert_eq!(c.last_seq(), SeqNo(1));
        assert!(!c.has_pending());
    }

    #[test]
    fn sequential_invocation_enforced() {
        let mut c = LcmClient::new(ClientId(1), &key());
        c.invoke(b"a").unwrap();
        assert_eq!(c.invoke(b"b"), Err(LcmError::OperationPending));
    }

    #[test]
    fn retry_requires_pending() {
        let mut c = LcmClient::new(ClientId(1), &key());
        assert_eq!(c.retry(), Err(LcmError::NothingToRetry));
        c.invoke(b"a").unwrap();
        let retry_wire = c.retry().unwrap();
        let plain =
            aead::auth_decrypt(&AeadKey::from_secret(&key()), &retry_wire, LABEL_INVOKE).unwrap();
        assert!(InvokeMsg::from_bytes(&plain).unwrap().retry);
    }

    #[test]
    fn echo_mismatch_halts() {
        let mut c = LcmClient::new(ClientId(1), &key());
        c.invoke(b"a").unwrap();
        let bad_echo = ChainValue::GENESIS.extend(b"forged", SeqNo(9), ClientId(9));
        let err = c
            .handle_reply(&reply_wire(&key(), &ok_reply(1, 0, bad_echo)))
            .unwrap_err();
        assert!(matches!(
            err,
            LcmError::Violation(Violation::ReplyMismatch { .. })
        ));
        assert!(c.is_halted());
        assert_eq!(c.invoke(b"x"), Err(LcmError::Halted));
    }

    #[test]
    fn tampered_reply_halts() {
        let mut c = LcmClient::new(ClientId(1), &key());
        c.invoke(b"a").unwrap();
        let mut wire = reply_wire(&key(), &ok_reply(1, 0, ChainValue::GENESIS));
        wire[20] ^= 0xff;
        assert!(matches!(
            c.handle_reply(&wire),
            Err(LcmError::Violation(Violation::BadAuthentication))
        ));
        assert!(c.is_halted());
    }

    #[test]
    fn unexpected_reply_halts() {
        let mut c = LcmClient::new(ClientId(1), &key());
        let wire = reply_wire(&key(), &ok_reply(1, 0, ChainValue::GENESIS));
        assert!(matches!(
            c.handle_reply(&wire),
            Err(LcmError::Violation(Violation::UnexpectedReply))
        ));
    }

    #[test]
    fn nonmonotone_seq_halts() {
        let mut c = LcmClient::new(ClientId(1), &key());
        c.invoke(b"a").unwrap();
        let r1 = ok_reply(5, 0, ChainValue::GENESIS);
        c.handle_reply(&reply_wire(&key(), &r1)).unwrap();
        c.invoke(b"b").unwrap();
        // Server returns a SMALLER sequence number: rollback symptom.
        let r2 = ok_reply(3, 0, r1.h);
        assert!(c.handle_reply(&reply_wire(&key(), &r2)).is_err());
        assert!(c.is_halted());
    }

    #[test]
    fn decreasing_stability_halts() {
        let mut c = LcmClient::new(ClientId(1), &key());
        c.invoke(b"a").unwrap();
        let r1 = ok_reply(1, 1, ChainValue::GENESIS);
        c.handle_reply(&reply_wire(&key(), &r1)).unwrap();
        assert_eq!(c.stable_seq(), SeqNo(1));
        c.invoke(b"b").unwrap();
        let mut r2 = ok_reply(2, 0, r1.h);
        r2.q = SeqNo(0); // stability went backwards
        assert!(c.handle_reply(&reply_wire(&key(), &r2)).is_err());
    }

    #[test]
    fn recording_captures_completions() {
        let mut c = LcmClient::new(ClientId(1), &key());
        c.set_recording(true);
        c.invoke(b"a").unwrap();
        c.handle_reply(&reply_wire(&key(), &ok_reply(1, 0, ChainValue::GENESIS)))
            .unwrap();
        assert_eq!(c.records().len(), 1);
        assert_eq!(c.records()[0].seq, SeqNo(1));
        assert_eq!(c.records()[0].op, b"a");
    }

    #[test]
    fn stability_watch_fires_when_threshold_crossed() {
        let mut c = LcmClient::new(ClientId(1), &key());
        let w = c.watch_stability(SeqNo(1));
        assert!(c.take_notifications().is_empty());

        c.invoke(b"a").unwrap();
        c.handle_reply(&reply_wire(&key(), &ok_reply(1, 0, ChainValue::GENESIS)))
            .unwrap();
        assert!(c.take_notifications().is_empty(), "q=0: not yet");

        c.invoke(b"b").unwrap();
        let r1h = ok_reply(1, 0, ChainValue::GENESIS).h;
        c.handle_reply(&reply_wire(&key(), &ok_reply(2, 1, r1h)))
            .unwrap();
        let fired = c.take_notifications();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].watch, w);
        assert_eq!(fired[0].threshold, SeqNo(1));
        assert_eq!(fired[0].watermark, SeqNo(1));
        // One-shot: does not fire again.
        assert!(c.take_notifications().is_empty());
    }

    #[test]
    fn stability_watch_fires_immediately_if_already_stable() {
        let mut c = LcmClient::new(ClientId(1), &key());
        c.invoke(b"a").unwrap();
        c.handle_reply(&reply_wire(&key(), &ok_reply(3, 2, ChainValue::GENESIS)))
            .unwrap();
        let w = c.watch_stability(SeqNo(2));
        let fired = c.take_notifications();
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].watch, w);
    }

    #[test]
    fn multiple_watches_fire_in_one_update() {
        let mut c = LcmClient::new(ClientId(1), &key());
        let w1 = c.watch_stability(SeqNo(1));
        let w2 = c.watch_stability(SeqNo(2));
        let w3 = c.watch_stability(SeqNo(50));
        c.invoke(b"a").unwrap();
        c.handle_reply(&reply_wire(&key(), &ok_reply(5, 3, ChainValue::GENESIS)))
            .unwrap();
        let fired: Vec<WatchId> = c.take_notifications().iter().map(|e| e.watch).collect();
        assert!(fired.contains(&w1) && fired.contains(&w2));
        assert!(!fired.contains(&w3));
    }

    #[test]
    fn rotate_key_switches_cipher() {
        let mut c = LcmClient::new(ClientId(1), &key());
        let new_key = SecretKey::from_bytes([8u8; 32]);
        c.rotate_key(&new_key);
        let wire = c.invoke(b"a").unwrap();
        // Old key can no longer decrypt the client's messages.
        assert!(aead::auth_decrypt(&AeadKey::from_secret(&key()), &wire, LABEL_INVOKE).is_err());
        assert!(aead::auth_decrypt(&AeadKey::from_secret(&new_key), &wire, LABEL_INVOKE).is_ok());
    }
}
