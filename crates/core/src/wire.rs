//! INVOKE / REPLY wire messages (paper §4.2).
//!
//! Plaintext layouts (before AEAD under `kC`):
//!
//! ```text
//! INVOKE:  tag(1) ‖ i(4) ‖ tc(8) ‖ hc(32) ‖ o(rest)        = 45 B + |o|
//! REPLY:   tag(1) ‖ t(8) ‖ q(8) ‖ h(32) ‖ hc'(32) ‖ r(rest) = 81 B + |r|
//! ```
//!
//! The INVOKE overhead matches the paper's measured **45 bytes**
//! (§6.3). The retry flag of the crash-tolerance extension (§4.6.1) is
//! folded into the tag byte so it costs nothing. Our REPLY carries the
//! full Alg. 2 field list `[REPLY, t, h, r, q, hc]` and is therefore 81
//! bytes; the paper's implementation reports 46 (it presumably elides
//! or truncates the echoed `hc`). Both are *constant in the payload
//! size*, which is the property the §6.3 experiment establishes; the
//! deviation is recorded in EXPERIMENTS.md.

use crate::codec::{CodecError, Reader, WireCodec, Writer};
use crate::types::{ChainValue, ClientId, SeqNo};

/// Tag byte of a first-attempt INVOKE.
pub const TAG_INVOKE: u8 = 0x01;
/// Tag byte of a retried INVOKE (crash-tolerance extension, §4.6.1).
pub const TAG_INVOKE_RETRY: u8 = 0x02;
/// Tag byte of a REPLY.
pub const TAG_REPLY: u8 = 0x03;
/// Tag byte of a REPLY that redirects: the addressed slice migrated
/// away under a newer routing epoch, the operation was **not**
/// executed, and `result` carries the current
/// [`crate::routing::SliceTable`] so the client can re-route. The
/// redirect still advances the client's protocol context on the
/// answering shard (it is a context-stamped no-op), so it verifies —
/// and retries replay — exactly like a normal reply.
pub const TAG_REPLY_REDIRECT: u8 = 0x07;

/// Fixed metadata bytes an INVOKE adds on top of the operation payload.
pub const INVOKE_OVERHEAD: usize = 1 + 4 + 8 + 32;

/// Fixed metadata bytes a REPLY adds on top of the result payload.
pub const REPLY_OVERHEAD: usize = 1 + 8 + 8 + 32 + 32;

/// Length of the plaintext routing envelope prepended to every
/// encrypted INVOKE (see [`RouteHint`]).
pub const ROUTE_HINT_LEN: usize = 4 + 4 + 8 + 8;

/// The plaintext routing envelope of an encrypted INVOKE wire:
/// `client(4) ‖ route(4) ‖ seq(8) ‖ epoch(8) ‖ ciphertext`.
///
/// A key-partitioned sharded host (see [`crate::shard`]) must route
/// each request without decrypting it, so the client attaches the
/// stable route hash in the clear — exposing no more than the host
/// learns anyway from routing the reply (the client identity) plus a
/// hash of the partition key. The `seq` field carries the client's
/// sequence number `tc` in the clear so the host's admission layer
/// (see [`crate::admission`]) can deduplicate retried submissions
/// without decrypting; it reveals only an op counter. The `epoch`
/// field names the [`crate::routing::SliceTable`] version the client
/// routed under, so the host can deliver in-flight wires by the map
/// they were addressed with even while slices migrate. All four
/// fields are **bound into the AEAD associated data** of the INVOKE
/// (see [`crate::context::invoke_aad`] / [`crate::context::reply_aad`]
/// for the REPLY): tampering with the envelope, or swapping a client's
/// concurrent replies across shards, fails authentication, and the
/// enclave additionally cross-checks `seq` against the authenticated
/// `tc` inside the ciphertext. Delivering an *intact* wire to the
/// wrong shard is caught by the receiving enclave itself: it holds an
/// attested [`crate::context::ShardIdentity`] plus the current slice
/// table and rejects any current-epoch wire whose envelope route — or
/// whose route recomputed from the decrypted operation's partition key
/// — does not map to it, and any wire stamped with an epoch *newer*
/// than its own table (the signature of a rolled-back enclave)
/// ([`crate::Violation::WrongShard`]), with no client history
/// required. A wire stamped with an *older* epoch whose slice has
/// since migrated away is answered with a [`TAG_REPLY_REDIRECT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteHint {
    /// The invoking client (duplicated inside the ciphertext; the
    /// enclave asserts both copies agree).
    pub client: ClientId,
    /// Stable route hash of the operation's partition key (see
    /// [`crate::shard::route_for`]).
    pub route: u32,
    /// The client's sequence number `tc` for this invocation
    /// (duplicated inside the ciphertext; the enclave asserts both
    /// copies agree). Identical across retries of the same operation,
    /// which is what makes host-side retry dedup sound.
    pub seq: u64,
    /// Routing epoch: the [`crate::routing::SliceTable`] version the
    /// client mapped `route` to a shard under.
    pub epoch: u64,
}

impl RouteHint {
    /// Appends the envelope bytes to `out`.
    pub fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.client.0.to_be_bytes());
        out.extend_from_slice(&self.route.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.epoch.to_be_bytes());
    }

    /// Splits a wire into its envelope and the AEAD ciphertext.
    /// Returns `None` when the wire is shorter than the envelope.
    pub fn peel(wire: &[u8]) -> Option<(RouteHint, &[u8])> {
        if wire.len() < ROUTE_HINT_LEN {
            return None;
        }
        let client = ClientId(u32::from_be_bytes(wire[0..4].try_into().ok()?));
        let route = u32::from_be_bytes(wire[4..8].try_into().ok()?);
        let seq = u64::from_be_bytes(wire[8..16].try_into().ok()?);
        let epoch = u64::from_be_bytes(wire[16..24].try_into().ok()?);
        Some((
            RouteHint {
                client,
                route,
                seq,
                epoch,
            },
            &wire[ROUTE_HINT_LEN..],
        ))
    }
}

/// Tag byte of a verified-read leg (replicated shard groups).
pub const TAG_READ: u8 = 0x04;
/// Tag byte of a verified-read reply with fresh data.
pub const TAG_READ_REPLY: u8 = 0x05;
/// Tag byte of a verified-read reply from a member that has not yet
/// installed the client's latest acknowledged write (retryable lag,
/// never a violation).
pub const TAG_READ_BEHIND: u8 = 0x06;
/// Tag byte of a verified-read reply reporting that the addressed
/// slice migrated away under a newer routing epoch: `result` carries
/// the current [`crate::routing::SliceTable`] and the client re-issues
/// the read on the slice's new owner. Reads are idempotent, so unlike
/// [`TAG_REPLY_REDIRECT`] no context stamp is needed.
pub const TAG_READ_REDIRECT: u8 = 0x08;

/// Length of the plaintext envelope prepended to every encrypted read
/// leg (see [`ReadHint`]).
pub const READ_HINT_LEN: usize = 4 + 4 + 8 + 4 + 8;

/// The plaintext envelope of an encrypted verified-read leg:
/// `client(4) ‖ route(4) ‖ seq(8) ‖ replica(4) ‖ epoch(8) ‖
/// ciphertext`.
///
/// Like [`RouteHint`] for writes, but with one extra field: the
/// replica slot the client *pinned* this read to. All five fields are
/// bound into the AEAD associated data
/// ([`crate::context::read_aad`]), and the serving enclave computes
/// the AAD with its **own** attested replica coordinate — a read leg
/// the host redirects to a different member of the group fails
/// authentication inside that enclave. The host learns only what it
/// needs to route: who is asking, which shard, which op counter,
/// which member should answer, and which routing-table version the
/// client addressed it under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadHint {
    /// The reading client (duplicated inside the ciphertext; the
    /// enclave asserts both copies agree).
    pub client: ClientId,
    /// Stable route hash of the operation's partition key.
    pub route: u32,
    /// The client's context sequence number `tc` for the shard the
    /// read targets (duplicated inside the ciphertext).
    pub seq: u64,
    /// The replica slot this read is pinned to.
    pub replica: u32,
    /// Routing epoch: the [`crate::routing::SliceTable`] version the
    /// client mapped `route` to a shard under.
    pub epoch: u64,
}

impl ReadHint {
    /// Appends the envelope bytes to `out`.
    pub fn encode_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.client.0.to_be_bytes());
        out.extend_from_slice(&self.route.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.replica.to_be_bytes());
        out.extend_from_slice(&self.epoch.to_be_bytes());
    }

    /// Splits a read wire into its envelope and the AEAD ciphertext.
    /// Returns `None` when the wire is shorter than the envelope.
    pub fn peel(wire: &[u8]) -> Option<(ReadHint, &[u8])> {
        if wire.len() < READ_HINT_LEN {
            return None;
        }
        let client = ClientId(u32::from_be_bytes(wire[0..4].try_into().ok()?));
        let route = u32::from_be_bytes(wire[4..8].try_into().ok()?);
        let seq = u64::from_be_bytes(wire[8..16].try_into().ok()?);
        let replica = u32::from_be_bytes(wire[16..20].try_into().ok()?);
        let epoch = u64::from_be_bytes(wire[20..28].try_into().ok()?);
        Some((
            ReadHint {
                client,
                route,
                seq,
                replica,
                epoch,
            },
            &wire[READ_HINT_LEN..],
        ))
    }
}

/// The plaintext of a verified-read leg: the client's full context for
/// the target shard plus the (read-only) operation. Mirrors
/// [`InvokeMsg`] without the retry flag — reads are idempotent, so a
/// retried read is just the same leg again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadMsg {
    /// Reading client.
    pub client: ClientId,
    /// Sequence number of the client's last completed operation on the
    /// target shard.
    pub tc: SeqNo,
    /// Hash chain value from that operation.
    pub hc: ChainValue,
    /// The opaque read-only operation for the functionality `F`.
    pub op: Vec<u8>,
}

impl WireCodec for ReadMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(TAG_READ);
        self.client.encode(w);
        self.tc.encode(w);
        self.hc.encode(w);
        w.put_raw(&self.op);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let tag = r.get_u8()?;
        if tag != TAG_READ {
            return Err(CodecError::InvalidTag(tag));
        }
        Ok(ReadMsg {
            client: ClientId::decode(r)?,
            tc: SeqNo::decode(r)?,
            hc: ChainValue::decode(r)?,
            op: r.get_rest().to_vec(),
        })
    }
}

/// The disposition of a verified-read reply, carried in its tag byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadStatus {
    /// [`TAG_READ_REPLY`]: the member's `V[i]` matched the client's
    /// `(tc, hc)` exactly and `result` holds the read's output.
    Fresh,
    /// [`TAG_READ_BEHIND`]: the member has not yet installed the
    /// client's latest acknowledged write — `result` is empty and the
    /// client should retry (possibly on another member).
    Behind,
    /// [`TAG_READ_REDIRECT`]: the addressed slice migrated away —
    /// `result` holds the current [`crate::routing::SliceTable`] and
    /// the client re-issues the read on the slice's new owner.
    Moved,
}

/// The reply to a verified-read leg; see [`ReadStatus`] for the three
/// dispositions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadReplyMsg {
    /// The member's recorded sequence number for this client.
    pub t: SeqNo,
    /// The member's stable watermark.
    pub q: SeqNo,
    /// The member's recorded chain value for this client.
    pub h: ChainValue,
    /// Echo of the client's chain value from the read leg.
    pub hc_echo: ChainValue,
    /// Disposition: fresh data, retryable lag, or slice migrated.
    pub status: ReadStatus,
    /// The read result (empty when behind; the current slice table
    /// when moved).
    pub result: Vec<u8>,
}

impl WireCodec for ReadReplyMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(match self.status {
            ReadStatus::Fresh => TAG_READ_REPLY,
            ReadStatus::Behind => TAG_READ_BEHIND,
            ReadStatus::Moved => TAG_READ_REDIRECT,
        });
        self.t.encode(w);
        self.q.encode(w);
        self.h.encode(w);
        self.hc_echo.encode(w);
        w.put_raw(&self.result);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let tag = r.get_u8()?;
        let status = match tag {
            TAG_READ_REPLY => ReadStatus::Fresh,
            TAG_READ_BEHIND => ReadStatus::Behind,
            TAG_READ_REDIRECT => ReadStatus::Moved,
            other => return Err(CodecError::InvalidTag(other)),
        };
        Ok(ReadReplyMsg {
            t: SeqNo::decode(r)?,
            q: SeqNo::decode(r)?,
            h: ChainValue::decode(r)?,
            hc_echo: ChainValue::decode(r)?,
            status,
            result: r.get_rest().to_vec(),
        })
    }
}

/// The `[INVOKE, tc, hc, o, i]` message of Alg. 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvokeMsg {
    /// Invoking client.
    pub client: ClientId,
    /// Sequence number of the client's last completed operation.
    pub tc: SeqNo,
    /// Hash chain value from the client's last completed operation.
    pub hc: ChainValue,
    /// Whether this is a retry of an unanswered invocation.
    pub retry: bool,
    /// The opaque operation for the functionality `F`.
    pub op: Vec<u8>,
}

impl WireCodec for InvokeMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(if self.retry {
            TAG_INVOKE_RETRY
        } else {
            TAG_INVOKE
        });
        self.client.encode(w);
        self.tc.encode(w);
        self.hc.encode(w);
        w.put_raw(&self.op);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let tag = r.get_u8()?;
        let retry = match tag {
            TAG_INVOKE => false,
            TAG_INVOKE_RETRY => true,
            other => return Err(CodecError::InvalidTag(other)),
        };
        Ok(InvokeMsg {
            client: ClientId::decode(r)?,
            tc: SeqNo::decode(r)?,
            hc: ChainValue::decode(r)?,
            retry,
            op: r.get_rest().to_vec(),
        })
    }
}

/// The `[REPLY, t, h, r, q, hc]` message of Alg. 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplyMsg {
    /// Sequence number assigned to the operation.
    pub t: SeqNo,
    /// Majority-stable sequence number at execution time.
    pub q: SeqNo,
    /// Hash chain value after the operation.
    pub h: ChainValue,
    /// Echo of the client's previous chain value, matching the REPLY to
    /// its INVOKE.
    pub hc_echo: ChainValue,
    /// Whether this reply is a routing redirect
    /// ([`TAG_REPLY_REDIRECT`]): the operation was not executed and
    /// `result` carries the current [`crate::routing::SliceTable`].
    pub redirect: bool,
    /// The operation result from `F` (the encoded slice table when
    /// `redirect`).
    pub result: Vec<u8>,
}

impl WireCodec for ReplyMsg {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(if self.redirect {
            TAG_REPLY_REDIRECT
        } else {
            TAG_REPLY
        });
        self.t.encode(w);
        self.q.encode(w);
        self.h.encode(w);
        self.hc_echo.encode(w);
        w.put_raw(&self.result);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let tag = r.get_u8()?;
        let redirect = match tag {
            TAG_REPLY => false,
            TAG_REPLY_REDIRECT => true,
            other => return Err(CodecError::InvalidTag(other)),
        };
        Ok(ReplyMsg {
            t: SeqNo::decode(r)?,
            q: SeqNo::decode(r)?,
            h: ChainValue::decode(r)?,
            hc_echo: ChainValue::decode(r)?,
            redirect,
            result: r.get_rest().to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_invoke(retry: bool) -> InvokeMsg {
        InvokeMsg {
            client: ClientId(3),
            tc: SeqNo(17),
            hc: ChainValue::GENESIS.extend(b"prev", SeqNo(17), ClientId(3)),
            retry,
            op: b"PUT key value".to_vec(),
        }
    }

    #[test]
    fn invoke_roundtrip() {
        for retry in [false, true] {
            let msg = sample_invoke(retry);
            let decoded = InvokeMsg::from_bytes(&msg.to_bytes()).unwrap();
            assert_eq!(decoded, msg);
        }
    }

    #[test]
    fn reply_roundtrip() {
        for redirect in [false, true] {
            let msg = ReplyMsg {
                t: SeqNo(18),
                q: SeqNo(12),
                h: ChainValue::GENESIS.extend(b"x", SeqNo(18), ClientId(3)),
                hc_echo: ChainValue::GENESIS,
                redirect,
                result: b"OK".to_vec(),
            };
            assert_eq!(ReplyMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }

    #[test]
    fn invoke_overhead_is_45_bytes() {
        // Paper §6.3: "our LCM implementation adds 45 byte to an
        // operation invocation", constant in the payload size.
        for op_len in [0usize, 100, 2500] {
            let mut msg = sample_invoke(false);
            msg.op = vec![0xab; op_len];
            assert_eq!(msg.to_bytes().len(), INVOKE_OVERHEAD + op_len);
        }
        assert_eq!(INVOKE_OVERHEAD, 45);
    }

    #[test]
    fn reply_overhead_is_constant() {
        for result_len in [0usize, 100, 2500] {
            let msg = ReplyMsg {
                t: SeqNo(1),
                q: SeqNo(0),
                h: ChainValue::GENESIS,
                hc_echo: ChainValue::GENESIS,
                redirect: false,
                result: vec![0xcd; result_len],
            };
            assert_eq!(msg.to_bytes().len(), REPLY_OVERHEAD + result_len);
        }
    }

    #[test]
    fn empty_op_roundtrips() {
        let mut msg = sample_invoke(false);
        msg.op = vec![];
        assert_eq!(InvokeMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn invalid_tag_rejected() {
        let mut bytes = sample_invoke(false).to_bytes();
        bytes[0] = 0x7f;
        assert!(InvokeMsg::from_bytes(&bytes).is_err());
        assert!(ReplyMsg::from_bytes(&bytes).is_err());
    }

    #[test]
    fn truncated_messages_rejected() {
        let bytes = sample_invoke(false).to_bytes();
        assert!(InvokeMsg::from_bytes(&bytes[..10]).is_err());
    }

    #[test]
    fn retry_flag_costs_nothing() {
        let plain = sample_invoke(false).to_bytes();
        let retry = sample_invoke(true).to_bytes();
        assert_eq!(plain.len(), retry.len());
    }

    #[test]
    fn route_hint_roundtrips() {
        let hint = RouteHint {
            client: ClientId(7),
            route: 0xdead_beef,
            seq: 41,
            epoch: 9,
        };
        let mut wire = Vec::new();
        hint.encode_to(&mut wire);
        wire.extend_from_slice(b"ciphertext");
        let (peeled, rest) = RouteHint::peel(&wire).unwrap();
        assert_eq!(peeled, hint);
        assert_eq!(rest, b"ciphertext");
    }

    #[test]
    fn short_wire_has_no_route_hint() {
        assert!(RouteHint::peel(&[1, 2, 3]).is_none());
        assert!(RouteHint::peel(&[]).is_none());
    }

    #[test]
    fn read_hint_roundtrips() {
        let hint = ReadHint {
            client: ClientId(9),
            route: 0xcafe_f00d,
            seq: 23,
            replica: 2,
            epoch: 3,
        };
        let mut wire = Vec::new();
        hint.encode_to(&mut wire);
        wire.extend_from_slice(b"ct");
        let (peeled, rest) = ReadHint::peel(&wire).unwrap();
        assert_eq!(peeled, hint);
        assert_eq!(rest, b"ct");
        assert!(ReadHint::peel(&wire[..READ_HINT_LEN - 1]).is_none());
    }

    #[test]
    fn read_msg_roundtrips() {
        let msg = ReadMsg {
            client: ClientId(4),
            tc: SeqNo(11),
            hc: ChainValue::GENESIS.extend(b"w", SeqNo(11), ClientId(4)),
            op: b"GET key".to_vec(),
        };
        assert_eq!(ReadMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }

    #[test]
    fn read_reply_roundtrips_both_flavours() {
        for status in [ReadStatus::Fresh, ReadStatus::Behind, ReadStatus::Moved] {
            let msg = ReadReplyMsg {
                t: SeqNo(11),
                q: SeqNo(7),
                h: ChainValue::GENESIS.extend(b"w", SeqNo(11), ClientId(4)),
                hc_echo: ChainValue::GENESIS,
                status,
                result: if status == ReadStatus::Fresh {
                    b"value".to_vec()
                } else {
                    vec![]
                },
            };
            assert_eq!(ReadReplyMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
        }
    }
}
