//! The protocol state map `V` and operation stability (paper §4.5).
//!
//! `T` maintains, per client, the sequence number of the last
//! *acknowledged* operation (`ta`), and the sequence number and chain
//! value of the last *executed* operation (`t`, `h`). A client
//! acknowledges operation `t` implicitly by invoking its next operation
//! with `tc = t` — that is when `T` learns the client actually received
//! the reply.
//!
//! `majority-stable(V)` follows the paper's definition: *"the largest
//! acknowledged sequence number in V that is less than or equal to more
//! than n/2 sequence numbers in V"*.

use std::collections::BTreeMap;

use crate::codec::{CodecError, Reader, WireCodec, Writer};
use crate::types::{ChainValue, ClientId, SeqNo};

/// The reply fields cached for crash-tolerant retries (§4.6.1 extends
/// `V` to *"store the last operation result r as well"*; we cache the
/// whole reply so it can be re-encrypted verbatim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedReply {
    /// Sequence number the cached reply reported.
    pub t: SeqNo,
    /// Majority-stable watermark the cached reply reported.
    pub q: SeqNo,
    /// Chain value the cached reply reported.
    pub h: ChainValue,
    /// The `hc` echo of the cached reply — also used to authenticate
    /// that a retry matches the context of the original invocation.
    pub hc_echo: ChainValue,
    /// Whether the cached reply was a routing redirect (a
    /// context-stamped no-op carrying the slice table instead of an
    /// execution result); a retry must replay the same disposition.
    pub redirect: bool,
    /// The cached operation result.
    pub result: Vec<u8>,
}

impl WireCodec for CachedReply {
    fn encode(&self, w: &mut Writer) {
        self.t.encode(w);
        self.q.encode(w);
        self.h.encode(w);
        self.hc_echo.encode(w);
        w.put_bool(self.redirect);
        w.put_bytes(&self.result);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(CachedReply {
            t: SeqNo::decode(r)?,
            q: SeqNo::decode(r)?,
            h: ChainValue::decode(r)?,
            hc_echo: ChainValue::decode(r)?,
            redirect: r.get_bool()?,
            result: r.get_bytes()?.to_vec(),
        })
    }
}

/// One entry of the protocol state map `V`: the paper's
/// `(ta, t, h)` triple plus the cached reply of the crash-tolerance
/// extension.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VEntry {
    /// Sequence number of the last operation this client acknowledged.
    pub ta: SeqNo,
    /// Sequence number of the client's last executed operation.
    pub t: SeqNo,
    /// Chain value after the client's last executed operation.
    pub h: ChainValue,
    /// Reply cached for retry; `None` only before the client's first
    /// operation.
    pub cached: Option<CachedReply>,
}

impl WireCodec for VEntry {
    fn encode(&self, w: &mut Writer) {
        self.ta.encode(w);
        self.t.encode(w);
        self.h.encode(w);
        match &self.cached {
            None => w.put_bool(false),
            Some(c) => {
                w.put_bool(true);
                c.encode(w);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let ta = SeqNo::decode(r)?;
        let t = SeqNo::decode(r)?;
        let h = ChainValue::decode(r)?;
        let cached = if r.get_bool()? {
            Some(CachedReply::decode(r)?)
        } else {
            None
        };
        Ok(VEntry { ta, t, h, cached })
    }
}

/// The protocol state map `V`, indexed by client identifier.
pub type VMap = BTreeMap<ClientId, VEntry>;

/// Encodes a [`VMap`] deterministically (BTreeMap iterates in key
/// order).
pub fn encode_vmap(v: &VMap, w: &mut Writer) {
    w.put_u32(v.len() as u32);
    for (id, entry) in v {
        id.encode(w);
        entry.encode(w);
    }
}

/// Decodes a [`VMap`].
///
/// # Errors
///
/// Returns a [`CodecError`] on malformed input.
pub fn decode_vmap(r: &mut Reader<'_>) -> Result<VMap, CodecError> {
    let n = r.get_u32()? as usize;
    let mut v = VMap::new();
    for _ in 0..n {
        let id = ClientId::decode(r)?;
        let entry = VEntry::decode(r)?;
        v.insert(id, entry);
    }
    Ok(v)
}

/// `majority-stable(V)`: the largest acknowledged sequence number `a`
/// in `V` such that more than `n/2` of the last-operation sequence
/// numbers in `V` are at least `a`.
///
/// Returns [`SeqNo::ZERO`] for an empty map or when nothing has been
/// acknowledged.
///
/// # Example
///
/// ```
/// use lcm_core::stability::{majority_stable, VEntry, VMap};
/// use lcm_core::types::{ClientId, SeqNo};
///
/// let mut v = VMap::new();
/// // Three clients; C1 acknowledged op #4, and ops ≥ 4 were executed
/// // by all three ⇒ #4 is majority-stable.
/// v.insert(ClientId(1), VEntry { ta: SeqNo(4), t: SeqNo(6), ..VEntry::default() });
/// v.insert(ClientId(2), VEntry { ta: SeqNo(2), t: SeqNo(5), ..VEntry::default() });
/// v.insert(ClientId(3), VEntry { ta: SeqNo(0), t: SeqNo(4), ..VEntry::default() });
/// assert_eq!(majority_stable(&v), SeqNo(4));
/// ```
pub fn majority_stable(v: &VMap) -> SeqNo {
    stable_with(v, Quorum::Majority)
}

/// A counting threshold over a group of `n` parties.
///
/// The same threshold engine backs two very different quorums — do not
/// conflate them:
///
/// * **Client quorum** (the paper's use, §4.5 Definition 2): how many
///   *clients* must have executed past an acknowledged sequence number
///   before `T` reports it stable. `n` is the client-group size, the
///   parties are mutually-trusting protocol participants, and the
///   quorum governs what *stability watermark* a reply carries. The
///   paper uses a majority but notes *"one may use different strengths
///   of stability"*, so it is configurable.
/// * **Replica quorum** ([`crate::replica::ReplicaGroup`]): how many
///   *group members* must hold a sealed state blob before the host
///   releases the batch's replies. `n` is the replica count `2f + 1`,
///   the parties are enclave instances on one untrusted host, and the
///   quorum governs *durability of acknowledged writes* across member
///   crashes. With [`Quorum::Majority`] over `2f + 1` members,
///   `required = f + 1`, so any `f` crashes leave at least one holder
///   of every acknowledged write.
///
/// A deployment picks the two independently: a cautious operator may
/// run client stability at [`Quorum::All`] while replica release stays
/// at majority.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quorum {
    /// Strictly more than half of the clients (the paper's default).
    Majority,
    /// Every client (full stability; slowest to advance).
    All,
    /// At least `k` clients (clamped to the group size).
    AtLeast(u32),
}

impl Quorum {
    /// Minimum number of qualifying clients out of `n` for stability.
    pub fn required(&self, n: usize) -> usize {
        match self {
            Quorum::Majority => n / 2 + 1,
            Quorum::All => n,
            Quorum::AtLeast(k) => (*k as usize).min(n).max(1),
        }
    }
}

impl WireCodec for Quorum {
    fn encode(&self, w: &mut Writer) {
        match self {
            Quorum::Majority => w.put_u8(0),
            Quorum::All => w.put_u8(1),
            Quorum::AtLeast(k) => {
                w.put_u8(2);
                w.put_u32(*k);
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.get_u8()? {
            0 => Ok(Quorum::Majority),
            1 => Ok(Quorum::All),
            2 => Ok(Quorum::AtLeast(r.get_u32()?)),
            other => Err(CodecError::InvalidTag(other)),
        }
    }
}

/// Generalization of [`majority_stable`] to an arbitrary [`Quorum`].
pub fn stable_with(v: &VMap, quorum: Quorum) -> SeqNo {
    let n = v.len();
    if n == 0 {
        return SeqNo::ZERO;
    }
    let required = quorum.required(n);
    let mut best = SeqNo::ZERO;
    for entry in v.values() {
        let a = entry.ta;
        if a <= best {
            continue;
        }
        let count = v.values().filter(|e| e.t >= a).count();
        if count >= required {
            best = a;
        }
    }
    best
}

/// The `argmax(V)` of Alg. 2: the entry holding the most recent
/// operation, from which `(t, h)` are recovered after a restart.
pub fn latest_entry(v: &VMap) -> Option<&VEntry> {
    v.values().max_by_key(|e| e.t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(ta: u64, t: u64) -> VEntry {
        VEntry {
            ta: SeqNo(ta),
            t: SeqNo(t),
            h: ChainValue::GENESIS.extend(b"op", SeqNo(t), ClientId(0)),
            cached: None,
        }
    }

    fn vmap(entries: &[(u32, u64, u64)]) -> VMap {
        entries
            .iter()
            .map(|&(id, ta, t)| (ClientId(id), entry(ta, t)))
            .collect()
    }

    #[test]
    fn empty_map_is_zero() {
        assert_eq!(majority_stable(&VMap::new()), SeqNo::ZERO);
    }

    #[test]
    fn nothing_acknowledged_is_zero() {
        let v = vmap(&[(1, 0, 3), (2, 0, 2), (3, 0, 1)]);
        assert_eq!(majority_stable(&v), SeqNo::ZERO);
    }

    #[test]
    fn single_client_self_stability() {
        // One client: its own acknowledgement is a majority of one.
        let v = vmap(&[(1, 5, 6)]);
        assert_eq!(majority_stable(&v), SeqNo(5));
    }

    #[test]
    fn majority_needed() {
        // 4 clients: exactly half executing ≥ a is NOT a majority.
        let v = vmap(&[(1, 4, 4), (2, 0, 4), (3, 0, 2), (4, 0, 1)]);
        // a=4: clients with t>=4 are {1,2} = 2, need >2 ⇒ not stable.
        assert_eq!(majority_stable(&v), SeqNo::ZERO);
        let v = vmap(&[(1, 4, 4), (2, 0, 4), (3, 0, 5), (4, 0, 1)]);
        // a=4: {1,2,3} = 3 > 2 ⇒ stable.
        assert_eq!(majority_stable(&v), SeqNo(4));
    }

    #[test]
    fn largest_qualifying_ack_wins() {
        let v = vmap(&[(1, 6, 8), (2, 5, 7), (3, 0, 6)]);
        // a=6: |{t>=6}| = 3 > 1.5 ⇒ stable; a=6 beats a=5.
        assert_eq!(majority_stable(&v), SeqNo(6));
    }

    #[test]
    fn forked_minority_stalls_stability() {
        // Clients 2 and 3 are forked away (their t stopped advancing).
        let v = vmap(&[(1, 9, 10), (2, 0, 2), (3, 0, 2)]);
        // a=9: only client 1 has t>=9 ⇒ 1 ≤ 1.5 ⇒ not stable.
        assert_eq!(majority_stable(&v), SeqNo::ZERO);
    }

    #[test]
    fn ventry_codec_roundtrip() {
        let mut e = entry(3, 7);
        assert_eq!(VEntry::from_bytes(&e.to_bytes()).unwrap(), e);
        e.cached = Some(CachedReply {
            t: SeqNo(7),
            q: SeqNo(3),
            h: e.h,
            hc_echo: ChainValue::GENESIS,
            redirect: false,
            result: b"result".to_vec(),
        });
        assert_eq!(VEntry::from_bytes(&e.to_bytes()).unwrap(), e);
    }

    #[test]
    fn vmap_codec_roundtrip() {
        let v = vmap(&[(1, 1, 2), (5, 0, 4), (9, 3, 3)]);
        let mut w = Writer::new();
        encode_vmap(&v, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = decode_vmap(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(decoded, v);
    }

    #[test]
    fn vmap_encoding_is_deterministic() {
        let a = vmap(&[(3, 1, 2), (1, 0, 4), (2, 3, 3)]);
        let b = vmap(&[(2, 3, 3), (3, 1, 2), (1, 0, 4)]);
        let mut wa = Writer::new();
        let mut wb = Writer::new();
        encode_vmap(&a, &mut wa);
        encode_vmap(&b, &mut wb);
        assert_eq!(wa.into_bytes(), wb.into_bytes());
    }

    #[test]
    fn quorum_required_counts() {
        assert_eq!(Quorum::Majority.required(1), 1);
        assert_eq!(Quorum::Majority.required(2), 2);
        assert_eq!(Quorum::Majority.required(3), 2);
        assert_eq!(Quorum::Majority.required(4), 3);
        assert_eq!(Quorum::All.required(5), 5);
        assert_eq!(Quorum::AtLeast(2).required(5), 2);
        assert_eq!(Quorum::AtLeast(9).required(5), 5);
        assert_eq!(Quorum::AtLeast(0).required(5), 1);
    }

    #[test]
    fn replica_quorum_thresholds_k_of_2f_plus_1() {
        // The replica-release quorum over 2f+1 members: majority is
        // f+1, so f crashes still leave a holder of every release.
        for f in 0u32..4 {
            let n = (2 * f + 1) as usize;
            let required = Quorum::Majority.required(n);
            assert_eq!(required, f as usize + 1, "2f+1 = {n}");
            // Tolerance: killing f members leaves exactly enough.
            assert!(n - f as usize >= required);
            // One more crash breaks the quorum.
            assert!(n - f as usize - 1 < required || f == 0);
        }
    }

    #[test]
    fn replica_quorum_degenerate_f0_group_of_one() {
        // f = 0: a "group" of one member. The sole member is its own
        // quorum — exactly the unreplicated server's behavior.
        assert_eq!(Quorum::Majority.required(1), 1);
        assert_eq!(Quorum::All.required(1), 1);
        // AtLeast clamps into [1, n] at both ends.
        assert_eq!(Quorum::AtLeast(0).required(1), 1);
        assert_eq!(Quorum::AtLeast(7).required(1), 1);
    }

    #[test]
    fn replica_quorum_all_but_one_crashed_edge() {
        // 2f+1 = 5, f = 2: with four members crashed the survivor
        // cannot form a majority quorum — releases must stall rather
        // than acknowledge writes a single crash could erase.
        let n = 5;
        let holders_after_crashes = 1;
        assert!(holders_after_crashes < Quorum::Majority.required(n));
        // AtLeast(1) deliberately opts out of that protection: one
        // holder (the leader itself) releases immediately.
        assert_eq!(Quorum::AtLeast(1).required(n), 1);
        assert!(holders_after_crashes >= Quorum::AtLeast(1).required(n));
    }

    #[test]
    fn all_quorum_is_stricter_than_majority() {
        let v = vmap(&[(1, 6, 8), (2, 5, 7), (3, 0, 3)]);
        // a=6 needs all three t ≥ 6, but client 3 has t=3.
        assert_eq!(stable_with(&v, Quorum::All), SeqNo::ZERO);
        assert_eq!(stable_with(&v, Quorum::Majority), SeqNo(6));
    }

    #[test]
    fn quorum_codec_roundtrip() {
        for q in [Quorum::Majority, Quorum::All, Quorum::AtLeast(4)] {
            assert_eq!(Quorum::from_bytes(&q.to_bytes()).unwrap(), q);
        }
    }

    #[test]
    fn latest_entry_is_argmax() {
        let v = vmap(&[(1, 1, 2), (2, 0, 9), (3, 3, 3)]);
        assert_eq!(latest_entry(&v).unwrap().t, SeqNo(9));
        assert!(latest_entry(&VMap::new()).is_none());
    }
}
