//! Sharded multi-enclave execution: parallel stage 2 behind a
//! key-partitioned router.
//!
//! After the pipelined server moved persistence off the critical path,
//! the throughput ceiling is stage 2 itself — one enclave executing and
//! sealing every batch. [`ShardedServer`] removes that ceiling by
//! running **N independent server instances** ("shards"), each owning a
//! disjoint slice of the functionality state and its own V-map, behind
//! a deterministic router:
//!
//! ```text
//!                      ┌── ingress queue 0 ──▶ shard 0 (enclave + storage ns 0) ─┐
//!  clients ──▶ router ─┼── ingress queue 1 ──▶ shard 1 (enclave + storage ns 1) ─┼─▶ ordered replies
//!   (Hub)  slice table └── ingress queue … ──▶ shard …                           ┘   (per-client FIFO)
//! ```
//!
//! ## Routing: the epoch-versioned slice table
//!
//! The host cannot decrypt requests, so the *client* attaches a stable
//! route hash in a plaintext envelope ([`crate::wire::RouteHint`]),
//! derived from [`crate::functionality::Functionality::shard_key`] of
//! the plaintext operation (or from the client identity when the
//! functionality is not key-partitionable). The envelope — including
//! the routing **epoch** the client stamped — is bound into the AEAD
//! associated data (invoke *and* reply), so a host that rewrites
//! routing metadata, replays a wire under a different epoch, or swaps
//! two of a client's concurrent replies fails authentication.
//!
//! Routes no longer map to shards by a fixed `route % N`: the key
//! space is cut into [`SLICE_COUNT`] **slices** (`route %
//! SLICE_COUNT`), and an epoch-stamped [`SliceTable`] assigns each
//! slice to a shard. Epoch 0 is the uniform table (equivalent to
//! `route % N` for shard counts dividing the slice count); every
//! [live slice migration](#live-slice-migration) derives the next
//! epoch. Every party holds the table: each *enclave* carries it in
//! its sealed checkpoint and recomputes ownership on every INVOKE,
//! each *client* learns newer tables through authenticated redirect
//! replies, and the *host* keeps the dense history so wires stamped
//! with an old epoch still route to the shard that owned them when
//! they were sent (that shard answers stale wires with a redirect; a
//! host delivering by the newest table instead would scatter a slow
//! client's in-flight wires across shards that never saw its chain).
//!
//! ## Live slice migration
//!
//! [`ShardedServer::rebalance_once`] (policy: [`plan_rebalance`] over
//! drained per-slice heat counters) and [`BatchServer::migrate_slice`]
//! (mechanism) move one slice between *running* enclaves:
//!
//! 1. the origin enclave exports the slice — a sealed **ticket**
//!    (channel-key-encrypted slice state, addressed to the target's
//!    identity) plus a **bulletin** (the new table, sealed for every
//!    sibling) — and installs the next-epoch table itself;
//! 2. every bystander shard adopts the bulletin;
//! 3. the target imports the ticket (state + table in one step);
//! 4. the host appends the new table to its routing history.
//!
//! The origin lane stays locked for the whole handshake so the new
//! epoch cannot leak to clients (via redirect stamps) before every
//! shard has installed it. A member crash mid-handshake leaves a
//! [`ShardedServer::pending_slice_move`] that
//! [`ShardedServer::resume_slice_migration`] retries after reboot —
//! each enclave step is idempotent, and an origin crash-stopped
//! *after* its export recovers the post-export checkpoint, so the
//! moved slice can never resurrect under the old epoch.
//!
//! ## Attested shard identity
//!
//! Every enclave carries its own
//! [`crate::context::ShardIdentity`] `(index, count)`, delivered in a
//! **per-shard provisioning payload** by the admin and bound into
//! every attestation quote the enclave produces (see
//! [`crate::context::attest_user_data`]). This turns routing into a
//! *guarantee* rather than a host courtesy:
//!
//! * **Misdelivery is detected by the enclave itself.** On every
//!   INVOKE the enclave checks that both the authenticated envelope
//!   route *and* the route recomputed from the decrypted operation's
//!   partition key fall in its own slices under its installed table;
//!   a host that delivers an intact current-epoch wire to the wrong
//!   shard — or stamps an epoch *newer* than the shard's table, the
//!   signature of an enclave rolled back past a migration — trips
//!   [`crate::Violation::WrongShard`], even for a client's very first
//!   operation on a shard, with no client history required. A wire
//!   honestly stamped with an *older* epoch for a slice that has since
//!   moved away gets an authenticated redirect carrying the newer
//!   table instead.
//! * **The whole deployment is attested, not a representative.**
//!   [`crate::admin::AdminHandle::bootstrap`] attests every lane
//!   before provisioning, injects each lane's identity, and then
//!   verifies one identity-bound quote per shard (a
//!   [`crate::admin::DeploymentManifest`]); migration re-runs that
//!   verification on the target deployment, and reboots recover the
//!   identity from the sealed state, so a host cannot silently
//!   reshuffle which enclave serves which slice.
//! * Host-side attestation activity is observable per shard through
//!   [`ShardStats::attested`] / [`ShardStatsRollup::attested_shards`].
//!
//! ## Protocol guarantees under sharding
//!
//! Each shard is a complete LCM instance: its own hash chain, V-map
//! slice, sequence-number space, and stability watermark. Clients keep
//! one `(tc, hc)` context *per shard* ([`crate::client::LcmClient`]
//! handles this transparently), so rollback/fork detection holds
//! per shard — power-failing or rolling back one shard is detected by
//! exactly the clients with state there, while the other shards keep
//! serving (fault isolation; see `tests/sharding.rs`).
//!
//! ## Reply ordering
//!
//! Shards complete batches concurrently, but replies to any one client
//! are released in that client's submission order: every accepted wire
//! gets a global ticket, and a reply is held back until all of the same
//! client's earlier tickets have been delivered. Across clients,
//! replies are emitted in global ticket order, keeping runs
//! deterministic.
//!
//! ## Concurrent driving
//!
//! The ingress plane, the lanes, and the ticket book live in a shared
//! thread-safe core, so the deployment is **not** bound to a single
//! driving thread: submission and lane driving need only `&self`, and
//! any number of driver threads may pump different lanes at once (each
//! lane is still stepped by at most one driver at a time). The
//! single-threaded path — `submit` + `process_all` from one caller —
//! remains exactly as before (including inline back-pressure relief
//! when an ingress queue fills with nobody else to drain it), while
//! [`crate::transport::Frontend`] attaches a pool of driver threads to
//! the same core through [`crate::transport::TransportPlane`] and
//! turns a full ingress into submitter back-pressure instead. A wire
//! is tracked from ticket issue to *settlement* (reply released, or
//! written off by a crash-stop), which is what the front-end's
//! quiescence barrier waits on.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use lcm_crypto::sha256::Digest;
use lcm_runtime::queue::{BoundedQueue, QueueStats};
use lcm_runtime::WorkerPool;
use lcm_storage::{NamespacedStorage, StableStorage};
use lcm_tee::attestation::Quote;
use lcm_tee::world::TeeWorld;

use crate::admission::{AdmissionState, AdmitOutcome, RetryAfter, SettledTicket};
use crate::codec::{Reader, Writer};
use crate::functionality::Functionality;
use crate::routing::{slice_of, SliceTable, SLICE_COUNT};
use crate::server::{BatchServer, LcmServer, Replies};
use crate::types::ClientId;
use crate::wire::RouteHint;
use crate::{LcmError, Result};

/// Default bound on each shard's ingress queue. Submitting into a full
/// queue blocks (back-pressure); the default is generous enough for
/// every closed-loop test workload while still bounding host memory.
pub const DEFAULT_INGRESS_CAPACITY: usize = 1024;

/// 32-bit FNV-1a over the partition key — the stable route hash.
///
/// Stability matters more than distribution quality here: the same key
/// must map to the same shard across process restarts, migrations, and
/// architectures, so the hash is a fixed public function rather than a
/// seeded hasher.
pub fn route_hash(key: &[u8]) -> u32 {
    const OFFSET: u32 = 0x811c_9dc5;
    const PRIME: u32 = 0x0100_0193;
    let mut h = OFFSET;
    for &b in key {
        h ^= u32::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The route hash of one operation: the functionality's partition key
/// when there is one, otherwise the client identity (all of one
/// client's operations then share a shard).
pub fn route_for(client: ClientId, shard_key: Option<&[u8]>) -> u32 {
    match shard_key {
        Some(key) => route_hash(key),
        None => route_hash(&client.0.to_be_bytes()),
    }
}

/// Maps a route hash onto one of `n` shards under the *genesis*
/// (epoch-0, uniform) table — for shard counts dividing
/// [`SLICE_COUNT`] this equals [`SliceTable::uniform`]`(n).shard_of`.
/// Deployment-time helpers (key placement, per-shard test workloads)
/// use this; live routing goes through the current [`SliceTable`],
/// which slice migrations advance.
pub fn shard_index(route: u32, n: u32) -> u32 {
    route % n.max(1)
}

/// The `nth` key (0-based) of the form `{prefix}{j}` (j = 0, 1, …)
/// whose route hash maps to `shard` of a `shards`-shard deployment —
/// the deterministic way callers address one specific shard:
/// scatter-gather scan pins, skewed benchmark workloads, per-shard
/// test keys. FNV-1a reaches every residue within a few candidates,
/// so the probe is short.
///
/// # Panics
///
/// Panics when `shard >= max(shards, 1)` (no key can route there).
pub fn nth_key_routing_to(shard: u32, shards: u32, prefix: &str, nth: u32) -> Vec<u8> {
    assert!(shard < shards.max(1), "shard {shard} of {shards}");
    let mut seen = 0;
    for j in 0..=u32::MAX {
        let key = format!("{prefix}{j}").into_bytes();
        if shard_index(route_hash(&key), shards) == shard {
            if seen == nth {
                return key;
            }
            seen += 1;
        }
    }
    unreachable!("FNV-1a reaches every residue infinitely often")
}

/// Per-shard activity counters, rolled up by [`ShardStatsRollup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Which shard these counters describe.
    pub shard: u32,
    /// INVOKE messages processed by this shard's enclave.
    pub ops: u64,
    /// Seal-and-store cycles performed by this shard.
    pub batches: u64,
    /// Whether this shard's enclave has *produced* an attestation
    /// quote since the deployment (re)started. The host cannot observe
    /// whether the remote verifier accepted the quote — that verdict
    /// lives in the admin's
    /// [`crate::admin::DeploymentManifest`] — so this records
    /// attestation *activity* per member: a deployment whose rollup
    /// shows fewer attested shards than lanes was certainly never
    /// fully verified.
    pub attested: bool,
    /// Ingress-queue counters; `blocked_pushes` is this shard's
    /// back-pressure signal.
    pub ingress: QueueStats,
}

/// Aggregate view over all shards' [`ShardStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatsRollup {
    /// The per-shard rows the rollup was built from.
    pub per_shard: Vec<ShardStats>,
    /// Total operations across shards.
    pub total_ops: u64,
    /// Total seal-and-store cycles across shards.
    pub total_batches: u64,
    /// How many shards have produced an attestation quote since the
    /// deployment (re)started (see [`ShardStats::attested`] for what
    /// this does and does not prove). A fully bootstrapped deployment
    /// shows `attested_shards == per_shard.len()`.
    pub attested_shards: u32,
    /// Digest over every shard's last quote (in shard order), present
    /// once *all* shards have produced one — a compact fingerprint of
    /// the deployment's claimed identities for operator dashboards;
    /// the admin-side [`crate::admin::DeploymentManifest::digest`] is
    /// the *verified* counterpart.
    pub identity_digest: Option<Digest>,
    /// Merged ingress counters (sums; worst-case high water).
    pub ingress: QueueStats,
}

impl ShardStatsRollup {
    fn from_rows(per_shard: Vec<ShardStats>, quote_digests: &[Option<Digest>]) -> Self {
        let mut ingress = QueueStats::default();
        let (mut total_ops, mut total_batches) = (0, 0);
        for row in &per_shard {
            total_ops += row.ops;
            total_batches += row.batches;
            ingress.absorb(&row.ingress);
        }
        let attested_shards = quote_digests.iter().filter(|d| d.is_some()).count() as u32;
        let identity_digest = if attested_shards as usize == quote_digests.len() {
            let mut buf = Vec::with_capacity(quote_digests.len() * 32);
            for d in quote_digests.iter().flatten() {
                buf.extend_from_slice(d.as_bytes());
            }
            Some(lcm_crypto::sha256::digest(&buf))
        } else {
            None
        };
        ShardStatsRollup {
            per_shard,
            total_ops,
            total_batches,
            attested_shards,
            identity_digest,
            ingress,
        }
    }
}

/// A ticketed wire waiting in a shard's ingress queue: `(ticket,
/// envelope client, wire)`.
type Ticketed = (u64, ClientId, Vec<u8>);

/// State owned by one shard and touched only under its lock.
struct Lane<S> {
    server: S,
    /// Tickets (with their envelope clients) of wires already moved
    /// into the server's queue, in FIFO order — pairs each reply batch
    /// back to its tickets, and names what to write off when the shard
    /// crash-stops.
    inflight: VecDeque<(u64, ClientId)>,
}

struct Shard<S> {
    lane: Mutex<Lane<S>>,
    ingress: BoundedQueue<Ticketed>,
    /// When the lane's oldest undriven wire arrived — the clock behind
    /// the batch-forming linger gate of
    /// [`crate::transport::TransportPlane::drive`]. `None` when the
    /// lane was last seen drained.
    pending_since: Mutex<Option<std::time::Instant>>,
}

fn lock<S>(lane: &Mutex<Lane<S>>) -> MutexGuard<'_, Lane<S>> {
    lane.lock().unwrap_or_else(|e| e.into_inner())
}

/// Host-side bookkeeping attached to one issued ticket: who it
/// belongs to, where it went, when it was admitted, and what the
/// admission layer needs back at settlement.
struct TicketMeta {
    /// The shard the wire was enqueued to.
    shard: u32,
    /// The envelope's authenticated client sequence, tracked for
    /// retry dedup — `Some` only when the wire came through
    /// [`crate::transport::TransportPlane::try_submit`] with admission
    /// enabled (the plain `submit` path stays dedup-free so retries
    /// reach the enclave, whose §4.6.1 handling remains the backstop).
    dedup_seq: Option<u64>,
    /// Whether the ticket holds one of its tenant's admission credits.
    credited: bool,
    /// When the wire was admitted — the start of the end-to-end
    /// latency sample recorded at release.
    start: std::time::Instant,
}

/// The reply demux book: every accepted wire's ticket from issue to
/// settlement, plus the released replies awaiting collection.
///
/// A ticket *settles* when its reply is released into `ready` (in
/// global ticket order, per-client FIFO) or when it is written off
/// (crash-stop, shard crash). `issued == settled` is the quiescence
/// predicate the concurrent front-end waits on.
struct ReplyBook {
    next_ticket: u64,
    /// Tickets handed out so far.
    issued: u64,
    /// Tickets released or written off.
    settled: u64,
    /// Per-client tickets not yet released, in submission order.
    order: BTreeMap<ClientId, VecDeque<u64>>,
    /// Replies completed out of order, waiting for earlier tickets.
    held: BTreeMap<ClientId, BTreeMap<u64, Vec<u8>>>,
    /// Replies released in order but not yet collected by a caller —
    /// the reply plane's out-buffer (survives a failing step, so
    /// healthy shards' replies outlive a sibling's crash-stop).
    ready: VecDeque<(ClientId, Vec<u8>)>,
    /// Per-ticket host metadata (latency clock, dedup key, credit).
    meta: BTreeMap<u64, TicketMeta>,
    /// Dedup index: the sequence number currently in flight per
    /// (client, shard) — one entry at most, since the protocol allows
    /// one pending operation per client per shard.
    inflight_seq: BTreeMap<(ClientId, u32), u64>,
    /// The last *released* reply per (client, shard), kept so a retry
    /// whose reply was lost on the way back is replayed from here
    /// instead of re-executed (bounded: one wire per client × shard).
    last_reply: BTreeMap<(ClientId, u32), (u64, Vec<u8>)>,
    /// First failure recorded by a lane drive since the last
    /// collection (later failures in the same window are dropped, as
    /// the single-driver server always did).
    deferred_error: Option<LcmError>,
}

impl ReplyBook {
    fn new() -> Self {
        ReplyBook {
            next_ticket: 0,
            issued: 0,
            settled: 0,
            order: BTreeMap::new(),
            held: BTreeMap::new(),
            ready: VecDeque::new(),
            meta: BTreeMap::new(),
            inflight_seq: BTreeMap::new(),
            last_reply: BTreeMap::new(),
            deferred_error: None,
        }
    }

    /// Clears one settled/struck ticket's metadata, producing the
    /// settlement record the admission layer consumes. `wire` is the
    /// released reply (`None` for write-offs, which cache nothing and
    /// record no latency sample).
    fn settle_meta(
        &mut self,
        ticket: u64,
        client: ClientId,
        wire: Option<&[u8]>,
    ) -> Option<SettledTicket> {
        let meta = self.meta.remove(&ticket)?;
        if let Some(seq) = meta.dedup_seq {
            let key = (client, meta.shard);
            if self.inflight_seq.get(&key) == Some(&seq) {
                self.inflight_seq.remove(&key);
            }
            if let Some(wire) = wire {
                self.last_reply.insert(key, (seq, wire.to_vec()));
            }
        }
        Some(SettledTicket {
            client,
            shard: meta.shard,
            latency: wire.map(|_| meta.start.elapsed()),
            credited: meta.credited,
        })
    }

    /// Releases every held reply whose client has no earlier
    /// unsettled ticket, in global ticket order, into `ready`.
    /// Returns the settlement records for the admission layer (credit
    /// returns + latency samples); the caller forwards them after
    /// dropping the book lock.
    fn release_ready(&mut self) -> Vec<SettledTicket> {
        let mut released: Vec<(u64, ClientId, Vec<u8>)> = Vec::new();
        for (client, tickets) in self.order.iter_mut() {
            while let Some(&front) = tickets.front() {
                let Some(wire) = self
                    .held
                    .get_mut(client)
                    .and_then(|waiting| waiting.remove(&front))
                else {
                    break;
                };
                released.push((front, *client, wire));
                tickets.pop_front();
            }
        }
        self.order.retain(|_, tickets| !tickets.is_empty());
        self.held.retain(|_, waiting| !waiting.is_empty());
        released.sort_by_key(|&(ticket, _, _)| ticket);
        self.settled += released.len() as u64;
        let mut settled = Vec::with_capacity(released.len());
        for (ticket, client, wire) in released {
            settled.extend(self.settle_meta(ticket, client, Some(&wire)));
            self.ready.push_back((client, wire));
        }
        settled
    }

    /// Strikes written-off tickets so a crash-stopped shard cannot
    /// stall the delivery of other shards' replies to the same
    /// clients, then releases anything that just became unblocked.
    /// Returns the settlement records of both the write-offs and the
    /// newly released replies.
    fn purge(&mut self, purged: Vec<(u64, ClientId)>) -> Vec<SettledTicket> {
        let mut settled = Vec::new();
        for (ticket, client) in purged {
            if let Some(tickets) = self.order.get_mut(&client) {
                let before = tickets.len();
                tickets.retain(|&t| t != ticket);
                self.settled += (before - tickets.len()) as u64;
            }
            if let Some(waiting) = self.held.get_mut(&client) {
                waiting.remove(&ticket);
            }
            settled.extend(self.settle_meta(ticket, client, None));
        }
        self.order.retain(|_, tickets| !tickets.is_empty());
        self.held.retain(|_, waiting| !waiting.is_empty());
        settled.extend(self.release_ready());
        settled
    }
}

/// The shared, thread-safe core of a sharded deployment: the ingress
/// plane (per-shard bounded queues), the execution lanes, and the
/// reply demux book. `ShardedServer` owns it behind an `Arc` and the
/// concurrent transport front-end ([`crate::transport::Frontend`])
/// drives it from worker threads through the
/// [`crate::transport::TransportPlane`] it implements — submission and
/// driving need only `&self`.
struct ShardCore<S> {
    shards: Vec<Shard<S>>,
    book: Mutex<ReplyBook>,
    /// Notified whenever `settled` advances or an error is recorded —
    /// what [`crate::transport::TransportPlane::wait_quiescent`] waits
    /// on.
    settled_cv: Condvar,
    /// Work-arrival signal for attached driver threads.
    work: Mutex<u64>,
    work_cv: Condvar,
    /// Driver threads currently willing to drain the ingress. With
    /// none attached, a full ingress is relieved *inline* by the
    /// submitting thread (there is nobody else to drain it — blocking
    /// would deadlock the single driver); with drivers attached, a
    /// full ingress blocks the submitter instead (back-pressure).
    active_drivers: AtomicUsize,
    /// The multi-tenant admission controller gating
    /// [`crate::transport::TransportPlane::try_submit`]. Disabled (a
    /// transparent pass-through) until configured.
    admission: Arc<AdmissionState>,
    /// The host's view of the epoch-versioned slice table, as a dense
    /// history (`routing[e]` is the table of epoch `e`). Old-epoch
    /// wires route by the table *they were stamped under* — delivering
    /// them by the newest table would scatter a slow client's
    /// in-flight wires to shards whose per-client chains never saw
    /// them. The enclaves redirect stale wires themselves; the host's
    /// only job is to deliver each wire where its stamped epoch says.
    ///
    /// This history is process-lifetime host state: `crash`/`boot` of
    /// the enclaves does not lose it (their own tables recover from
    /// sealed checkpoints). A *rebuilt* host over previously migrated
    /// storage starts back at the genesis table and cannot route
    /// post-migration epochs; re-prime it by replaying the moves.
    routing: Mutex<Vec<SliceTable>>,
    /// Per-slice write-arrival counters ("heat"), indexed by
    /// [`slice_of`] the routing hash. Drained by
    /// [`BatchServer::take_slice_heat`] for the rebalance planner.
    heat: Vec<AtomicU64>,
}

impl<S: BatchServer> ShardCore<S> {
    fn new(servers: Vec<S>, ingress_capacity: usize) -> Self {
        let n = servers.len();
        ShardCore {
            shards: servers
                .into_iter()
                .map(|server| Shard {
                    lane: Mutex::new(Lane {
                        server,
                        inflight: VecDeque::new(),
                    }),
                    ingress: BoundedQueue::new(ingress_capacity),
                    pending_since: Mutex::new(None),
                })
                .collect(),
            book: Mutex::new(ReplyBook::new()),
            settled_cv: Condvar::new(),
            work: Mutex::new(0),
            work_cv: Condvar::new(),
            active_drivers: AtomicUsize::new(0),
            admission: Arc::new(AdmissionState::new()),
            routing: Mutex::new(vec![SliceTable::uniform(n as u32)]),
            heat: (0..SLICE_COUNT).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn book(&self) -> MutexGuard<'_, ReplyBook> {
        self.book.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn routing(&self) -> MutexGuard<'_, Vec<SliceTable>> {
        self.routing.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The shard a wire stamped with `epoch` routes to. Epochs beyond
    /// the history (a wire from a client that somehow learned a newer
    /// table than the host) clamp to the newest table — the enclave
    /// decides what such a wire means, not the host.
    fn shard_for(&self, route: u32, epoch: u64) -> usize {
        let tables = self.routing();
        let idx = (epoch as usize).min(tables.len() - 1);
        tables[idx].shard_of(route) as usize
    }

    /// The newest table (what new epochs are derived from).
    fn current_table(&self) -> SliceTable {
        self.routing()
            .last()
            .expect("history is never empty")
            .clone()
    }

    fn routing_epoch(&self) -> u64 {
        self.routing()
            .last()
            .expect("history is never empty")
            .epoch()
    }

    /// Records one write arrival against the wire's slice.
    fn note_heat(&self, route: u32) {
        self.heat[slice_of(route) as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Drains the per-slice heat counters (read-and-reset, so each
    /// monitor pass sees one interval's arrivals, not history).
    fn take_heat(&self) -> Vec<u64> {
        self.heat
            .iter()
            .map(|h| h.swap(0, Ordering::Relaxed))
            .collect()
    }

    fn notify_settled(&self) {
        self.settled_cv.notify_all();
    }

    fn notify_work_arrived(&self) {
        let mut epoch = self.work.lock().unwrap_or_else(|e| e.into_inner());
        *epoch += 1;
        drop(epoch);
        self.work_cv.notify_all();
    }

    /// Tickets and enqueues one wire into `shard`'s bounded ingress
    /// (the shared tail of `submit` and `submit_to_shard`; the caller
    /// has peeled the envelope exactly once). `dedup_seq` is the
    /// envelope sequence when the wire was admitted with retry dedup
    /// active; `credited` whether the ticket holds an admission
    /// credit (returned to its tenant at settlement).
    fn enqueue(
        &self,
        client: ClientId,
        shard: usize,
        dedup_seq: Option<u64>,
        credited: bool,
        invoke_wire: Vec<u8>,
    ) {
        let ticket = {
            let mut book = self.book();
            let t = book.next_ticket;
            book.next_ticket += 1;
            book.issued += 1;
            book.order.entry(client).or_default().push_back(t);
            book.meta.insert(
                t,
                TicketMeta {
                    shard: shard as u32,
                    dedup_seq,
                    credited,
                    start: std::time::Instant::now(),
                },
            );
            if let Some(seq) = dedup_seq {
                book.inflight_seq.insert((client, shard as u32), seq);
            }
            t
        };
        let mut item = (ticket, client, invoke_wire);
        loop {
            use lcm_runtime::queue::PushError;
            match self.shards[shard].ingress.try_push(item) {
                Ok(()) => break,
                Err(PushError::Full(back)) => {
                    if self.active_drivers.load(Ordering::SeqCst) > 0 {
                        // Attached front-end drivers drain the queue:
                        // block with back-pressure instead of stealing
                        // their batch.
                        self.notify_work_arrived();
                        let _ = self.shards[shard].ingress.push(back);
                        break;
                    }
                    // No other thread will drain the queue: execute one
                    // of this shard's batches inline (back-pressure
                    // relief; replies land in the book's out-buffer,
                    // failures defer). If the lane is momentarily owned
                    // by someone else (a pump driver mid-store), back
                    // off instead of spinning on try_push/try_lock.
                    item = back;
                    if self.drive(shard as u32, None) != crate::transport::DriveStatus::Progress {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                }
                // The ingress is never closed while the server exists.
                Err(PushError::Closed(_)) => break,
            }
        }
        {
            let mut since = self.shards[shard]
                .pending_since
                .lock()
                .unwrap_or_else(|e| e.into_inner());
            if since.is_none() {
                *since = Some(std::time::Instant::now());
            }
        }
        self.notify_work_arrived();
    }

    fn route_and_enqueue(&self, invoke_wire: Vec<u8>) {
        // Malformed wires (shorter than the envelope) still get
        // delivered — to shard 0 — so the enclave rejects them with a
        // detectable violation instead of the host silently dropping.
        let (client, shard) = match RouteHint::peel(&invoke_wire) {
            Some((hint, _)) => {
                self.note_heat(hint.route);
                (hint.client, self.shard_for(hint.route, hint.epoch))
            }
            None => (ClientId(0), 0),
        };
        self.enqueue(client, shard, None, false, invoke_wire);
    }

    /// Admission-controlled submission: the implementation behind
    /// [`crate::transport::TransportPlane::try_submit`].
    ///
    /// With admission disabled this is exactly `submit`. With it
    /// enabled, a retry of an operation whose reply was already
    /// released is answered from the book's reply cache
    /// ([`AdmitOutcome::ReplayedReply`] — the enclave never sees the
    /// duplicate, per-shard op counters do not move), a retry of an
    /// operation still in flight is coalesced
    /// ([`AdmitOutcome::DuplicateInFlight`]), and fresh work passes the
    /// tenant's token bucket and fair-queueing cap — or bounces with a
    /// typed [`RetryAfter`] carrying the wire back to the caller.
    ///
    /// The check-then-admit window is racy by design (two concurrent
    /// retries of the same wire may both be enqueued): the enclave's
    /// own `(tc, hc)` replay handling (paper §4.6.1) remains the
    /// correctness backstop, so host dedup only has to be
    /// best-effort. Lock order is book → admission, never the reverse.
    fn try_submit_inner(
        &self,
        invoke_wire: Vec<u8>,
    ) -> std::result::Result<AdmitOutcome, RetryAfter> {
        if !self.admission.is_enabled() {
            self.route_and_enqueue(invoke_wire);
            return Ok(AdmitOutcome::Enqueued);
        }
        let Some((hint, _)) = RouteHint::peel(&invoke_wire) else {
            // Malformed wires bypass dedup (there is no sequence to
            // key on) and are delivered for the enclave to reject.
            self.enqueue(ClientId(0), 0, None, false, invoke_wire);
            return Ok(AdmitOutcome::Enqueued);
        };
        let client = hint.client;
        self.note_heat(hint.route);
        let shard = self.shard_for(hint.route, hint.epoch) as u32;
        {
            let mut book = self.book();
            let key = (client, shard);
            if let Some((seq, cached)) = book.last_reply.get(&key) {
                if *seq == hint.seq {
                    let cached = cached.clone();
                    book.ready.push_back((client, cached));
                    drop(book);
                    self.admission.note_replayed(client);
                    self.notify_work_arrived();
                    self.notify_settled();
                    return Ok(AdmitOutcome::ReplayedReply);
                }
            }
            if book.inflight_seq.get(&key) == Some(&hint.seq) {
                drop(book);
                self.admission.note_deduped(client);
                return Ok(AdmitOutcome::DuplicateInFlight);
            }
        }
        let credited = match self.admission.admit(client) {
            Ok(credited) => credited,
            Err(mut rejection) => {
                rejection.wire = invoke_wire;
                return Err(rejection);
            }
        };
        self.enqueue(
            client,
            shard as usize,
            Some(hint.seq),
            credited,
            invoke_wire,
        );
        Ok(AdmitOutcome::Enqueued)
    }

    /// Forwards settlement records to the admission layer (credit
    /// returns + latency samples). Call with the book lock dropped.
    fn settle_admission(&self, settled: &[SettledTicket]) {
        if !settled.is_empty() {
            self.admission.settle(settled);
        }
    }

    /// One drive of lane `idx`: feed its ingress into the server,
    /// execute one batch, book the replies (or write the lane's
    /// in-flight tickets off on a crash-stop). A lane another driver
    /// is currently on is reported busy rather than waited on.
    ///
    /// With `gate = Some(linger)`, a lane holding *less than one
    /// batch* whose oldest wire has waited under `linger` is left to
    /// fill instead of being executed — free-running drivers would
    /// otherwise pounce on one-wire batches and squander the
    /// seal-and-store amortization the batch limit exists for.
    fn drive(&self, idx: u32, gate: Option<std::time::Duration>) -> crate::transport::DriveStatus {
        use crate::transport::DriveStatus;
        let shard = &self.shards[idx as usize];
        let Ok(mut lane) = shard.lane.try_lock() else {
            // Another driver (or a control-plane operation) owns the
            // lane; let it make the progress.
            return DriveStatus::Busy;
        };
        let work = shard.ingress.len() + lane.server.queued();
        if work == 0 {
            return DriveStatus::Idle;
        }
        if let Some(linger) = gate {
            if work < lane.server.batch_limit() {
                let mut since = shard
                    .pending_since
                    .lock()
                    .unwrap_or_else(|e| e.into_inner());
                let now = std::time::Instant::now();
                let oldest = *since.get_or_insert(now);
                let waited = now.saturating_duration_since(oldest);
                if waited < linger {
                    return DriveStatus::Waiting(linger - waited);
                }
            }
        }
        while let Some((ticket, client, wire)) = shard.ingress.try_pop() {
            lane.inflight.push_back((ticket, client));
            lane.server.submit(wire);
        }
        // Restart the linger clock for whatever this batch leaves
        // behind.
        {
            let leftover = lane.server.queued() > lane.server.batch_limit();
            *shard
                .pending_since
                .lock()
                .unwrap_or_else(|e| e.into_inner()) = leftover.then(std::time::Instant::now);
        }
        match lane.server.step() {
            Ok(replies) => {
                // Replies are 1:1, in order, with the first
                // `replies.len()` queued wires — pair them back to the
                // tickets fed above. The reply's own client id
                // (reported by the enclave) is authoritative for
                // delivery. The book is updated while the lane is
                // still held so `crash`'s lane-by-lane clearing never
                // interleaves with a half-booked step.
                let tickets: Vec<(u64, ClientId)> = lane.inflight.drain(..replies.len()).collect();
                let mut book = self.book();
                for ((ticket, _), (client, wire)) in tickets.into_iter().zip(replies) {
                    book.held.entry(client).or_default().insert(ticket, wire);
                }
                let settled = book.release_ready();
                drop(book);
                self.settle_admission(&settled);
                self.notify_settled();
                DriveStatus::Progress
            }
            Err(e) => {
                // The shard crash-stops (honest-server semantics):
                // every wire it had accepted is lost. Strike its
                // tickets from the book so the affected clients'
                // later replies are not held back forever — they
                // simply retry, getting fresh tickets.
                let purged: Vec<(u64, ClientId)> = lane.inflight.drain(..).collect();
                drop(lane);
                let mut book = self.book();
                let settled = book.purge(purged);
                book.deferred_error.get_or_insert(e);
                drop(book);
                self.settle_admission(&settled);
                self.notify_settled();
                DriveStatus::Progress
            }
        }
    }

    /// Whether lane `idx` has ingress or queued work. A lane currently
    /// locked by a driver counts as busy work.
    fn lane_has_work(&self, idx: usize) -> bool {
        let shard = &self.shards[idx];
        if !shard.ingress.is_empty() {
            return true;
        }
        match shard.lane.try_lock() {
            Ok(lane) => lane.server.queued() > 0,
            Err(_) => true,
        }
    }

    fn queued_total(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.ingress.len() + lock(&s.lane).server.queued())
            .sum()
    }

    /// Pushes already-released replies back to the *front* of the
    /// out-buffer (a failing `process_all` must not lose the replies
    /// earlier iterations had already collected).
    fn requeue_ready_front(&self, replies: Replies) {
        let mut book = self.book();
        for entry in replies.into_iter().rev() {
            book.ready.push_front(entry);
        }
    }

    /// Takes the first failure recorded since the last collection.
    fn take_deferred_error(&self) -> Option<LcmError> {
        self.book().deferred_error.take()
    }

    /// Drains the released replies, in release (global ticket) order.
    fn take_ready_replies(&self) -> Replies {
        self.book().ready.drain(..).collect()
    }
}

impl<S: BatchServer + 'static> crate::transport::TransportPlane for ShardCore<S> {
    fn lanes(&self) -> u32 {
        self.shards.len() as u32
    }

    fn submit(&self, invoke_wire: Vec<u8>) {
        self.route_and_enqueue(invoke_wire);
    }

    fn submit_to_lane(&self, lane: u32, invoke_wire: Vec<u8>) {
        assert!(
            (lane as usize) < self.shards.len(),
            "submit_to_lane({lane}) on a {}-lane deployment",
            self.shards.len()
        );
        let client = match RouteHint::peel(&invoke_wire) {
            Some((hint, _)) => hint.client,
            None => ClientId(0),
        };
        self.enqueue(client, lane as usize, None, false, invoke_wire);
    }

    fn try_submit(&self, invoke_wire: Vec<u8>) -> std::result::Result<AdmitOutcome, RetryAfter> {
        self.try_submit_inner(invoke_wire)
    }

    fn admission(&self) -> Option<Arc<AdmissionState>> {
        Some(Arc::clone(&self.admission))
    }

    fn drive(&self, lane: u32, gate: Option<std::time::Duration>) -> crate::transport::DriveStatus {
        ShardCore::drive(self, lane, gate)
    }

    fn queued(&self) -> usize {
        self.queued_total()
    }

    fn unsettled(&self) -> u64 {
        let book = self.book();
        book.issued - book.settled
    }

    fn wait_quiescent(&self) {
        let mut book = self.book();
        while book.settled < book.issued {
            book = self
                .settled_cv
                .wait(book)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn take_ready(&self) -> Replies {
        self.take_ready_replies()
    }

    fn take_error(&self) -> Option<LcmError> {
        self.take_deferred_error()
    }

    fn notify_work(&self) {
        self.notify_work_arrived();
    }

    fn wait_work(&self, last_epoch: u64, timeout: std::time::Duration) -> u64 {
        let mut epoch = self.work.lock().unwrap_or_else(|e| e.into_inner());
        if *epoch == last_epoch {
            let (guard, _) = self
                .work_cv
                .wait_timeout(epoch, timeout)
                .unwrap_or_else(|e| e.into_inner());
            epoch = guard;
        }
        *epoch
    }

    fn attach_drivers(&self, n: usize) {
        self.active_drivers.fetch_add(n, Ordering::SeqCst);
    }

    fn detach_drivers(&self, n: usize) {
        self.active_drivers.fetch_sub(n, Ordering::SeqCst);
    }

    fn shed_ingress(&self) {
        let mut purged: Vec<(u64, ClientId)> = Vec::new();
        for shard in &self.shards {
            purged.extend(
                shard
                    .ingress
                    .drain_pending()
                    .into_iter()
                    .map(|(ticket, client, _wire)| (ticket, client)),
            );
        }
        let mut book = self.book();
        let settled = book.purge(purged);
        drop(book);
        self.settle_admission(&settled);
        self.notify_settled();
    }
}

/// A key-partitioned fan-out server: N [`BatchServer`] shards driven
/// concurrently by an [`lcm_runtime::WorkerPool`], presented to the
/// rest of the stack as a single [`BatchServer`].
///
/// Construct over homogeneous shards with [`ShardedServer::new`], or
/// use [`build_sharded`] for the common LCM-over-namespaced-storage
/// layout. The transport [`crate::transport::Hub`], the
/// [`crate::admin::AdminHandle`], and client libraries all run
/// unmodified on top.
///
/// Control-plane operations (boot, provision, admin, migration) fan
/// out to every shard on the calling thread; the data plane
/// ([`ShardedServer::step`]) executes one batch per non-empty shard in
/// parallel on the pool.
pub struct ShardedServer<S: BatchServer + 'static> {
    /// The shared ingress/execution/reply core; the concurrent
    /// transport front-end holds a second `Arc` to it (see
    /// [`BatchServer::transport_plane`]).
    core: Arc<ShardCore<S>>,
    pool: WorkerPool,
    /// Digest of each shard's last attestation quote (`None` until the
    /// lane is attested; cleared on `crash`). Surfaced through
    /// [`ShardStatsRollup`] so operators can assert the *whole*
    /// deployment was attested.
    quote_digests: Vec<Option<Digest>>,
    /// A slice move whose sealed export has been cut but whose
    /// handshake (target import + bystander adoptions + host table
    /// push) has not completed — held so a member crash mid-migration
    /// can be recovered with [`ShardedServer::resume_slice_migration`]
    /// instead of stranding the slice.
    pending_slice: Option<PendingSliceMove>,
}

/// Book-keeping for an in-flight slice migration: which steps of the
/// handshake have landed, so a resume retries only what is missing.
/// The enclave side makes every step idempotent (`import_slice` with a
/// stale ticket and `adopt_table` with an already-installed table are
/// no-ops or clean errors), so retrying a step that *did* land before
/// a crash is safe.
struct PendingSliceMove {
    slice: u32,
    from: u32,
    to: u32,
    ticket: Vec<u8>,
    bulletin: Vec<u8>,
    /// The table the host publishes once every enclave holds it.
    next_table: SliceTable,
    imported: bool,
    adopted: Vec<bool>,
}

impl<S: BatchServer + 'static> std::fmt::Debug for ShardedServer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedServer")
            .field("shards", &self.core.shards.len())
            .field("queued", &self.core.queued_total())
            .finish()
    }
}

impl<S: BatchServer + 'static> ShardedServer<S> {
    /// Builds a sharded server over the given shard instances (at
    /// least one) with the default ingress capacity and one worker
    /// thread per shard.
    pub fn new(servers: Vec<S>) -> Self {
        Self::with_config(servers, DEFAULT_INGRESS_CAPACITY)
    }

    /// Builds a sharded server with an explicit per-shard ingress
    /// queue bound.
    pub fn with_config(servers: Vec<S>, ingress_capacity: usize) -> Self {
        assert!(!servers.is_empty(), "a sharded server needs >= 1 shard");
        let n = servers.len();
        ShardedServer {
            core: Arc::new(ShardCore::new(servers, ingress_capacity)),
            pool: WorkerPool::new("lcm-shard", n, n),
            quote_digests: vec![None; n],
            pending_slice: None,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.core.shards.len() as u32
    }

    /// Runs `f` with exclusive access to shard `index`'s server — the
    /// hook tests use to crash, power-fail, or inspect one shard in
    /// isolation.
    ///
    /// If `f` destroys queued work (a crash empties the inner server's
    /// queue), the shard's in-flight tickets are written off afterwards
    /// so the ordering book stays consistent — affected clients simply
    /// retry. Do not *submit* wires through this hook: out-of-band
    /// wires have no tickets and would desynchronize reply pairing.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn with_shard<R>(&mut self, index: u32, f: impl FnOnce(&mut S) -> R) -> R {
        let (result, purged) = {
            let shard = &self.core.shards[index as usize];
            let mut lane = lock(&shard.lane);
            let result = f(&mut lane.server);
            // Resync: a stopped enclave (crash/power failure) — or
            // fewer queued wires than tracked tickets — means the
            // closure destroyed accepted work. Mirroring
            // `LcmServer::crash` (which drops its host-side queue),
            // the crashed shard's ingress dies with it: write every
            // affected ticket off so clients retry with fresh ones.
            let mut purged: Vec<(u64, ClientId)> = Vec::new();
            if !lane.server.is_running() || lane.server.queued() < lane.inflight.len() {
                purged.extend(lane.inflight.drain(..));
                purged.extend(
                    shard
                        .ingress
                        .drain_pending()
                        .into_iter()
                        .map(|(ticket, client, _wire)| (ticket, client)),
                );
            }
            (result, purged)
        };
        let mut book = self.core.book();
        let settled = book.purge(purged);
        drop(book);
        self.core.settle_admission(&settled);
        self.core.notify_settled();
        result
    }

    /// Per-shard activity counters.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.core
            .shards
            .iter()
            .enumerate()
            .map(|(i, shard)| {
                let lane = lock(&shard.lane);
                ShardStats {
                    shard: i as u32,
                    ops: lane.server.ops_processed(),
                    batches: lane.server.batches_processed(),
                    attested: self.quote_digests[i].is_some(),
                    ingress: shard.ingress.stats(),
                }
            })
            .collect()
    }

    /// The aggregate rollup over [`ShardedServer::shard_stats`].
    pub fn stats_rollup(&self) -> ShardStatsRollup {
        ShardStatsRollup::from_rows(self.shard_stats(), &self.quote_digests)
    }

    fn for_each_shard<R>(&mut self, mut f: impl FnMut(&mut S) -> Result<R>) -> Result<Vec<R>> {
        let mut out = Vec::with_capacity(self.core.shards.len());
        for shard in &self.core.shards {
            let mut lane = lock(&shard.lane);
            out.push(f(&mut lane.server)?);
        }
        Ok(out)
    }

    /// Installs (or replaces) the multi-tenant admission policy gating
    /// [`crate::transport::TransportPlane::try_submit`]: per-tenant
    /// token buckets, weighted fair-queueing caps, retry dedup, and
    /// per-tenant × shard latency histograms. Plain `submit` is
    /// unaffected.
    pub fn configure_admission(&self, config: crate::admission::AdmissionConfig) {
        self.core.admission.configure(config);
    }

    /// The deployment's admission controller (disabled until
    /// [`ShardedServer::configure_admission`] runs; it still collects
    /// latency/health observability for unmetered traffic submitted
    /// through `try_submit`).
    pub fn admission_state(&self) -> Arc<AdmissionState> {
        Arc::clone(&self.core.admission)
    }

    /// Point-in-time admission/latency health: per-tenant admit and
    /// reject counters plus p50/p99/p999 end-to-end latency per
    /// tenant × shard.
    pub fn health_snapshot(&self) -> crate::admission::HealthSnapshot {
        self.core.admission.health_snapshot()
    }

    /// The newest slice table the host routes by.
    pub fn current_table(&self) -> SliceTable {
        self.core.current_table()
    }

    /// `(slice, from, to)` of the slice move currently stuck between
    /// export and completion, if any (see
    /// [`ShardedServer::resume_slice_migration`]).
    pub fn pending_slice_move(&self) -> Option<(u32, u32, u32)> {
        self.pending_slice.as_ref().map(|p| (p.slice, p.from, p.to))
    }

    /// Cuts the sealed export of `slice` out of its owner (bumping the
    /// owner's table to the next epoch) and records the pending
    /// handshake. Fails without touching any enclave if a move is
    /// already in flight, the target is out of range, or the target
    /// already owns the slice.
    fn begin_slice_move(&mut self, slice: u32, to: u32) -> Result<()> {
        if let Some(p) = &self.pending_slice {
            return Err(LcmError::Tee(format!(
                "slice {} -> shard {} migration already in flight; \
                 resume_slice_migration must finish before a new move",
                p.slice, p.to
            )));
        }
        let n = self.core.shards.len() as u32;
        if slice >= SLICE_COUNT {
            return Err(LcmError::Tee(format!(
                "migrate_slice({slice}) out of range ({SLICE_COUNT} slices)"
            )));
        }
        if to >= n {
            return Err(LcmError::Tee(format!(
                "migrate_slice target {to} on a {n}-shard deployment"
            )));
        }
        let table = self.core.current_table();
        let from = table.owner(slice);
        if from == to {
            return Err(LcmError::Tee(format!(
                "shard {to} already owns slice {slice}"
            )));
        }
        let next_table = table.moved(slice, to).expect("bounds checked above");
        let (ticket, bulletin) = {
            let mut lane = lock(&self.core.shards[from as usize].lane);
            lane.server.export_slice(slice, to)?
        };
        self.pending_slice = Some(PendingSliceMove {
            slice,
            from,
            to,
            ticket,
            bulletin,
            next_table,
            imported: false,
            adopted: vec![false; n as usize],
        });
        Ok(())
    }

    /// Completes (or retries, after a mid-handshake crash) the
    /// in-flight slice move: delivers the bulletin to every bystander
    /// shard, the sealed ticket to the target, then publishes the new
    /// table to the host router. On failure the pending record is
    /// kept — reboot the dead member and call this again; every
    /// enclave-side step is idempotent, so re-delivering a step that
    /// already landed is safe.
    ///
    /// The origin lane is held for the whole handshake: the origin is
    /// the only enclave able to emit redirect stamps revealing the new
    /// epoch, and it must stay silent until every shard has installed
    /// the new table — otherwise a client could chase the redirect
    /// into a shard that has not adopted yet and trip its future-epoch
    /// rollback alarm on an honest deployment.
    pub fn resume_slice_migration(&mut self) -> Result<()> {
        let Some(mut pending) = self.pending_slice.take() else {
            return Err(LcmError::Tee("no slice migration in flight".into()));
        };
        match Self::drive_slice_move(&self.core, &mut pending) {
            Ok(()) => {
                self.core.routing().push(pending.next_table);
                Ok(())
            }
            Err(e) => {
                self.pending_slice = Some(pending);
                Err(e)
            }
        }
    }

    fn drive_slice_move(core: &ShardCore<S>, pending: &mut PendingSliceMove) -> Result<()> {
        let _origin = lock(&core.shards[pending.from as usize].lane);
        for (i, shard) in core.shards.iter().enumerate() {
            if i == pending.from as usize || i == pending.to as usize || pending.adopted[i] {
                continue;
            }
            lock(&shard.lane)
                .server
                .adopt_table(pending.bulletin.clone())?;
            pending.adopted[i] = true;
        }
        if !pending.imported {
            lock(&core.shards[pending.to as usize].lane)
                .server
                .import_slice(pending.ticket.clone())?;
            pending.imported = true;
        }
        Ok(())
    }

    /// One pass of the heat-aware rebalance monitor: drains the
    /// per-slice heat counters, asks [`plan_rebalance`] for a
    /// profitable move, and performs it live. Returns the `(slice,
    /// to)` migrated, or `None` when the load is already balanced
    /// (nothing is drained into a move that would not help).
    pub fn rebalance_once(&mut self) -> Result<Option<(u32, u32)>> {
        let heat = self.core.take_heat();
        let table = self.core.current_table();
        let Some((slice, to)) = plan_rebalance(&heat, &table) else {
            return Ok(None);
        };
        self.begin_slice_move(slice, to)?;
        self.resume_slice_migration()?;
        Ok(Some((slice, to)))
    }
}

/// Plans one heat-driven slice move: when the hottest shard carries
/// more than twice the coldest shard's write heat, proposes migrating
/// the hot shard's hottest slice to the coldest shard — provided the
/// move actually narrows the gap (shipping a slice hotter than the
/// imbalance would just relocate the hotspot). Pure: feed it drained
/// [`BatchServer::take_slice_heat`] counters and the current table.
pub fn plan_rebalance(heat: &[u64], table: &SliceTable) -> Option<(u32, u32)> {
    let n = table.count() as usize;
    if n < 2 {
        return None;
    }
    let mut shard_heat = vec![0u64; n];
    for (slice, &h) in heat.iter().take(SLICE_COUNT as usize).enumerate() {
        shard_heat[table.owner(slice as u32) as usize] += h;
    }
    let total: u64 = shard_heat.iter().sum();
    if total == 0 {
        return None;
    }
    let hot = (0..n).max_by_key(|&i| shard_heat[i])?;
    let cold = (0..n).min_by_key(|&i| shard_heat[i])?;
    if shard_heat[hot] <= 2 * shard_heat[cold] {
        return None;
    }
    let slice = table
        .slices_of(hot as u32)
        .into_iter()
        .max_by_key(|&s| heat.get(s as usize).copied().unwrap_or(0))?;
    let h = heat.get(slice as usize).copied().unwrap_or(0);
    if h == 0 || shard_heat[cold] + h >= shard_heat[hot] {
        return None;
    }
    Some((slice, cold as u32))
}

/// Concatenates per-shard sealed provisioning payloads into the one
/// blob the multi-shard form of [`BatchServer::provision`] fans back
/// out (count-prefixed, each part length-prefixed — the same codec
/// shape as migration tickets).
pub fn concat_provision_payloads(parts: &[Vec<u8>]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(parts.len() as u32);
    for part in parts {
        w.put_bytes(part);
    }
    w.into_bytes()
}

/// Inverse of [`concat_provision_payloads`]; `None` when the blob is
/// not a well-formed concatenation (e.g. a single raw sealed payload).
fn split_provision_payloads(blob: &[u8]) -> Option<Vec<Vec<u8>>> {
    let mut r = Reader::new(blob);
    let n = r.get_u32().ok()? as usize;
    let mut parts = Vec::new();
    for _ in 0..n {
        parts.push(r.get_bytes().ok()?.to_vec());
    }
    r.finish().ok()?;
    Some(parts)
}

impl<S: BatchServer + 'static> BatchServer for ShardedServer<S> {
    fn boot(&mut self) -> Result<bool> {
        let outcomes = self.for_each_shard(|s| s.boot())?;
        let first = outcomes[0];
        if outcomes.iter().any(|&o| o != first) {
            return Err(LcmError::Tee(
                "shards disagree on provisioning state".into(),
            ));
        }
        Ok(first)
    }

    fn crash(&mut self) {
        for shard in &self.core.shards {
            shard.ingress.drain_pending();
            let mut lane = lock(&shard.lane);
            lane.inflight.clear();
            lane.server.crash();
        }
        let mut book = self.core.book();
        book.order.clear();
        book.held.clear();
        book.ready.clear();
        book.meta.clear();
        book.inflight_seq.clear();
        // The reply cache dies with the process: a post-restart retry
        // re-executes and the enclave's own §4.6.1 handling covers it.
        book.last_reply.clear();
        book.deferred_error = None;
        // Every outstanding ticket died with the process; the book
        // settles wholesale so a concurrent front-end's quiescence
        // wait cannot hang on wires that no longer exist.
        book.settled = book.issued;
        drop(book);
        // Outstanding admission credits died with their tickets.
        self.core.admission.reset_in_flight();
        self.core.notify_settled();
        // The enclaves restart: their identities recover from sealed
        // state, but the operational "this epoch was attested" record
        // starts over.
        self.quote_digests.fill(None);
    }

    fn is_running(&self) -> bool {
        self.core
            .shards
            .iter()
            .all(|s| lock(&s.lane).server.is_running())
    }

    fn provision(&mut self, sealed_payload: Vec<u8>) -> Result<()> {
        // A multi-shard deployment cannot be provisioned from one
        // sealed payload: each enclave's payload carries its own
        // identity, so fanning out a clone would forge an identity
        // collision. Instead, the multi-shard form of `provision`
        // takes the count-prefixed concatenation of per-shard payloads
        // (see [`concat_provision_payloads`]) and delegates to the
        // `provision_shard` loop — the same loop
        // [`crate::admin::AdminHandle::bootstrap`] drives directly.
        if self.core.shards.len() == 1 {
            return self.provision_shard(0, sealed_payload);
        }
        let parts = split_provision_payloads(&sealed_payload).ok_or_else(|| {
            LcmError::Tee(
                "sharded deployment requires per-shard provisioning: pass \
                 concat_provision_payloads() of one identity-bearing payload \
                 per shard (or drive provision_shard / AdminHandle::bootstrap \
                 directly)"
                    .into(),
            )
        })?;
        if parts.len() != self.core.shards.len() {
            return Err(LcmError::Tee(format!(
                "provision carries {} per-shard payloads for a {}-shard deployment",
                parts.len(),
                self.core.shards.len()
            )));
        }
        for (i, part) in parts.into_iter().enumerate() {
            self.provision_shard(i as u32, part)?;
        }
        Ok(())
    }

    fn attest(&mut self, user_data: Digest) -> Result<Quote> {
        // Single-quote view of the deployment: shard 0. The admin's
        // bootstrap does NOT rely on this — it attests every lane via
        // `attest_shard` and verifies each quote against that shard's
        // identity binding.
        self.attest_shard(0, user_data)
    }

    fn shard_count(&self) -> u32 {
        self.core.shards.len() as u32
    }

    fn transport_plane(&self) -> Option<Arc<dyn crate::transport::TransportPlane>> {
        Some(self.core.clone())
    }

    fn batch_limit(&self) -> usize {
        self.core
            .shards
            .iter()
            .map(|s| lock(&s.lane).server.batch_limit())
            .max()
            .unwrap_or(1)
    }

    fn attest_shard(&mut self, shard: u32, user_data: Digest) -> Result<Quote> {
        let Some(target) = self.core.shards.get(shard as usize) else {
            return Err(LcmError::Tee(format!(
                "attest_shard({shard}) on a {}-shard deployment",
                self.core.shards.len()
            )));
        };
        let quote = lock(&target.lane).server.attest(user_data)?;
        // Record the attestation host-side: a fingerprint of what the
        // verifier saw (measurement + identity-bound user data), so
        // stats can assert every member was attested.
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(quote.measurement.as_bytes());
        buf.extend_from_slice(quote.user_data.as_bytes());
        self.quote_digests[shard as usize] = Some(lcm_crypto::sha256::digest(&buf));
        Ok(quote)
    }

    fn provision_shard(&mut self, shard: u32, sealed_payload: Vec<u8>) -> Result<()> {
        let Some(target) = self.core.shards.get(shard as usize) else {
            return Err(LcmError::Tee(format!(
                "provision_shard({shard}) on a {}-shard deployment",
                self.core.shards.len()
            )));
        };
        lock(&target.lane).server.provision(sealed_payload)
    }

    fn submit(&mut self, invoke_wire: Vec<u8>) {
        self.core.route_and_enqueue(invoke_wire);
    }

    /// # Panics
    ///
    /// Panics when `shard` is out of range (like
    /// [`ShardedServer::with_shard`]): there is no such lane to
    /// deliver to, and clamping silently would let an adversarial
    /// test exercise a different shard than it named.
    fn submit_to_shard(&mut self, shard: u32, invoke_wire: Vec<u8>) {
        crate::transport::TransportPlane::submit_to_lane(&*self.core, shard, invoke_wire);
    }

    fn queued(&self) -> usize {
        self.core.queued_total()
    }

    fn step(&mut self) -> Result<Replies> {
        // Surface a failure recorded by back-pressure relief inside
        // `submit` (which cannot return errors) before doing new work.
        if let Some(e) = self.core.take_deferred_error() {
            return Err(e);
        }
        let mut handles = Vec::new();
        for (i, _) in self.core.shards.iter().enumerate() {
            if !self.core.lane_has_work(i) {
                continue;
            }
            let core = self.core.clone();
            handles.push(self.pool.spawn(move || core.drive(i as u32, None)));
        }
        let mut vanished = false;
        for handle in handles {
            // `None` means the worker died without completing the
            // drive (a panic inside the lane); its tickets may never
            // settle, so this must surface, not vanish.
            vanished |= handle.join().is_none();
        }
        // Drives record failures in the book; the first one recorded
        // wins and this step reports it. Replies already released stay
        // in the out-buffer — healthy shards' replies survive a
        // sibling's crash-stop and are returned by the next call.
        if let Some(e) = self.core.take_deferred_error() {
            return Err(e);
        }
        if vanished {
            return Err(LcmError::Tee("shard worker vanished".into()));
        }
        Ok(self.core.take_ready_replies())
    }

    fn process_all(&mut self) -> Result<Replies> {
        // Unlike the default `while queued > 0` loop, always run at
        // least one step: relief inside `submit` may have left ready
        // replies in the out-buffer (or a deferred error) with nothing
        // queued.
        let mut out = Vec::new();
        loop {
            match self.step() {
                Ok(replies) => out.extend(replies),
                Err(e) => {
                    // Replies collected by earlier iterations must not
                    // die with the error: push them back onto the
                    // front of the out-buffer for the next successful
                    // call.
                    if !out.is_empty() {
                        self.core.requeue_ready_front(out);
                    }
                    return Err(e);
                }
            }
            if self.core.queued_total() == 0 {
                break;
            }
        }
        Ok(out)
    }

    fn admin(&mut self, admin_wire: Vec<u8>) -> Result<Vec<u8>> {
        // Fan out the identical authenticated admin message so every
        // shard applies the change under the same admin sequence
        // number; any shard's failure fails the whole operation.
        let replies = self.for_each_shard(|s| s.admin(admin_wire.clone()))?;
        Ok(replies.into_iter().next().expect(">=1 shard"))
    }

    fn export_migration(&mut self) -> Result<Vec<u8>> {
        let tickets = self.for_each_shard(|s| s.export_migration())?;
        let mut w = Writer::new();
        w.put_u32(tickets.len() as u32);
        for t in &tickets {
            w.put_bytes(t);
        }
        Ok(w.into_bytes())
    }

    fn import_migration(&mut self, ticket: Vec<u8>) -> Result<()> {
        let mut r = Reader::new(&ticket);
        let parsed = (|| -> std::result::Result<Vec<Vec<u8>>, crate::codec::CodecError> {
            let n = r.get_u32()? as usize;
            let mut parts = Vec::with_capacity(n.min(1 << 10));
            for _ in 0..n {
                parts.push(r.get_bytes()?.to_vec());
            }
            r.finish()?;
            Ok(parts)
        })();
        let parts = parsed.map_err(LcmError::from)?;
        if parts.len() != self.core.shards.len() {
            return Err(LcmError::Tee(format!(
                "migration ticket carries {} shards, this deployment has {}",
                parts.len(),
                self.core.shards.len()
            )));
        }
        for (shard, part) in self.core.shards.iter().zip(parts) {
            lock(&shard.lane).server.import_migration(part)?;
        }
        Ok(())
    }

    fn batches_processed(&self) -> u64 {
        self.core
            .shards
            .iter()
            .map(|s| lock(&s.lane).server.batches_processed())
            .sum()
    }

    fn ops_processed(&self) -> u64 {
        self.core
            .shards
            .iter()
            .map(|s| lock(&s.lane).server.ops_processed())
            .sum()
    }

    fn flush_persists(&mut self) -> Result<()> {
        self.for_each_shard(|s| s.flush_persists())?;
        Ok(())
    }

    fn replica_count(&self) -> u32 {
        // Groups are uniform across shards; lane 0 speaks for all.
        lock(&self.core.shards[0].lane).server.replica_count()
    }

    fn group_leader(&self, shard: u32) -> u32 {
        lock(&self.core.shards[shard as usize].lane)
            .server
            .group_leader(0)
    }

    fn attest_member(&mut self, shard: u32, replica: u32, user_data: Digest) -> Result<Quote> {
        let Some(target) = self.core.shards.get(shard as usize) else {
            return Err(LcmError::Tee(format!(
                "attest_member(shard {shard}) on a {}-shard deployment",
                self.core.shards.len()
            )));
        };
        let quote = lock(&target.lane)
            .server
            .attest_member(0, replica, user_data)?;
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(quote.measurement.as_bytes());
        buf.extend_from_slice(quote.user_data.as_bytes());
        self.quote_digests[shard as usize] = Some(lcm_crypto::sha256::digest(&buf));
        Ok(quote)
    }

    fn provision_member(
        &mut self,
        shard: u32,
        replica: u32,
        sealed_payload: Vec<u8>,
    ) -> Result<()> {
        let Some(target) = self.core.shards.get(shard as usize) else {
            return Err(LcmError::Tee(format!(
                "provision_member(shard {shard}) on a {}-shard deployment",
                self.core.shards.len()
            )));
        };
        lock(&target.lane)
            .server
            .provision_member(0, replica, sealed_payload)
    }

    fn kill_member(&mut self, shard: u32, replica: u32, power_failure: bool) -> Result<()> {
        if shard as usize >= self.core.shards.len() {
            return Err(LcmError::Tee(format!(
                "kill_member(shard {shard}) on a {}-shard deployment",
                self.core.shards.len()
            )));
        }
        // `with_shard`'s resync writes the group's in-flight tickets
        // off when a leader kill stops the group (`is_running` goes
        // false); follower kills leave the lane running and settled.
        self.with_shard(shard, |s| s.kill_member(0, replica, power_failure))
    }

    fn reboot_member(&mut self, shard: u32, replica: u32) -> Result<bool> {
        if shard as usize >= self.core.shards.len() {
            return Err(LcmError::Tee(format!(
                "reboot_member(shard {shard}) on a {}-shard deployment",
                self.core.shards.len()
            )));
        }
        self.with_shard(shard, |s| s.reboot_member(0, replica))
    }

    fn serve_read(&mut self, read_wire: Vec<u8>) -> Result<Vec<u8>> {
        match self.read_port() {
            Some(port) => port.serve_read(read_wire),
            None => unreachable!("a sharded server always has a read port"),
        }
    }

    fn read_port(&self) -> Option<Arc<dyn crate::server::ReadPort>> {
        let ports = self
            .core
            .shards
            .iter()
            .map(|shard| lock(&shard.lane).server.read_port())
            .collect();
        Some(Arc::new(CoreReadPort {
            core: Arc::clone(&self.core),
            ports,
        }))
    }

    fn import_migration_as(&mut self, ticket: Vec<u8>, replica: u32, replicas: u32) -> Result<()> {
        let _ = (ticket, replica, replicas);
        Err(LcmError::Tee(
            "import_migration_as addresses one group; use import_migration \
             on the sharded deployment (each lane fans its part out)"
                .into(),
        ))
    }

    fn migrate_slice(&mut self, slice: u32, to: u32) -> Result<()> {
        self.begin_slice_move(slice, to)?;
        self.resume_slice_migration()
    }

    fn routing_epoch(&self) -> u64 {
        self.core.routing_epoch()
    }

    fn take_slice_heat(&self) -> Vec<u64> {
        self.core.take_heat()
    }
}

/// The sharded deployment's concurrent read surface: routes each read
/// leg to its shard by the plaintext envelope, then into the lane's own
/// read port when it has one (a replica group serving from the pinned
/// member). Lanes without a port — unreplicated shards — fall back to
/// locking the lane, which serializes that shard's reads with its
/// writes: exactly the single-replica baseline the replicated cells in
/// the bench snapshot are measured against.
struct CoreReadPort<S: BatchServer + 'static> {
    core: Arc<ShardCore<S>>,
    ports: Vec<Option<Arc<dyn crate::server::ReadPort>>>,
}

impl<S: BatchServer + 'static> crate::server::ReadPort for CoreReadPort<S> {
    fn serve_read(&self, read_wire: Vec<u8>) -> Result<Vec<u8>> {
        let Some((hint, _)) = crate::wire::ReadHint::peel(&read_wire) else {
            return Err(LcmError::Tee(
                "read wire too short for a routing hint".into(),
            ));
        };
        let idx = self.core.shard_for(hint.route, hint.epoch);
        match &self.ports[idx] {
            Some(port) => port.serve_read(read_wire),
            None => {
                let mut lane = lock(&self.core.shards[idx].lane);
                lane.server.serve_read(read_wire)
            }
        }
    }
}

/// Builds the standard sharded LCM deployment: `shards` instances of
/// [`LcmServer`] over `F`, each on its own platform of `world`
/// (platform ids `base_platform..base_platform + shards`) and its own
/// [`NamespacedStorage`] region of the shared medium, optionally
/// wrapped into the asynchronous-write pipeline.
///
/// **Note:** for the common whole-stack assembly (world + shards +
/// front-end + admission + admin bootstrap), prefer the `lcm` facade
/// crate's `DeploymentBuilder`, which wraps this constructor; use
/// `build_sharded` directly when the layers need custom wiring.
pub fn build_sharded<F: Functionality + 'static>(
    world: &TeeWorld,
    base_platform: u64,
    storage: Arc<dyn StableStorage>,
    batch_limit: usize,
    shards: u32,
    pipelined: bool,
) -> ShardedServer<Box<dyn BatchServer>> {
    let servers = (0..shards.max(1))
        .map(|i| {
            let platform = world.platform_deterministic(base_platform + u64::from(i));
            let region = Arc::new(NamespacedStorage::new(
                storage.clone(),
                NamespacedStorage::shard_prefix(i),
            ));
            let server = LcmServer::<F>::new(&platform, region, batch_limit);
            if pipelined {
                Box::new(server.into_pipelined()) as Box<dyn BatchServer>
            } else {
                Box::new(server) as Box<dyn BatchServer>
            }
        })
        .collect();
    let server = ShardedServer::new(servers);
    // Label health snapshots with the execution mode so operators (and
    // the bench gate) can tell sync and pipelined cells apart.
    server
        .admission_state()
        .set_mode(if pipelined { "pipelined" } else { "sync" });
    server
}

/// Layout of a replicated deployment: how many shard lanes, how many
/// members per lane's [`crate::replica::ReplicaGroup`], and the
/// replica-acknowledgement threshold gating reply release (see the
/// [`crate::replica`] module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationSpec {
    /// Independent shard lanes (`.max(1)` applied at build).
    pub shards: u32,
    /// Members per shard group — 2f+1 for f-fault tolerance; 1 is the
    /// unreplicated degenerate case (`.max(1)` applied at build).
    pub replicas: u32,
    /// Threshold of members that must hold a batch's sealed state
    /// before its replies release.
    pub quorum: crate::stability::Quorum,
}

/// Builds a *replicated* sharded LCM deployment: `spec.shards` lanes,
/// each a [`crate::replica::ReplicaGroup`] of `spec.replicas` members.
/// Member `(i, r)` runs on platform `base_platform + i*replicas + r`
/// of `world` and persists into the nested storage region
/// `shard{i}.rep{r}.` of the shared medium; `pipelined` selects the
/// member servers' write pipeline exactly as in [`build_sharded`].
///
/// With `spec.replicas == 1` the layout degenerates to one-member
/// groups: same wire behavior as [`build_sharded`], plus the group's
/// quorum bookkeeping (trivially satisfied by the leader alone).
pub fn build_replicated<F: Functionality + 'static>(
    world: &TeeWorld,
    base_platform: u64,
    storage: Arc<dyn StableStorage>,
    batch_limit: usize,
    spec: ReplicationSpec,
    pipelined: bool,
) -> ShardedServer<Box<dyn BatchServer>> {
    use crate::replica::{ReplicaGroup, ReplicaMember};
    let ReplicationSpec {
        shards,
        replicas,
        quorum,
    } = spec;
    let shards = shards.max(1);
    let replicas = replicas.max(1);
    let groups = (0..shards)
        .map(|i| {
            let members = (0..replicas)
                .map(|r| {
                    let platform = world.platform_deterministic(
                        base_platform + u64::from(i) * u64::from(replicas) + u64::from(r),
                    );
                    let region = Arc::new(NamespacedStorage::new(
                        storage.clone(),
                        format!("{}rep{r}.", NamespacedStorage::shard_prefix(i)),
                    ));
                    let server = LcmServer::<F>::new(&platform, region.clone(), batch_limit);
                    let server: Box<dyn BatchServer> = if pipelined {
                        Box::new(server.into_pipelined())
                    } else {
                        Box::new(server)
                    };
                    ReplicaMember {
                        server,
                        storage: region,
                    }
                })
                .collect();
            Box::new(ReplicaGroup::new(members, quorum)) as Box<dyn BatchServer>
        })
        .collect();
    let server = ShardedServer::new(groups);
    server
        .admission_state()
        .set_mode(if pipelined { "pipelined" } else { "sync" });
    server
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::AdminHandle;
    use crate::client::LcmClient;
    use crate::functionality::Counter;
    use crate::stability::Quorum;
    use lcm_storage::MemoryStorage;

    fn sharded_counter(
        shards: u32,
        n_clients: u32,
    ) -> (
        ShardedServer<Box<dyn BatchServer>>,
        AdminHandle,
        Vec<LcmClient>,
    ) {
        let world = TeeWorld::new_deterministic(90);
        let storage = Arc::new(MemoryStorage::new());
        let mut server = build_sharded::<Counter>(&world, 1, storage, 16, shards, false);
        assert!(server.boot().unwrap());
        let ids: Vec<ClientId> = (1..=n_clients).map(ClientId).collect();
        let mut admin = AdminHandle::new_deterministic(&world, ids.clone(), Quorum::Majority, 5);
        admin.bootstrap(&mut server).unwrap();
        let clients = ids
            .iter()
            .map(|&id| LcmClient::new_sharded(id, admin.client_key(), shards))
            .collect();
        (server, admin, clients)
    }

    fn run_one(
        server: &mut ShardedServer<Box<dyn BatchServer>>,
        client: &mut LcmClient,
        op: &[u8],
    ) -> u64 {
        server.submit(client.invoke_for::<Counter>(op).unwrap());
        let replies = server.process_all().unwrap();
        let mine = replies
            .into_iter()
            .find(|(id, _)| *id == client.id())
            .expect("reply routed");
        let done = client.handle_reply(&mine.1).unwrap();
        Counter::decode_result(&done.result).unwrap()
    }

    #[test]
    fn route_hash_is_stable_and_total() {
        assert_eq!(route_hash(b""), 0x811c_9dc5);
        assert_eq!(route_hash(b"key"), route_hash(b"key"));
        assert_ne!(route_hash(b"key-a"), route_hash(b"key-b"));
        for n in 1..=9u32 {
            assert!(shard_index(route_hash(b"anything"), n) < n);
        }
        // n = 0 is clamped, not a division by zero.
        assert_eq!(shard_index(7, 0), 0);
    }

    #[test]
    fn counters_shard_by_name_and_stay_consistent() {
        let (mut server, _admin, mut clients) = sharded_counter(4, 2);
        // Both clients increment the same counter: routed to one shard,
        // so the state is shared exactly as on a single server.
        assert_eq!(
            run_one(&mut server, &mut clients[0], &Counter::inc_op(b"hits", 1)),
            1
        );
        assert_eq!(
            run_one(&mut server, &mut clients[1], &Counter::inc_op(b"hits", 1)),
            2
        );
        // Different counters may live on different shards; each is
        // still exactly-once.
        for name in [&b"a"[..], b"b", b"c", b"d", b"e"] {
            assert_eq!(
                run_one(&mut server, &mut clients[0], &Counter::inc_op(name, 7)),
                7
            );
            assert_eq!(
                run_one(&mut server, &mut clients[1], &Counter::read_op(name)),
                7
            );
        }
        assert_eq!(server.ops_processed(), 12);
    }

    #[test]
    fn single_shard_matches_unsharded_arithmetic() {
        let (mut server, _admin, mut clients) = sharded_counter(1, 1);
        for i in 1..=5u64 {
            assert_eq!(
                run_one(&mut server, &mut clients[0], &Counter::inc_op(b"x", 1)),
                i
            );
        }
        assert_eq!(clients[0].last_seq().0, 5);
        assert_eq!(server.ops_processed(), 5);
    }

    #[test]
    fn stats_rollup_reports_whole_deployment_attestation() {
        // Bootstrap attests every lane, so the rollup must show all
        // four shards attested — not just shard 0 — with a deployment
        // identity fingerprint present.
        let (mut server, mut admin, _clients) = sharded_counter(4, 1);
        let rollup = server.stats_rollup();
        assert_eq!(rollup.attested_shards, 4);
        assert!(rollup.identity_digest.is_some());
        assert!(rollup.per_shard.iter().all(|s| s.attested));

        // A crash resets the epoch's attestation record...
        server.crash();
        let rollup = server.stats_rollup();
        assert_eq!(rollup.attested_shards, 0);
        assert!(rollup.identity_digest.is_none());
        assert!(server.shard_stats().iter().all(|s| !s.attested));

        // ...and re-verification after reboot restores it: the sealed
        // state recovered each lane's identity.
        assert!(!server.boot().unwrap());
        admin.verify_deployment(&mut server).unwrap();
        let rollup = server.stats_rollup();
        assert_eq!(rollup.attested_shards, 4);
        assert!(rollup.identity_digest.is_some());
    }

    #[test]
    fn single_payload_provision_rejected_on_multi_shard_deployment() {
        // A raw (non-concatenated) payload cannot provision more than
        // one shard: cloning it across lanes would forge an identity
        // collision, so the multi-shard `provision` only accepts the
        // count-prefixed concatenation of identity-bearing payloads.
        let world = TeeWorld::new_deterministic(95);
        let mut server =
            build_sharded::<Counter>(&world, 1, Arc::new(MemoryStorage::new()), 8, 2, false);
        assert!(server.boot().unwrap());
        let err = server.provision(b"one payload for everyone".to_vec());
        assert!(
            matches!(err, Err(LcmError::Tee(ref m)) if m.contains("per-shard")),
            "got {err:?}"
        );
        // A well-formed concatenation with the wrong cardinality is a
        // distinct, explicit error.
        let err = server.provision(concat_provision_payloads(&[b"only-one".to_vec()]));
        assert!(
            matches!(err, Err(LcmError::Tee(ref m)) if m.contains("1 per-shard payloads")),
            "got {err:?}"
        );
    }

    #[test]
    fn concatenated_provision_delegates_to_per_shard_loop() {
        use crate::context::{ProvisionPayload, ShardIdentity, LABEL_PROVISION};
        use crate::program::lcm_measurement;
        use lcm_crypto::aead::{self, AeadKey};
        use lcm_crypto::keys::SecretKey;

        let world = TeeWorld::new_deterministic(97);
        let mut server =
            build_sharded::<Counter>(&world, 1, Arc::new(MemoryStorage::new()), 8, 2, false);
        assert!(server.boot().unwrap());

        let channel = AeadKey::from_secret(&world.admin_provision_key(&lcm_measurement()));
        let sealed_for = |index: u32| {
            use crate::codec::WireCodec;
            let payload = ProvisionPayload {
                k_p: SecretKey::from_bytes([1u8; 32]),
                k_c: SecretKey::from_bytes([2u8; 32]),
                k_a: SecretKey::from_bytes([3u8; 32]),
                clients: vec![ClientId(1)],
                quorum: Quorum::Majority,
                identity: ShardIdentity::new(index, 2),
            };
            aead::auth_encrypt(&channel, &payload.to_bytes(), LABEL_PROVISION).unwrap()
        };
        // One identity-bearing payload per shard, in shard order: the
        // single `provision` call fans them out via `provision_shard`.
        server
            .provision(concat_provision_payloads(&[sealed_for(0), sealed_for(1)]))
            .unwrap();

        let mut admin =
            AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 97);
        admin.verify_deployment(&mut server).unwrap();
    }

    #[test]
    fn swapped_provisioning_payloads_fail_deployment_verification() {
        use crate::context::{ProvisionPayload, ShardIdentity, LABEL_PROVISION};
        use crate::program::lcm_measurement;
        use lcm_crypto::aead::{self, AeadKey};
        use lcm_crypto::keys::SecretKey;

        // A malicious host delivers shard 1's payload to lane 0 and
        // vice versa (the payloads are opaque, so it CAN). Each lane
        // then holds the other's identity — and the whole-deployment
        // verification catches exactly that, because each quote binds
        // the identity the enclave actually holds.
        let world = TeeWorld::new_deterministic(96);
        let mut server =
            build_sharded::<Counter>(&world, 1, Arc::new(MemoryStorage::new()), 8, 2, false);
        assert!(server.boot().unwrap());

        let channel = AeadKey::from_secret(&world.admin_provision_key(&lcm_measurement()));
        let sealed_for = |index: u32| {
            use crate::codec::WireCodec;
            let payload = ProvisionPayload {
                k_p: SecretKey::from_bytes([1u8; 32]),
                k_c: SecretKey::from_bytes([2u8; 32]),
                k_a: SecretKey::from_bytes([3u8; 32]),
                clients: vec![ClientId(1)],
                quorum: Quorum::Majority,
                identity: ShardIdentity::new(index, 2),
            };
            aead::auth_encrypt(&channel, &payload.to_bytes(), LABEL_PROVISION).unwrap()
        };
        // Swap: lane 0 gets identity 1, lane 1 gets identity 0.
        server.provision_shard(0, sealed_for(1)).unwrap();
        server.provision_shard(1, sealed_for(0)).unwrap();

        let mut admin =
            AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 96);
        let err = admin.verify_deployment(&mut server).unwrap_err();
        assert!(matches!(err, LcmError::Tee(_)), "got {err:?}");
    }

    #[test]
    fn misdelivered_first_op_is_rejected_by_the_enclave() {
        // The host redirects an INTACT first-op wire to a sibling
        // shard. Before shard-identity provisioning this executed
        // (misplaced); now the sibling's enclave refuses and halts.
        let (mut server, _admin, mut clients) = sharded_counter(4, 1);
        let name = b"misdeliver-me".to_vec();
        let home = shard_index(route_hash(&name), 4);
        let sibling = (home + 1) % 4;
        let wire = clients[0]
            .invoke_for::<Counter>(&Counter::inc_op(&name, 1))
            .unwrap();
        server.submit_to_shard(sibling, wire);
        let err = server.process_all().unwrap_err();
        assert!(err.is_violation(), "got {err:?}");
        assert!(
            err.to_string().contains("shard"),
            "violation should name the shard mismatch: {err}"
        );
        // The redirected wire was never executed anywhere.
        assert_eq!(server.ops_processed(), 0);
    }

    #[test]
    fn stats_rollup_sums_across_shards() {
        let (mut server, _admin, mut clients) = sharded_counter(4, 1);
        for name in [&b"a"[..], b"b", b"c", b"d", b"e", b"f"] {
            run_one(&mut server, &mut clients[0], &Counter::inc_op(name, 1));
        }
        let rollup = server.stats_rollup();
        assert_eq!(rollup.per_shard.len(), 4);
        assert_eq!(rollup.total_ops, 6);
        assert_eq!(rollup.ingress.pushed, 6);
        assert_eq!(rollup.ingress.popped, 6);
        assert_eq!(
            rollup.total_ops,
            rollup.per_shard.iter().map(|s| s.ops).sum::<u64>()
        );
        // More than one shard actually took traffic.
        assert!(rollup.per_shard.iter().filter(|s| s.ops > 0).count() > 1);
    }

    #[test]
    fn crash_and_recover_all_shards() {
        let (mut server, _admin, mut clients) = sharded_counter(4, 1);
        for name in [&b"a"[..], b"b", b"c"] {
            run_one(&mut server, &mut clients[0], &Counter::inc_op(name, 2));
        }
        server.crash();
        assert!(!server.is_running());
        assert!(!server.boot().unwrap(), "no re-provisioning after crash");
        for name in [&b"a"[..], b"b", b"c"] {
            assert_eq!(
                run_one(&mut server, &mut clients[0], &Counter::inc_op(name, 2)),
                4
            );
        }
    }

    /// Like [`run_one`], but chases resharding redirects: a reply that
    /// carries a newer slice table re-invokes the operation under it.
    fn run_chasing(
        server: &mut ShardedServer<Box<dyn BatchServer>>,
        client: &mut LcmClient,
        op: &[u8],
    ) -> u64 {
        use crate::client::WriteOutcome;
        let mut wire = client.invoke_for::<Counter>(op).unwrap();
        loop {
            server.submit(wire);
            let replies = server.process_all().unwrap();
            let mine = replies
                .into_iter()
                .find(|(id, _)| *id == client.id())
                .expect("reply routed");
            match client.handle_reply_on(&mine.1).unwrap().1 {
                WriteOutcome::Done(done) => return Counter::decode_result(&done.result).unwrap(),
                WriteOutcome::Redirected { op } => {
                    wire = client.invoke_for::<Counter>(&op).unwrap();
                }
            }
        }
    }

    /// Smallest key of the form `k{j}` whose route hash falls in
    /// `slice`.
    fn key_in_slice(slice: u32) -> Vec<u8> {
        (0u32..)
            .map(|j| format!("k{j}").into_bytes())
            .find(|k| slice_of(route_hash(k)) == slice)
            .unwrap()
    }

    #[test]
    fn live_slice_migration_moves_state_and_redirects_clients() {
        let (mut server, _admin, mut clients) = sharded_counter(2, 2);
        let name = b"hot-counter".to_vec();
        assert_eq!(
            run_one(&mut server, &mut clients[0], &Counter::inc_op(&name, 5)),
            5
        );
        let slice = slice_of(route_hash(&name));
        let home = server.current_table().owner(slice);
        let to = 1 - home;

        BatchServer::migrate_slice(&mut server, slice, to).unwrap();
        assert_eq!(server.routing_epoch(), 1);
        assert_eq!(server.current_table().owner(slice), to);
        assert_eq!(server.pending_slice_move(), None);

        // A client still routing by epoch 0 sends to the old owner,
        // gets the authenticated redirect, adopts the new table, and
        // lands on the moved state — nothing lost, nothing doubled.
        assert_eq!(
            run_chasing(&mut server, &mut clients[0], &Counter::inc_op(&name, 2)),
            7
        );
        assert_eq!(clients[0].routing_epoch(), 1);
        // A second client that never saw the redirect converges too.
        assert_eq!(
            run_chasing(&mut server, &mut clients[1], &Counter::read_op(&name)),
            7
        );
        assert_eq!(clients[1].routing_epoch(), 1);
        // Writes through the already-redirected client go straight to
        // the new owner (no further redirect round trips).
        assert_eq!(
            run_one(&mut server, &mut clients[0], &Counter::inc_op(&name, 1)),
            8
        );
    }

    #[test]
    fn slice_migration_rejects_nonsense_moves() {
        let (mut server, _admin, _clients) = sharded_counter(2, 1);
        let table = server.current_table();
        let owner = table.owner(0);
        // Target out of range.
        let err = BatchServer::migrate_slice(&mut server, 0, 7).unwrap_err();
        assert!(matches!(err, LcmError::Tee(ref m) if m.contains("target")));
        // Slice out of range.
        let err = BatchServer::migrate_slice(&mut server, SLICE_COUNT, 0).unwrap_err();
        assert!(matches!(err, LcmError::Tee(ref m) if m.contains("out of range")));
        // Self-move.
        let err = BatchServer::migrate_slice(&mut server, 0, owner).unwrap_err();
        assert!(matches!(err, LcmError::Tee(ref m) if m.contains("already owns")));
        assert_eq!(server.routing_epoch(), 0);
    }

    #[test]
    fn interrupted_slice_move_resumes_after_target_reboot() {
        let (mut server, _admin, mut clients) = sharded_counter(2, 1);
        let name = b"resumable".to_vec();
        assert_eq!(
            run_one(&mut server, &mut clients[0], &Counter::inc_op(&name, 4)),
            4
        );
        let slice = slice_of(route_hash(&name));
        let home = server.current_table().owner(slice);
        let to = 1 - home;

        // The target is down when the move starts: the origin's export
        // is cut (its own table advances), but the handshake cannot
        // complete — the pending move is retained and the host keeps
        // routing by the old table.
        server.with_shard(to, |s| s.crash());
        BatchServer::migrate_slice(&mut server, slice, to).unwrap_err();
        assert_eq!(server.pending_slice_move(), Some((slice, home, to)));
        assert_eq!(server.routing_epoch(), 0);

        // Reboot the target and resume: the sealed ticket is
        // re-delivered and the handshake completes.
        server.with_shard(to, |s| s.boot().map(|_| ()).unwrap());
        server.resume_slice_migration().unwrap();
        assert_eq!(server.routing_epoch(), 1);
        assert_eq!(server.pending_slice_move(), None);
        assert_eq!(
            run_chasing(&mut server, &mut clients[0], &Counter::inc_op(&name, 1)),
            5
        );
    }

    #[test]
    fn heat_monitor_moves_hot_slice_to_cold_shard() {
        let (mut server, _admin, mut clients) = sharded_counter(2, 1);
        // Two hot counters in *different* slices of the same shard —
        // moving the hotter one away is profitable (a lone hot slice
        // would just relocate the hotspot, and the planner declines).
        let table = server.current_table();
        let (s1, s2) = (0, 2);
        assert_eq!(table.owner(s1), table.owner(s2));
        let home = table.owner(s1);
        let (k1, k2) = (key_in_slice(s1), key_in_slice(s2));
        for _ in 0..12 {
            run_one(&mut server, &mut clients[0], &Counter::inc_op(&k1, 1));
        }
        for _ in 0..6 {
            run_one(&mut server, &mut clients[0], &Counter::inc_op(&k2, 1));
        }

        let moved = server.rebalance_once().unwrap();
        assert_eq!(moved, Some((s1, 1 - home)));
        assert_eq!(server.current_table().owner(s1), 1 - home);
        assert_eq!(server.routing_epoch(), 1);
        // The drained interval is consumed: with no new traffic the
        // next pass plans nothing.
        assert_eq!(server.rebalance_once().unwrap(), None);
        // The migrated counter still serves, with its value intact.
        assert_eq!(
            run_chasing(&mut server, &mut clients[0], &Counter::read_op(&k1)),
            12
        );
    }

    #[test]
    fn plan_rebalance_declines_balanced_and_unprofitable_loads() {
        let table = SliceTable::uniform(2);
        let mut heat = vec![0u64; SLICE_COUNT as usize];
        // No traffic at all.
        assert_eq!(plan_rebalance(&heat, &table), None);
        // Balanced: both shards within 2x of each other.
        heat[0] = 10; // shard 0
        heat[1] = 6; // shard 1
        assert_eq!(plan_rebalance(&heat, &table), None);
        // Skewed but unprofitable: ALL of the hot shard's heat is one
        // slice; moving it would only relocate the hotspot.
        heat[1] = 0;
        assert_eq!(plan_rebalance(&heat, &table), None);
        // Skewed and profitable: two hot slices on shard 0 — ship the
        // hotter one to shard 1.
        heat[2] = 4; // also shard 0
        assert_eq!(plan_rebalance(&heat, &table), Some((0, 1)));
        // One shard is no deployment to balance.
        assert_eq!(plan_rebalance(&heat, &SliceTable::uniform(1)), None);
    }

    #[test]
    fn sharded_migration_fans_out_and_clients_continue() {
        let world = TeeWorld::new_deterministic(91);
        let storage = Arc::new(MemoryStorage::new());
        let mut origin = build_sharded::<Counter>(&world, 1, storage, 8, 4, false);
        assert!(origin.boot().unwrap());
        let mut admin =
            AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 6);
        admin.bootstrap(&mut origin).unwrap();
        let mut client = LcmClient::new_sharded(ClientId(1), admin.client_key(), 4);
        for name in [&b"a"[..], b"b", b"c", b"d"] {
            run_one(&mut origin, &mut client, &Counter::inc_op(name, 3));
        }

        // Target deployment on fresh platforms + fresh medium.
        let mut target =
            build_sharded::<Counter>(&world, 100, Arc::new(MemoryStorage::new()), 8, 4, false);
        assert!(target.boot().unwrap());
        admin.migrate(&mut origin, &mut target).unwrap();

        // Routing is stable across the migration: every counter reads
        // back its pre-migration value on the new deployment.
        for name in [&b"a"[..], b"b", b"c", b"d"] {
            assert_eq!(
                run_one(&mut target, &mut client, &Counter::read_op(name)),
                3
            );
        }
    }

    #[test]
    fn migration_ticket_shape_mismatch_rejected() {
        let world = TeeWorld::new_deterministic(92);
        let mut origin =
            build_sharded::<Counter>(&world, 1, Arc::new(MemoryStorage::new()), 8, 2, false);
        assert!(origin.boot().unwrap());
        let mut admin =
            AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 7);
        admin.bootstrap(&mut origin).unwrap();
        let ticket = origin.export_migration().unwrap();

        let mut target =
            build_sharded::<Counter>(&world, 50, Arc::new(MemoryStorage::new()), 8, 4, false);
        assert!(target.boot().unwrap());
        let err = target.import_migration(ticket).unwrap_err();
        assert!(matches!(err, LcmError::Tee(_)), "got {err:?}");
    }

    #[test]
    fn admin_fanout_keeps_shards_in_lockstep() {
        let (mut server, mut admin, mut clients) = sharded_counter(4, 2);
        run_one(&mut server, &mut clients[0], &Counter::inc_op(b"n", 1));
        // Several admin round trips in a row: every shard must advance
        // the admin sequence identically, or a later fan-out would trip
        // one shard's replay detection.
        for _ in 0..3 {
            let (_t, _q, n) = admin.status(&mut server).unwrap();
            assert_eq!(n, 2);
        }
        // Membership changes fan out too: a freshly added client can
        // immediately talk to ANY shard.
        admin.add_client(&mut server, ClientId(9)).unwrap();
        let mut nine = LcmClient::new_sharded(ClientId(9), admin.client_key(), 4);
        for name in [&b"a"[..], b"b", b"c", b"d", b"e"] {
            run_one(&mut server, &mut nine, &Counter::inc_op(name, 1));
        }
        // Removal rotates kC everywhere: the removed client's key stops
        // working on every shard.
        admin.remove_client(&mut server, ClientId(9)).unwrap();
        server.submit(
            nine.invoke_for::<Counter>(&Counter::inc_op(b"f", 1))
                .unwrap(),
        );
        assert!(server.process_all().is_err(), "stale kC must be rejected");
    }

    #[test]
    fn sibling_crash_stop_does_not_swallow_healthy_replies() {
        // Two clients on two different shards submit together; one wire
        // is tampered so its shard crash-stops mid-step. The healthy
        // client's reply must survive the failing step (delivered by
        // the next call), and its later traffic must not be stalled by
        // the victim's written-off ticket.
        let (mut server, _admin, mut clients) = sharded_counter(4, 2);
        let (va, vb) = clients.split_at_mut(1);
        let (victim, healthy) = (&mut va[0], &mut vb[0]);
        // Names on two different shards.
        let bad_name = b"bad".to_vec();
        let good_name = (0..64u32)
            .map(|i| format!("g{i}").into_bytes())
            .find(|n| shard_index(route_hash(n), 4) != shard_index(route_hash(&bad_name), 4))
            .unwrap();

        let mut bad_wire = victim
            .invoke_for::<Counter>(&Counter::inc_op(&bad_name, 1))
            .unwrap();
        let last = bad_wire.len() - 1;
        bad_wire[last] ^= 0xff; // tamper the ciphertext: shard halts
        let good_wire = healthy
            .invoke_for::<Counter>(&Counter::inc_op(&good_name, 5))
            .unwrap();
        server.submit(bad_wire);
        server.submit(good_wire);

        // The step carrying the failure reports it...
        let err = server.process_all().unwrap_err();
        assert!(err.is_violation(), "got {err:?}");
        // ...and the next call releases the healthy shard's reply.
        let replies = server.process_all().unwrap();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].0, healthy.id());
        let done = healthy.handle_reply(&replies[0].1).unwrap();
        assert_eq!(Counter::decode_result(&done.result), Some(5));
        // The healthy client keeps working — the victim's dead ticket
        // does not dam up later replies.
        assert_eq!(
            run_one(&mut server, healthy, &Counter::read_op(&good_name)),
            5
        );
    }

    #[test]
    fn ingress_overflow_relieves_inline_instead_of_deadlocking() {
        // Route far more wires at one shard than its ingress bound
        // before ever stepping: submit must make progress by running
        // batches inline, not block forever.
        let world = TeeWorld::new_deterministic(93);
        let servers: Vec<Box<dyn BatchServer>> = (0..2)
            .map(|i| {
                let platform = world.platform_deterministic(1 + i);
                Box::new(LcmServer::<Counter>::new(
                    &platform,
                    Arc::new(MemoryStorage::new()),
                    16,
                )) as Box<dyn BatchServer>
            })
            .collect();
        let mut server = ShardedServer::with_config(servers, 8);
        assert!(server.boot().unwrap());
        let mut admin =
            AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 8);
        admin.bootstrap(&mut server).unwrap();
        let mut client = LcmClient::new_sharded(ClientId(1), admin.client_key(), 2);

        // One client is sequential per shard, so drive the flood with
        // retries of a single op — 40 wires into an 8-slot queue.
        let first = client
            .invoke_for::<Counter>(&Counter::inc_op(b"hot", 1))
            .unwrap();
        server.submit(first);
        for _ in 0..39 {
            server.submit(client.retry().unwrap());
        }
        // The inline relief really fired: batches were already executed
        // during the submit flood, before any explicit step.
        assert!(
            server.ops_processed() > 0,
            "submit must relieve a full ingress by processing inline"
        );
        let replies = server.process_all().unwrap();
        // One fresh execution + cached-reply resends for the retries.
        assert_eq!(replies.len(), 40);
        assert_eq!(server.ops_processed(), 40);
        let done = client.handle_reply(&replies[0].1).unwrap();
        assert_eq!(Counter::decode_result(&done.result), Some(1));
        // The ingress bound held throughout the flood.
        assert!(server.stats_rollup().ingress.high_water <= 8);
    }

    #[test]
    fn error_mid_process_all_preserves_earlier_replies() {
        // One shard, batch limit 1: a healthy client's wire processes
        // in the first step, a tampered wire halts the shard in the
        // second. The healthy reply collected before the failure must
        // survive into the next call, not die with the error.
        let world = TeeWorld::new_deterministic(94);
        let mut server =
            build_sharded::<Counter>(&world, 1, Arc::new(MemoryStorage::new()), 1, 1, false);
        assert!(server.boot().unwrap());
        let ids = vec![ClientId(1), ClientId(2)];
        let mut admin = AdminHandle::new_deterministic(&world, ids, Quorum::Majority, 9);
        admin.bootstrap(&mut server).unwrap();
        let mut healthy = LcmClient::new_sharded(ClientId(1), admin.client_key(), 1);
        let mut victim = LcmClient::new_sharded(ClientId(2), admin.client_key(), 1);

        let good = healthy
            .invoke_for::<Counter>(&Counter::inc_op(b"n", 3))
            .unwrap();
        let mut bad = victim
            .invoke_for::<Counter>(&Counter::inc_op(b"n", 1))
            .unwrap();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        server.submit(good);
        server.submit(bad);

        let err = server.process_all().unwrap_err();
        assert!(err.is_violation(), "got {err:?}");
        let replies = server.process_all().unwrap();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].0, healthy.id());
        let done = healthy.handle_reply(&replies[0].1).unwrap();
        assert_eq!(Counter::decode_result(&done.result), Some(3));
    }

    #[test]
    fn swapped_cross_shard_genesis_replies_cannot_be_misattributed() {
        // A client's two FIRST ops (both contexts at the genesis chain
        // value) in flight on two shards: the echoed hc alone cannot
        // tell the replies apart, but the reply AAD binds the route, so
        // the client attributes each reply to the right operation even
        // when a (possibly malicious) host delivers them swapped — the
        // swap is neutralized, not obeyed.
        let (mut server, _admin, mut clients) = sharded_counter(4, 1);
        let client = &mut clients[0];
        let name_a = b"swap-a".to_vec();
        let name_b = (0..64u32)
            .map(|i| format!("swap-b{i}").into_bytes())
            .find(|n| shard_index(route_hash(n), 4) != shard_index(route_hash(&name_a), 4))
            .unwrap();
        let w1 = client
            .invoke_for::<Counter>(&Counter::inc_op(&name_a, 1))
            .unwrap();
        let w2 = client
            .invoke_for::<Counter>(&Counter::inc_op(&name_b, 2))
            .unwrap();
        server.submit(w1);
        server.submit(w2);
        let replies = server.process_all().unwrap();
        assert_eq!(replies.len(), 2);
        // Malicious delivery order: the second op's reply first. Each
        // completes with ITS OWN result.
        let done_b = client.handle_reply(&replies[1].1).unwrap();
        assert_eq!(Counter::decode_result(&done_b.result), Some(2));
        let done_a = client.handle_reply(&replies[0].1).unwrap();
        assert_eq!(Counter::decode_result(&done_a.result), Some(1));
        assert!(!client.has_pending());
        assert!(!client.is_halted());
        // A reply for an operation that is NOT pending still halts.
        let err = client.handle_reply(&replies[0].1).unwrap_err();
        assert!(err.is_violation());
    }

    #[test]
    fn sibling_crash_does_not_brick_a_cross_shard_pipelining_client() {
        // ONE client pipelines op A (shard that will crash-stop) and
        // op B (healthy shard). The crash writes off A's ticket and
        // releases B's reply first; the client must complete B and
        // stay live to retry A — an honest crash must never read as an
        // attack at the client.
        let (mut server, _admin, mut clients) = sharded_counter(4, 1);
        let client = &mut clients[0];
        let name_a = b"will-crash".to_vec();
        let shard_a = shard_index(route_hash(&name_a), 4);
        let name_b = (0..64u32)
            .map(|i| format!("fine{i}").into_bytes())
            .find(|n| shard_index(route_hash(n), 4) != shard_a)
            .unwrap();
        let wa = client
            .invoke_for::<Counter>(&Counter::inc_op(&name_a, 1))
            .unwrap();
        let wb = client
            .invoke_for::<Counter>(&Counter::inc_op(&name_b, 2))
            .unwrap();
        server.submit(wa);
        server.submit(wb);
        // Shard A dies (volatile crash) before anything is processed:
        // with_shard's resync writes off A's in-flight ticket.
        server.with_shard(shard_a, |s| s.crash());
        let replies = server.process_all().unwrap();
        assert_eq!(replies.len(), 1, "only the healthy shard replied");
        let done_b = client.handle_reply(&replies[0].1).unwrap();
        assert_eq!(Counter::decode_result(&done_b.result), Some(2));
        assert!(!client.is_halted(), "honest crash must not look hostile");

        // The client still has op A pending; after shard A reboots,
        // the retry completes it.
        assert!(client.has_pending());
        server.with_shard(shard_a, |s| s.boot()).unwrap();
        server.submit(client.retry().unwrap());
        let replies = server.process_all().unwrap();
        assert_eq!(replies.len(), 1);
        let done_a = client.handle_reply(&replies[0].1).unwrap();
        assert_eq!(Counter::decode_result(&done_a.result), Some(1));
        assert!(!client.has_pending());
    }

    #[test]
    fn per_client_replies_arrive_in_submission_order() {
        let (mut server, _admin, mut clients) = sharded_counter(4, 1);
        let client = &mut clients[0];
        // Find two counter names on different shards.
        let name_a = b"k0".to_vec();
        let mut name_b = None;
        for i in 1..64u32 {
            let candidate = format!("k{i}").into_bytes();
            if shard_index(route_hash(&candidate), 4) != shard_index(route_hash(&name_a), 4) {
                name_b = Some(candidate);
                break;
            }
        }
        let name_b = name_b.expect("some key maps to another shard");

        // Two in-flight ops from ONE client on two different shards.
        let w1 = client
            .invoke_for::<Counter>(&Counter::inc_op(&name_a, 1))
            .unwrap();
        let w2 = client
            .invoke_for::<Counter>(&Counter::inc_op(&name_b, 1))
            .unwrap();
        server.submit(w1);
        server.submit(w2);
        let replies = server.process_all().unwrap();
        assert_eq!(replies.len(), 2);
        // Submission order is preserved, so completing in arrival order
        // matches the client's pending queue (a swap would be flagged
        // as a violation by the echo check).
        for (_, wire) in &replies {
            client.handle_reply(wire).unwrap();
        }
        assert!(!client.has_pending());
    }
}
