//! Omniscient history checkers for protocol validation.
//!
//! These checkers play the role of the paper's correctness arguments in
//! executable form: tests record every completion at every client and
//! then ask (a) was each client's local view self-consistent, (b) do
//! the views of all clients embed into one forking history without two
//! *joined* branches (fork-linearizability's forest shape), and (c) is
//! the majority-stable prefix common to all clients (stability ⇒
//! linearizable prefix).
//!
//! A client cannot run these checks online — it only sees its own
//! operations; that is exactly why fork *detection* needs either the
//! protocol's context checks or out-of-band exchange of these records.

use std::collections::BTreeMap;

use crate::types::{ChainValue, ClientId, SeqNo};

/// One completed operation as observed by a client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// The observing client.
    pub client: ClientId,
    /// Which shard of the deployment executed the operation (0 for an
    /// unsharded server). Sequence numbers and chain values are
    /// per-shard, so every checker groups by this first.
    pub shard: u32,
    /// Sequence number the operation received on its shard.
    pub seq: SeqNo,
    /// Hash-chain value returned with the operation.
    pub chain: ChainValue,
    /// The operation payload.
    pub op: Vec<u8>,
    /// The result returned.
    pub result: Vec<u8>,
    /// The majority-stable watermark returned with the operation.
    pub stable: SeqNo,
}

/// Evidence that a set of client views cannot come from a single
/// (honest) linearizable history.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ForkEvidence {
    /// Two clients observed the same sequence number with different
    /// hash-chain values: they live on diverged branches.
    DivergentChains {
        /// The sequence number observed twice.
        seq: SeqNo,
        /// First observing client.
        a: ClientId,
        /// Second observing client.
        b: ClientId,
    },
    /// A single client's view has non-increasing sequence numbers.
    NonMonotoneClient(ClientId),
    /// A single client's stability watermark decreased.
    StabilityRegression(ClientId),
    /// An operation at or below a client's stable watermark is not
    /// present in the common chain prefix of all clients.
    UnstableStablePrefix {
        /// The client whose stable prefix is violated.
        client: ClientId,
        /// The violating sequence number.
        seq: SeqNo,
    },
    /// Two views diverged and later agreed again: the forked histories
    /// were joined, which fork-linearizability forbids.
    JoinAfterFork {
        /// First sequence number where the views diverged.
        forked_at: SeqNo,
        /// Later sequence number where they agree again.
        joined_at: SeqNo,
    },
}

impl std::fmt::Display for ForkEvidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ForkEvidence::DivergentChains { seq, a, b } => {
                write!(f, "clients {a} and {b} observed divergent chains at {seq}")
            }
            ForkEvidence::NonMonotoneClient(c) => {
                write!(f, "client {c} observed non-monotone sequence numbers")
            }
            ForkEvidence::StabilityRegression(c) => {
                write!(f, "client {c} observed decreasing stability")
            }
            ForkEvidence::UnstableStablePrefix { client, seq } => {
                write!(f, "operation {seq} is stable at {client} but not common")
            }
            ForkEvidence::JoinAfterFork {
                forked_at,
                joined_at,
            } => {
                write!(
                    f,
                    "views forked at {forked_at} but joined again at {joined_at}"
                )
            }
        }
    }
}

/// Checks one client's view in isolation: strictly increasing sequence
/// numbers, non-decreasing stability.
///
/// # Errors
///
/// Returns the first [`ForkEvidence`] found.
pub fn check_client_view(records: &[OpRecord]) -> Result<(), ForkEvidence> {
    // Sequence numbers and watermarks are per shard; check each
    // shard's subsequence of the view independently.
    let mut last: BTreeMap<u32, (SeqNo, SeqNo)> = BTreeMap::new();
    for r in records {
        let (last_seq, last_stable) = last.entry(r.shard).or_default();
        if r.seq <= *last_seq {
            return Err(ForkEvidence::NonMonotoneClient(r.client));
        }
        if r.stable < *last_stable {
            return Err(ForkEvidence::StabilityRegression(r.client));
        }
        *last_seq = r.seq;
        *last_stable = r.stable;
    }
    Ok(())
}

/// Checks that the union of several client views is consistent with a
/// *single* history: every sequence number maps to one chain value.
///
/// On an honest server this always holds. After a forking attack it
/// fails precisely when views from *different branches* are combined —
/// which is the out-of-band detection the paper describes ("the clients
/// can detect this through a lightweight out-of-band mechanism").
///
/// # Errors
///
/// Returns the first [`ForkEvidence`] found.
pub fn check_single_history(views: &[&[OpRecord]]) -> Result<(), ForkEvidence> {
    for view in views {
        check_client_view(view)?;
    }
    // Each shard has its own chain; a sequence number identifies an
    // operation only together with its shard.
    let mut chain_at: BTreeMap<(u32, SeqNo), (ClientId, ChainValue)> = BTreeMap::new();
    for view in views {
        for r in *view {
            match chain_at.get(&(r.shard, r.seq)) {
                None => {
                    chain_at.insert((r.shard, r.seq), (r.client, r.chain));
                }
                Some(&(other, chain)) if chain != r.chain => {
                    return Err(ForkEvidence::DivergentChains {
                        seq: r.seq,
                        a: other,
                        b: r.client,
                    });
                }
                Some(_) => {}
            }
        }
    }
    Ok(())
}

/// Checks the stability contract: every operation a client saw at or
/// below its final stable watermark must be globally consistent (no
/// divergent chain value anywhere at or below that watermark).
///
/// This is the executable form of "any subsequence of a history that
/// contains only operations that are stable among a majority is
/// linearizable" (§3.2.2).
///
/// # Errors
///
/// Returns the first [`ForkEvidence`] found.
pub fn check_stable_prefix(views: &[&[OpRecord]]) -> Result<(), ForkEvidence> {
    // Chain values seen per (shard, sequence number) across all views.
    let mut chain_at: BTreeMap<(u32, SeqNo), Vec<(ClientId, ChainValue)>> = BTreeMap::new();
    for view in views {
        for r in *view {
            chain_at
                .entry((r.shard, r.seq))
                .or_default()
                .push((r.client, r.chain));
        }
    }
    for view in views {
        // Per-shard watermark: a client's final stable value on shard
        // s covers only operations on s.
        let mut watermark: BTreeMap<u32, SeqNo> = BTreeMap::new();
        for r in *view {
            let w = watermark.entry(r.shard).or_default();
            *w = (*w).max(r.stable);
        }
        for r in *view {
            let covered = watermark.get(&r.shard).copied().unwrap_or(SeqNo::ZERO);
            if r.seq > covered {
                continue;
            }
            if let Some(observations) = chain_at.get(&(r.shard, r.seq)) {
                if observations.iter().any(|&(_, chain)| chain != r.chain) {
                    return Err(ForkEvidence::UnstableStablePrefix {
                        client: r.client,
                        seq: r.seq,
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks fork-linearizability's **no-join** property over a pair of
/// views: once two clients have observed divergent chain values at
/// some sequence number, they may never again both observe the *same*
/// chain value at any higher sequence number.
///
/// "Whenever the malicious server has separated two clients, they can
/// never be joined again" (§3.2.1). A server violating this has
/// merged two forked histories — exactly what the protocol makes
/// impossible without detection.
///
/// # Errors
///
/// Returns [`ForkEvidence::JoinAfterFork`] naming the join point.
pub fn check_no_join(a: &[OpRecord], b: &[OpRecord]) -> Result<(), ForkEvidence> {
    let chains_b: BTreeMap<(u32, SeqNo), ChainValue> =
        b.iter().map(|r| ((r.shard, r.seq), r.chain)).collect();
    // Forks are per shard: each shard is an independent history.
    let mut forked_at: BTreeMap<u32, SeqNo> = BTreeMap::new();
    for r in a {
        let Some(&other) = chains_b.get(&(r.shard, r.seq)) else {
            continue;
        };
        match forked_at.get(&r.shard) {
            None => {
                if other != r.chain {
                    forked_at.insert(r.shard, r.seq);
                }
            }
            Some(&fork_seq) => {
                if other == r.chain {
                    return Err(ForkEvidence::JoinAfterFork {
                        forked_at: fork_seq,
                        joined_at: r.seq,
                    });
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(client: u32, seq: u64, chain_tag: &[u8], stable: u64) -> OpRecord {
        OpRecord {
            client: ClientId(client),
            shard: 0,
            seq: SeqNo(seq),
            chain: ChainValue::GENESIS.extend(chain_tag, SeqNo(seq), ClientId(0)),
            op: chain_tag.to_vec(),
            result: vec![],
            stable: SeqNo(stable),
        }
    }

    #[test]
    fn honest_views_pass() {
        let a = vec![rec(1, 1, b"x1", 0), rec(1, 3, b"x3", 1)];
        let b = vec![rec(2, 2, b"x2", 0), rec(2, 4, b"x4", 2)];
        check_single_history(&[&a, &b]).unwrap();
        check_stable_prefix(&[&a, &b]).unwrap();
    }

    #[test]
    fn shared_seq_same_chain_passes() {
        // Both clients legitimately observe op #2 (e.g. one executed it,
        // checker fed both the same record).
        let shared = rec(1, 2, b"x2", 0);
        let mut for_b = shared.clone();
        for_b.client = ClientId(2);
        check_single_history(&[&[shared], &[for_b]]).unwrap();
    }

    #[test]
    fn divergent_chains_detected() {
        let a = vec![rec(1, 1, b"branch-a", 0)];
        let b = vec![rec(2, 1, b"branch-b", 0)];
        assert!(matches!(
            check_single_history(&[&a, &b]),
            Err(ForkEvidence::DivergentChains { seq: SeqNo(1), .. })
        ));
    }

    #[test]
    fn non_monotone_client_detected() {
        let a = vec![rec(1, 2, b"x", 0), rec(1, 1, b"y", 0)];
        assert_eq!(
            check_client_view(&a),
            Err(ForkEvidence::NonMonotoneClient(ClientId(1)))
        );
    }

    #[test]
    fn stability_regression_detected() {
        let a = vec![rec(1, 1, b"x", 3), rec(1, 2, b"y", 2)];
        assert_eq!(
            check_client_view(&a),
            Err(ForkEvidence::StabilityRegression(ClientId(1)))
        );
    }

    #[test]
    fn stable_prefix_violation_detected() {
        // Client 1 believes op #1 is stable, but client 2 observed a
        // different chain at #1 — the "stable" prefix diverged.
        let a = vec![rec(1, 1, b"branch-a", 1)];
        let b = vec![rec(2, 1, b"branch-b", 0)];
        assert!(matches!(
            check_stable_prefix(&[&a, &b]),
            Err(ForkEvidence::UnstableStablePrefix { seq: SeqNo(1), .. })
        ));
    }

    #[test]
    fn unstable_divergence_is_allowed_by_stable_prefix_check() {
        // Divergence ABOVE the stable watermark is exactly what
        // fork-linearizability permits (detection pending).
        let a = vec![rec(1, 1, b"common", 0), rec(1, 2, b"branch-a", 0)];
        let b = vec![rec(2, 1, b"common", 0), rec(2, 2, b"branch-b", 0)];
        check_stable_prefix(&[&a, &b]).unwrap();
        assert!(check_single_history(&[&a, &b]).is_err());
    }

    #[test]
    fn empty_views_pass() {
        check_single_history(&[]).unwrap();
        check_stable_prefix(&[&[]]).unwrap();
        check_client_view(&[]).unwrap();
        check_no_join(&[], &[]).unwrap();
    }

    #[test]
    fn no_join_accepts_clean_fork() {
        // Diverge at #2 and stay diverged.
        let a = vec![
            rec(1, 1, b"common", 0),
            rec(1, 2, b"a", 0),
            rec(1, 3, b"a3", 0),
        ];
        let b = vec![
            rec(2, 1, b"common", 0),
            rec(2, 2, b"b", 0),
            rec(2, 3, b"b3", 0),
        ];
        check_no_join(&a, &b).unwrap();
    }

    #[test]
    fn no_join_detects_rejoined_histories() {
        // Diverge at #2, agree again at #3: forbidden join.
        let a = vec![rec(1, 2, b"a", 0), rec(1, 3, b"same", 0)];
        let b = vec![rec(2, 2, b"b", 0), rec(2, 3, b"same", 0)];
        assert_eq!(
            check_no_join(&a, &b),
            Err(ForkEvidence::JoinAfterFork {
                forked_at: SeqNo(2),
                joined_at: SeqNo(3),
            })
        );
    }

    #[test]
    fn no_join_ignores_disjoint_seqnos() {
        let a = vec![rec(1, 1, b"x", 0), rec(1, 3, b"y", 0)];
        let b = vec![rec(2, 2, b"z", 0), rec(2, 4, b"w", 0)];
        check_no_join(&a, &b).unwrap();
    }

    #[test]
    fn same_seq_on_different_shards_is_not_divergence() {
        // Every shard numbers its own history from 1; identical
        // sequence numbers with different chains on different shards
        // are independent operations, not a fork.
        let mut a = rec(1, 1, b"on-shard-0", 0);
        let mut b = rec(2, 1, b"on-shard-1", 0);
        a.shard = 0;
        b.shard = 1;
        check_single_history(&[&[a.clone()], &[b.clone()]]).unwrap();
        check_stable_prefix(&[&[a.clone()], &[b.clone()]]).unwrap();
        check_no_join(&[a.clone()], &[b.clone()]).unwrap();
        // A client's view may interleave shards with locally repeating
        // sequence numbers.
        check_client_view(&[a.clone(), {
            let mut r = rec(1, 1, b"x", 0);
            r.shard = 1;
            r
        }])
        .unwrap();
        // But the same (shard, seq) with different chains is still a
        // fork.
        b.shard = 0;
        assert!(check_single_history(&[&[a], &[b]]).is_err());
    }

    #[test]
    fn fork_evidence_display() {
        let e = ForkEvidence::DivergentChains {
            seq: SeqNo(3),
            a: ClientId(1),
            b: ClientId(2),
        };
        assert!(format!("{e}").contains("divergent"));
    }
}
