use std::error::Error;
use std::fmt;

use crate::codec::CodecError;
use crate::types::{ChainValue, ClientId, SeqNo};

/// Evidence of server misbehaviour detected by the protocol.
///
/// Any of these corresponds to an `assert` firing in the paper's
/// Alg. 1/Alg. 2: the protocol participant that observes it halts and
/// accuses the server. Crucially, a *rollback* or *fork* surfaces as
/// [`Violation::ContextMismatch`] at the trusted context (the client's
/// condensed view `(tc, hc)` does not match `V[i]`) or as
/// [`Violation::ReplyMismatch`] at the client.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Violation {
    /// A message failed authenticated decryption: forged, tampered
    /// with, or encrypted under a rotated-out key.
    BadAuthentication,
    /// The client's `(tc, hc)` does not match `V[i]` — the signature of
    /// a rollback attack, a forking attack, or a message replay.
    ContextMismatch {
        /// The client whose context failed verification.
        client: ClientId,
        /// Sequence number claimed by the client.
        claimed: SeqNo,
        /// Sequence number the trusted context has on record.
        recorded: SeqNo,
    },
    /// A REPLY did not echo the client's current chain value: the reply
    /// answers a different context than the one invoked from.
    ReplyMismatch {
        /// The chain value the client expected echoed.
        expected: ChainValue,
        /// The chain value the reply actually echoed.
        got: ChainValue,
    },
    /// A reply arrived with no operation pending at this client.
    UnexpectedReply,
    /// An intact INVOKE wire reached an enclave that does not own it
    /// under the routing slice table: either the authenticated routing
    /// envelope maps to a different shard (the host redirected the
    /// wire), or the route recomputed from the decrypted operation's
    /// partition key does (the sender's envelope lies about its own
    /// operation), or the wire is stamped with a routing epoch *newer*
    /// than the enclave's own table — the signature of an enclave
    /// rolled back past a slice migration. Detected by the enclave
    /// itself, with no client history required.
    WrongShard {
        /// The invoking client.
        client: ClientId,
        /// The attested identity of the enclave that received the wire.
        delivered_to: u32,
        /// The shard the operation actually maps to (under the
        /// enclave's current table).
        owner: u32,
        /// The routing epoch the wire's envelope was stamped with.
        wire_epoch: u64,
        /// The routing epoch of the enclave's own slice table.
        shard_epoch: u64,
    },
    /// A verified-read leg carried an operation that is not read-only:
    /// the host (or a forged sender) tried to smuggle a mutation past
    /// the leader's quorum path onto a follower.
    MutationOnReadPath {
        /// The client named by the read leg.
        client: ClientId,
    },
    /// An admin operation replayed an old admin sequence number.
    AdminReplay,
    /// A violation reported across the ecall boundary; the rendered
    /// description of the original evidence.
    Reported(String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::BadAuthentication => write!(f, "message failed authentication"),
            Violation::ContextMismatch {
                client,
                claimed,
                recorded,
            } => write!(
                f,
                "context mismatch for {client}: claimed {claimed}, recorded {recorded} \
                 (rollback, fork, or replay)"
            ),
            Violation::ReplyMismatch { expected, got } => {
                write!(f, "reply mismatch: expected echo {expected}, got {got}")
            }
            Violation::UnexpectedReply => write!(f, "reply with no pending operation"),
            Violation::WrongShard {
                client,
                delivered_to,
                owner,
                wire_epoch,
                shard_epoch,
            } => write!(
                f,
                "operation of {client} maps to shard {owner} but was delivered to \
                 shard {delivered_to} (wire routing epoch {wire_epoch}, shard table \
                 epoch {shard_epoch}: misdirected wire or rolled-back enclave)"
            ),
            Violation::MutationOnReadPath { client } => write!(
                f,
                "read leg of {client} carries a non-read-only operation \
                 (mutation smuggled past the quorum path)"
            ),
            Violation::AdminReplay => write!(f, "admin operation replay"),
            Violation::Reported(msg) => write!(f, "{msg}"),
        }
    }
}

/// Error type for all fallible LCM operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LcmError {
    /// Server misbehaviour was detected; the protocol participant has
    /// halted (the paper's `assert`).
    Violation(Violation),
    /// This participant already halted due to an earlier violation.
    Halted,
    /// The trusted context has not been provisioned with keys yet.
    NotProvisioned,
    /// The trusted context is already provisioned and refuses to be
    /// re-provisioned.
    AlreadyProvisioned,
    /// An operation referenced a client outside the group.
    UnknownClient(ClientId),
    /// The client already has an operation in flight (the protocol is
    /// sequential per client, §4.1).
    OperationPending,
    /// A retry was requested but no operation is pending.
    NothingToRetry,
    /// Wire-format decoding failure of *trusted* data (sealed state) —
    /// distinct from message tampering, which surfaces as a
    /// [`Violation::BadAuthentication`] before decoding.
    Codec(CodecError),
    /// Underlying TEE failure (enclave stopped, attestation failed…).
    Tee(String),
    /// Underlying storage failure.
    Storage(String),
}

impl fmt::Display for LcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LcmError::Violation(v) => write!(f, "server misbehaviour detected: {v}"),
            LcmError::Halted => write!(f, "participant halted after violation"),
            LcmError::NotProvisioned => write!(f, "trusted context not provisioned"),
            LcmError::AlreadyProvisioned => write!(f, "trusted context already provisioned"),
            LcmError::UnknownClient(c) => write!(f, "unknown client {c}"),
            LcmError::OperationPending => write!(f, "an operation is already pending"),
            LcmError::NothingToRetry => write!(f, "no pending operation to retry"),
            LcmError::Codec(e) => write!(f, "codec failure: {e}"),
            LcmError::Tee(e) => write!(f, "TEE failure: {e}"),
            LcmError::Storage(e) => write!(f, "storage failure: {e}"),
        }
    }
}

impl Error for LcmError {}

impl From<Violation> for LcmError {
    fn from(v: Violation) -> Self {
        LcmError::Violation(v)
    }
}

impl From<CodecError> for LcmError {
    fn from(e: CodecError) -> Self {
        LcmError::Codec(e)
    }
}

impl From<lcm_tee::TeeError> for LcmError {
    fn from(e: lcm_tee::TeeError) -> Self {
        LcmError::Tee(e.to_string())
    }
}

impl From<lcm_storage::StorageError> for LcmError {
    fn from(e: lcm_storage::StorageError) -> Self {
        LcmError::Storage(e.to_string())
    }
}

impl LcmError {
    /// Whether this error is a detected attack (as opposed to an
    /// operational failure).
    pub fn is_violation(&self) -> bool {
        matches!(self, LcmError::Violation(_) | LcmError::Halted)
    }
}
