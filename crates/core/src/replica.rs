//! Replicated shard groups: quorum-stable writes, failover, and
//! verified read scale-out.
//!
//! [`ReplicaGroup`] runs one shard as a group of 2f+1 replicas. The
//! *leader* executes and seals every batch exactly as a solo server
//! would; the host then ships the sealed state blob to each follower,
//! whose enclave installs it ([`LcmServer::apply_replica`]) and
//! acknowledges with the in-enclave digest of what it installed. A
//! batch's replies are released to clients only once a **quorum**
//! ([`Quorum::required`] of the group size) of replicas holds the
//! sealed state — the same threshold machinery the protocol already
//! uses for client stability ([`crate::stability`]), applied to
//! replicas instead of clients.
//!
//! ## What the quorum buys
//!
//! A write acknowledged to a client is held by at least f+1 replicas
//! (majority quorum over 2f+1). If at most f replicas crash, at least
//! one surviving replica holds every acknowledged write, and failover
//! promotes the live replica with the freshest applied state — so no
//! acknowledged write is ever lost, and a client that comes back after
//! a failover finds its `(tc, hc)` context intact: **no fork-detection
//! false positives**. Batches that executed but never reached quorum
//! have their replies withheld; after a crash their effects may be
//! lost, which clients experience as an unacknowledged operation to
//! retry (§4.6.1 cached-reply retries make the retry exact), or — if
//! the host maliciously restarts from a stale replica — as an honest
//! rollback detection. Either way the guarantee matches the paper's:
//! only the *unacknowledged suffix* is ever in question.
//!
//! ## Trust boundary
//!
//! The **host** schedules everything here: which member is leader,
//! when blobs ship, when a follower is promoted. None of that is
//! trusted. Correctness rests on the enclaves and the clients:
//!
//! * a follower's enclave only installs blobs sealed by a member of
//!   the *same group* (same shard slot, same group size — attested
//!   identity coordinates, checked in
//!   [`crate::context::TrustedContext::apply_replica`]);
//! * the acknowledgement digest is computed *inside* the follower's
//!   enclave over the exact blob it installed, so a host cannot forge
//!   quorum by acking blobs it never delivered;
//! * read replies are sealed by the serving replica's enclave under an
//!   AAD that pins the replica index, so a host cannot substitute one
//!   replica's answer for another's; and
//! * clients verify every reply against their own `(tc, hc)` context,
//!   exactly as in the unreplicated protocol — a host that promotes a
//!   stale replica past the quorum rules produces a detected rollback,
//!   not a silent one.
//!
//! ## Verified read scale-out
//!
//! Read-only operations ([`Functionality::is_readonly`]) can be served
//! by *any* replica through [`ReadPort::serve_read`], which locks only
//! the addressed member. Read legs are pinned to a replica inside the
//! AEAD and verified against the same per-shard history context as
//! writes, so read throughput scales with the replica count without
//! widening the trust boundary. See
//! [`crate::context::TrustedContext::serve_read`] for the enclave-side
//! checks (including the [`crate::Violation::MutationOnReadPath`]
//! halt).

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use lcm_crypto::sha256::{self, Digest};
use lcm_storage::StableStorage;
use lcm_tee::attestation::Quote;

use crate::server::{BatchServer, ReadPort, Replies, SLOT_STATE_BLOB};
use crate::stability::Quorum;
use crate::types::ClientId;
use crate::wire::ReadHint;
use crate::{LcmError, Result};

#[allow(unused_imports)] // rustdoc links
use crate::functionality::Functionality;
#[allow(unused_imports)] // rustdoc links
use crate::server::LcmServer;

/// A member server paired with the storage it persists into. The group
/// needs the storage handle to lift the leader's sealed state blob off
/// the medium and ship it to followers — replication rides the same
/// blob the crash-recovery path already trusts.
pub struct ReplicaMember {
    /// The member's host server (solo or pipelined).
    pub server: Box<dyn BatchServer>,
    /// The member's stable storage, as the host sees it.
    pub storage: Arc<dyn StableStorage>,
}

struct Member {
    server: Arc<Mutex<Box<dyn BatchServer>>>,
    storage: Arc<dyn StableStorage>,
    alive: bool,
    /// Epoch (group batch counter) of the last blob this member is
    /// known to hold; the promotion key on failover.
    applied_epoch: u64,
}

/// Counters the fault-injection tests assert on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Follower promotions performed after a leader death.
    pub promotions: u64,
    /// Batches whose replies were withheld past their own step because
    /// the quorum was not yet reached.
    pub quorum_stalls: u64,
    /// Withheld (never quorum-acknowledged) replies dropped on a
    /// leader death — clients retry these.
    pub replies_dropped: u64,
    /// State blobs successfully applied by followers.
    pub blobs_applied: u64,
}

/// One shard executed by a 2f+1 replica group. Implements
/// [`BatchServer`] so it slots behind the existing sharded router,
/// transport front-end, and admin handle unchanged; see the
/// [module docs](self) for the protocol.
pub struct ReplicaGroup {
    members: Vec<Member>,
    quorum: Quorum,
    leader: usize,
    /// Wires not yet handed to the leader. Kept at group level so a
    /// leader crash loses no queued request.
    queue: VecDeque<Vec<u8>>,
    /// Replies executed by the leader but not yet quorum-held, FIFO.
    withheld: VecDeque<(ClientId, Vec<u8>)>,
    /// Group batch counter; bumped per sealed batch shipped.
    epoch: u64,
    stats: GroupStats,
}

impl ReplicaGroup {
    /// Builds a group from its members. The first member starts as
    /// leader. `quorum` is the replica-acknowledgement threshold —
    /// [`Quorum::Majority`] gives the 2f+1 guarantee; [`Quorum::All`]
    /// trades availability for synchronous replication everywhere.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty.
    #[must_use]
    pub fn new(members: Vec<ReplicaMember>, quorum: Quorum) -> Self {
        assert!(!members.is_empty(), "a replica group needs members");
        let members = members
            .into_iter()
            .map(|m| Member {
                server: Arc::new(Mutex::new(m.server)),
                storage: m.storage,
                alive: false,
                applied_epoch: 0,
            })
            .collect();
        ReplicaGroup {
            members,
            quorum,
            leader: 0,
            queue: VecDeque::new(),
            withheld: VecDeque::new(),
            epoch: 0,
            stats: GroupStats::default(),
        }
    }

    /// Replica acknowledgements (leader included) needed before a
    /// batch's replies are released.
    #[must_use]
    pub fn required_acks(&self) -> usize {
        self.quorum.required(self.members.len())
    }

    /// Fault-injection counters.
    #[must_use]
    pub fn stats(&self) -> GroupStats {
        self.stats
    }

    /// Index of the current leader.
    #[must_use]
    pub fn leader(&self) -> usize {
        self.leader
    }

    fn member(&self, replica: u32) -> Result<&Member> {
        self.members.get(replica as usize).ok_or_else(|| {
            LcmError::Tee(format!(
                "replica {replica} out of range (group of {})",
                self.members.len()
            ))
        })
    }

    fn lock(
        server: &Arc<Mutex<Box<dyn BatchServer>>>,
    ) -> std::sync::MutexGuard<'_, Box<dyn BatchServer>> {
        server.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Ensures a live leader, promoting the live member with the
    /// freshest applied state if the seat is vacant. Withheld replies
    /// die with the old leader: they were never quorum-held, so the
    /// promoted state may not contain them, and releasing them would
    /// acknowledge writes the group cannot promise to keep.
    fn ensure_leader(&mut self) -> Result<()> {
        if self.members[self.leader].alive {
            return Ok(());
        }
        let candidate = self
            .members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.alive)
            .max_by_key(|(_, m)| m.applied_epoch)
            .map(|(i, _)| i);
        let Some(next) = candidate else {
            return Err(LcmError::Tee("no live replica to promote".into()));
        };
        self.stats.replies_dropped += self.withheld.len() as u64;
        self.withheld.clear();
        self.leader = next;
        self.epoch = self.members[next].applied_epoch;
        self.stats.promotions += 1;
        Ok(())
    }

    /// Ships the leader's current sealed state blob to every live
    /// follower and bumps each successful applier's epoch. A follower
    /// whose apply fails (or whose in-enclave digest disagrees with
    /// the shipped blob) is treated as crashed — it no longer counts
    /// toward any quorum until rebooted.
    fn replicate(&mut self) -> Result<()> {
        let leader = self.leader;
        let blob = self.members[leader]
            .storage
            .load(SLOT_STATE_BLOB)
            .map_err(|e| LcmError::Storage(e.to_string()))?
            .ok_or_else(|| LcmError::Storage("leader has no sealed state to replicate".into()))?;
        let expected = sha256::digest(&blob);
        self.members[leader].applied_epoch = self.epoch;
        for i in 0..self.members.len() {
            if i == leader || !self.members[i].alive {
                continue;
            }
            let applied = {
                let mut server = Self::lock(&self.members[i].server);
                server.apply_replica(blob.clone())
            };
            match applied {
                Ok(digest) if digest == expected => {
                    self.members[i].applied_epoch = self.epoch;
                    self.stats.blobs_applied += 1;
                }
                _ => self.members[i].alive = false,
            }
        }
        Ok(())
    }

    /// Members (leader included) holding the current epoch's blob.
    fn holders(&self) -> usize {
        self.members
            .iter()
            .filter(|m| m.alive && m.applied_epoch == self.epoch)
            .count()
    }

    /// Releases withheld replies if the current epoch is quorum-held.
    /// Release is all-or-nothing: the newest blob contains every
    /// earlier batch, so quorum on it acknowledges the whole prefix.
    fn release(&mut self) -> Replies {
        if self.holders() >= self.required_acks() {
            self.withheld.drain(..).collect()
        } else {
            if !self.withheld.is_empty() {
                self.stats.quorum_stalls += 1;
            }
            Vec::new()
        }
    }

    /// Brings a freshly rebooted member level with the leader so churn
    /// (kill → promote → reboot) cannot leave it as the only live
    /// member with an ancient state.
    fn catch_up(&mut self, replica: usize) {
        if replica == self.leader || !self.members[self.leader].alive || self.epoch == 0 {
            return;
        }
        let blob = match self.members[self.leader].storage.load(SLOT_STATE_BLOB) {
            Ok(Some(blob)) => blob,
            _ => return,
        };
        let expected = sha256::digest(&blob);
        let applied = {
            let mut server = Self::lock(&self.members[replica].server);
            server.apply_replica(blob)
        };
        if matches!(applied, Ok(digest) if digest == expected) {
            self.members[replica].applied_epoch = self.epoch;
            self.stats.blobs_applied += 1;
        }
    }
}

impl BatchServer for ReplicaGroup {
    fn boot(&mut self) -> Result<bool> {
        let mut needs_provisioning = false;
        for (i, member) in self.members.iter_mut().enumerate() {
            let fresh = Self::lock(&member.server).boot()?;
            member.alive = true;
            member.applied_epoch = 0;
            if i == self.leader {
                needs_provisioning = fresh;
            }
        }
        Ok(needs_provisioning)
    }

    fn crash(&mut self) {
        // Whole-group crash: every member dies, queued wires and
        // withheld replies are lost — the solo-server crash contract,
        // scaled to the group.
        for member in &mut self.members {
            Self::lock(&member.server).crash();
            member.alive = false;
        }
        self.queue.clear();
        self.withheld.clear();
    }

    fn is_running(&self) -> bool {
        self.members[self.leader].alive
            && Self::lock(&self.members[self.leader].server).is_running()
    }

    fn provision(&mut self, sealed_payload: Vec<u8>) -> Result<()> {
        self.provision_member(0, 0, sealed_payload)
    }

    fn attest(&mut self, user_data: Digest) -> Result<Quote> {
        self.attest_member(0, 0, user_data)
    }

    fn replica_count(&self) -> u32 {
        self.members.len() as u32
    }

    fn group_leader(&self, shard: u32) -> u32 {
        let _ = shard;
        self.leader as u32
    }

    fn attest_member(&mut self, shard: u32, replica: u32, user_data: Digest) -> Result<Quote> {
        if shard != 0 {
            return Err(LcmError::Tee(format!(
                "attest_member(shard {shard}) on a single replica group"
            )));
        }
        let server = Arc::clone(&self.member(replica)?.server);
        let quote = Self::lock(&server).attest(user_data);
        quote
    }

    fn provision_member(
        &mut self,
        shard: u32,
        replica: u32,
        sealed_payload: Vec<u8>,
    ) -> Result<()> {
        if shard != 0 {
            return Err(LcmError::Tee(format!(
                "provision_member(shard {shard}) on a single replica group"
            )));
        }
        let server = Arc::clone(&self.member(replica)?.server);
        let outcome = Self::lock(&server).provision(sealed_payload);
        outcome
    }

    fn kill_member(&mut self, shard: u32, replica: u32, power_failure: bool) -> Result<()> {
        if shard != 0 {
            return Err(LcmError::Tee(format!(
                "kill_member(shard {shard}) on a single replica group"
            )));
        }
        let member = self.member(replica)?;
        let server = Arc::clone(&member.server);
        Self::lock(&server).kill_member(0, 0, power_failure)?;
        let member = &mut self.members[replica as usize];
        member.alive = false;
        member.applied_epoch = 0;
        if replica as usize == self.leader {
            // Leader death drops everything not yet quorum-held:
            // withheld replies (never acknowledged — clients retry) and
            // wires the group had accepted but not executed. The
            // sharded host observes `is_running() == false` and writes
            // the matching tickets off, so reply pairing stays exact.
            self.stats.replies_dropped += self.withheld.len() as u64;
            self.withheld.clear();
            self.queue.clear();
        }
        Ok(())
    }

    fn reboot_member(&mut self, shard: u32, replica: u32) -> Result<bool> {
        if shard != 0 {
            return Err(LcmError::Tee(format!(
                "reboot_member(shard {shard}) on a single replica group"
            )));
        }
        let member = self.member(replica)?;
        let server = Arc::clone(&member.server);
        let fresh = Self::lock(&server).boot()?;
        let idx = replica as usize;
        self.members[idx].alive = true;
        self.members[idx].applied_epoch = 0;
        // Promote first if the leader seat is empty, then level the
        // rebooted member with whoever leads now.
        self.ensure_leader()?;
        self.catch_up(idx);
        Ok(fresh)
    }

    fn submit(&mut self, invoke_wire: Vec<u8>) {
        self.queue.push_back(invoke_wire);
    }

    fn queued(&self) -> usize {
        // Withheld replies count as unprocessed work: the wires behind
        // them have not settled, and the sharded reply book's ticket
        // accounting (and the front-end's work detection) must keep
        // driving this group until the quorum releases them.
        self.queue.len()
            + Self::lock(&self.members[self.leader].server).queued()
            + self.withheld.len()
    }

    fn batch_limit(&self) -> usize {
        Self::lock(&self.members[self.leader].server).batch_limit()
    }

    fn step(&mut self) -> Result<Replies> {
        self.ensure_leader()?;
        let leader = self.leader;
        let limit = self.batch_limit().max(1);
        let (replies, had_batch) = {
            let mut server = Self::lock(&self.members[leader].server);
            for _ in 0..limit {
                let Some(wire) = self.queue.pop_front() else {
                    break;
                };
                server.submit(wire);
            }
            if server.queued() == 0 {
                (Vec::new(), false)
            } else {
                let replies = server.step()?;
                // Replication ships the persisted blob, so the write
                // pipeline must drain before the blob is lifted.
                server.flush_persists()?;
                (replies, true)
            }
        };
        self.withheld.extend(replies);
        if had_batch {
            self.epoch += 1;
            self.replicate()?;
        }
        Ok(self.release())
    }

    fn process_all(&mut self) -> Result<Replies> {
        // Loop on *unexecuted* wires only: withheld replies drain via
        // `release`, not by further steps, and spinning on them would
        // never terminate while the quorum is down.
        let mut out = Vec::new();
        loop {
            let unexecuted =
                self.queue.len() + Self::lock(&self.members[self.leader].server).queued();
            if unexecuted == 0 {
                break;
            }
            out.extend(self.step()?);
        }
        // Drain a quorum stall if the queue emptied while replies were
        // still withheld and the quorum has since recovered.
        out.extend(self.release());
        Ok(out)
    }

    fn admin(&mut self, admin_wire: Vec<u8>) -> Result<Vec<u8>> {
        self.ensure_leader()?;
        let leader = self.leader;
        let reply = {
            let mut server = Self::lock(&self.members[leader].server);
            let reply = server.admin(admin_wire)?;
            server.flush_persists()?;
            reply
        };
        // Admin mutations (membership, key rotation) change the sealed
        // state; ship the new blob so a failover cannot roll them back.
        self.epoch += 1;
        self.replicate()?;
        Ok(reply)
    }

    fn export_migration(&mut self) -> Result<Vec<u8>> {
        self.ensure_leader()?;
        Self::lock(&self.members[self.leader].server).export_migration()
    }

    fn import_migration(&mut self, ticket: Vec<u8>) -> Result<()> {
        let replicas = self.members.len() as u32;
        for (i, member) in self.members.iter().enumerate() {
            let mut server = Self::lock(&member.server);
            server.import_migration_as(ticket.clone(), i as u32, replicas)?;
        }
        self.epoch += 1;
        for member in &mut self.members {
            if member.alive {
                member.applied_epoch = self.epoch;
            }
        }
        Ok(())
    }

    fn import_migration_as(&mut self, ticket: Vec<u8>, replica: u32, replicas: u32) -> Result<()> {
        if replicas != self.members.len() as u32 {
            return Err(LcmError::Tee(format!(
                "import_migration_as into a group of {} with replicas={replicas}",
                self.members.len()
            )));
        }
        let member = self.member(replica)?;
        Self::lock(&member.server).import_migration_as(ticket, replica, replicas)
    }

    fn export_slice(&mut self, slice: u32, to: u32) -> Result<(Vec<u8>, Vec<u8>)> {
        self.ensure_leader()?;
        let leader = self.leader;
        let pair = {
            let mut server = Self::lock(&self.members[leader].server);
            let pair = server.export_slice(slice, to)?;
            server.flush_persists()?;
            pair
        };
        // The post-export checkpoint (bumped table, moved keys gone)
        // ships to every follower so a failover cannot resurrect the
        // slice under the old epoch.
        self.epoch += 1;
        self.replicate()?;
        Ok(pair)
    }

    fn import_slice(&mut self, ticket: Vec<u8>) -> Result<()> {
        self.ensure_leader()?;
        let leader = self.leader;
        {
            let mut server = Self::lock(&self.members[leader].server);
            server.import_slice(ticket)?;
            server.flush_persists()?;
        }
        self.epoch += 1;
        self.replicate()
    }

    fn adopt_table(&mut self, bulletin: Vec<u8>) -> Result<()> {
        self.ensure_leader()?;
        let leader = self.leader;
        {
            let mut server = Self::lock(&self.members[leader].server);
            server.adopt_table(bulletin)?;
            server.flush_persists()?;
        }
        self.epoch += 1;
        self.replicate()
    }

    fn batches_processed(&self) -> u64 {
        self.members
            .iter()
            .map(|m| Self::lock(&m.server).batches_processed())
            .max()
            .unwrap_or(0)
    }

    fn ops_processed(&self) -> u64 {
        self.members
            .iter()
            .map(|m| Self::lock(&m.server).ops_processed())
            .max()
            .unwrap_or(0)
    }

    fn flush_persists(&mut self) -> Result<()> {
        Self::lock(&self.members[self.leader].server).flush_persists()
    }

    fn serve_read(&mut self, read_wire: Vec<u8>) -> Result<Vec<u8>> {
        let Some((hint, _)) = ReadHint::peel(&read_wire) else {
            return Err(LcmError::Tee(
                "read wire too short for a routing hint".into(),
            ));
        };
        let member = self.member(hint.replica)?;
        let server = Arc::clone(&member.server);
        let reply = Self::lock(&server).serve_read(read_wire);
        reply
    }

    fn read_port(&self) -> Option<Arc<dyn ReadPort>> {
        Some(Arc::new(GroupReadPort {
            members: self.members.iter().map(|m| Arc::clone(&m.server)).collect(),
        }))
    }
}

/// The group's concurrent read surface: locks only the member the read
/// leg is pinned to, so reads to distinct replicas proceed in parallel
/// with each other and with the write path on the leader.
struct GroupReadPort {
    members: Vec<Arc<Mutex<Box<dyn BatchServer>>>>,
}

impl ReadPort for GroupReadPort {
    fn serve_read(&self, read_wire: Vec<u8>) -> Result<Vec<u8>> {
        let Some((hint, _)) = ReadHint::peel(&read_wire) else {
            return Err(LcmError::Tee(
                "read wire too short for a routing hint".into(),
            ));
        };
        let member = self.members.get(hint.replica as usize).ok_or_else(|| {
            LcmError::Tee(format!(
                "replica {} out of range (group of {})",
                hint.replica,
                self.members.len()
            ))
        })?;
        let mut server = member.lock().unwrap_or_else(|e| e.into_inner());
        server.serve_read(read_wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admin::AdminHandle;
    use crate::client::LcmClient;
    use crate::functionality::AppendLog;
    use crate::server::LcmServer;
    use crate::types::ClientId;
    use lcm_storage::{MemoryStorage, NamespacedStorage};
    use lcm_tee::world::TeeWorld;

    fn group(replicas: u32, quorum: Quorum) -> (ReplicaGroup, LcmClient) {
        let world = TeeWorld::new_deterministic(77);
        let storage: Arc<dyn StableStorage> = Arc::new(MemoryStorage::new());
        let members = (0..replicas)
            .map(|r| {
                let platform = world.platform_deterministic(1 + u64::from(r));
                let region = Arc::new(NamespacedStorage::new(storage.clone(), format!("rep{r}.")));
                ReplicaMember {
                    server: Box::new(LcmServer::<AppendLog>::new(&platform, region.clone(), 4)),
                    storage: region,
                }
            })
            .collect();
        let mut group = ReplicaGroup::new(members, quorum);
        assert!(group.boot().unwrap());
        let mut admin =
            AdminHandle::new_deterministic(&world, vec![ClientId(1)], Quorum::Majority, 12);
        admin.bootstrap(&mut group).unwrap();
        (group, LcmClient::new(ClientId(1), admin.client_key()))
    }

    #[test]
    fn quorum_releases_immediately_when_enough_members_hold_the_blob() {
        let (mut group, mut client) = group(3, Quorum::Majority);
        group.submit(client.invoke(b"op").unwrap());
        let replies = group.step().unwrap();
        assert_eq!(
            replies.len(),
            1,
            "3/3 holders >= 2 releases in the same step"
        );
        client.handle_reply(&replies[0].1).unwrap();
        let stats = group.stats();
        assert_eq!(stats.quorum_stalls, 0);
        assert_eq!(stats.blobs_applied, 2, "both followers applied the blob");
        assert_eq!(stats.promotions, 0);
    }

    #[test]
    fn losing_f_members_does_not_stall_a_2f_plus_1_group() {
        let (mut group, mut client) = group(3, Quorum::Majority);
        group.kill_member(0, 2, false).unwrap();
        group.submit(client.invoke(b"op").unwrap());
        let replies = group.step().unwrap();
        assert_eq!(replies.len(), 1, "leader + one follower meet the majority");
        client.handle_reply(&replies[0].1).unwrap();
        assert_eq!(group.stats().quorum_stalls, 0);
    }

    #[test]
    fn replies_are_withheld_below_quorum_and_drain_after_a_reboot() {
        let (mut group, mut client) = group(3, Quorum::Majority);
        group.kill_member(0, 1, false).unwrap();
        group.kill_member(0, 2, false).unwrap();

        group.submit(client.invoke(b"op").unwrap());
        let replies = group.step().unwrap();
        assert!(
            replies.is_empty(),
            "1/3 holders < 2: the reply must be withheld"
        );
        assert!(group.stats().quorum_stalls >= 1);
        assert!(group.queued() > 0, "withheld replies still count as work");

        // One reboot restores the quorum; catch-up levels the member and
        // the stalled reply drains without re-executing anything.
        assert!(!group.reboot_member(0, 1).unwrap());
        let replies = group.process_all().unwrap();
        assert_eq!(replies.len(), 1);
        let done = client.handle_reply(&replies[0].1).unwrap();
        assert_eq!(done.seq.0, 1);
        assert!(
            group.stats().blobs_applied >= 1,
            "catch-up ships the sealed blob"
        );
        assert_eq!(group.queued(), 0);
    }

    #[test]
    fn failover_promotes_the_live_member_with_the_freshest_state() {
        let (mut group, mut client) = group(3, Quorum::Majority);
        group.submit(client.invoke(b"op").unwrap());
        let replies = group.step().unwrap();
        client.handle_reply(&replies[0].1).unwrap();

        // Simulate a follower that missed the last blob, then kill the
        // leader: promotion must pick the follower that holds it.
        group.members[2].applied_epoch = 0;
        group.kill_member(0, 0, false).unwrap();
        group.submit(client.invoke(b"after-failover").unwrap());
        let replies = group.process_all().unwrap();
        assert_eq!(
            group.leader(),
            1,
            "member 1 held the freshest applied epoch"
        );
        assert_eq!(group.stats().promotions, 1);
        let done = client.handle_reply(&replies[0].1).unwrap();
        assert_eq!(
            done.seq.0, 2,
            "the acknowledged write survived the failover"
        );
    }

    #[test]
    fn leader_death_drops_withheld_replies_and_the_retry_is_exact() {
        let (mut group, mut client) = group(3, Quorum::Majority);
        group.kill_member(0, 1, false).unwrap();
        group.kill_member(0, 2, false).unwrap();
        group.submit(client.invoke(b"never-acked").unwrap());
        assert!(group.step().unwrap().is_empty(), "below quorum: withheld");

        // The leader dies with the only copy; the withheld reply is
        // dropped (it was never acknowledged, so nothing is lost).
        group.kill_member(0, 0, false).unwrap();
        assert_eq!(group.stats().replies_dropped, 1);

        // Two reboots restore a quorum; the first live member is
        // promoted and the client's timeout-retry executes exactly once.
        group.reboot_member(0, 1).unwrap();
        group.reboot_member(0, 2).unwrap();
        group.submit(client.retry().unwrap());
        let replies = group.process_all().unwrap();
        assert_eq!(replies.len(), 1);
        let done = client.handle_reply(&replies[0].1).unwrap();
        assert_eq!(done.seq.0, 1, "retry after a dropped reply is exactly-once");
        assert!(!client.is_halted(), "failover must not look like a fork");
    }

    #[test]
    fn group_of_one_degenerates_to_a_solo_server() {
        let (mut group, mut client) = group(1, Quorum::Majority);
        assert_eq!(group.required_acks(), 1);
        group.submit(client.invoke(b"op").unwrap());
        let replies = group.step().unwrap();
        assert_eq!(replies.len(), 1, "f = 0: the leader alone is the quorum");
        client.handle_reply(&replies[0].1).unwrap();

        group.kill_member(0, 0, false).unwrap();
        assert!(
            !group.reboot_member(0, 0).unwrap(),
            "recovers from sealed state"
        );
        group.submit(client.invoke(b"after").unwrap());
        let replies = group.process_all().unwrap();
        let done = client.handle_reply(&replies[0].1).unwrap();
        assert_eq!(done.seq.0, 2);
    }

    #[test]
    fn read_port_rejects_out_of_range_and_truncated_hints() {
        let (group, _client) = group(3, Quorum::Majority);
        let port = group.read_port().unwrap();
        assert!(port.serve_read(vec![0u8; 3]).is_err(), "truncated hint");
        let mut wire = Vec::new();
        ReadHint {
            client: ClientId(1),
            route: 0,
            seq: 1,
            replica: 9,
            epoch: 0,
        }
        .encode_to(&mut wire);
        wire.extend_from_slice(b"ciphertext");
        assert!(port.serve_read(wire).is_err(), "replica 9 of a group of 3");
    }
}
