//! The trusted execution context `T` (paper Alg. 2 + §4.6 extensions).
//!
//! [`TrustedContext`] is the state machine that runs *inside* the
//! enclave. It never touches storage or the network itself: the
//! untrusted host feeds it bytes (loaded blobs, client messages) and
//! carries away bytes (sealed state, encrypted replies). Everything it
//! emits is encrypted and authenticated; everything it receives is
//! verified before use — the host is the adversary.
//!
//! Lifecycle:
//!
//! ```text
//!            init(no blobs)                    provision / import_migration
//! Created ───────────────────► AwaitingProvision ────────────────────► Ready
//!    │         init(blobs: unseal, restore)                              │
//!    └────────────────────────────────────────────────────────────────► Ready
//!                                                                        │
//!                     any failed assert (attack detected)                ▼
//!                                                                      Halted
//! ```

use lcm_crypto::aead::{self, AeadKey};
use lcm_crypto::keys::SecretKey;
use lcm_crypto::sha256::Digest;
use lcm_tee::attestation::Report;
use lcm_tee::platform::TeeServices;

use crate::codec::{Reader, WireCodec, Writer};
use crate::functionality::Functionality;
use crate::routing::{slice_of, SliceTable};
use crate::stability::{latest_entry, stable_with, CachedReply, Quorum, VEntry, VMap};
use crate::types::{ChainValue, ClientId, SeqNo};
use crate::wire::{InvokeMsg, ReplyMsg};
use crate::{LcmError, Result, Violation};

/// AAD label for the key blob (sealed under the TEE sealing key `kS`).
pub const LABEL_KEY_BLOB: &[u8] = b"lcm.keyblob";
/// AAD label for the state blob (sealed under the protocol key `kP`).
pub const LABEL_STATE_BLOB: &[u8] = b"lcm.state";
/// AAD label for per-batch sealed delta blobs (sealed under `kP`).
pub const LABEL_DELTA_BLOB: &[u8] = b"lcm.delta";
/// Domain separator for the anchor digest a checkpoint carries.
const ANCHOR_CKPT: &[u8] = b"lcm.ckpt-anchor";
/// Domain separator for the anchor chaining one delta to its
/// predecessor.
const ANCHOR_DELTA: &[u8] = b"lcm.delta-chain";
/// Emit a checkpoint instead of a delta once the sealed deltas since
/// the last checkpoint exceed `max(this, last checkpoint size)` bytes —
/// bounding both recovery replay work and the delta log's footprint to
/// a constant factor of the state size.
const DELTA_CHECKPOINT_MIN: usize = 4096;
/// AAD label for client→T messages. The plaintext routing envelope
/// (see [`crate::wire::RouteHint`]) is appended to this label by
/// [`invoke_aad`], so a host that rewrites the routing metadata breaks
/// authentication inside the enclave.
pub const LABEL_INVOKE: &[u8] = b"lcm.invoke";

/// The associated data under which `client` encrypts an INVOKE carrying
/// route hash `route`, client sequence `seq`, and routing epoch `epoch`
/// in its plaintext envelope. Binding `seq` means the host-visible
/// dedup key of the admission layer (see [`crate::admission`]) is
/// exactly the authenticated `tc`: a host that rewrites it breaks
/// authentication, and the enclave additionally cross-checks it against
/// the encrypted copy. Binding `epoch` means the host cannot re-stamp
/// an in-flight wire with a different routing epoch to dodge the
/// enclave's slice-table ownership check.
pub fn invoke_aad(client: ClientId, route: u32, seq: u64, epoch: u64) -> Vec<u8> {
    let mut aad = Vec::with_capacity(LABEL_INVOKE.len() + 24);
    aad.extend_from_slice(LABEL_INVOKE);
    aad.extend_from_slice(&client.0.to_be_bytes());
    aad.extend_from_slice(&route.to_be_bytes());
    aad.extend_from_slice(&seq.to_be_bytes());
    aad.extend_from_slice(&epoch.to_be_bytes());
    aad
}
/// AAD label for T→client messages. The destination client id is
/// appended to this label (see [`reply_aad`]): the paper's Alg. 1/2
/// match replies to invocations only through the echoed `hc`, which is
/// ambiguous while several clients still share the genesis value `h0`
/// — a malicious server could swap two genesis-time replies without
/// detection. Binding the recipient into the AAD closes that gap.
pub const LABEL_REPLY: &[u8] = b"lcm.reply";

/// The associated data under which a REPLY for `client` is encrypted.
///
/// `route` echoes the invoke envelope's route hash: with several
/// operations of one client in flight on different shards (all still
/// at the genesis chain value), the echoed `hc` alone cannot tell the
/// replies apart — binding the route closes that swap window exactly
/// as binding the client id closes the cross-client one. `epoch`
/// echoes the routing epoch of the *request* envelope (not the
/// enclave's current table): the client can only decrypt under the
/// epoch it stamped, so the echo proves which table version the
/// enclave judged the wire against.
pub fn reply_aad(client: ClientId, route: u32, epoch: u64) -> Vec<u8> {
    let mut aad = Vec::with_capacity(LABEL_REPLY.len() + 16);
    aad.extend_from_slice(LABEL_REPLY);
    aad.extend_from_slice(&client.0.to_be_bytes());
    aad.extend_from_slice(&route.to_be_bytes());
    aad.extend_from_slice(&epoch.to_be_bytes());
    aad
}
/// AAD label for client→replica verified-read legs. The plaintext
/// routing envelope ([`crate::wire::ReadHint`]) is appended by
/// [`read_aad`], *including the replica slot the client pinned the
/// read to*: the serving enclave computes the AAD with its **own**
/// replica coordinate, so a read leg the host redirects to a
/// different member of the group fails authentication inside the
/// enclave.
pub const LABEL_READ: &[u8] = b"lcm.read";

/// The associated data under which `client` encrypts a verified-read
/// leg pinned to `replica`, carrying route hash `route`, the client's
/// context sequence `seq` (= `tc`), and the routing epoch `epoch` in
/// its plaintext envelope.
pub fn read_aad(client: ClientId, route: u32, seq: u64, replica: u32, epoch: u64) -> Vec<u8> {
    let mut aad = Vec::with_capacity(LABEL_READ.len() + 28);
    aad.extend_from_slice(LABEL_READ);
    aad.extend_from_slice(&client.0.to_be_bytes());
    aad.extend_from_slice(&route.to_be_bytes());
    aad.extend_from_slice(&seq.to_be_bytes());
    aad.extend_from_slice(&replica.to_be_bytes());
    aad.extend_from_slice(&epoch.to_be_bytes());
    aad
}

/// AAD label for replica→client verified-read replies.
pub const LABEL_READ_REPLY: &[u8] = b"lcm.readreply";

/// The associated data under which a read reply for `client` is
/// encrypted. Binding `(route, seq, replica, epoch)` ties the reply to
/// the exact read leg it answers: a reply produced for an older read
/// of the same client (different `seq`), by a different group member
/// (different `replica`), or under a different routing epoch cannot be
/// substituted.
pub fn read_reply_aad(client: ClientId, route: u32, seq: u64, replica: u32, epoch: u64) -> Vec<u8> {
    let mut aad = Vec::with_capacity(LABEL_READ_REPLY.len() + 28);
    aad.extend_from_slice(LABEL_READ_REPLY);
    aad.extend_from_slice(&client.0.to_be_bytes());
    aad.extend_from_slice(&route.to_be_bytes());
    aad.extend_from_slice(&seq.to_be_bytes());
    aad.extend_from_slice(&replica.to_be_bytes());
    aad.extend_from_slice(&epoch.to_be_bytes());
    aad
}

/// AAD label for admin⇄T messages.
pub const LABEL_ADMIN: &[u8] = b"lcm.admin";
/// AAD label for the provisioning payload (admin's attested channel).
pub const LABEL_PROVISION: &[u8] = b"lcm.provision";
/// AAD label for migration tickets (enclave-to-enclave channel).
pub const LABEL_MIGRATION: &[u8] = b"lcm.migration";
/// AAD label for slice-migration tickets: the sealed package an
/// exporting enclave hands the adopting enclave when one routing slice
/// moves between two *running* shards (enclave-to-enclave channel).
pub const LABEL_SLICE_TICKET: &[u8] = b"lcm.slice-ticket";
/// AAD label for slice-table bulletins: the sealed announcement of a
/// bumped slice table that every bystander shard adopts so the whole
/// deployment judges wires against the same routing epoch.
pub const LABEL_SLICE_BULLETIN: &[u8] = b"lcm.slice-bulletin";

/// The keys held by a provisioned context (paper §4.1).
#[derive(Clone)]
struct Keys {
    /// Protocol-state encryption key `kP` (raw form kept for migration).
    k_p: SecretKey,
    /// Communication key `kC` (raw form kept because it is part of the
    /// sealed state and rotates on membership changes).
    k_c: SecretKey,
    /// Admin authentication key (an addition over the paper, which
    /// leaves admin-message security implicit).
    k_a: SecretKey,
    aead_p: AeadKey,
    aead_c: AeadKey,
    aead_a: AeadKey,
}

impl Keys {
    fn from_raw(k_p: SecretKey, k_c: SecretKey, k_a: SecretKey) -> Keys {
        Keys {
            aead_p: AeadKey::from_secret(&k_p),
            aead_c: AeadKey::from_secret(&k_c),
            aead_a: AeadKey::from_secret(&k_a),
            k_p,
            k_c,
            k_a,
        }
    }

    fn rotate_kc(&mut self, new_kc: SecretKey) {
        self.aead_c = AeadKey::from_secret(&new_kc);
        self.k_c = new_kc;
    }
}

/// Lifecycle phase of the context.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Booted, `init` not yet called.
    Created,
    /// No persisted keys exist; awaiting admin bootstrap (§4.3) or a
    /// migration import (§4.6.2).
    AwaitingProvision,
    /// Serving operations.
    Ready,
    /// Migrated away: state exported, refusing all operations.
    Migrated,
    /// A violation was detected; permanently refusing service.
    Halted,
}

/// Outcome of [`TrustedContext::init`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitOutcome {
    /// No previous state; the admin must provision keys.
    NeedProvision,
    /// State recovered from sealed blobs; ready for requests.
    Resumed,
}

/// Administrative operations (§4.6.3), authenticated under the admin
/// key with a strictly-increasing admin sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminOp {
    /// Adds a new client to the group.
    AddClient(ClientId),
    /// Removes a client and rotates the communication key so the
    /// removed client is locked out.
    RemoveClient(ClientId, SecretKey),
    /// Rotates the communication key without membership change.
    RotateKey(SecretKey),
    /// Queries `(t, q, n)` without modifying state.
    Status,
}

const ADMIN_ADD: u8 = 1;
const ADMIN_REMOVE: u8 = 2;
const ADMIN_ROTATE: u8 = 3;
const ADMIN_STATUS: u8 = 4;

impl AdminOp {
    pub(crate) fn encode(&self, w: &mut Writer) {
        match self {
            AdminOp::AddClient(id) => {
                w.put_u8(ADMIN_ADD);
                id.encode(w);
            }
            AdminOp::RemoveClient(id, key) => {
                w.put_u8(ADMIN_REMOVE);
                id.encode(w);
                w.put_raw(key.as_bytes());
            }
            AdminOp::RotateKey(key) => {
                w.put_u8(ADMIN_ROTATE);
                w.put_raw(key.as_bytes());
            }
            AdminOp::Status => w.put_u8(ADMIN_STATUS),
        }
    }

    pub(crate) fn decode(
        r: &mut Reader<'_>,
    ) -> std::result::Result<Self, crate::codec::CodecError> {
        match r.get_u8()? {
            ADMIN_ADD => Ok(AdminOp::AddClient(ClientId::decode(r)?)),
            ADMIN_REMOVE => {
                let id = ClientId::decode(r)?;
                Ok(AdminOp::RemoveClient(id, read_key(r)?))
            }
            ADMIN_ROTATE => Ok(AdminOp::RotateKey(read_key(r)?)),
            ADMIN_STATUS => Ok(AdminOp::Status),
            other => Err(crate::codec::CodecError::InvalidTag(other)),
        }
    }
}

/// Reply to an [`AdminOp`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdminReply {
    /// The operation was applied.
    Ok,
    /// Status response: last sequence number, stable watermark, group
    /// size.
    Status {
        /// Last executed operation.
        t: SeqNo,
        /// Majority-stable watermark.
        q: SeqNo,
        /// Current group size.
        n: u32,
    },
    /// The operation was rejected (e.g. adding an existing client).
    Rejected(String),
}

impl AdminReply {
    pub(crate) fn encode(&self, w: &mut Writer) {
        match self {
            AdminReply::Ok => w.put_u8(1),
            AdminReply::Status { t, q, n } => {
                w.put_u8(2);
                t.encode(w);
                q.encode(w);
                w.put_u32(*n);
            }
            AdminReply::Rejected(msg) => {
                w.put_u8(3);
                w.put_str(msg);
            }
        }
    }

    pub(crate) fn decode(
        r: &mut Reader<'_>,
    ) -> std::result::Result<Self, crate::codec::CodecError> {
        match r.get_u8()? {
            1 => Ok(AdminReply::Ok),
            2 => Ok(AdminReply::Status {
                t: SeqNo::decode(r)?,
                q: SeqNo::decode(r)?,
                n: r.get_u32()?,
            }),
            3 => Ok(AdminReply::Rejected(r.get_str()?.to_owned())),
            other => Err(crate::codec::CodecError::InvalidTag(other)),
        }
    }
}

fn read_key(r: &mut Reader<'_>) -> std::result::Result<SecretKey, crate::codec::CodecError> {
    let d = r.get_digest()?; // 32 raw bytes
    Ok(SecretKey::from_bytes(d.0))
}

/// Prefixes a sealed blob with its storage-facing kind byte — the one
/// plaintext byte the delta-log engine routes on. It carries no secret
/// and tampering with it only changes which parser rejects the blob.
fn tag_blob(kind: u8, sealed: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + sealed.len());
    out.push(kind);
    out.extend_from_slice(&sealed);
    out
}

/// The attested identity of one enclave within a deployment:
/// *"I am replica `replica` of shard `index`'s group of `replicas`,
/// in a deployment of `count` shards"*.
///
/// Delivered to each enclave inside its (per-member) provisioning
/// payload, persisted with the sealed protocol state, carried by
/// migration tickets, and folded into every attestation quote's user
/// data (see [`attest_user_data`]). Holding its identity lets the
/// enclave reject an *intact* INVOKE wire delivered to the wrong
/// shard — closing the misdelivery window that client-context checks
/// alone leave open for a client's very first operation on a shard —
/// and lets a read leg pinned to one replica fail authentication on
/// every other member of the group.
///
/// An unreplicated deployment has `replicas == 1` everywhere; the
/// replica coordinates then carry no information and the identity
/// degenerates to the `(index, count)` pair of protocol version 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardIdentity {
    /// This enclave's shard index, `< count`.
    pub index: u32,
    /// Total number of shards in the deployment.
    pub count: u32,
    /// This enclave's replica slot within its shard's group,
    /// `< replicas`.
    pub replica: u32,
    /// Size of the shard's replica group (2f+1; 1 = unreplicated).
    pub replicas: u32,
}

impl ShardIdentity {
    /// The identity of the only enclave of an unsharded deployment.
    pub const SOLO: ShardIdentity = ShardIdentity {
        index: 0,
        count: 1,
        replica: 0,
        replicas: 1,
    };

    /// Builds the identity of shard `index` in a deployment of `count`
    /// (unreplicated: replica 0 of a group of 1).
    ///
    /// # Panics
    ///
    /// Panics when `count` is zero or `index` is out of range — a
    /// deployment-assembly bug, not an attack surface (identities are
    /// only ever minted by the trusted admin).
    pub fn new(index: u32, count: u32) -> Self {
        assert!(count >= 1, "a deployment has at least one shard");
        assert!(index < count, "shard index {index} out of range 0..{count}");
        ShardIdentity {
            index,
            count,
            replica: 0,
            replicas: 1,
        }
    }

    /// Refines this identity with replica coordinates: the same shard
    /// slot, occupied by member `replica` of a group of `replicas`.
    ///
    /// # Panics
    ///
    /// Panics when `replicas` is zero or `replica` is out of range.
    #[must_use]
    pub fn with_replica(self, replica: u32, replicas: u32) -> Self {
        assert!(replicas >= 1, "a group has at least one replica");
        assert!(
            replica < replicas,
            "replica {replica} out of range 0..{replicas}"
        );
        ShardIdentity {
            replica,
            replicas,
            ..self
        }
    }

    /// Whether route hash `route` maps to this shard (any replica of
    /// the group owns the same routes).
    pub fn owns_route(&self, route: u32) -> bool {
        crate::shard::shard_index(route, self.count) == self.index
    }

    /// Whether `other` names a member of the same replica group: same
    /// shard slot and the same group size, any replica.
    pub fn same_group(&self, other: &ShardIdentity) -> bool {
        self.index == other.index && self.count == other.count && self.replicas == other.replicas
    }

    pub(crate) fn encode(&self, w: &mut Writer) {
        w.put_u32(self.index);
        w.put_u32(self.count);
        w.put_u32(self.replica);
        w.put_u32(self.replicas);
    }

    pub(crate) fn decode(
        r: &mut Reader<'_>,
    ) -> std::result::Result<Self, crate::codec::CodecError> {
        let index = r.get_u32()?;
        let count = r.get_u32()?;
        let replica = r.get_u32()?;
        let replicas = r.get_u32()?;
        if count == 0 || index >= count || replicas == 0 || replica >= replicas {
            return Err(crate::codec::CodecError::InvalidTag(0));
        }
        Ok(ShardIdentity {
            index,
            count,
            replica,
            replicas,
        })
    }
}

impl std::fmt::Display for ShardIdentity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)?;
        if self.replicas > 1 {
            write!(f, ":r{}/{}", self.replica, self.replicas)?;
        }
        Ok(())
    }
}

/// The report user data an enclave actually attests for a verifier
/// challenge: a domain-separated digest binding the challenge to the
/// enclave's shard identity (or to its *absence* before provisioning).
///
/// The verifier recomputes this with the identity it expects, so a
/// quote produced by an enclave holding a different identity — or by
/// an unprovisioned one — fails verification. This is what makes a
/// deployment manifest of N×(2f+1) quotes mean *"the member claiming
/// (shard i, replica r) holds exactly those coordinates"* rather than
/// *"enough genuine enclaves exist"*.
pub fn attest_user_data(challenge: &Digest, identity: Option<ShardIdentity>) -> Digest {
    let mut buf = Vec::with_capacity(16 + 32 + 17);
    buf.extend_from_slice(b"lcm.attest-id");
    buf.extend_from_slice(challenge.as_bytes());
    match identity {
        None => buf.push(0),
        Some(id) => {
            buf.push(1);
            buf.extend_from_slice(&id.index.to_be_bytes());
            buf.extend_from_slice(&id.count.to_be_bytes());
            buf.extend_from_slice(&id.replica.to_be_bytes());
            buf.extend_from_slice(&id.replicas.to_be_bytes());
        }
    }
    lcm_crypto::sha256::digest(&buf)
}

/// The provisioning payload the admin sends over its attested channel
/// (paper §4.3: *"the admin generates two secret keys, kC ... and kP
/// ..., and injects them into T through a secure channel provided by
/// the TEE"*).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvisionPayload {
    /// Protocol-state key `kP`.
    pub k_p: SecretKey,
    /// Communication key `kC`.
    pub k_c: SecretKey,
    /// Admin authentication key.
    pub k_a: SecretKey,
    /// The initial client group.
    pub clients: Vec<ClientId>,
    /// Stability quorum policy.
    pub quorum: Quorum,
    /// The shard identity this enclave is provisioned as. Every shard
    /// of a deployment receives its *own* payload differing exactly
    /// here; an unsharded deployment provisions
    /// [`ShardIdentity::SOLO`].
    pub identity: ShardIdentity,
}

impl WireCodec for ProvisionPayload {
    fn encode(&self, w: &mut Writer) {
        w.put_raw(self.k_p.as_bytes());
        w.put_raw(self.k_c.as_bytes());
        w.put_raw(self.k_a.as_bytes());
        self.quorum.encode(w);
        self.identity.encode(w);
        w.put_u32(self.clients.len() as u32);
        for c in &self.clients {
            c.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> std::result::Result<Self, crate::codec::CodecError> {
        let k_p = read_key(r)?;
        let k_c = read_key(r)?;
        let k_a = read_key(r)?;
        let quorum = Quorum::decode(r)?;
        let identity = ShardIdentity::decode(r)?;
        let n = r.get_u32()? as usize;
        let mut clients = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            clients.push(ClientId::decode(r)?);
        }
        Ok(ProvisionPayload {
            k_p,
            k_c,
            k_a,
            clients,
            quorum,
            identity,
        })
    }
}

/// Blobs the host must persist after provisioning or a state change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistBlobs {
    /// Sealed `(kP, kA)` under the TEE sealing key — slot `lcm.keyblob`.
    pub key_blob: Vec<u8>,
    /// Sealed protocol + service state under `kP` — slot `lcm.state`.
    pub state_blob: Vec<u8>,
}

/// The sealed artifacts of [`TrustedContext::export_slice`]: one live
/// slice migration produces a ticket for the adopting shard, a
/// bulletin for every bystander shard, and the exporter's own blobs to
/// persist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceExport {
    /// Sealed slice-migration ticket; only the destination shard's
    /// [`TrustedContext::import_slice`] accepts it.
    pub ticket: Vec<u8>,
    /// Sealed table bulletin for [`TrustedContext::adopt_table`] on
    /// the shards not party to the move.
    pub bulletin: Vec<u8>,
    /// The exporting shard's re-sealed state (always a full
    /// checkpoint).
    pub blobs: PersistBlobs,
}

/// The trusted execution context `T`.
///
/// Generic over the application [`Functionality`] `F`. See the module
/// docs for the lifecycle; the host-facing byte ABI lives in
/// [`crate::program`].
pub struct TrustedContext<F: Functionality> {
    services: TeeServices,
    phase: Phase,
    keys: Option<Keys>,
    f: F,
    v: VMap,
    t: SeqNo,
    h: ChainValue,
    /// Monotone floor on the reported stable watermark. The raw
    /// `majority-stable(V)` formula is *not* monotone: when a client
    /// acknowledges a newer operation its previous `ta` leaves the
    /// candidate set, and removing a group member can drop executed
    /// sequence numbers from `V` — in both cases the computed `q` can
    /// decrease even though stability, being a statement about past
    /// observation events, cannot be undone. The paper asserts "the
    /// stable sequence numbers never decrease" (§3.2.2), so `T`
    /// enforces it by reporting `max(computed, floor)` and persisting
    /// the floor with the rest of the protocol state.
    stable_floor: SeqNo,
    admin_seq: u64,
    quorum: Quorum,
    /// The attested shard identity, installed at provisioning (or
    /// recovered from the sealed state / a migration ticket). `None`
    /// exactly while unprovisioned; `Ready` implies `Some`.
    identity: Option<ShardIdentity>,
    /// The epoch-versioned routing slice table this enclave judges
    /// wire ownership against. Installed as the genesis uniform table
    /// at provisioning, advanced by slice migrations
    /// ([`TrustedContext::export_slice`] / `import_slice` /
    /// `adopt_table`), and sealed with the rest of the protocol state —
    /// so a rolled-back enclave also rolls back its table, and wires
    /// stamped with a newer epoch expose it.
    table: SliceTable,
    nonce_counter: u64,
    /// Whether the host's storage understands sealed deltas
    /// ([`lcm_storage::DeltaLogStorage`]): announced by the host at
    /// `init` and trusted only for *performance* — a host that lies
    /// either way still gets correctly sealed, chained blobs.
    delta_mode: bool,
    /// Anchor digest of the newest persisted blob (checkpoint or
    /// delta). Each delta seals the anchor of its predecessor, so a
    /// replayed bundle re-verifies as an unbroken chain rooted in its
    /// checkpoint; a spliced or reordered record breaks it.
    persist_anchor: Digest,
    /// Clients whose `V` entry changed since the last persisted blob —
    /// exactly the entries the next delta must carry.
    touched: std::collections::BTreeSet<ClientId>,
    /// Sealed delta bytes emitted since the last checkpoint (drives the
    /// adaptive checkpoint cadence).
    delta_bytes: usize,
    /// Plaintext size of the last checkpoint (the cadence baseline).
    last_ckpt_len: usize,
    /// Reusable encode buffer for the per-batch hot path (sealed state,
    /// encrypted replies) — retains its allocation across batches so
    /// steady-state serving stops churning fresh `Vec`s.
    scratch: Writer,
}

impl<F: Functionality> std::fmt::Debug for TrustedContext<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrustedContext")
            .field("phase", &self.phase)
            .field("t", &self.t)
            .field("clients", &self.v.len())
            .finish()
    }
}

impl<F: Functionality> TrustedContext<F> {
    /// Creates the context in the `Created` phase (enclave just booted).
    pub fn new(services: TeeServices) -> Self {
        TrustedContext {
            services,
            phase: Phase::Created,
            keys: None,
            f: F::default(),
            v: VMap::new(),
            t: SeqNo::ZERO,
            h: ChainValue::GENESIS,
            stable_floor: SeqNo::ZERO,
            admin_seq: 0,
            quorum: Quorum::Majority,
            identity: None,
            table: SliceTable::uniform(1),
            nonce_counter: 0,
            delta_mode: false,
            persist_anchor: Digest::ZERO,
            touched: std::collections::BTreeSet::new(),
            delta_bytes: 0,
            last_ckpt_len: 0,
            scratch: Writer::new(),
        }
    }

    /// Current lifecycle phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The shard identity this enclave was provisioned as (`None`
    /// while unprovisioned).
    pub fn identity(&self) -> Option<ShardIdentity> {
        self.identity
    }

    /// Read access to the functionality (for in-enclave introspection
    /// such as heap accounting; the host has no such access).
    pub fn functionality(&self) -> &F {
        &self.f
    }

    /// The routing slice table this enclave currently judges wire
    /// ownership against (genesis uniform table until a slice
    /// migration advances it).
    pub fn slice_table(&self) -> &SliceTable {
        &self.table
    }

    /// The `init` function of Alg. 2: attempt recovery from the blobs
    /// the host loaded from stable storage.
    ///
    /// `want_deltas` is the host's announcement that its storage
    /// understands sealed delta blobs ([`lcm_storage::DeltaLogStorage`])
    /// — when set, per-batch persists emit chained deltas instead of
    /// whole-state checkpoints. The flag is untrusted and affects only
    /// performance: every emitted blob is sealed and chained either
    /// way, and a lying host merely gets blobs its storage handles
    /// suboptimally.
    ///
    /// The state blob may be a single sealed checkpoint or a
    /// delta-log recovery *bundle* (`checkpoint ‖ deltas`); a bundle is
    /// re-verified delta by delta against the anchor chain sealed into
    /// the blobs, so a spliced, reordered, or cross-generation replay
    /// halts exactly like any other tampering.
    ///
    /// # Errors
    ///
    /// * [`LcmError::Violation`] — a blob failed to unseal, the state
    ///   blob is missing while the key blob exists, or a bundle's
    ///   anchor chain is broken. All mean the host tampered with
    ///   storage; the context halts.
    pub fn init(
        &mut self,
        key_blob: Option<&[u8]>,
        state_blob: Option<&[u8]>,
        want_deltas: bool,
    ) -> Result<InitOutcome> {
        if self.phase != Phase::Created {
            return Err(LcmError::AlreadyProvisioned);
        }
        self.delta_mode = want_deltas;
        let Some(key_blob) = key_blob else {
            self.phase = Phase::AwaitingProvision;
            return Ok(InitOutcome::NeedProvision);
        };

        // Strip the storage-facing kind byte; key blobs are opaque to
        // the delta-log engine.
        let sealed_keys = match key_blob.split_first() {
            Some((&lcm_storage::BLOB_KIND_OPAQUE, rest)) => rest,
            _ => return Err(self.halt(Violation::BadAuthentication)),
        };
        let seal_key = AeadKey::from_secret(&self.services.sealing_key());
        let key_plain = match aead::auth_decrypt(&seal_key, sealed_keys, LABEL_KEY_BLOB) {
            Ok(p) => p,
            Err(_) => return Err(self.halt(Violation::BadAuthentication)),
        };
        let mut r = Reader::new(&key_plain);
        let k_p = read_key(&mut r).map_err(LcmError::from)?;
        let k_a = read_key(&mut r).map_err(LcmError::from)?;
        r.finish().map_err(LcmError::from)?;

        let Some(state_blob) = state_blob else {
            // Keys persisted but state withheld: storage tampering.
            return Err(self.halt(Violation::BadAuthentication));
        };
        // kC is recovered from the state blob below; install a
        // placeholder until then.
        self.keys = Some(Keys::from_raw(k_p, SecretKey::from_bytes([0u8; 32]), k_a));
        self.restore_sealed_state(state_blob)?;
        self.phase = Phase::Ready;
        Ok(InitOutcome::Resumed)
    }

    /// Restores from a kind-tagged sealed state blob: a checkpoint or
    /// a delta-log bundle. Requires `self.keys` (at least `kP`).
    fn restore_sealed_state(&mut self, state_blob: &[u8]) -> Result<()> {
        let aead_p = self
            .keys
            .as_ref()
            .expect("caller installs keys first")
            .aead_p
            .clone();
        match state_blob.split_first() {
            Some((&lcm_storage::BLOB_KIND_CHECKPOINT, sealed)) => {
                let plain = match aead::auth_decrypt(&aead_p, sealed, LABEL_STATE_BLOB) {
                    Ok(p) => p,
                    Err(_) => return Err(self.halt(Violation::BadAuthentication)),
                };
                self.restore_state(&plain)
            }
            Some((&lcm_storage::BLOB_KIND_BUNDLE, _)) => {
                let Some((ckpt, deltas)) = lcm_storage::parse_bundle(state_blob) else {
                    return Err(self.halt(Violation::BadAuthentication));
                };
                let sealed = match ckpt.split_first() {
                    Some((&lcm_storage::BLOB_KIND_CHECKPOINT, s)) => s,
                    _ => return Err(self.halt(Violation::BadAuthentication)),
                };
                let plain = match aead::auth_decrypt(&aead_p, sealed, LABEL_STATE_BLOB) {
                    Ok(p) => p,
                    Err(_) => return Err(self.halt(Violation::BadAuthentication)),
                };
                self.restore_state(&plain)?;
                for delta in deltas {
                    let sealed = match delta.split_first() {
                        Some((&lcm_storage::BLOB_KIND_DELTA, s)) => s,
                        _ => return Err(self.halt(Violation::BadAuthentication)),
                    };
                    let plain = match aead::auth_decrypt(&aead_p, sealed, LABEL_DELTA_BLOB) {
                        Ok(p) => p,
                        Err(_) => return Err(self.halt(Violation::BadAuthentication)),
                    };
                    self.apply_delta_plain(&plain)?;
                }
                Ok(())
            }
            _ => Err(self.halt(Violation::BadAuthentication)),
        }
    }

    /// Replays one decrypted delta onto the current state, verifying it
    /// chains from the anchor of the previously restored blob.
    fn apply_delta_plain(&mut self, plain: &[u8]) -> Result<()> {
        let mut r = Reader::new(plain);
        let decoded = (|| -> std::result::Result<_, crate::codec::CodecError> {
            let prev = r.get_digest()?;
            let floor = SeqNo::decode(&mut r)?;
            let dv = crate::stability::decode_vmap(&mut r)?;
            let f_delta = r.get_bytes()?.to_vec();
            r.finish()?;
            Ok((prev, floor, dv, f_delta))
        })();
        let Ok((prev, floor, dv, f_delta)) = decoded else {
            return Err(self.halt(Violation::BadAuthentication));
        };
        if prev != self.persist_anchor {
            // The delta was sealed against a different predecessor:
            // the host spliced records across generations or reordered
            // the journal.
            return Err(self.halt(Violation::BadAuthentication));
        }
        self.stable_floor = floor;
        for (client, entry) in dv {
            self.v.insert(client, entry);
        }
        self.f.apply_delta(&f_delta).map_err(LcmError::from)?;
        match latest_entry(&self.v) {
            Some(e) => {
                self.t = e.t;
                self.h = e.h;
            }
            None => {
                self.t = SeqNo::ZERO;
                self.h = ChainValue::GENESIS;
            }
        }
        self.persist_anchor = lcm_crypto::sha256::digest_parts(&[ANCHOR_DELTA, plain]);
        Ok(())
    }

    /// Installs keys and the initial group from the admin's attested
    /// provisioning channel (§4.3 bootstrapping, phase 3).
    ///
    /// Returns the blobs the host must persist.
    ///
    /// # Errors
    ///
    /// * [`LcmError::AlreadyProvisioned`] — called twice or after
    ///   recovery.
    /// * [`LcmError::Violation`] — the payload failed authentication.
    /// * [`LcmError::Tee`] — the platform provides no provisioning
    ///   channel (not manufactured by a [`lcm_tee::world::TeeWorld`]).
    pub fn provision(&mut self, sealed_payload: &[u8]) -> Result<PersistBlobs> {
        if self.phase != Phase::AwaitingProvision {
            return Err(LcmError::AlreadyProvisioned);
        }
        let channel_key = self
            .services
            .provision_key()
            .ok_or_else(|| LcmError::Tee("platform has no provisioning channel".into()))?;
        let channel = AeadKey::from_secret(&channel_key);
        let plain = match aead::auth_decrypt(&channel, sealed_payload, LABEL_PROVISION) {
            Ok(p) => p,
            Err(_) => return Err(self.halt(Violation::BadAuthentication)),
        };
        let payload = ProvisionPayload::from_bytes(&plain).map_err(LcmError::from)?;
        self.install(payload)
    }

    fn install(&mut self, payload: ProvisionPayload) -> Result<PersistBlobs> {
        self.keys = Some(Keys::from_raw(payload.k_p, payload.k_c, payload.k_a));
        self.quorum = payload.quorum;
        self.identity = Some(payload.identity);
        // Genesis routing table: epoch 0, slices spread uniformly
        // across the deployment's shards. Every shard derives the same
        // table from its attested `count`, so no extra provisioning
        // field is needed and a lying host cannot influence it.
        self.table = SliceTable::uniform(payload.identity.count);
        self.v = payload
            .clients
            .iter()
            .map(|&c| (c, VEntry::default()))
            .collect();
        self.t = SeqNo::ZERO;
        self.h = ChainValue::GENESIS;
        self.admin_seq = 0;
        self.phase = Phase::Ready;
        self.persist_blobs()
    }

    /// Produces an attestation report over the verifier's challenge
    /// (the host forwards it to the quoting enclave).
    ///
    /// The report's user data is not the raw challenge but
    /// [`attest_user_data`]`(challenge, identity)`: the quote proves
    /// not only *"a genuine LCM enclave answered this challenge"* but
    /// *which shard identity* that enclave holds (or that it holds
    /// none yet). The verifier recomputes the binding with the
    /// identity it expects.
    pub fn attest(&self, challenge: Digest) -> Report {
        self.services
            .report(attest_user_data(&challenge, self.identity))
    }

    /// Handles one encrypted INVOKE message: the body of Alg. 2.
    ///
    /// Returns the invoking client (so the host can route the reply —
    /// the host learns only the routing, never the content) and the
    /// encrypted REPLY.
    ///
    /// The caller is responsible for persisting
    /// [`TrustedContext::persist_blobs`] afterwards; batching several
    /// invokes before one persist is the paper's §5.2 optimization.
    ///
    /// # Errors
    ///
    /// * [`LcmError::Violation`] — authentication failure, context
    ///   mismatch (rollback/fork/replay evidence), or unknown client.
    ///   The context halts permanently.
    /// * [`LcmError::NotProvisioned`] / [`LcmError::Halted`] — wrong
    ///   phase.
    pub fn handle_invoke(&mut self, wire: &[u8]) -> Result<(ClientId, Vec<u8>)> {
        self.require_ready()?;
        // Peel the plaintext routing envelope; its fields are bound
        // into the AAD, so any tampering (or a truncated wire) fails
        // authentication below.
        let Some((hint, ciphertext)) = crate::wire::RouteHint::peel(wire) else {
            return Err(self.halt(Violation::BadAuthentication));
        };
        let aead_c = self
            .keys
            .as_ref()
            .expect("ready implies keys")
            .aead_c
            .clone();
        let aad = invoke_aad(hint.client, hint.route, hint.seq, hint.epoch);
        let plain = match aead::auth_decrypt(&aead_c, ciphertext, &aad) {
            Ok(p) => p,
            Err(_) => return Err(self.halt(Violation::BadAuthentication)),
        };
        let msg = match InvokeMsg::from_bytes(&plain) {
            Ok(m) => m,
            Err(_) => return Err(self.halt(Violation::BadAuthentication)),
        };
        // The envelope's client id is authenticated (it is in the AAD),
        // so a mismatch with the encrypted copy means the *sender*
        // lied — halt rather than mis-route the reply.
        if msg.client != hint.client {
            return Err(self.halt(Violation::BadAuthentication));
        }
        // Likewise the envelope's sequence number: the host's admission
        // layer dedups retries on it, so a sender whose plaintext `seq`
        // disagrees with the encrypted `tc` is lying to the host about
        // which operation this is — halt rather than let the dedup key
        // diverge from the authenticated protocol state.
        if msg.tc.0 != hint.seq {
            return Err(self.halt(Violation::BadAuthentication));
        }

        // Attested shard identity (Ready implies an identity): this
        // enclave executes an operation only if it *owns* it under its
        // slice table. Two routes are judged — the authenticated
        // envelope route the host delivered by, and the route
        // recomputed from the decrypted operation's own partition key
        // (a mismatch between them means the sender's envelope lies
        // about its operation; both are epoch-independent, so an
        // honest sender always has them equal). The envelope's routing
        // epoch disambiguates the not-owned cases:
        //
        // * `hint.epoch > table.epoch` — the client proves knowledge
        //   of a routing epoch this enclave has never reached. Since
        //   epochs only advance through sealed slice migrations, this
        //   is the signature of an enclave rolled back past a
        //   migration (or a table the host withheld): halt. This is
        //   the rollback-detection hook of the versioned router.
        // * owned under the current table — execute normally. A stale
        //   `hint.epoch` is harmless here: the slice never moved away,
        //   so the old and new tables agree about this wire.
        // * not owned, `hint.epoch < table.epoch` — an in-flight wire
        //   routed under an older table whose slice has since migrated
        //   away. Honest and inevitable during rebalancing: answer
        //   with a context-stamped *redirect* carrying the current
        //   table instead of executing (see `execute_fresh`).
        // * not owned, same epoch — the host redirected an intact wire
        //   to the wrong shard, or the sender's envelope lies: halt.
        let identity = self.identity.expect("ready implies identity");
        let recomputed = crate::shard::route_for(msg.client, F::shard_key(&msg.op));
        let table_epoch = self.table.epoch();
        if hint.epoch > table_epoch {
            return Err(self.halt(Violation::WrongShard {
                client: msg.client,
                delivered_to: identity.index,
                owner: self.table.shard_of(hint.route),
                wire_epoch: hint.epoch,
                shard_epoch: table_epoch,
            }));
        }
        let owned = self.table.owns(identity.index, hint.route)
            && self.table.owns(identity.index, recomputed);
        let redirect = if owned {
            false
        } else if hint.epoch < table_epoch {
            true
        } else {
            let bad = if self.table.owns(identity.index, hint.route) {
                recomputed
            } else {
                hint.route
            };
            return Err(self.halt(Violation::WrongShard {
                client: msg.client,
                delivered_to: identity.index,
                owner: self.table.shard_of(bad),
                wire_epoch: hint.epoch,
                shard_epoch: table_epoch,
            }));
        };

        let Some(entry) = self.v.get(&msg.client) else {
            let client = msg.client;
            self.phase = Phase::Halted;
            return Err(LcmError::UnknownClient(client));
        };

        // Alg. 2: assert V[i] = (∗, tc, hc).
        if entry.t == msg.tc && entry.h == msg.hc {
            self.execute_fresh(msg, hint.route, hint.epoch, redirect)
        } else if msg.retry {
            // §4.6.1 second case: T crashed after storing but before the
            // client got the reply — resend the cached result. The
            // cached reply replays verbatim, including its redirect
            // flag: whether the original attempt executed or redirected
            // is part of the acknowledged history.
            let cached_matches =
                entry.ta == msg.tc && entry.cached.as_ref().is_some_and(|c| c.hc_echo == msg.hc);
            if cached_matches {
                let cached = entry.cached.clone().expect("checked above");
                let reply = ReplyMsg {
                    t: cached.t,
                    q: cached.q,
                    h: cached.h,
                    hc_echo: cached.hc_echo,
                    redirect: cached.redirect,
                    result: cached.result,
                };
                let wire = self.encrypt_reply(msg.client, hint.route, hint.epoch, &reply)?;
                Ok((msg.client, wire))
            } else {
                Err(self.halt(Violation::ContextMismatch {
                    client: msg.client,
                    claimed: msg.tc,
                    recorded: entry.t,
                }))
            }
        } else {
            Err(self.halt(Violation::ContextMismatch {
                client: msg.client,
                claimed: msg.tc,
                recorded: entry.t,
            }))
        }
    }

    /// Executes one context-fresh operation — or, when `redirect` is
    /// set, stamps a *redirect* instead: the context advances exactly
    /// as for an executed operation (`t`, `h`, `V[i]`, the cached
    /// reply), but the functionality is not invoked and the result
    /// carries the current slice table for the client to adopt. The
    /// stamp is what makes redirects exactly-once-compatible: a lost
    /// redirect reply is recovered through the ordinary cached-retry
    /// path, and the client re-invokes the operation on the new owner
    /// as a fresh invocation under that shard's own context.
    fn execute_fresh(
        &mut self,
        msg: InvokeMsg,
        route: u32,
        epoch: u64,
        redirect: bool,
    ) -> Result<(ClientId, Vec<u8>)> {
        // t ← t + 1 ; (r, s) ← execF(s, o) ; h ← hash(h ‖ o ‖ t ‖ i)
        self.t = self.t.next();
        let result = if redirect {
            self.table.to_bytes()
        } else {
            self.f.exec(&msg.op)
        };
        self.h = self.h.extend(&msg.op, self.t, msg.client);

        // V[i] ← (tc, t, h) ; q ← majority-stable(V)
        let q_entry = VEntry {
            ta: msg.tc,
            t: self.t,
            h: self.h,
            cached: None, // filled below once q is known
        };
        self.v.insert(msg.client, q_entry);
        self.touched.insert(msg.client);
        let q = stable_with(&self.v, self.quorum).max(self.stable_floor);
        self.stable_floor = q;

        let reply = ReplyMsg {
            t: self.t,
            q,
            h: self.h,
            hc_echo: msg.hc,
            redirect,
            result,
        };
        if let Some(entry) = self.v.get_mut(&msg.client) {
            entry.cached = Some(CachedReply {
                t: reply.t,
                q: reply.q,
                h: reply.h,
                hc_echo: reply.hc_echo,
                redirect: reply.redirect,
                result: reply.result.clone(),
            });
        }
        let wire = self.encrypt_reply(msg.client, route, epoch, &reply)?;
        Ok((msg.client, wire))
    }

    fn encrypt_reply(
        &mut self,
        client: ClientId,
        route: u32,
        epoch: u64,
        reply: &ReplyMsg,
    ) -> Result<Vec<u8>> {
        let aead_c = self
            .keys
            .as_ref()
            .expect("ready implies keys")
            .aead_c
            .clone();
        let nonce = self.next_nonce();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        reply.encode(&mut scratch);
        let sealed = aead::auth_encrypt_with_nonce(
            &aead_c,
            &nonce,
            scratch.as_slice(),
            // The reply echoes the *request's* routing epoch — the
            // client can only decrypt under the epoch it stamped.
            &reply_aad(client, route, epoch),
        );
        self.scratch = scratch;
        sealed.map_err(|e| LcmError::Tee(e.to_string()))
    }

    /// Serves one verified read leg on this group member (leader or
    /// follower) — the scale-out half of the replicated-shard design.
    ///
    /// The leg's AAD is recomputed with **this** enclave's replica
    /// slot, so a read the client pinned to a sibling fails
    /// authentication here (the host cannot silently re-balance pinned
    /// reads). The read verifies against the same per-shard history
    /// context as writes: it executes only when `V[i]` matches the
    /// client's `(tc, hc)` exactly — i.e. this member's installed
    /// state already contains every write the client has completed —
    /// and the reply echoes that context for the client to re-verify.
    /// Reads never advance `t`/`h`/`V`; nothing is persisted.
    ///
    /// A member whose installed state lags the client's context
    /// (`V[i].t < tc`) answers with the `behind` flag instead: honest
    /// replication lag is retryable and never a violation, while a
    /// context *conflict* (same `t`, different `h` — a fork — or
    /// `V[i].t > tc` — a replayed leg) halts exactly like the write
    /// path.
    ///
    /// # Errors
    ///
    /// * [`LcmError::Violation`] — authentication failure, wrong-shard
    ///   delivery, a non-read-only operation on the read path
    ///   ([`Violation::MutationOnReadPath`]), or context conflict. The
    ///   context halts permanently.
    /// * [`LcmError::NotProvisioned`] / [`LcmError::Halted`] — wrong
    ///   phase.
    pub fn serve_read(&mut self, wire: &[u8]) -> Result<Vec<u8>> {
        self.require_ready()?;
        let Some((hint, ciphertext)) = crate::wire::ReadHint::peel(wire) else {
            return Err(self.halt(Violation::BadAuthentication));
        };
        let identity = self.identity.expect("ready implies identity");
        let aead_c = self
            .keys
            .as_ref()
            .expect("ready implies keys")
            .aead_c
            .clone();
        let aad = read_aad(
            hint.client,
            hint.route,
            hint.seq,
            identity.replica,
            hint.epoch,
        );
        let plain = match aead::auth_decrypt(&aead_c, ciphertext, &aad) {
            Ok(p) => p,
            Err(_) => return Err(self.halt(Violation::BadAuthentication)),
        };
        let msg = match crate::wire::ReadMsg::from_bytes(&plain) {
            Ok(m) => m,
            Err(_) => return Err(self.halt(Violation::BadAuthentication)),
        };
        if msg.client != hint.client || msg.tc.0 != hint.seq {
            return Err(self.halt(Violation::BadAuthentication));
        }
        // Followers bypass the leader's quorum path entirely, so they
        // must refuse to execute anything that could mutate state.
        if !F::is_readonly(&msg.op) {
            return Err(self.halt(Violation::MutationOnReadPath { client: msg.client }));
        }
        // Same two-route ownership check as the write path, with one
        // deliberate asymmetry: a *future*-epoch read leg answers
        // `Behind` instead of halting. During a migration a client can
        // honestly learn the bumped table from the origin shard's
        // redirect a moment before a follower of another group
        // installs it — reads are idempotent and retryable, and the
        // context check below already prevents a rolled-back member
        // from serving stale data as fresh. Writes keep the strict
        // future-epoch halt (the migration driver orders adoption
        // before any client can learn the new epoch on the write
        // path). A stale-epoch leg whose slice has since migrated away
        // answers `Moved` carrying the current table; a current-epoch
        // leg this shard does not own is a misdelivery or a lying
        // envelope — halt.
        let recomputed = crate::shard::route_for(msg.client, F::shard_key(&msg.op));
        let table_epoch = self.table.epoch();
        let future_epoch = hint.epoch > table_epoch;
        let owned = self.table.owns(identity.index, hint.route)
            && self.table.owns(identity.index, recomputed);
        let moved = if owned || future_epoch {
            false
        } else if hint.epoch < table_epoch {
            true
        } else {
            let bad = if self.table.owns(identity.index, hint.route) {
                recomputed
            } else {
                hint.route
            };
            return Err(self.halt(Violation::WrongShard {
                client: msg.client,
                delivered_to: identity.index,
                owner: self.table.shard_of(bad),
                wire_epoch: hint.epoch,
                shard_epoch: table_epoch,
            }));
        };
        let (entry_t, entry_h) = match self.v.get(&msg.client) {
            Some(e) => (e.t, e.h),
            None => {
                let client = msg.client;
                self.phase = Phase::Halted;
                return Err(LcmError::UnknownClient(client));
            }
        };
        let reply = if future_epoch {
            // This member has not installed the table the client
            // routes by yet: honest adoption lag, retryable.
            crate::wire::ReadReplyMsg {
                t: entry_t,
                q: self.stable_floor,
                h: entry_h,
                hc_echo: msg.hc,
                status: crate::wire::ReadStatus::Behind,
                result: Vec::new(),
            }
        } else if moved {
            // The slice migrated away since the client's table: hand
            // back the current table so the client re-pins. No context
            // stamp — reads are idempotent, so unlike the write path
            // there is nothing an exactly-once replay could lose.
            crate::wire::ReadReplyMsg {
                t: entry_t,
                q: self.stable_floor,
                h: entry_h,
                hc_echo: msg.hc,
                status: crate::wire::ReadStatus::Moved,
                result: self.table.to_bytes(),
            }
        } else if entry_t == msg.tc && entry_h == msg.hc {
            // Up to date for this client: execute the read. The
            // `is_readonly` contract guarantees `exec` leaves the
            // service state untouched.
            let result = self.f.exec(&msg.op);
            crate::wire::ReadReplyMsg {
                t: entry_t,
                q: stable_with(&self.v, self.quorum).max(self.stable_floor),
                h: entry_h,
                hc_echo: msg.hc,
                status: crate::wire::ReadStatus::Fresh,
                result,
            }
        } else if entry_t < msg.tc {
            // Honest replication lag: this member has not installed
            // the client's latest acknowledged write yet. Retryable —
            // never a violation.
            crate::wire::ReadReplyMsg {
                t: entry_t,
                q: self.stable_floor,
                h: entry_h,
                hc_echo: msg.hc,
                status: crate::wire::ReadStatus::Behind,
                result: Vec::new(),
            }
        } else {
            return Err(self.halt(Violation::ContextMismatch {
                client: msg.client,
                claimed: msg.tc,
                recorded: entry_t,
            }));
        };
        let nonce = self.next_nonce();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        reply.encode(&mut scratch);
        let sealed = aead::auth_encrypt_with_nonce(
            &aead_c,
            &nonce,
            scratch.as_slice(),
            &read_reply_aad(
                msg.client,
                hint.route,
                hint.seq,
                identity.replica,
                hint.epoch,
            ),
        );
        self.scratch = scratch;
        sealed.map_err(|e| LcmError::Tee(e.to_string()))
    }

    /// Installs a sibling's sealed state blob on this group member —
    /// the replication half of the replicated-shard design.
    ///
    /// The blob is the leader's [`PersistBlobs::state_blob`], sealed
    /// under the shared protocol key `kP`: any member provisioned with
    /// the same `kP` can decrypt and install it, and *only* such
    /// members can. The installed state replaces this member's `V`,
    /// `t`, `h`, stability floor and service snapshot wholesale; the
    /// member keeps its **own** replica identity (asserting the blob
    /// names the same group — a blob from a different shard halts).
    ///
    /// Returns the in-enclave digest of the blob — the follower's
    /// acknowledgement the host counts toward quorum stability — plus
    /// this member's re-sealed blobs to persist.
    ///
    /// The install is deliberately unconditional (no monotonicity
    /// check against the member's previous state): *which* blob to
    /// ship, and when, is host scheduling and therefore untrusted.
    /// A host that ships a stale blob merely produces a lagging
    /// follower (reads answer `behind`), and a promotion that loses an
    /// unacknowledged suffix is exactly what clients detect as
    /// rollback via their context checks — see the module docs of
    /// [`crate::replica`] for the full trust-boundary argument.
    ///
    /// # Errors
    ///
    /// * [`LcmError::Violation`] — the blob failed authentication or
    ///   names a different shard group; the context halts.
    /// * [`LcmError::NotProvisioned`] / [`LcmError::Halted`] — wrong
    ///   phase.
    pub fn apply_replica(&mut self, state_blob: &[u8]) -> Result<(Digest, PersistBlobs)> {
        self.require_ready()?;
        let own = self.identity.expect("ready implies identity");
        self.restore_sealed_state(state_blob)?;
        let sealer = self.identity.expect("restored state carries an identity");
        if !sealer.same_group(&own) {
            // The dummy client id marks a violation with no invoking
            // client: the host shipped another shard's state here.
            let shard_epoch = self.table.epoch();
            return Err(self.halt(Violation::WrongShard {
                client: ClientId(0),
                delivered_to: own.index,
                owner: sealer.index,
                wire_epoch: shard_epoch,
                shard_epoch,
            }));
        }
        self.identity = Some(own);
        let digest = lcm_crypto::sha256::digest(state_blob);
        let blobs = self.persist_blobs()?;
        Ok((digest, blobs))
    }

    /// Seals the current protocol + service state as a full checkpoint
    /// for the host to persist. Control-plane paths (provisioning,
    /// admin, migration, replica installs) always checkpoint — their
    /// effects (key rotation, membership, identity) are deliberately
    /// excluded from the delta format.
    ///
    /// # Errors
    ///
    /// * [`LcmError::NotProvisioned`] when no keys are installed.
    pub fn persist_blobs(&mut self) -> Result<PersistBlobs> {
        let keys = self.keys.as_ref().ok_or(LcmError::NotProvisioned)?;

        let mut key_plain = Writer::with_capacity(64);
        key_plain.put_raw(keys.k_p.as_bytes());
        key_plain.put_raw(keys.k_a.as_bytes());
        let seal_key = AeadKey::from_secret(&self.services.sealing_key());
        let aead_p = keys.aead_p.clone();
        let k_c = keys.k_c.clone();

        let nonce_a = self.next_nonce();
        let nonce_b = self.next_nonce();
        // A fresh anchor roots the delta chain that follows this
        // checkpoint; the unique nonce makes it distinct per
        // checkpoint, so deltas cannot be replayed across generations.
        let anchor = lcm_crypto::sha256::digest_parts(&[ANCHOR_CKPT, &nonce_b]);

        // Reset the functionality's change tracking: the snapshot below
        // is the new baseline deltas build on.
        let _ = self.f.take_delta();
        // The state encoding is the per-batch hot allocation: reuse the
        // context's scratch buffer instead of a fresh Vec per seal.
        let mut state_plain = std::mem::take(&mut self.scratch);
        state_plain.clear();
        state_plain.put_raw(k_c.as_bytes());
        state_plain.put_u64(self.admin_seq);
        self.stable_floor.encode(&mut state_plain);
        self.quorum.encode(&mut state_plain);
        self.identity
            .unwrap_or(ShardIdentity::SOLO)
            .encode(&mut state_plain);
        // The routing table seals with the rest of the protocol state:
        // a rolled-back enclave thereby rolls back its table too, which
        // is exactly what future-epoch wires expose.
        self.table.encode(&mut state_plain);
        crate::stability::encode_vmap(&self.v, &mut state_plain);
        state_plain.put_bytes(&self.f.snapshot());
        state_plain.put_digest(&anchor);

        let key_blob = aead::auth_encrypt_with_nonce(
            &seal_key,
            &nonce_a,
            key_plain.as_slice(),
            LABEL_KEY_BLOB,
        );
        let state_blob = aead::auth_encrypt_with_nonce(
            &aead_p,
            &nonce_b,
            state_plain.as_slice(),
            LABEL_STATE_BLOB,
        );
        self.persist_anchor = anchor;
        self.delta_bytes = 0;
        self.last_ckpt_len = state_plain.len();
        self.touched.clear();
        self.scratch = state_plain;
        Ok(PersistBlobs {
            key_blob: tag_blob(
                lcm_storage::BLOB_KIND_OPAQUE,
                key_blob.map_err(|e| LcmError::Tee(e.to_string()))?,
            ),
            state_blob: tag_blob(
                lcm_storage::BLOB_KIND_CHECKPOINT,
                state_blob.map_err(|e| LcmError::Tee(e.to_string()))?,
            ),
        })
    }

    /// The per-batch persist: a sealed delta when the host's storage
    /// supports it and the cadence allows, a full checkpoint otherwise
    /// (the checkpoint is also the compaction point the delta-log
    /// engine garbage-collects against).
    ///
    /// A delta carries only what a batch can change — the stable
    /// floor, the touched clients' `V` entries (with their cached
    /// replies), and the functionality's own state diff — chained to
    /// the previous blob by [`Self::persist_blobs`]'s anchor. Its
    /// `key_blob` is empty: keys never change on the batch path, and
    /// the host skips the redundant store.
    ///
    /// # Errors
    ///
    /// * [`LcmError::NotProvisioned`] when no keys are installed.
    pub fn persist_batch_blobs(&mut self) -> Result<PersistBlobs> {
        if !self.delta_mode || self.delta_bytes > self.last_ckpt_len.max(DELTA_CHECKPOINT_MIN) {
            return self.persist_blobs();
        }
        let Some(f_delta) = self.f.take_delta() else {
            // The functionality does not track changes.
            return self.persist_blobs();
        };
        let keys = self.keys.as_ref().ok_or(LcmError::NotProvisioned)?;
        let aead_p = keys.aead_p.clone();

        let mut delta_plain = std::mem::take(&mut self.scratch);
        delta_plain.clear();
        delta_plain.put_digest(&self.persist_anchor);
        self.stable_floor.encode(&mut delta_plain);
        let mut dv = VMap::new();
        for client in &self.touched {
            if let Some(entry) = self.v.get(client) {
                dv.insert(*client, entry.clone());
            }
        }
        crate::stability::encode_vmap(&dv, &mut delta_plain);
        delta_plain.put_bytes(&f_delta);

        let anchor = lcm_crypto::sha256::digest_parts(&[ANCHOR_DELTA, delta_plain.as_slice()]);
        let nonce = self.next_nonce();
        let sealed = aead::auth_encrypt_with_nonce(
            &aead_p,
            &nonce,
            delta_plain.as_slice(),
            LABEL_DELTA_BLOB,
        );
        self.scratch = delta_plain;
        let state_blob = tag_blob(
            lcm_storage::BLOB_KIND_DELTA,
            sealed.map_err(|e| LcmError::Tee(e.to_string()))?,
        );
        self.persist_anchor = anchor;
        self.delta_bytes += state_blob.len();
        self.touched.clear();
        Ok(PersistBlobs {
            key_blob: Vec::new(),
            state_blob,
        })
    }

    fn restore_state(&mut self, plain: &[u8]) -> Result<()> {
        let mut r = Reader::new(plain);
        let k_c = read_key(&mut r).map_err(LcmError::from)?;
        self.admin_seq = r.get_u64().map_err(LcmError::from)?;
        self.stable_floor = SeqNo::decode(&mut r).map_err(LcmError::from)?;
        self.quorum = Quorum::decode(&mut r).map_err(LcmError::from)?;
        self.identity = Some(ShardIdentity::decode(&mut r).map_err(LcmError::from)?);
        self.table = SliceTable::decode(&mut r).map_err(LcmError::from)?;
        self.v = crate::stability::decode_vmap(&mut r).map_err(LcmError::from)?;
        let snapshot = r.get_bytes().map_err(LcmError::from)?.to_vec();
        let anchor = r.get_digest().map_err(LcmError::from)?;
        r.finish().map_err(LcmError::from)?;

        self.f.restore(&snapshot).map_err(LcmError::from)?;
        self.persist_anchor = anchor;
        self.delta_bytes = 0;
        self.last_ckpt_len = plain.len();
        self.touched.clear();
        if let Some(keys) = self.keys.as_mut() {
            keys.rotate_kc(k_c);
        }
        // (·, t, h) ← V[argmax(V)]
        match latest_entry(&self.v) {
            Some(e) => {
                self.t = e.t;
                self.h = e.h;
            }
            None => {
                self.t = SeqNo::ZERO;
                self.h = ChainValue::GENESIS;
            }
        }
        Ok(())
    }

    /// Handles an authenticated admin operation (§4.6.3).
    ///
    /// # Errors
    ///
    /// * [`LcmError::Violation`] — bad authentication or admin-sequence
    ///   replay; the context halts.
    pub fn handle_admin(&mut self, wire: &[u8]) -> Result<(Vec<u8>, PersistBlobs)> {
        self.require_ready()?;
        let aead_a = self
            .keys
            .as_ref()
            .expect("ready implies keys")
            .aead_a
            .clone();
        let plain = match aead::auth_decrypt(&aead_a, wire, LABEL_ADMIN) {
            Ok(p) => p,
            Err(_) => return Err(self.halt(Violation::BadAuthentication)),
        };
        let mut r = Reader::new(&plain);
        let decoded = (|| -> std::result::Result<_, crate::codec::CodecError> {
            let seq = r.get_u64()?;
            let op = AdminOp::decode(&mut r)?;
            r.finish()?;
            Ok((seq, op))
        })();
        let (seq, op) = match decoded {
            Ok(v) => v,
            Err(_) => return Err(self.halt(Violation::BadAuthentication)),
        };

        if seq != self.admin_seq + 1 {
            return Err(self.halt(Violation::AdminReplay));
        }
        self.admin_seq = seq;

        let reply = match op {
            AdminOp::AddClient(id) => {
                if let std::collections::btree_map::Entry::Vacant(slot) = self.v.entry(id) {
                    slot.insert(VEntry::default());
                    AdminReply::Ok
                } else {
                    AdminReply::Rejected(format!("client {id} already in group"))
                }
            }
            AdminOp::RemoveClient(id, new_kc) => {
                if self.v.remove(&id).is_none() {
                    AdminReply::Rejected(format!("client {id} not in group"))
                } else {
                    self.keys.as_mut().expect("ready").rotate_kc(new_kc);
                    AdminReply::Ok
                }
            }
            AdminOp::RotateKey(new_kc) => {
                self.keys.as_mut().expect("ready").rotate_kc(new_kc);
                AdminReply::Ok
            }
            AdminOp::Status => AdminReply::Status {
                t: self.t,
                q: stable_with(&self.v, self.quorum).max(self.stable_floor),
                n: self.v.len() as u32,
            },
        };

        let mut w = Writer::new();
        w.put_u64(seq);
        reply.encode(&mut w);
        let keys = self.keys.as_ref().expect("ready implies keys");
        let aead_a = keys.aead_a.clone();
        let nonce = self.next_nonce();
        let reply_wire =
            aead::auth_encrypt_with_nonce(&aead_a, &nonce, &w.into_bytes(), LABEL_ADMIN)
                .map_err(|e| LcmError::Tee(e.to_string()))?;
        let blobs = self.persist_blobs()?;
        Ok((reply_wire, blobs))
    }

    /// Exports the full context state as a migration ticket encrypted
    /// for a same-program enclave (§4.6.2), then stops serving.
    ///
    /// # Errors
    ///
    /// * [`LcmError::Tee`] — no migration channel on this platform.
    /// * [`LcmError::NotProvisioned`] / [`LcmError::Halted`] — wrong
    ///   phase.
    pub fn export_migration(&mut self) -> Result<Vec<u8>> {
        self.require_ready()?;
        let channel_key = self
            .services
            .migration_key()
            .ok_or_else(|| LcmError::Tee("platform has no migration channel".into()))?;
        let keys = self.keys.as_ref().expect("ready implies keys");

        let mut w = Writer::new();
        w.put_raw(keys.k_p.as_bytes());
        w.put_raw(keys.k_c.as_bytes());
        w.put_raw(keys.k_a.as_bytes());
        w.put_u64(self.admin_seq);
        self.stable_floor.encode(&mut w);
        self.quorum.encode(&mut w);
        // The identity travels with the ticket: the target enclave
        // adopts the origin shard's place in the deployment, so a
        // migrated deployment re-verifies exactly like a fresh one.
        // The routing table travels too, for the same reason.
        self.identity.unwrap_or(ShardIdentity::SOLO).encode(&mut w);
        self.table.encode(&mut w);
        crate::stability::encode_vmap(&self.v, &mut w);
        w.put_bytes(&self.f.snapshot());

        let channel = AeadKey::from_secret(&channel_key);
        let nonce = self.next_nonce();
        let ticket =
            aead::auth_encrypt_with_nonce(&channel, &nonce, &w.into_bytes(), LABEL_MIGRATION)
                .map_err(|e| LcmError::Tee(e.to_string()))?;
        // "At this point, T stops processing requests" (§4.6.2).
        self.phase = Phase::Migrated;
        Ok(ticket)
    }

    /// Imports a migration ticket on the target enclave, installing the
    /// origin's keys and state and re-sealing them for this platform.
    ///
    /// # Errors
    ///
    /// * [`LcmError::AlreadyProvisioned`] — the target already has
    ///   state.
    /// * [`LcmError::Violation`] — the ticket failed authentication.
    pub fn import_migration(&mut self, ticket: &[u8]) -> Result<PersistBlobs> {
        self.import_migration_with(ticket, None)
    }

    /// [`TrustedContext::import_migration`] with a host-supplied
    /// replica slot: the target adopts the ticket's shard slot but
    /// occupies `Some((replica, replicas))` within the group.
    ///
    /// Replica *assignment* is the host's scheduling domain — the same
    /// migration ticket fans out to every member of a replicated
    /// target group, each importing under a different slot — while
    /// *verification* of the claimed coordinates stays with the
    /// admin's post-migration attestation (the quote user data binds
    /// whatever slot was installed here).
    pub fn import_migration_with(
        &mut self,
        ticket: &[u8],
        replica_override: Option<(u32, u32)>,
    ) -> Result<PersistBlobs> {
        if self.phase != Phase::AwaitingProvision {
            return Err(LcmError::AlreadyProvisioned);
        }
        if let Some((replica, replicas)) = replica_override {
            if replicas == 0 || replica >= replicas {
                return Err(LcmError::Tee(format!(
                    "invalid replica override {replica}/{replicas}"
                )));
            }
        }
        let channel_key = self
            .services
            .migration_key()
            .ok_or_else(|| LcmError::Tee("platform has no migration channel".into()))?;
        let channel = AeadKey::from_secret(&channel_key);
        let plain = aead::auth_decrypt(&channel, ticket, LABEL_MIGRATION)
            .map_err(|_| self.halt(Violation::BadAuthentication))?;

        let mut r = Reader::new(&plain);
        let k_p = read_key(&mut r).map_err(LcmError::from)?;
        let k_c = read_key(&mut r).map_err(LcmError::from)?;
        let k_a = read_key(&mut r).map_err(LcmError::from)?;
        let admin_seq = r.get_u64().map_err(LcmError::from)?;
        let stable_floor = SeqNo::decode(&mut r).map_err(LcmError::from)?;
        let quorum = Quorum::decode(&mut r).map_err(LcmError::from)?;
        let mut identity = ShardIdentity::decode(&mut r).map_err(LcmError::from)?;
        if let Some((replica, replicas)) = replica_override {
            identity = ShardIdentity {
                replica,
                replicas,
                ..identity
            };
        }
        let table = SliceTable::decode(&mut r).map_err(LcmError::from)?;
        let v = crate::stability::decode_vmap(&mut r).map_err(LcmError::from)?;
        let snapshot = r.get_bytes().map_err(LcmError::from)?.to_vec();
        r.finish().map_err(LcmError::from)?;

        self.keys = Some(Keys::from_raw(k_p, k_c, k_a));
        self.admin_seq = admin_seq;
        self.stable_floor = stable_floor;
        self.quorum = quorum;
        self.identity = Some(identity);
        self.table = table;
        self.v = v;
        self.f.restore(&snapshot).map_err(LcmError::from)?;
        match latest_entry(&self.v) {
            Some(e) => {
                self.t = e.t;
                self.h = e.h;
            }
            None => {
                self.t = SeqNo::ZERO;
                self.h = ChainValue::GENESIS;
            }
        }
        self.phase = Phase::Ready;
        self.persist_blobs()
    }

    /// Exports one routing slice to shard `to` while *both* shards keep
    /// running — the live half of heat-aware rebalancing, in contrast
    /// to [`TrustedContext::export_migration`] which moves a whole
    /// shard and stops it.
    ///
    /// The exporting enclave extracts the slice's partition of the
    /// service state, advances its table to the epoch-bumped assignment
    /// (so it redirects rather than executes the slice's wires from
    /// this point on), and seals two artifacts for the host to carry:
    /// a *ticket* only the adopting shard can apply and a *bulletin*
    /// every bystander shard adopts. Client history (`V`) does not
    /// travel — each shard keeps its own sequence space, and clients
    /// re-pin per-shard contexts when they chase the redirect.
    ///
    /// # Errors
    ///
    /// * [`LcmError::Tee`] — no migration channel, the slice is not
    ///   owned here, the destination is out of range, or the
    ///   functionality does not support partition extraction. The
    ///   context state is unchanged (host bugs, not attacks).
    /// * [`LcmError::NotProvisioned`] / [`LcmError::Halted`] — wrong
    ///   phase.
    pub fn export_slice(&mut self, slice: u32, to: u32) -> Result<SliceExport> {
        self.require_ready()?;
        let channel_key = self
            .services
            .migration_key()
            .ok_or_else(|| LcmError::Tee("platform has no migration channel".into()))?;
        let identity = self.identity.expect("ready implies identity");
        if slice >= crate::routing::SLICE_COUNT || self.table.owner(slice) != identity.index {
            return Err(LcmError::Tee(format!(
                "shard {} does not own slice {slice}",
                identity.index
            )));
        }
        let new_table = self
            .table
            .moved(slice, to)
            .ok_or_else(|| LcmError::Tee(format!("invalid slice move {slice} -> {to}")))?;
        // Extract the slice's partition of the service state. `None`
        // means the functionality does not track partition keys — the
        // default — and nothing has been mutated yet, so the error is
        // clean.
        let Some(partition) = self
            .f
            .take_partition(&|key| slice_of(crate::shard::route_hash(key)) == slice)
        else {
            return Err(LcmError::Tee(
                "functionality does not support slice migration".into(),
            ));
        };
        let old_epoch = self.table.epoch();
        self.table = new_table;

        let mut w = Writer::new();
        identity.encode(&mut w);
        w.put_u32(to);
        w.put_u32(slice);
        w.put_u64(old_epoch);
        self.table.encode(&mut w);
        w.put_bytes(&partition);
        let channel = AeadKey::from_secret(&channel_key);
        let nonce = self.next_nonce();
        let ticket =
            aead::auth_encrypt_with_nonce(&channel, &nonce, &w.into_bytes(), LABEL_SLICE_TICKET)
                .map_err(|e| LcmError::Tee(e.to_string()))?;

        let mut w = Writer::new();
        self.table.encode(&mut w);
        let nonce = self.next_nonce();
        let bulletin =
            aead::auth_encrypt_with_nonce(&channel, &nonce, &w.into_bytes(), LABEL_SLICE_BULLETIN)
                .map_err(|e| LcmError::Tee(e.to_string()))?;

        // Slice moves always checkpoint: the exported keys vanish from
        // this shard's state wholesale, which a dirty-set delta cannot
        // express against an arbitrary baseline.
        let blobs = self.persist_blobs()?;
        Ok(SliceExport {
            ticket,
            bulletin,
            blobs,
        })
    }

    /// Adopts one routing slice exported by a sibling shard via
    /// [`TrustedContext::export_slice`]: validates the sealed ticket,
    /// installs the slice's partition of the service state, and
    /// advances to the epoch-bumped table.
    ///
    /// Replaying a ticket is harmless: once this shard sits at the
    /// bumped epoch the ticket's `old_epoch` no longer matches and the
    /// import is refused without any state change — which is exactly
    /// what makes crash-retry of a half-done migration safe.
    ///
    /// # Errors
    ///
    /// * [`LcmError::Violation`] — the ticket failed authentication or
    ///   names a different destination shard (a misdelivered ticket is
    ///   host misbehaviour); the context halts.
    /// * [`LcmError::Tee`] — epoch mismatch (stale or premature
    ///   ticket) or a deployment-shape mismatch; state unchanged.
    /// * [`LcmError::NotProvisioned`] / [`LcmError::Halted`] — wrong
    ///   phase.
    pub fn import_slice(&mut self, ticket: &[u8]) -> Result<PersistBlobs> {
        self.require_ready()?;
        let channel_key = self
            .services
            .migration_key()
            .ok_or_else(|| LcmError::Tee("platform has no migration channel".into()))?;
        let channel = AeadKey::from_secret(&channel_key);
        let plain = aead::auth_decrypt(&channel, ticket, LABEL_SLICE_TICKET)
            .map_err(|_| self.halt(Violation::BadAuthentication))?;
        let mut r = Reader::new(&plain);
        let decoded = (|| -> std::result::Result<_, crate::codec::CodecError> {
            let exporter = ShardIdentity::decode(&mut r)?;
            let to = r.get_u32()?;
            let slice = r.get_u32()?;
            let old_epoch = r.get_u64()?;
            let table = SliceTable::decode(&mut r)?;
            let partition = r.get_bytes()?.to_vec();
            r.finish()?;
            Ok((exporter, to, slice, old_epoch, table, partition))
        })();
        let Ok((exporter, to, slice, old_epoch, table, partition)) = decoded else {
            return Err(self.halt(Violation::BadAuthentication));
        };
        let identity = self.identity.expect("ready implies identity");
        if to != identity.index {
            // An intact ticket delivered to the wrong shard: the host
            // redirected it, exactly like a misdelivered wire.
            let shard_epoch = self.table.epoch();
            return Err(self.halt(Violation::WrongShard {
                client: ClientId(0),
                delivered_to: identity.index,
                owner: to,
                wire_epoch: table.epoch(),
                shard_epoch,
            }));
        }
        if exporter.count != identity.count || table.count() != identity.count {
            return Err(LcmError::Tee(
                "slice ticket from a different deployment shape".into(),
            ));
        }
        if old_epoch != self.table.epoch() {
            return Err(LcmError::Tee(format!(
                "slice ticket for epoch {old_epoch} does not apply at epoch {}",
                self.table.epoch()
            )));
        }
        if table.owner(slice) != identity.index {
            return Err(LcmError::Tee(format!(
                "slice ticket assigns slice {slice} to shard {} not {}",
                table.owner(slice),
                identity.index
            )));
        }
        self.f.apply_partition(&partition).map_err(LcmError::from)?;
        self.table = table;
        self.persist_blobs()
    }

    /// Adopts an epoch-bumped slice table announced by a sibling's
    /// [`TrustedContext::export_slice`] bulletin, so this bystander
    /// shard judges wires against the same routing epoch as the pair
    /// that moved the slice. A bulletin at or below the current epoch
    /// is a harmless replay and changes nothing.
    ///
    /// # Errors
    ///
    /// * [`LcmError::Violation`] — the bulletin failed authentication;
    ///   the context halts.
    /// * [`LcmError::Tee`] — the bulletin skips epochs or names a
    ///   different deployment shape; state unchanged.
    /// * [`LcmError::NotProvisioned`] / [`LcmError::Halted`] — wrong
    ///   phase.
    pub fn adopt_table(&mut self, bulletin: &[u8]) -> Result<PersistBlobs> {
        self.require_ready()?;
        let channel_key = self
            .services
            .migration_key()
            .ok_or_else(|| LcmError::Tee("platform has no migration channel".into()))?;
        let channel = AeadKey::from_secret(&channel_key);
        let plain = aead::auth_decrypt(&channel, bulletin, LABEL_SLICE_BULLETIN)
            .map_err(|_| self.halt(Violation::BadAuthentication))?;
        let table = match SliceTable::from_bytes(&plain) {
            Ok(t) => t,
            Err(_) => return Err(self.halt(Violation::BadAuthentication)),
        };
        let identity = self.identity.expect("ready implies identity");
        if table.epoch() <= self.table.epoch() {
            return self.persist_blobs();
        }
        if table.count() != identity.count {
            return Err(LcmError::Tee(
                "slice-table bulletin from a different deployment shape".into(),
            ));
        }
        if table.epoch() != self.table.epoch() + 1 {
            return Err(LcmError::Tee(format!(
                "slice-table bulletin skips epochs ({} -> {})",
                self.table.epoch(),
                table.epoch()
            )));
        }
        self.table = table;
        self.persist_blobs()
    }

    fn require_ready(&self) -> Result<()> {
        match self.phase {
            Phase::Ready => Ok(()),
            Phase::Halted => Err(LcmError::Halted),
            _ => Err(LcmError::NotProvisioned),
        }
    }

    fn halt(&mut self, violation: Violation) -> LcmError {
        self.phase = Phase::Halted;
        LcmError::Violation(violation)
    }

    /// Deterministic unique nonces from the TEE RNG seed and a counter.
    /// Uniqueness per key holds because every epoch derives a distinct
    /// RNG stream and the counter never repeats within an epoch.
    fn next_nonce(&mut self) -> [u8; 12] {
        use rand::RngCore;
        self.nonce_counter += 1;
        let mut rng = self.services.rng();
        let mut base = [0u8; 12];
        rng.fill_bytes(&mut base);
        let ctr = self.nonce_counter.to_be_bytes();
        for (i, b) in ctr.iter().enumerate() {
            base[i + 4] ^= b;
        }
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functionality::AppendLog;
    use lcm_tee::measurement::Measurement;
    use lcm_tee::world::TeeWorld;

    pub(crate) const M_NAME: &str = "lcm-test";

    fn world() -> TeeWorld {
        TeeWorld::new_deterministic(11)
    }

    fn services(world: &TeeWorld, platform_id: u64) -> TeeServices {
        let platform = world.platform_deterministic(platform_id);
        TeeServices::for_tests(platform, Measurement::of_program(M_NAME, "1"), platform_id)
    }

    fn provision_payload() -> ProvisionPayload {
        ProvisionPayload {
            k_p: SecretKey::from_bytes([1u8; 32]),
            k_c: SecretKey::from_bytes([2u8; 32]),
            k_a: SecretKey::from_bytes([3u8; 32]),
            clients: vec![ClientId(1), ClientId(2), ClientId(3)],
            quorum: Quorum::Majority,
            identity: ShardIdentity::SOLO,
        }
    }

    fn provisioned_context(world: &TeeWorld) -> (TrustedContext<AppendLog>, PersistBlobs) {
        let mut ctx = TrustedContext::<AppendLog>::new(services(world, 1));
        assert_eq!(
            ctx.init(None, None, false).unwrap(),
            InitOutcome::NeedProvision
        );
        let payload = provision_payload();
        let channel =
            AeadKey::from_secret(&world.admin_provision_key(&Measurement::of_program(M_NAME, "1")));
        let sealed = aead::auth_encrypt(&channel, &payload.to_bytes(), LABEL_PROVISION).unwrap();
        let blobs = ctx.provision(&sealed).unwrap();
        (ctx, blobs)
    }

    fn client_key() -> AeadKey {
        AeadKey::from_secret(&SecretKey::from_bytes([2u8; 32]))
    }

    fn encrypt_invoke(msg: &InvokeMsg) -> Vec<u8> {
        let route = crate::shard::route_for(msg.client, None);
        let hint = crate::wire::RouteHint {
            client: msg.client,
            route,
            seq: msg.tc.0,
            epoch: 0,
        };
        let ct = aead::auth_encrypt(
            &client_key(),
            &msg.to_bytes(),
            &invoke_aad(msg.client, route, msg.tc.0, 0),
        )
        .unwrap();
        let mut wire = Vec::with_capacity(crate::wire::ROUTE_HINT_LEN + ct.len());
        hint.encode_to(&mut wire);
        wire.extend_from_slice(&ct);
        wire
    }

    fn decrypt_reply(wire: &[u8], client: u32) -> ReplyMsg {
        let route = crate::shard::route_for(ClientId(client), None);
        let plain = aead::auth_decrypt(&client_key(), wire, &reply_aad(ClientId(client), route, 0))
            .unwrap();
        ReplyMsg::from_bytes(&plain).unwrap()
    }

    fn invoke(
        ctx: &mut TrustedContext<AppendLog>,
        client: u32,
        tc: SeqNo,
        hc: ChainValue,
        op: &[u8],
    ) -> Result<ReplyMsg> {
        let msg = InvokeMsg {
            client: ClientId(client),
            tc,
            hc,
            retry: false,
            op: op.to_vec(),
        };
        let (_, wire) = ctx.handle_invoke(&encrypt_invoke(&msg))?;
        Ok(decrypt_reply(&wire, client))
    }

    #[test]
    fn provision_then_first_ops() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        let r1 = invoke(&mut ctx, 1, SeqNo::ZERO, ChainValue::GENESIS, b"op-a").unwrap();
        assert_eq!(r1.t, SeqNo(1));
        assert_eq!(r1.q, SeqNo::ZERO);
        assert_eq!(r1.hc_echo, ChainValue::GENESIS);

        let r2 = invoke(&mut ctx, 2, SeqNo::ZERO, ChainValue::GENESIS, b"op-b").unwrap();
        assert_eq!(r2.t, SeqNo(2));
        assert_ne!(r2.h, r1.h);
    }

    #[test]
    fn stability_advances_with_acks() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        // Round 1: all three clients execute one op.
        let r1 = invoke(&mut ctx, 1, SeqNo::ZERO, ChainValue::GENESIS, b"a").unwrap();
        let r2 = invoke(&mut ctx, 2, SeqNo::ZERO, ChainValue::GENESIS, b"b").unwrap();
        let r3 = invoke(&mut ctx, 3, SeqNo::ZERO, ChainValue::GENESIS, b"c").unwrap();
        assert_eq!(r3.q, SeqNo::ZERO, "nothing acknowledged yet");

        // Round 2: clients 1 and 2 invoke again, acknowledging their
        // round-1 ops (seq 1 and 2).
        let r4 = invoke(&mut ctx, 1, r1.t, r1.h, b"d").unwrap();
        // After C1 acks #1: a=1, everyone executed ≥1 ⇒ q=1.
        assert_eq!(r4.q, SeqNo(1));
        let r5 = invoke(&mut ctx, 2, r2.t, r2.h, b"e").unwrap();
        // After C2 acks #2: a=2, t values now {4,5,3} all ≥2 ⇒ q=2.
        assert_eq!(r5.q, SeqNo(2));
        let _ = r5;
        let _ = r3;
    }

    #[test]
    fn stability_never_decreases_as_acks_advance() {
        // Regression: the raw majority-stable(V) formula is not
        // monotone — when a client acknowledges a newer op, its old ta
        // leaves the candidate set. The floor must prevent q dropping.
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        let r1 = invoke(&mut ctx, 1, SeqNo::ZERO, ChainValue::GENESIS, b"a").unwrap();
        let r2 = invoke(&mut ctx, 2, SeqNo::ZERO, ChainValue::GENESIS, b"b").unwrap();
        let r3 = invoke(&mut ctx, 1, r1.t, r1.h, b"c").unwrap();
        assert_eq!(r3.q, SeqNo(1));
        // C1 acknowledges op #3: candidate ta=1 disappears, ta=3 does
        // not qualify yet — the raw formula would report q=0 here.
        let r4 = invoke(&mut ctx, 1, r3.t, r3.h, b"d").unwrap();
        assert!(
            r4.q >= r3.q,
            "q must not decrease: {:?} -> {:?}",
            r3.q,
            r4.q
        );
        let _ = r2;
    }

    #[test]
    fn stability_floor_survives_restart() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        let r1 = invoke(&mut ctx, 1, SeqNo::ZERO, ChainValue::GENESIS, b"a").unwrap();
        invoke(&mut ctx, 2, SeqNo::ZERO, ChainValue::GENESIS, b"b").unwrap();
        let r3 = invoke(&mut ctx, 1, r1.t, r1.h, b"c").unwrap();
        assert_eq!(r3.q, SeqNo(1));
        let blobs = ctx.persist_blobs().unwrap();

        let mut ctx2 = TrustedContext::<AppendLog>::new(services(&world, 1));
        ctx2.init(Some(&blobs.key_blob), Some(&blobs.state_blob), false)
            .unwrap();
        let r4 = invoke(&mut ctx2, 1, r3.t, r3.h, b"d").unwrap();
        assert!(r4.q >= SeqNo(1), "floor must persist: {:?}", r4.q);
    }

    #[test]
    fn wrong_context_halts_with_violation() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        let r1 = invoke(&mut ctx, 1, SeqNo::ZERO, ChainValue::GENESIS, b"a").unwrap();
        // Client 1 invokes again with a stale context (as if T was
        // rolled back — or the client's message replayed).
        let err = invoke(&mut ctx, 1, SeqNo::ZERO, ChainValue::GENESIS, b"b").unwrap_err();
        assert!(matches!(
            err,
            LcmError::Violation(Violation::ContextMismatch { .. })
        ));
        // Halted forever.
        let err2 = invoke(&mut ctx, 2, SeqNo::ZERO, ChainValue::GENESIS, b"c").unwrap_err();
        assert_eq!(err2, LcmError::Halted);
        let _ = r1;
    }

    #[test]
    fn replayed_invoke_halts() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        let msg = InvokeMsg {
            client: ClientId(1),
            tc: SeqNo::ZERO,
            hc: ChainValue::GENESIS,
            retry: false,
            op: b"op".to_vec(),
        };
        let wire = encrypt_invoke(&msg);
        ctx.handle_invoke(&wire).unwrap();
        let err = ctx.handle_invoke(&wire).unwrap_err();
        assert!(matches!(
            err,
            LcmError::Violation(Violation::ContextMismatch { .. })
        ));
    }

    #[test]
    fn tampered_invoke_halts() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        let msg = InvokeMsg {
            client: ClientId(1),
            tc: SeqNo::ZERO,
            hc: ChainValue::GENESIS,
            retry: false,
            op: b"op".to_vec(),
        };
        let mut wire = encrypt_invoke(&msg);
        let last = wire.len() - 1;
        wire[last] ^= 1;
        assert!(matches!(
            ctx.handle_invoke(&wire),
            Err(LcmError::Violation(Violation::BadAuthentication))
        ));
        assert_eq!(ctx.phase(), Phase::Halted);
    }

    #[test]
    fn unknown_client_halts() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        let msg = InvokeMsg {
            client: ClientId(99),
            tc: SeqNo::ZERO,
            hc: ChainValue::GENESIS,
            retry: false,
            op: b"op".to_vec(),
        };
        assert!(matches!(
            ctx.handle_invoke(&encrypt_invoke(&msg)),
            Err(LcmError::UnknownClient(ClientId(99)))
        ));
        assert_eq!(ctx.phase(), Phase::Halted);
    }

    #[test]
    fn retry_before_execution_executes_normally() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        let msg = InvokeMsg {
            client: ClientId(1),
            tc: SeqNo::ZERO,
            hc: ChainValue::GENESIS,
            retry: true,
            op: b"op".to_vec(),
        };
        let (_, wire) = ctx.handle_invoke(&encrypt_invoke(&msg)).unwrap();
        assert_eq!(decrypt_reply(&wire, 1).t, SeqNo(1));
    }

    #[test]
    fn retry_after_execution_returns_cached_reply() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        let first = invoke(&mut ctx, 1, SeqNo::ZERO, ChainValue::GENESIS, b"op").unwrap();
        // Same context, retry flag set: must resend, not re-execute.
        let msg = InvokeMsg {
            client: ClientId(1),
            tc: SeqNo::ZERO,
            hc: ChainValue::GENESIS,
            retry: true,
            op: b"op".to_vec(),
        };
        let (_, wire) = ctx.handle_invoke(&encrypt_invoke(&msg)).unwrap();
        let resent = decrypt_reply(&wire, 1);
        assert_eq!(resent.t, first.t);
        assert_eq!(resent.h, first.h);
        assert_eq!(resent.result, first.result);
        // The log was NOT appended twice.
        assert_eq!(ctx.functionality().entries().len(), 1);
    }

    #[test]
    fn retry_with_wrong_context_still_halts() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        invoke(&mut ctx, 1, SeqNo::ZERO, ChainValue::GENESIS, b"a").unwrap();
        let msg = InvokeMsg {
            client: ClientId(1),
            tc: SeqNo(7), // nonsense context
            hc: ChainValue::GENESIS,
            retry: true,
            op: b"b".to_vec(),
        };
        assert!(matches!(
            ctx.handle_invoke(&encrypt_invoke(&msg)),
            Err(LcmError::Violation(Violation::ContextMismatch { .. }))
        ));
    }

    #[test]
    fn seal_restore_roundtrip() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        let r1 = invoke(&mut ctx, 1, SeqNo::ZERO, ChainValue::GENESIS, b"a").unwrap();
        let blobs = ctx.persist_blobs().unwrap();

        // New epoch on the same platform: recover.
        let mut ctx2 = TrustedContext::<AppendLog>::new(services(&world, 1));
        assert_eq!(
            ctx2.init(Some(&blobs.key_blob), Some(&blobs.state_blob), false)
                .unwrap(),
            InitOutcome::Resumed
        );
        // The recovered context continues from (t, h).
        let r2 = invoke(&mut ctx2, 1, r1.t, r1.h, b"b").unwrap();
        assert_eq!(r2.t, SeqNo(2));
        assert_eq!(ctx2.functionality().entries().len(), 2);
    }

    #[test]
    fn restore_on_other_platform_fails_unseal() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        invoke(&mut ctx, 1, SeqNo::ZERO, ChainValue::GENESIS, b"a").unwrap();
        let blobs = ctx.persist_blobs().unwrap();

        let mut ctx2 = TrustedContext::<AppendLog>::new(services(&world, 2));
        assert!(matches!(
            ctx2.init(Some(&blobs.key_blob), Some(&blobs.state_blob), false),
            Err(LcmError::Violation(Violation::BadAuthentication))
        ));
    }

    #[test]
    fn missing_state_with_keys_halts() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        let blobs = ctx.persist_blobs().unwrap();
        let mut ctx2 = TrustedContext::<AppendLog>::new(services(&world, 1));
        assert!(matches!(
            ctx2.init(Some(&blobs.key_blob), None, false),
            Err(LcmError::Violation(Violation::BadAuthentication))
        ));
    }

    #[test]
    fn rollback_attack_detected_by_next_client_context() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        let r1 = invoke(&mut ctx, 1, SeqNo::ZERO, ChainValue::GENESIS, b"a").unwrap();
        let stale_blobs = ctx.persist_blobs().unwrap();
        let r2 = invoke(&mut ctx, 1, r1.t, r1.h, b"b").unwrap();

        // Malicious host restarts T from the STALE blob.
        let mut rolled = TrustedContext::<AppendLog>::new(services(&world, 1));
        rolled
            .init(
                Some(&stale_blobs.key_blob),
                Some(&stale_blobs.state_blob),
                false,
            )
            .unwrap();
        // Client 1's real context is (r2.t, r2.h); the rolled-back T
        // only knows (r1.t, r1.h) ⇒ mismatch ⇒ detected.
        let err = invoke(&mut rolled, 1, r2.t, r2.h, b"c").unwrap_err();
        assert!(matches!(
            err,
            LcmError::Violation(Violation::ContextMismatch { claimed, recorded, .. })
                if claimed == r2.t && recorded == r1.t
        ));
    }

    #[test]
    fn admin_add_and_remove_client() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        let admin_key = AeadKey::from_secret(&SecretKey::from_bytes([3u8; 32]));

        let mut w = Writer::new();
        w.put_u64(1);
        AdminOp::AddClient(ClientId(4)).encode(&mut w);
        let wire = aead::auth_encrypt(&admin_key, &w.into_bytes(), LABEL_ADMIN).unwrap();
        let (reply_wire, _) = ctx.handle_admin(&wire).unwrap();
        let plain = aead::auth_decrypt(&admin_key, &reply_wire, LABEL_ADMIN).unwrap();
        let mut r = Reader::new(&plain);
        assert_eq!(r.get_u64().unwrap(), 1);
        assert_eq!(AdminReply::decode(&mut r).unwrap(), AdminReply::Ok);

        // The new client can now invoke.
        invoke(&mut ctx, 4, SeqNo::ZERO, ChainValue::GENESIS, b"hello").unwrap();

        // Remove client 4 and rotate kC.
        let new_kc = SecretKey::from_bytes([9u8; 32]);
        let mut w = Writer::new();
        w.put_u64(2);
        AdminOp::RemoveClient(ClientId(4), new_kc.clone()).encode(&mut w);
        let wire = aead::auth_encrypt(&admin_key, &w.into_bytes(), LABEL_ADMIN).unwrap();
        ctx.handle_admin(&wire).unwrap();

        // Old-key messages now fail authentication (client locked out).
        let msg = InvokeMsg {
            client: ClientId(1),
            tc: SeqNo::ZERO,
            hc: ChainValue::GENESIS,
            retry: false,
            op: b"x".to_vec(),
        };
        assert!(matches!(
            ctx.handle_invoke(&encrypt_invoke(&msg)),
            Err(LcmError::Violation(Violation::BadAuthentication))
        ));
    }

    #[test]
    fn admin_replay_halts() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        let admin_key = AeadKey::from_secret(&SecretKey::from_bytes([3u8; 32]));
        let mut w = Writer::new();
        w.put_u64(1);
        AdminOp::Status.encode(&mut w);
        let wire = aead::auth_encrypt(&admin_key, &w.into_bytes(), LABEL_ADMIN).unwrap();
        ctx.handle_admin(&wire).unwrap();
        assert!(matches!(
            ctx.handle_admin(&wire),
            Err(LcmError::Violation(Violation::AdminReplay))
        ));
    }

    #[test]
    fn migration_transfers_state_across_platforms() {
        let world = world();
        let (mut origin, _) = provisioned_context(&world);
        let r1 = invoke(&mut origin, 1, SeqNo::ZERO, ChainValue::GENESIS, b"a").unwrap();

        let ticket = origin.export_migration().unwrap();
        assert_eq!(origin.phase(), Phase::Migrated);
        // Origin refuses further work.
        assert!(invoke(&mut origin, 2, SeqNo::ZERO, ChainValue::GENESIS, b"x").is_err());

        // Target on a DIFFERENT platform.
        let mut target = TrustedContext::<AppendLog>::new(services(&world, 2));
        target.init(None, None, false).unwrap();
        let blobs = target.import_migration(&ticket).unwrap();
        assert!(!blobs.key_blob.is_empty());

        // Clients continue seamlessly against the target.
        let r2 = invoke(&mut target, 1, r1.t, r1.h, b"b").unwrap();
        assert_eq!(r2.t, SeqNo(2));
        assert_eq!(target.functionality().entries().len(), 2);
    }

    #[test]
    fn migration_ticket_rejected_by_other_program_world() {
        let world_a = TeeWorld::new_deterministic(1);
        let world_b = TeeWorld::new_deterministic(2);
        let (mut origin, _) = provisioned_context(&world_a);
        let ticket = origin.export_migration().unwrap();

        let mut target = TrustedContext::<AppendLog>::new(services(&world_b, 9));
        target.init(None, None, false).unwrap();
        assert!(matches!(
            target.import_migration(&ticket),
            Err(LcmError::Violation(Violation::BadAuthentication))
        ));
    }

    #[test]
    fn provision_twice_rejected() {
        let world = world();
        let (mut ctx, _) = provisioned_context(&world);
        let payload = provision_payload();
        let channel =
            AeadKey::from_secret(&world.admin_provision_key(&Measurement::of_program(M_NAME, "1")));
        let sealed = aead::auth_encrypt(&channel, &payload.to_bytes(), LABEL_PROVISION).unwrap();
        assert_eq!(ctx.provision(&sealed), Err(LcmError::AlreadyProvisioned));
    }

    #[test]
    fn provision_payload_codec_roundtrip() {
        let p = provision_payload();
        assert_eq!(ProvisionPayload::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn attest_binds_identity_into_user_data() {
        let world = world();
        let challenge = lcm_crypto::sha256::digest(b"challenge");

        // Unprovisioned: the report binds the *absence* of identity.
        let mut fresh = TrustedContext::<AppendLog>::new(services(&world, 3));
        fresh.init(None, None, false).unwrap();
        assert_eq!(
            fresh.attest(challenge).user_data,
            attest_user_data(&challenge, None)
        );

        // Provisioned: the report binds the installed identity, and is
        // distinguishable from both the raw challenge and the
        // unprovisioned binding.
        let (ctx, _) = provisioned_context(&world);
        let bound = ctx.attest(challenge).user_data;
        assert_eq!(ctx.identity(), Some(ShardIdentity::SOLO));
        assert_eq!(
            bound,
            attest_user_data(&challenge, Some(ShardIdentity::SOLO))
        );
        assert_ne!(bound, challenge);
        assert_ne!(bound, attest_user_data(&challenge, None));
        // Different identities bind differently.
        assert_ne!(
            attest_user_data(&challenge, Some(ShardIdentity::new(0, 4))),
            attest_user_data(&challenge, Some(ShardIdentity::new(1, 4)))
        );
    }

    /// Provisions a context claiming shard `index` of `count`.
    fn provisioned_with_identity(
        world: &TeeWorld,
        identity: ShardIdentity,
    ) -> TrustedContext<AppendLog> {
        let mut ctx = TrustedContext::<AppendLog>::new(services(world, 1));
        ctx.init(None, None, false).unwrap();
        let payload = ProvisionPayload {
            identity,
            ..provision_payload()
        };
        let channel =
            AeadKey::from_secret(&world.admin_provision_key(&Measurement::of_program(M_NAME, "1")));
        let sealed = aead::auth_encrypt(&channel, &payload.to_bytes(), LABEL_PROVISION).unwrap();
        ctx.provision(&sealed).unwrap();
        ctx
    }

    #[test]
    fn intact_wire_delivered_to_wrong_shard_halts() {
        // The enclave is shard `wrong` of 4; client 1's (client-routed)
        // operations map to shard `home` != wrong. An intact,
        // perfectly authenticated first-op wire must be rejected as a
        // WrongShard violation — no client history exists anywhere.
        let world = world();
        let home = crate::shard::shard_index(crate::shard::route_for(ClientId(1), None), 4);
        let wrong = (home + 1) % 4;
        let mut ctx = provisioned_with_identity(&world, ShardIdentity::new(wrong, 4));

        let msg = InvokeMsg {
            client: ClientId(1),
            tc: SeqNo::ZERO,
            hc: ChainValue::GENESIS,
            retry: false,
            op: b"first-ever".to_vec(),
        };
        let err = ctx.handle_invoke(&encrypt_invoke(&msg)).unwrap_err();
        assert!(
            matches!(
                err,
                LcmError::Violation(Violation::WrongShard { delivered_to, owner, .. })
                    if delivered_to == wrong && owner == home
            ),
            "got {err:?}"
        );
        assert_eq!(ctx.phase(), Phase::Halted);
    }

    #[test]
    fn correctly_routed_wire_accepted_by_matching_identity() {
        let world = world();
        let home = crate::shard::shard_index(crate::shard::route_for(ClientId(1), None), 4);
        let mut ctx = provisioned_with_identity(&world, ShardIdentity::new(home, 4));
        let reply = invoke(&mut ctx, 1, SeqNo::ZERO, ChainValue::GENESIS, b"op").unwrap();
        assert_eq!(reply.t, SeqNo(1));
    }

    #[test]
    fn envelope_lying_about_its_operation_halts() {
        use crate::functionality::Counter;
        // A 4-shard Counter enclave: the envelope route maps to this
        // shard (so delivery looks right), but the decrypted operation
        // names a counter whose key maps elsewhere. The recomputed
        // route must win: the enclave refuses to execute state it does
        // not own.
        let world = world();
        let mut ctx = TrustedContext::<Counter>::new(services(&world, 1));
        ctx.init(None, None, false).unwrap();
        let this_shard = 2u32;
        let payload = ProvisionPayload {
            identity: ShardIdentity::new(this_shard, 4),
            ..provision_payload()
        };
        let channel =
            AeadKey::from_secret(&world.admin_provision_key(&Measurement::of_program(M_NAME, "1")));
        let sealed = aead::auth_encrypt(&channel, &payload.to_bytes(), LABEL_PROVISION).unwrap();
        ctx.provision(&sealed).unwrap();

        // A counter name owned by a different shard.
        let foreign = (0..64u32)
            .map(|i| format!("n{i}").into_bytes())
            .find(|n| crate::shard::shard_index(crate::shard::route_hash(n), 4) != this_shard)
            .unwrap();
        // An envelope route that maps to THIS shard (forged consistent
        // delivery) — any u32 with the right residue.
        let lying_route = (0..u32::MAX)
            .find(|&r| crate::shard::shard_index(r, 4) == this_shard)
            .unwrap();
        let msg = InvokeMsg {
            client: ClientId(1),
            tc: SeqNo::ZERO,
            hc: ChainValue::GENESIS,
            retry: false,
            op: Counter::inc_op(&foreign, 1),
        };
        let hint = crate::wire::RouteHint {
            client: ClientId(1),
            route: lying_route,
            seq: 0,
            epoch: 0,
        };
        let ct = aead::auth_encrypt(
            &client_key(),
            &msg.to_bytes(),
            &invoke_aad(ClientId(1), lying_route, 0, 0),
        )
        .unwrap();
        let mut wire = Vec::new();
        hint.encode_to(&mut wire);
        wire.extend_from_slice(&ct);

        let err = ctx.handle_invoke(&wire).unwrap_err();
        assert!(
            matches!(
                err,
                LcmError::Violation(Violation::WrongShard { delivered_to, .. })
                    if delivered_to == this_shard
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn identity_survives_seal_restore_and_migration() {
        let world = world();
        let identity = ShardIdentity::new(3, 4);
        let mut ctx = provisioned_with_identity(&world, identity);
        let blobs = ctx.persist_blobs().unwrap();

        // Reboot on the same platform: identity recovered from the
        // sealed state.
        let mut resumed = TrustedContext::<AppendLog>::new(services(&world, 1));
        resumed
            .init(Some(&blobs.key_blob), Some(&blobs.state_blob), false)
            .unwrap();
        assert_eq!(resumed.identity(), Some(identity));

        // Migration to another platform: the ticket carries the
        // identity, so the target takes the origin's place.
        let ticket = resumed.export_migration().unwrap();
        let mut target = TrustedContext::<AppendLog>::new(services(&world, 2));
        target.init(None, None, false).unwrap();
        target.import_migration(&ticket).unwrap();
        assert_eq!(target.identity(), Some(identity));
    }

    #[test]
    fn shard_identity_decode_rejects_nonsense() {
        let mut w = Writer::new();
        w.put_u32(5);
        w.put_u32(4); // index >= count
        assert!(ShardIdentity::decode(&mut Reader::new(&w.into_bytes())).is_err());
        let mut w = Writer::new();
        w.put_u32(0);
        w.put_u32(0); // count == 0
        assert!(ShardIdentity::decode(&mut Reader::new(&w.into_bytes())).is_err());
    }

    #[test]
    fn invoke_before_provision_rejected() {
        let world = world();
        let mut ctx = TrustedContext::<AppendLog>::new(services(&world, 1));
        ctx.init(None, None, false).unwrap();
        assert_eq!(
            ctx.handle_invoke(b"whatever"),
            Err(LcmError::NotProvisioned)
        );
    }
}
