//! Core identifiers and sequence types of the LCM protocol.

use std::fmt;

use lcm_crypto::sha256::{self, Digest};
use serde::{Deserialize, Serialize};

use crate::codec::{CodecError, Reader, WireCodec, Writer};

/// Identifier of one client in the group (the `i` of the paper).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u32);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl WireCodec for ClientId {
    fn encode(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ClientId(r.get_u32()?))
    }
}

/// A global operation sequence number assigned by the trusted context
/// (the `t` of the paper). `SeqNo(0)` means "no operation yet".
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct SeqNo(pub u64);

impl SeqNo {
    /// The sequence number before any operation.
    pub const ZERO: SeqNo = SeqNo(0);

    /// The next sequence number.
    #[must_use]
    pub fn next(self) -> SeqNo {
        SeqNo(self.0 + 1)
    }
}

impl fmt::Display for SeqNo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl WireCodec for SeqNo {
    fn encode(&self, w: &mut Writer) {
        w.put_u64(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SeqNo(r.get_u64()?))
    }
}

/// A value of the operation hash chain (the `h` / `hc` of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ChainValue(pub Digest);

impl ChainValue {
    /// The genesis chain value `h0` (all zeros), used by both `T` and
    /// clients before any operation.
    pub const GENESIS: ChainValue = ChainValue(Digest::ZERO);

    /// Extends the chain with one operation, computing
    /// `hash(h ‖ o ‖ t ‖ i)` exactly as in Alg. 2.
    #[must_use]
    pub fn extend(&self, op: &[u8], seq: SeqNo, client: ClientId) -> ChainValue {
        ChainValue(sha256::digest_parts(&[
            self.0.as_bytes(),
            op,
            &seq.0.to_be_bytes(),
            &client.0.to_be_bytes(),
        ]))
    }
}

impl Default for ChainValue {
    fn default() -> Self {
        ChainValue::GENESIS
    }
}

impl fmt::Display for ChainValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.12}", self.0.to_hex())
    }
}

impl WireCodec for ChainValue {
    fn encode(&self, w: &mut Writer) {
        w.put_digest(&self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(ChainValue(r.get_digest()?))
    }
}

/// The outcome of a completed operation, returned to the application by
/// the client library (the `(r, t, q)` triple of Alg. 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The operation result produced by the functionality `F`.
    pub result: Vec<u8>,
    /// The global sequence number assigned to this operation.
    pub seq: SeqNo,
    /// The latest sequence number stable among a majority of clients.
    pub stable: SeqNo,
}

impl Completion {
    /// Whether this very operation is already known majority-stable.
    pub fn self_stable(&self) -> bool {
        self.stable >= self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqno_next_increments() {
        assert_eq!(SeqNo(0).next(), SeqNo(1));
        assert_eq!(SeqNo(41).next(), SeqNo(42));
    }

    #[test]
    fn chain_extend_is_deterministic() {
        let a = ChainValue::GENESIS.extend(b"op", SeqNo(1), ClientId(2));
        let b = ChainValue::GENESIS.extend(b"op", SeqNo(1), ClientId(2));
        assert_eq!(a, b);
    }

    #[test]
    fn chain_extend_binds_all_inputs() {
        let base = ChainValue::GENESIS.extend(b"op", SeqNo(1), ClientId(2));
        assert_ne!(
            base,
            ChainValue::GENESIS.extend(b"oq", SeqNo(1), ClientId(2))
        );
        assert_ne!(
            base,
            ChainValue::GENESIS.extend(b"op", SeqNo(2), ClientId(2))
        );
        assert_ne!(
            base,
            ChainValue::GENESIS.extend(b"op", SeqNo(1), ClientId(3))
        );
        let other_parent = base.extend(b"op", SeqNo(1), ClientId(2));
        assert_ne!(base, other_parent);
    }

    #[test]
    fn wire_roundtrips() {
        let id = ClientId(77);
        let seq = SeqNo(123_456);
        let chain = ChainValue::GENESIS.extend(b"x", SeqNo(1), ClientId(1));
        assert_eq!(ClientId::from_bytes(&id.to_bytes()).unwrap(), id);
        assert_eq!(SeqNo::from_bytes(&seq.to_bytes()).unwrap(), seq);
        assert_eq!(ChainValue::from_bytes(&chain.to_bytes()).unwrap(), chain);
    }

    #[test]
    fn completion_self_stability() {
        let c = Completion {
            result: vec![],
            seq: SeqNo(5),
            stable: SeqNo(5),
        };
        assert!(c.self_stable());
        let c2 = Completion {
            result: vec![],
            seq: SeqNo(6),
            stable: SeqNo(5),
        };
        assert!(!c2.self_stable());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", ClientId(3)), "C3");
        assert_eq!(format!("{}", SeqNo(9)), "#9");
        assert_eq!(format!("{}", ChainValue::GENESIS).len(), 12);
    }
}
