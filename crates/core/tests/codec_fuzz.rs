//! Robustness property tests: decoding arbitrary attacker-supplied
//! bytes must never panic, and valid encodings must roundtrip.
//!
//! Everything that crosses a trust boundary is covered: wire messages,
//! host calls/replies, the V map, provisioning payloads.

use lcm_core::codec::{Reader, WireCodec, Writer};
use lcm_core::program::{HostCall, HostReply};
use lcm_core::stability::{decode_vmap, encode_vmap, CachedReply, Quorum, VEntry, VMap};
use lcm_core::types::{ChainValue, ClientId, SeqNo};
use lcm_core::wire::{InvokeMsg, ReplyMsg};
use proptest::prelude::*;

fn arb_chain() -> impl Strategy<Value = ChainValue> {
    (any::<Vec<u8>>(), any::<u64>(), any::<u32>())
        .prop_map(|(op, t, i)| ChainValue::GENESIS.extend(&op, SeqNo(t), ClientId(i)))
}

fn arb_invoke() -> impl Strategy<Value = InvokeMsg> {
    (
        any::<u32>(),
        any::<u64>(),
        arb_chain(),
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(|(client, tc, hc, retry, op)| InvokeMsg {
            client: ClientId(client),
            tc: SeqNo(tc),
            hc,
            retry,
            op,
        })
}

fn arb_reply() -> impl Strategy<Value = ReplyMsg> {
    (
        any::<u64>(),
        any::<u64>(),
        arb_chain(),
        arb_chain(),
        any::<bool>(),
        proptest::collection::vec(any::<u8>(), 0..512),
    )
        .prop_map(|(t, q, h, hc_echo, redirect, result)| ReplyMsg {
            t: SeqNo(t),
            q: SeqNo(q),
            h,
            hc_echo,
            redirect,
            result,
        })
}

fn arb_ventry() -> impl Strategy<Value = VEntry> {
    (
        any::<u64>(),
        any::<u64>(),
        arb_chain(),
        proptest::option::of((
            any::<u64>(),
            any::<u64>(),
            arb_chain(),
            arb_chain(),
            any::<bool>(),
            proptest::collection::vec(any::<u8>(), 0..64),
        )),
    )
        .prop_map(|(ta, t, h, cached)| VEntry {
            ta: SeqNo(ta),
            t: SeqNo(t),
            h,
            cached: cached.map(|(t, q, h, hc, redirect, result)| CachedReply {
                t: SeqNo(t),
                q: SeqNo(q),
                h,
                hc_echo: hc,
                redirect,
                result,
            }),
        })
}

proptest! {
    /// Arbitrary bytes never panic any decoder.
    #[test]
    fn decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = InvokeMsg::from_bytes(&bytes);
        let _ = ReplyMsg::from_bytes(&bytes);
        let _ = HostCall::from_bytes(&bytes);
        let _ = HostReply::from_bytes(&bytes);
        let _ = Quorum::from_bytes(&bytes);
        let mut r = Reader::new(&bytes);
        let _ = decode_vmap(&mut r);
    }

    /// InvokeMsg roundtrips for arbitrary field values.
    #[test]
    fn invoke_roundtrips(msg in arb_invoke()) {
        prop_assert_eq!(InvokeMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }

    /// ReplyMsg roundtrips for arbitrary field values.
    #[test]
    fn reply_roundtrips(msg in arb_reply()) {
        prop_assert_eq!(ReplyMsg::from_bytes(&msg.to_bytes()).unwrap(), msg);
    }

    /// VMap encoding is canonical: decode(encode(v)) == v and encoding
    /// is deterministic.
    #[test]
    fn vmap_roundtrips(entries in proptest::collection::btree_map(
        any::<u32>().prop_map(ClientId), arb_ventry(), 0..16)) {
        let v: VMap = entries;
        let mut w = Writer::new();
        encode_vmap(&v, &mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let decoded = decode_vmap(&mut r).unwrap();
        r.finish().unwrap();
        prop_assert_eq!(decoded, v.clone());

        let mut w2 = Writer::new();
        encode_vmap(&v, &mut w2);
        prop_assert_eq!(bytes, w2.into_bytes());
    }

    /// Truncating any valid encoding at any point yields an error (or,
    /// for trailing-payload messages, a shorter but valid value) —
    /// never a panic.
    #[test]
    fn truncation_is_graceful(msg in arb_invoke(), cut in 0usize..512) {
        let bytes = msg.to_bytes();
        let cut = cut % (bytes.len() + 1);
        let _ = InvokeMsg::from_bytes(&bytes[..cut]);
    }

    /// Host calls roundtrip.
    #[test]
    fn host_call_roundtrips(
        batch in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 0..8)
    ) {
        let call = HostCall::InvokeBatch(batch);
        prop_assert_eq!(HostCall::from_bytes(&call.to_bytes()).unwrap(), call);
    }
}
