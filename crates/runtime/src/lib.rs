//! # lcm-runtime — a small hand-rolled concurrency runtime
//!
//! The build environment has no registry access, so instead of tokio or
//! crossbeam this crate provides the minimal set of primitives the LCM
//! server pipeline needs, built purely on `std::sync` + `std::thread`
//! (in the same spirit as the workspace's `vendor/` shims):
//!
//! * [`queue::BoundedQueue`] — an MPMC blocking queue with a hard
//!   capacity bound. Producers block when the queue is full: this is
//!   the **back-pressure** mechanism of the server pipeline — a slow
//!   disk eventually slows the enclave instead of buffering unbounded
//!   sealed state in memory.
//! * [`pool::WorkerPool`] — a fixed set of worker threads draining a
//!   shared job queue, with [`task::JoinHandle`]s for results.
//! * [`stage::StageWorker`] — the reactor loop of one pipeline stage: a
//!   dedicated thread that reacts to items arriving on its bounded
//!   inbox, with `flush` (wait until everything submitted so far has
//!   been handled) and `discard_pending` (model a power failure that
//!   loses queued-but-unwritten work).
//!
//! `lcm-core`'s `PipelinedServer` chains three stages with these
//! pieces: request intake → enclave execution → persistence, where the
//! persistence stage runs on a [`stage::StageWorker`] so sealing I/O
//! overlaps execution of the next batch (the paper's *asynchronous
//! write* mode under real concurrency).
//!
//! ## Example
//!
//! ```
//! use lcm_runtime::stage::StageWorker;
//! use std::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let sum = Arc::new(AtomicU64::new(0));
//! let sink = sum.clone();
//! let mut stage = StageWorker::spawn("adder", 4, move |n: u64| {
//!     sink.fetch_add(n, Ordering::SeqCst);
//! });
//! for n in 1..=10u64 {
//!     stage.submit(n).unwrap();
//! }
//! stage.flush();
//! assert_eq!(sum.load(Ordering::SeqCst), 55);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod queue;
pub mod stage;
pub mod task;

pub use pool::WorkerPool;
pub use queue::{BoundedQueue, PushError, QueueStats};
pub use stage::StageWorker;
pub use task::JoinHandle;
