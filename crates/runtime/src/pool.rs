//! A fixed worker pool draining a shared bounded job queue.

use std::sync::Arc;
use std::thread;

use crate::queue::{BoundedQueue, QueueStats};
use crate::task::{promise, JoinHandle};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A set of worker threads executing submitted closures.
///
/// The job queue is bounded: submitting into a saturated pool blocks,
/// propagating back-pressure to the producer instead of buffering
/// unbounded work.
pub struct WorkerPool {
    queue: Arc<BoundedQueue<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("queued", &self.queue.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` threads (min 1) named `{name}-{i}`, sharing a
    /// job queue of `queue_capacity` slots.
    pub fn new(name: &str, workers: usize, queue_capacity: usize) -> Self {
        let queue: Arc<BoundedQueue<Job>> = Arc::new(BoundedQueue::new(queue_capacity));
        let handles = (0..workers.max(1))
            .map(|i| {
                let queue = queue.clone();
                thread::Builder::new()
                    .name(format!("{name}-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.pop() {
                            job();
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            queue,
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Job-queue activity counters (back-pressure visibility).
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Submits a fire-and-forget job, blocking while the queue is full.
    /// Returns `false` if the pool is already shut down.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) -> bool {
        self.queue.push(Box::new(job)).is_ok()
    }

    /// Submits a job and returns a [`JoinHandle`] for its result.
    /// If the pool is already shut down the handle joins to `None`.
    pub fn spawn<T, F>(&self, f: F) -> JoinHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = promise();
        let accepted = self.queue.push(Box::new(move || tx.complete(f())));
        // A rejected job drops its Completer, abandoning the handle.
        drop(accepted);
        rx
    }

    /// Closes the queue, lets the workers drain the remaining jobs, and
    /// joins them.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn jobs_run_and_results_join() {
        let pool = WorkerPool::new("test", 4, 8);
        let handles: Vec<_> = (0..16u64).map(|i| pool.spawn(move || i * i)).collect();
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(total, (0..16u64).map(|i| i * i).sum());
    }

    #[test]
    fn shutdown_drains_pending_jobs() {
        let counter = Arc::new(AtomicU64::new(0));
        let pool = WorkerPool::new("drain", 1, 32);
        for _ in 0..20 {
            let c = counter.clone();
            assert!(pool.execute(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn spawn_after_shutdown_abandons_handle() {
        let pool = WorkerPool::new("late", 1, 4);
        pool.queue.close();
        let h = pool.spawn(|| 1u32);
        assert_eq!(h.join(), None);
    }
}
