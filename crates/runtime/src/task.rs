//! One-shot result slots for work handed to another thread.

use std::sync::{Arc, Condvar, Mutex};

enum SlotState<T> {
    Pending,
    Done(T),
    /// The producer was dropped (worker died or pool shut down) without
    /// delivering a value.
    Abandoned,
}

struct Slot<T> {
    state: Mutex<SlotState<T>>,
    ready: Condvar,
}

/// The producing side of a [`JoinHandle`]: delivers exactly one value.
///
/// Dropping a `Completer` without calling [`Completer::complete`]
/// marks the handle abandoned, waking any joiner with `None`.
pub struct Completer<T> {
    slot: Arc<Slot<T>>,
    completed: bool,
}

impl<T> Completer<T> {
    /// Delivers the result, waking the joiner.
    pub fn complete(mut self, value: T) {
        self.completed = true;
        let mut st = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        *st = SlotState::Done(value);
        drop(st);
        self.slot.ready.notify_all();
    }
}

impl<T> Drop for Completer<T> {
    fn drop(&mut self) {
        if !self.completed {
            let mut st = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
            if matches!(*st, SlotState::Pending) {
                *st = SlotState::Abandoned;
            }
            drop(st);
            self.slot.ready.notify_all();
        }
    }
}

/// A handle on work executing elsewhere; [`JoinHandle::join`] blocks
/// until the result is delivered.
pub struct JoinHandle<T> {
    slot: Arc<Slot<T>>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JoinHandle")
    }
}

impl<T> JoinHandle<T> {
    /// Blocks until the worker delivers the result. Returns `None` if
    /// the worker abandoned the task (e.g. the pool shut down first).
    pub fn join(self) -> Option<T> {
        let mut st = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match std::mem::replace(&mut *st, SlotState::Pending) {
                SlotState::Done(v) => return Some(v),
                SlotState::Abandoned => return None,
                SlotState::Pending => {
                    st = self.slot.ready.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    /// Non-blocking check: returns the result if it is already in.
    pub fn try_join(self) -> Result<Option<T>, Self> {
        let mut st = self.slot.state.lock().unwrap_or_else(|e| e.into_inner());
        match std::mem::replace(&mut *st, SlotState::Pending) {
            SlotState::Done(v) => Ok(Some(v)),
            SlotState::Abandoned => Ok(None),
            SlotState::Pending => {
                drop(st);
                Err(self)
            }
        }
    }
}

/// Creates a connected producer/consumer pair for one result.
pub fn promise<T>() -> (Completer<T>, JoinHandle<T>) {
    let slot = Arc::new(Slot {
        state: Mutex::new(SlotState::Pending),
        ready: Condvar::new(),
    });
    (
        Completer {
            slot: slot.clone(),
            completed: false,
        },
        JoinHandle { slot },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn join_receives_value() {
        let (tx, rx) = promise();
        thread::spawn(move || tx.complete(99));
        assert_eq!(rx.join(), Some(99));
    }

    #[test]
    fn dropped_completer_abandons() {
        let (tx, rx) = promise::<u32>();
        drop(tx);
        assert_eq!(rx.join(), None);
    }

    #[test]
    fn try_join_pending_then_done() {
        let (tx, rx) = promise();
        let rx = match rx.try_join() {
            Err(rx) => rx,
            Ok(_) => panic!("nothing delivered yet"),
        };
        tx.complete(5);
        assert_eq!(rx.try_join().unwrap(), Some(5));
    }
}
