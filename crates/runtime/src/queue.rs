//! A blocking MPMC queue with a hard capacity bound.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Counters describing a queue's lifetime activity.
///
/// `blocked_pushes` is the back-pressure signal: how many times a
/// producer found the queue full and had to wait for the consumer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Items accepted by [`BoundedQueue::push`] / `try_push`.
    pub pushed: u64,
    /// Items handed out by [`BoundedQueue::pop`] / `try_pop`.
    pub popped: u64,
    /// Number of `push` calls that blocked because the queue was full.
    pub blocked_pushes: u64,
    /// Maximum queue depth ever observed.
    pub high_water: usize,
}

impl QueueStats {
    /// Folds another queue's counters into this one — the rollup
    /// primitive for multi-queue pipelines (one ingress queue per
    /// shard): throughput counters add, `high_water` takes the worst
    /// single queue.
    pub fn absorb(&mut self, other: &QueueStats) {
        self.pushed += other.pushed;
        self.popped += other.popped;
        self.blocked_pushes += other.blocked_pushes;
        self.high_water = self.high_water.max(other.high_water);
    }
}

/// Error returned by [`BoundedQueue::try_push`], giving the item back.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was at capacity.
    Full(T),
    /// The queue has been closed; no further items are accepted.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
    stats: QueueStats,
}

/// A bounded blocking queue: `push` blocks while full, `pop` blocks
/// while empty. Closing wakes all waiters; a closed queue rejects new
/// items but drains the ones already queued.
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &st.items.len())
            .field("closed", &st.closed)
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
                stats: QueueStats::default(),
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime activity counters.
    pub fn stats(&self) -> QueueStats {
        self.lock().stats
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues `item`, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the item back if the queue has been closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.lock();
        if st.items.len() >= self.capacity && !st.closed {
            st.stats.blocked_pushes += 1;
            while st.items.len() >= self.capacity && !st.closed {
                st = self.wait_not_full(st);
            }
        }
        if st.closed {
            return Err(item);
        }
        st.items.push_back(item);
        st.stats.pushed += 1;
        st.stats.high_water = st.stats.high_water.max(st.items.len());
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    fn wait_not_full<'a>(
        &self,
        guard: std::sync::MutexGuard<'a, State<T>>,
    ) -> std::sync::MutexGuard<'a, State<T>> {
        self.not_full.wait(guard).unwrap_or_else(|e| e.into_inner())
    }

    /// Enqueues `item` without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when at capacity, [`PushError::Closed`] when
    /// closed; both return the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut st = self.lock();
        if st.closed {
            return Err(PushError::Closed(item));
        }
        if st.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        st.items.push_back(item);
        st.stats.pushed += 1;
        st.stats.high_water = st.stats.high_water.max(st.items.len());
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                st.stats.popped += 1;
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Dequeues the next item, blocking at most `timeout` while the
    /// queue is empty. Returns `None` on timeout or once the queue is
    /// closed *and* drained — the caller distinguishes the two through
    /// [`BoundedQueue::is_closed`] if it matters.
    pub fn pop_timeout(&self, timeout: std::time::Duration) -> Option<T> {
        let deadline = std::time::Instant::now() + timeout;
        let mut st = self.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                st.stats.popped += 1;
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            let now = std::time::Instant::now();
            let left = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())?;
            let (guard, _timed_out) = self
                .not_empty
                .wait_timeout(st, left)
                .unwrap_or_else(|e| e.into_inner());
            st = guard;
        }
    }

    /// Dequeues the next item without blocking.
    pub fn try_pop(&self) -> Option<T> {
        let mut st = self.lock();
        let item = st.items.pop_front()?;
        st.stats.popped += 1;
        drop(st);
        self.not_full.notify_one();
        Some(item)
    }

    /// Removes and returns every queued item without handling it —
    /// models losing the in-flight window (e.g. a power failure before
    /// buffered writes reach the medium).
    pub fn drain_pending(&self) -> Vec<T> {
        let mut st = self.lock();
        let items: Vec<T> = st.items.drain(..).collect();
        st.stats.popped += items.len() as u64;
        drop(st);
        self.not_full.notify_all();
        items
    }

    /// Closes the queue: producers get their item back, consumers drain
    /// what is left and then see `None`.
    pub fn close(&self) {
        let mut st = self.lock();
        st.closed = true;
        drop(st);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn fifo_roundtrip() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn try_push_reports_full_then_accepts_after_pop() {
        let q = BoundedQueue::new(1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(PushError::Full(2)));
        assert_eq!(q.try_pop(), Some(1));
        q.try_push(2).unwrap();
    }

    #[test]
    fn close_rejects_pushes_but_drains() {
        let q = BoundedQueue::new(4);
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.push(8), Err(8));
        assert_eq!(q.try_push(9), Err(PushError::Closed(9)));
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_push_counts_backpressure_and_unblocks() {
        let q = Arc::new(BoundedQueue::new(1));
        q.push(1).unwrap();
        let producer = {
            let q = q.clone();
            thread::spawn(move || q.push(2))
        };
        // Give the producer time to block, then free a slot.
        while q.stats().blocked_pushes == 0 {
            thread::yield_now();
        }
        assert_eq!(q.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.stats().blocked_pushes, 1);
    }

    #[test]
    fn pop_timeout_expires_then_delivers() {
        use std::time::Duration;
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), None);
        q.push(9).unwrap();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), Some(9));
        q.close();
        assert_eq!(q.pop_timeout(Duration::from_millis(5)), None);
        assert!(q.is_closed());
    }

    #[test]
    fn pop_blocks_until_item_arrives() {
        let q = Arc::new(BoundedQueue::new(2));
        let consumer = {
            let q = q.clone();
            thread::spawn(move || q.pop())
        };
        thread::sleep(std::time::Duration::from_millis(5));
        q.push(42).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(42));
    }

    #[test]
    fn stats_absorb_rolls_up_counters() {
        let a = QueueStats {
            pushed: 10,
            popped: 8,
            blocked_pushes: 1,
            high_water: 4,
        };
        let b = QueueStats {
            pushed: 3,
            popped: 3,
            blocked_pushes: 0,
            high_water: 7,
        };
        let mut total = QueueStats::default();
        total.absorb(&a);
        total.absorb(&b);
        assert_eq!(total.pushed, 13);
        assert_eq!(total.popped, 11);
        assert_eq!(total.blocked_pushes, 1);
        assert_eq!(total.high_water, 7, "worst single queue, not a sum");
    }

    #[test]
    fn drain_pending_discards_queued_items() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.drain_pending(), vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
        let st = q.stats();
        assert_eq!(st.pushed, 5);
        assert_eq!(st.popped, 5);
        assert_eq!(st.high_water, 5);
    }
}
