//! One pipeline stage: a dedicated thread reacting to items on a
//! bounded inbox.

use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use crate::queue::{BoundedQueue, QueueStats};

/// Monotone progress counter the worker bumps after disposing of each
/// item; `flush` waits on it.
struct Progress {
    done: Mutex<u64>,
    advanced: Condvar,
}

impl Progress {
    fn add(&self, n: u64) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done += n;
        drop(done);
        self.advanced.notify_all();
    }

    fn wait_until(&self, target: u64) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while *done < target {
            done = self.advanced.wait(done).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A background worker consuming items of type `T` from a bounded
/// queue, in submission order, on its own thread.
///
/// This is the building block of the pipelined LCM server's
/// *persistence stage*: the enclave thread `submit`s sealed blobs and
/// keeps executing, while the stage thread writes them out. The
/// bounded inbox is the back-pressure valve — when the consumer falls
/// `capacity` items behind, `submit` blocks until it catches up.
///
/// Dropping the worker closes the inbox, drains what was accepted, and
/// joins the thread (a graceful shutdown never loses accepted items).
pub struct StageWorker<T> {
    queue: Arc<BoundedQueue<T>>,
    progress: Arc<Progress>,
    /// Items accepted via `submit` (all submission happens on the
    /// owning thread, so a plain counter suffices).
    submitted: u64,
    thread: Option<thread::JoinHandle<()>>,
}

impl<T> std::fmt::Debug for StageWorker<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageWorker")
            .field("submitted", &self.submitted)
            .field("pending", &self.queue.len())
            .finish()
    }
}

impl<T: Send + 'static> StageWorker<T> {
    /// Spawns a stage thread named `name` with an inbox of `capacity`
    /// slots, running `handler` on every item in FIFO order.
    pub fn spawn(name: &str, capacity: usize, mut handler: impl FnMut(T) + Send + 'static) -> Self {
        let queue = Arc::new(BoundedQueue::new(capacity));
        let progress = Arc::new(Progress {
            done: Mutex::new(0),
            advanced: Condvar::new(),
        });
        let thread = {
            let queue = queue.clone();
            let progress = progress.clone();
            thread::Builder::new()
                .name(name.to_string())
                .spawn(move || {
                    while let Some(item) = queue.pop() {
                        handler(item);
                        progress.add(1);
                    }
                })
                .expect("spawn stage worker thread")
        };
        StageWorker {
            queue,
            progress,
            submitted: 0,
            thread: Some(thread),
        }
    }
}

impl<T> StageWorker<T> {
    /// Hands `item` to the stage, blocking while the inbox is full
    /// (back-pressure).
    ///
    /// # Errors
    ///
    /// Returns the item back if the stage has already shut down.
    pub fn submit(&mut self, item: T) -> Result<(), T> {
        self.queue.push(item)?;
        self.submitted += 1;
        Ok(())
    }

    /// Blocks until every item submitted so far has been handled (or
    /// discarded).
    pub fn flush(&self) {
        self.progress.wait_until(self.submitted);
    }

    /// Discards items still waiting in the inbox — the power-failure
    /// model: work accepted but not yet written is lost. The item
    /// currently being handled (if any) completes. Returns how many
    /// items were dropped.
    pub fn discard_pending(&self) -> usize {
        let dropped = self.queue.drain_pending();
        let n = dropped.len();
        self.progress.add(n as u64);
        n
    }

    /// Items accepted so far.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Items waiting in the inbox right now.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Inbox activity counters (`blocked_pushes` = back-pressure
    /// events).
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }
}

impl<T> Drop for StageWorker<T> {
    fn drop(&mut self) {
        self.queue.close();
        if let Some(h) = self.thread.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    #[test]
    fn handles_items_in_order() {
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        let mut stage = StageWorker::spawn("order", 2, move |n: u32| {
            sink.lock().unwrap().push(n);
        });
        for n in 0..50 {
            stage.submit(n).unwrap();
        }
        stage.flush();
        assert_eq!(*seen.lock().unwrap(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn backpressure_blocks_submitters() {
        let count = Arc::new(AtomicU64::new(0));
        let sink = count.clone();
        let mut stage = StageWorker::spawn("slow", 1, move |_: u32| {
            thread::sleep(Duration::from_millis(2));
            sink.fetch_add(1, Ordering::SeqCst);
        });
        for n in 0..10 {
            stage.submit(n).unwrap();
        }
        stage.flush();
        assert_eq!(count.load(Ordering::SeqCst), 10);
        assert!(
            stage.queue_stats().blocked_pushes > 0,
            "a 1-slot inbox with a slow consumer must block producers"
        );
    }

    #[test]
    fn discard_pending_loses_unhandled_items() {
        let count = Arc::new(AtomicU64::new(0));
        let sink = count.clone();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let gate_w = gate.clone();
        let mut stage = StageWorker::spawn("gated", 16, move |_: u32| {
            let (lock, cv) = &*gate_w;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            sink.fetch_add(1, Ordering::SeqCst);
        });
        for n in 0..8 {
            stage.submit(n).unwrap();
        }
        // Wait until the worker has popped the first item and is stuck
        // in the handler, leaving exactly 7 queued.
        while stage.pending() != 7 {
            thread::yield_now();
        }
        let dropped = stage.discard_pending();
        assert_eq!(dropped, 7);
        // Open the gate: only the in-flight item completes.
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
        stage.flush();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn drop_drains_accepted_items() {
        let count = Arc::new(AtomicU64::new(0));
        let sink = count.clone();
        let mut stage = StageWorker::spawn("drain", 32, move |_: u32| {
            sink.fetch_add(1, Ordering::SeqCst);
        });
        for n in 0..20 {
            stage.submit(n).unwrap();
        }
        drop(stage);
        assert_eq!(count.load(Ordering::SeqCst), 20);
    }
}
