//! Network cost model for the discrete-event simulator.
//!
//! The paper's testbed: 1 Gbps LAN between a client VM and the SGX
//! server. [`NetModel`] converts message sizes into link service times
//! so `lcm-sim` can account for network transfer in virtual time.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Latency/bandwidth model of the client⇄server network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetModel {
    /// One-way propagation delay (LAN: tens of microseconds).
    pub one_way_latency: Duration,
    /// Serialization cost per byte (1 Gbps ⇒ 8 ns/byte).
    pub ns_per_byte: f64,
    /// Fixed per-message software overhead (syscall, TCP stack).
    pub per_message_overhead: Duration,
}

impl Default for NetModel {
    fn default() -> Self {
        NetModel {
            one_way_latency: Duration::from_micros(50),
            ns_per_byte: 8.0,
            per_message_overhead: Duration::from_micros(10),
        }
    }
}

impl NetModel {
    /// Time for one message of `bytes` to travel one way.
    pub fn one_way_cost(&self, bytes: usize) -> Duration {
        self.one_way_latency
            + self.per_message_overhead
            + Duration::from_nanos((bytes as f64 * self.ns_per_byte) as u64)
    }

    /// Round-trip time for a request of `req_bytes` and a reply of
    /// `reply_bytes`.
    pub fn round_trip_cost(&self, req_bytes: usize, reply_bytes: usize) -> Duration {
        self.one_way_cost(req_bytes) + self.one_way_cost(reply_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_with_size() {
        let net = NetModel::default();
        assert!(net.one_way_cost(10_000) > net.one_way_cost(100));
    }

    #[test]
    fn round_trip_is_sum_of_one_ways() {
        let net = NetModel::default();
        assert_eq!(
            net.round_trip_cost(100, 200),
            net.one_way_cost(100) + net.one_way_cost(200)
        );
    }

    #[test]
    fn gigabit_serialization_rate() {
        let net = NetModel::default();
        // 1 MB at 8 ns/byte ⇒ 8 ms of serialization beyond fixed costs.
        let fixed = net.one_way_latency + net.per_message_overhead;
        let total = net.one_way_cost(1_000_000);
        assert_eq!(total - fixed, Duration::from_millis(8));
    }
}
